"""Property tests: batched pipeline == scalar per-packet loop, exactly.

The scalar :meth:`TaurusPipeline.process` is the semantic oracle; these
tests drive the same packets through :meth:`process_trace_batch` and
assert every observable is identical — decisions, ML scores, latencies,
bypass flags, stats counters, MAT lookup/miss/hit counters, flow-register
contents, parser counts, the MapReduce block's issue clock, queue
watermarks, and the arbiter's turn.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import DNN_FEATURES, expand_to_packets
from repro.hw import MapReduceBlock
from repro.mapreduce import dnn_graph
from repro.pisa import (
    Action,
    DECISION_DROP,
    DECISION_FORWARD,
    FlowFeatureAccumulator,
    MatchActionTable,
    MatchKind,
    Packet,
    Primitive,
    TableEntry,
    TaurusPipeline,
    from_record,
)


@pytest.fixture(scope="module")
def block_pair(quantized_dnn):
    """Two identically configured MapReduce blocks (one per path)."""
    return (
        MapReduceBlock(dnn_graph(quantized_dnn)),
        MapReduceBlock(dnn_graph(quantized_dnn)),
    )


def _reset(block: MapReduceBlock) -> None:
    block._next_issue_cycle = 0
    block.packets_processed = 0


def _pipeline(block, slots=64, **kwargs) -> TaurusPipeline:
    pipe = TaurusPipeline(block=block, feature_names=DNN_FEATURES, **kwargs)
    # Small register file so flows collide (the scalar oracle must agree
    # on collision behaviour, not just the clean case).
    pipe.accumulator = FlowFeatureAccumulator(slots=slots)
    return pipe


def _pipeline_pair(block_pair, **kwargs):
    a, b = block_pair
    _reset(a)
    _reset(b)
    return _pipeline(a, **kwargs), _pipeline(b, **kwargs)


def _install_all_kind_tables(pipe: TaurusPipeline) -> None:
    """Pre/postprocess MATs covering all four match kinds."""
    pre_exact = MatchActionTable(
        name="pre_exact", key_fields=("protocol", "dst_port"), kind=MatchKind.EXACT
    )
    # Full-key entry plus a wildcard entry that outranks it.
    pre_exact.install(
        TableEntry(
            {"protocol": 0, "dst_port": 80}, Action.set_const("tag", "seq", 1),
            priority=1,
        )
    )
    pre_exact.install(
        TableEntry({"protocol": 1}, Action.set_const("udp", "seq", 2), priority=5)
    )
    pre_range = MatchActionTable(
        name="pre_range", key_fields=("src_port",), kind=MatchKind.RANGE
    )
    # Writes a model feature — preprocessing shapes what the fabric sees.
    pre_range.install(
        TableEntry(
            {"src_port": (2000, 40000)},
            Action.set_const("boost", DNN_FEATURES[0], 1.25),
        )
    )
    post_ternary = MatchActionTable(
        name="post_ternary", key_fields=("src_ip",), kind=MatchKind.TERNARY
    )
    post_ternary.install(
        TableEntry(
            {"src_ip": (0x0A000000, 0xFF000000)},
            Action.set_const("drop10", "decision", DECISION_DROP),
            priority=3,
        )
    )
    post_lpm = MatchActionTable(
        name="post_lpm", key_fields=("dst_ip",), kind=MatchKind.LPM
    )
    post_lpm.install(
        TableEntry(
            {"dst_ip": (0xC0A80000, 16)},
            Action.set_const("lan_ok", "decision", DECISION_FORWARD),
        )
    )
    # A generic (non-vectorized) VLIW action: both slots must read the
    # pre-action PHV, and the batched path must fall back per row.
    post_generic = MatchActionTable(
        name="post_generic", key_fields=("dst_port",), kind=MatchKind.EXACT
    )
    post_generic.install(
        TableEntry(
            {"dst_port": 3306},
            Action(
                "swapish",
                [
                    Primitive("ml_score", lambda p: p.get("decision") + 1),
                    Primitive("decision", lambda p: p.get("ml_score") % 3),
                ],
            ),
        )
    )
    pipe.install_preprocess(pre_exact)
    pipe.install_preprocess(pre_range)
    pipe.install_postprocess(post_ternary)
    pipe.install_postprocess(post_lpm)
    pipe.install_postprocess(post_generic)


def _packet(rng: np.random.Generator, t: float) -> Packet:
    protocol = int(rng.choice([0, 0, 1, 7]))
    features = None if rng.random() < 0.1 else rng.uniform(-3.0, 3.0, size=6)
    return Packet(
        headers={
            "protocol": protocol,
            "src_ip": int(rng.choice([0x0A000001, 0x0A0000FF, 0x0B000001, 3])),
            "dst_ip": int(rng.choice([0xC0A80A0A, 0xC0A90A0A, 17])),
            "src_port": int(rng.choice([1024, 2222, 40000, 55555])),
            "dst_port": int(rng.choice([22, 53, 80, 3306, 9999])),
            "urgent_flag": int(rng.random() < 0.3),
            "seq": int(rng.integers(0, 100)),
        },
        payload_len=int(rng.integers(0, 1400)),
        arrival_time=t,
        features=features,
    )


def _random_packets(seed: int, n: int) -> list[Packet]:
    rng = np.random.default_rng(seed)
    # Duplicate timestamps on purpose: both paths must sort stably.
    times = np.round(rng.uniform(0.0, 0.01, size=n), 4)
    return [_packet(rng, float(t)) for t in times]


def _clone(packets: list[Packet]) -> list[Packet]:
    return [
        Packet(
            headers=dict(p.headers),
            payload_len=p.payload_len,
            arrival_time=p.arrival_time,
            features=None if p.features is None else p.features.copy(),
            truth_label=p.truth_label,
            flow_id=p.flow_id,
        )
        for p in packets
    ]


def _assert_equivalent(pa, pb, packets_a, trace_b, chunk_size=16):
    scalar = pa.process_trace(packets_a)
    batch = pb.process_trace_batch(trace_b, chunk_size=chunk_size)

    assert np.array_equal(
        np.array([r.decision for r in scalar]), batch.decisions
    ), "decisions diverged"
    assert np.array_equal(
        np.array([np.nan if r.ml_score is None else r.ml_score for r in scalar]),
        batch.ml_scores,
        equal_nan=True,
    ), "ml_scores diverged"
    assert np.array_equal(
        np.array([r.latency_ns for r in scalar]), batch.latencies_ns
    ), "latencies diverged"
    assert np.array_equal(
        np.array([r.bypassed for r in scalar]), batch.bypassed
    ), "bypass flags diverged"

    assert pa.stats == pb.stats
    assert pa.parser.packets_parsed == pb.parser.packets_parsed
    for ta, tb in zip(
        pa.preprocess_tables + pa.postprocess_tables,
        pb.preprocess_tables + pb.postprocess_tables,
    ):
        assert (ta.lookups, ta.misses) == (tb.lookups, tb.misses), ta.name
        assert [e.hits for e in ta.entries] == [e.hits for e in tb.entries], ta.name
    for reg in ("packet_count", "byte_count", "urgent_count", "first_seen_ms"):
        assert np.array_equal(
            getattr(pa.accumulator, reg).values,
            getattr(pb.accumulator, reg).values,
        ), reg
    if pa.block is not None:
        assert pa.block._next_issue_cycle == pb.block._next_issue_cycle
        assert pa.block.packets_processed == pb.block.packets_processed
    for qa, qb in ((pa.ml_queue, pb.ml_queue), (pa.bypass_queue, pb.bypass_queue)):
        assert (len(qa), qa.drops, qa.high_watermark) == (
            len(qb), qb.drops, qb.high_watermark,
        )
    assert pa.arbiter._turn == pb.arbiter._turn
    return scalar, batch


class TestBatchEqualsScalar:
    def test_all_match_kinds_with_collisions(self, block_pair):
        """TCP/UDP mix, all four MAT kinds, colliding flow registers."""
        pa, pb = _pipeline_pair(block_pair, slots=16)
        _install_all_kind_tables(pa)
        _install_all_kind_tables(pb)
        packets = _random_packets(seed=1, n=200)
        scalar, batch = _assert_equivalent(pa, pb, packets, _clone(packets))
        # The workload must actually exercise the interesting paths.
        assert 0 < batch.dropped
        assert len({r.decision for r in scalar}) >= 2

    def test_metadata_written_back(self, block_pair):
        pa, pb = _pipeline_pair(block_pair)
        packets_a = _random_packets(seed=2, n=60)
        packets_b = _clone(packets_a)
        pa.process_trace(packets_a)
        pb.process_trace_batch(packets_b, chunk_size=13)
        for a, b in zip(packets_a, packets_b):
            assert a.metadata == b.metadata

    def test_bypass_predicate_fallback(self, block_pair):
        """A scalar-only predicate is honoured row by row."""
        pa, pb = _pipeline_pair(
            block_pair, bypass_predicate=lambda phv: phv.get("dst_port") == 22
        )
        packets = _random_packets(seed=3, n=80)
        scalar, batch = _assert_equivalent(pa, pb, packets, _clone(packets))
        assert batch.bypassed.any() and not batch.bypassed.all()

    def test_bypass_predicate_vectorized(self, block_pair):
        pa, pb = _pipeline_pair(
            block_pair,
            bypass_predicate=lambda phv: phv.get("dst_port") == 22,
            bypass_predicate_batch=lambda batch: batch.column("dst_port") == 22,
        )
        packets = _random_packets(seed=4, n=80)
        _assert_equivalent(pa, pb, packets, _clone(packets))

    def test_custom_postprocess_fallback(self, block_pair):
        threshold = 0.25
        pa, pb = _pipeline_pair(
            block_pair,
            postprocess=lambda value: (
                DECISION_DROP
                if float(np.atleast_1d(value)[0]) >= threshold
                else DECISION_FORWARD
            ),
        )
        packets = _random_packets(seed=5, n=50)
        scalar, batch = _assert_equivalent(pa, pb, packets, _clone(packets))
        assert batch.dropped > 0

    def test_no_block_all_bypass(self):
        pa = TaurusPipeline(block=None, feature_names=DNN_FEATURES)
        pb = TaurusPipeline(block=None, feature_names=DNN_FEATURES)
        packets = _random_packets(seed=6, n=40)
        scalar, batch = _assert_equivalent(pa, pb, packets, _clone(packets))
        assert batch.bypassed.all()

    def test_chunk_size_invariance(self, block_pair):
        packets = _random_packets(seed=7, n=90)
        reference = None
        for chunk_size in (1, 7, 90, 4096):
            __, pb = _pipeline_pair(block_pair)
            out = pb.process_trace_batch(_clone(packets), chunk_size=chunk_size)
            if reference is None:
                reference = out
            else:
                assert np.array_equal(reference.decisions, out.decisions)
                assert np.array_equal(
                    reference.ml_scores, out.ml_scores, equal_nan=True
                )
                assert np.array_equal(reference.latencies_ns, out.latencies_ns)

    def test_empty_trace(self, block_pair):
        __, pb = _pipeline_pair(block_pair)
        out = pb.process_trace_batch([])
        assert len(out) == 0
        assert pb.stats == {"ml": 0, "bypass": 0, "flagged": 0, "dropped": 0}

    def test_packet_trace_input_matches_from_record(self, block_pair, train_test_split):
        """A PacketTrace's cached columns == scalar over from_record()."""
        __, test = train_test_split
        trace = expand_to_packets(test, max_packets=400, seed=9)
        pa, pb = _pipeline_pair(block_pair)
        _install_all_kind_tables(pa)
        _install_all_kind_tables(pb)
        packets = [from_record(p) for p in trace.packets]
        _assert_equivalent(pa, pb, packets, trace, chunk_size=64)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(2, 36))
    @settings(max_examples=12, deadline=None)
    def test_property_random_workloads(self, block_pair, seed, n):
        """Randomized workloads: the batched path never diverges."""
        pa, pb = _pipeline_pair(block_pair, slots=8)
        _install_all_kind_tables(pa)
        _install_all_kind_tables(pb)
        packets = _random_packets(seed=seed, n=n)
        _assert_equivalent(pa, pb, packets, _clone(packets), chunk_size=5)
