"""Tests for the interprocedural concurrency analysis.

Each new rt-* check gets a trigger+clean fixture pair; the lockset
lattice contract (join = intersection = a proper meet, fixpoint
independent of worklist order and equal to the all-paths intersection)
is pinned with hypothesis property tests over randomly generated
branch/merge graphs; and the acceptance criterion — the runtime sources
are warning-clean with every surviving waiver justified inline — is a
test, not a hope.
"""

import json
import re
import textwrap
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_concurrency, analyze_concurrency_sources
from repro.analysis.cfg import TOP_SET, join_must, solve_must
from repro.analysis.diagnostics import CHECKS, Severity

CONCURRENCY_CHECKS = (
    "rt-racy-field",
    "rt-lockset-inconsistent",
    "rt-cv-wait-no-predicate",
    "rt-cv-notify-unheld",
    "rt-frame-unconsumed",
    "rt-ack-window-order",
)


def run_analysis(src: str):
    return analyze_concurrency_sources(
        [("snippet.py", textwrap.dedent(src))]
    )


def check_ids(src: str) -> set:
    return {d.check_id for d in run_analysis(src)}


class TestCatalog:
    def test_new_checks_registered(self):
        for check in CONCURRENCY_CHECKS:
            assert check in CHECKS
            assert CHECKS[check].category == "concurrency"

    def test_severities(self):
        assert CHECKS["rt-cv-notify-unheld"].severity == Severity.ERROR
        assert CHECKS["rt-ack-window-order"].severity == Severity.ERROR
        assert CHECKS["rt-racy-field"].severity == Severity.WARNING


class TestRacyField:
    TRIGGER = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0
                self._thread = threading.Thread(target=self._work)

            def _work(self):
                while True:
                    self.count += 1

            def read(self):
                return self.count
    """

    CLEAN = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0
                self._thread = threading.Thread(target=self._work)

            def _work(self):
                while True:
                    with self._lock:
                        self.count += 1

            def read(self):
                with self._lock:
                    return self.count
    """

    def test_trigger(self):
        diags = run_analysis(self.TRIGGER)
        racy = [d for d in diags if d.check_id == "rt-racy-field"]
        assert len(racy) == 1
        assert "Counter.count" in racy[0].message
        assert "thread:_work" in racy[0].message
        # Anchored at the first unlocked write so one waiver retires it.
        assert racy[0].line is not None

    def test_clean(self):
        assert "rt-racy-field" not in check_ids(self.CLEAN)

    def test_init_writes_are_happens_before(self):
        # __init__ runs before any spawn; its bare writes never race.
        assert "rt-racy-field" not in check_ids("""
            import threading

            class Quiet:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.count = 0
        """)

    def test_noqa_with_justification_waives(self):
        waived = self.TRIGGER.replace(
            "self.count += 1",
            "self.count += 1  # noqa: rt-racy-field - test waiver, "
            "counter is advisory",
        )
        assert "rt-racy-field" not in check_ids(waived)

    def test_closure_shared_with_spawned_thread(self):
        assert "rt-racy-field" in check_ids("""
            import threading

            def run():
                total = [0]

                def worker():
                    total[0] += 1

                t = threading.Thread(target=worker)
                t.start()
                return total[0]
        """)

    def test_closure_without_thread_is_private(self):
        # A closure cell is per-invocation: helpers called from several
        # public entry points do not share cells, so no race.
        assert "rt-racy-field" not in check_ids("""
            def run():
                total = [0]

                def helper():
                    total[0] += 1

                helper()
                return total[0]
        """)


class TestInterproceduralLocksets:
    def test_lock_held_through_helper_call_is_clean(self):
        assert not check_ids("""
            import threading

            class Helper:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0
                    threading.Thread(target=self._work).start()

                def _work(self):
                    with self._lock:
                        self._bump()

                def _bump(self):
                    self.value += 1

                def read(self):
                    with self._lock:
                        return self.value
        """)

    def test_unlocked_helper_path_triggers(self):
        assert "rt-racy-field" in check_ids("""
            import threading

            class Helper:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0
                    threading.Thread(target=self._work).start()

                def _work(self):
                    with self._lock:
                        self._bump()

                def _bump(self):
                    self.value += 1

                def poke(self):
                    self._bump()
        """)

    def test_branch_join_drops_lock(self):
        # The lockset after an `if` is the *meet* of both arms: a lock
        # acquired in only one arm is not held at the join.
        assert "rt-racy-field" in check_ids("""
            import threading

            class Branchy:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0
                    threading.Thread(target=self._work).start()

                def _work(self):
                    with self._lock:
                        self.value = 1

                def read(self, flag):
                    if flag:
                        with self._lock:
                            pass
                    return self.value
        """)


class TestLocksetInconsistent:
    TRIGGER = """
        import threading

        class Split:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()
                self.value = 0
                threading.Thread(target=self._work).start()

            def _work(self):
                with self._a:
                    self.value += 1

            def read(self):
                with self._b:
                    return self.value
    """

    def test_trigger(self):
        diags = run_analysis(self.TRIGGER)
        found = [d for d in diags if d.check_id == "rt-lockset-inconsistent"]
        assert len(found) == 1
        assert "no common" in found[0].message

    def test_clean(self):
        assert not check_ids(self.TRIGGER.replace("self._b:", "self._a:"))


class TestConditionDiscipline:
    def test_wait_outside_while_triggers(self):
        diags = run_analysis("""
            import threading

            class Waits:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)

                def bad(self):
                    with self._cv:
                        self._cv.wait()
        """)
        assert "rt-cv-wait-no-predicate" in {d.check_id for d in diags}

    def test_wait_in_while_is_clean(self):
        assert not check_ids("""
            import threading

            class Waits:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)
                    self.ready = False

                def good(self):
                    with self._cv:
                        while not self.ready:
                            self._cv.wait(timeout=0.05)
        """)

    def test_notify_unheld_triggers(self):
        diags = run_analysis("""
            import threading

            class Notifies:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)

                def bad(self):
                    self._cv.notify_all()
        """)
        found = [d for d in diags if d.check_id == "rt-cv-notify-unheld"]
        assert len(found) == 1
        assert found[0].severity == Severity.ERROR

    def test_notify_under_condition_is_clean(self):
        assert "rt-cv-notify-unheld" not in check_ids("""
            import threading

            class Notifies:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)

                def good(self):
                    with self._cv:
                        self._cv.notify_all()
        """)

    def test_notify_under_associated_lock_is_clean(self):
        # Condition(self._lock) shares its lock: holding the lock *is*
        # holding the condition for notify purposes.
        assert "rt-cv-notify-unheld" not in check_ids("""
            import threading

            class Notifies:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cv = threading.Condition(self._lock)

                def good(self):
                    with self._lock:
                        self._cv.notify_all()
        """)


class TestFrameProtocol:
    TRIGGER = """
        def produce(stream):
            for item in stream:
                yield ("chunk", item)

        def consume(kind, payload):
            if kind == "other":
                return payload
            raise RuntimeError(kind)
    """

    def test_trigger_both_directions(self):
        diags = run_analysis(self.TRIGGER)
        found = [d for d in diags if d.check_id == "rt-frame-unconsumed"]
        kinds = {m for d in found for m in re.findall(r"'(\w+)'", d.message)}
        assert "chunk" in kinds   # produced, never consumed
        assert "other" in kinds   # consumed, never produced

    def test_clean(self):
        assert "rt-frame-unconsumed" not in check_ids(
            self.TRIGGER.replace('"other"', '"chunk"')
        )

    def test_responses_are_a_separate_direction(self):
        # A response kind consumed via `status ==` must be produced via
        # _send-style tuples, not request-side sends.
        assert "rt-frame-unconsumed" not in check_ids("""
            def worker(_send, results):
                _send(("beat", None))

            def collector(frame):
                status, payload = frame
                if status == "beat":
                    return None
                return payload
        """)

    def test_attribute_state_machines_are_ignored(self):
        # `self.status == ...` is an unrelated state machine (admission
        # verdicts), not frame dispatch.
        assert "rt-frame-unconsumed" not in check_ids("""
            class Admission:
                def __init__(self, status):
                    self.status = status

                @property
                def accepted(self):
                    return self.status == "accepted"
        """)


ACK_WINDOW_PRELUDE = """
    import threading
    from collections import deque

    class Run:
        def __init__(self):
            self.lock = threading.Lock()
            self.cv = threading.Condition(self.lock)
            self.pending = deque()
"""


class TestAckWindowOrder:
    def test_touch_without_condition_triggers(self):
        diags = run_analysis(ACK_WINDOW_PRELUDE + """
            def bad_touch(self, item):
                self.pending.append(item)
        """)
        found = [d for d in diags if d.check_id == "rt-ack-window-order"]
        assert found and found[0].severity == Severity.ERROR

    def test_send_before_append_triggers(self):
        diags = run_analysis(ACK_WINDOW_PRELUDE + """
            def bad_order(self, worker, item):
                with self.cv:
                    worker.send(item)
                    self.pending.append(item)
        """)
        assert "rt-ack-window-order" in {d.check_id for d in diags}

    def test_pop_without_notify_triggers(self):
        diags = run_analysis(ACK_WINDOW_PRELUDE + """
            def bad_pop(self):
                with self.cv:
                    return self.pending.popleft()
        """)
        assert "rt-ack-window-order" in {d.check_id for d in diags}

    def test_disciplined_window_is_clean(self):
        assert "rt-ack-window-order" not in check_ids(ACK_WINDOW_PRELUDE + """
            def good(self, worker, item):
                with self.cv:
                    self.pending.append(item)
                    worker.send(item)

            def ack(self):
                with self.cv:
                    entry = self.pending.popleft()
                    self.cv.notify_all()
                    return entry
        """)


# ----------------------------------------------------------------------
# The lattice contract, property-tested
# ----------------------------------------------------------------------
LOCKS = ("a", "b", "c", "d")
locksets = st.frozensets(st.sampled_from(LOCKS))
locksets_or_top = st.one_of(st.none(), locksets)


class TestJoinIsAMeet:
    @given(locksets_or_top, locksets_or_top)
    def test_commutative(self, x, y):
        assert join_must(x, y) == join_must(y, x)

    @given(locksets_or_top, locksets_or_top, locksets_or_top)
    def test_associative(self, x, y, z):
        assert join_must(join_must(x, y), z) == join_must(x, join_must(y, z))

    @given(locksets_or_top)
    def test_idempotent(self, x):
        assert join_must(x, x) == x

    @given(locksets)
    def test_top_is_identity(self, x):
        assert join_must(TOP_SET, x) == x
        assert join_must(x, TOP_SET) == x

    @given(locksets, locksets)
    def test_meet_is_a_lower_bound(self, x, y):
        met = join_must(x, y)
        assert met <= x and met <= y


@st.composite
def dag_problems(draw):
    """A random branch/merge DAG with acquire/release effects."""
    n = draw(st.integers(min_value=2, max_value=7))
    succs = {}
    for i in range(n - 1):
        succs[i] = sorted(
            draw(
                st.sets(
                    st.integers(min_value=i + 1, max_value=n - 1), max_size=3
                )
            )
        )
    succs[n - 1] = []
    effects = {
        i: (
            draw(locksets),
            draw(locksets),
        )
        for i in range(n)
    }
    init = draw(locksets)
    return n, succs, effects, init


@st.composite
def graph_problems(draw):
    """Like dag_problems but cycles (loop back-edges) are allowed."""
    n = draw(st.integers(min_value=2, max_value=7))
    succs = {
        i: sorted(
            draw(
                st.sets(
                    st.integers(min_value=0, max_value=n - 1), max_size=3
                )
            )
        )
        for i in range(n)
    }
    effects = {i: (draw(locksets), draw(locksets)) for i in range(n)}
    init = draw(locksets)
    return n, succs, effects, init


def _all_paths(succs, entry, target, limit=5000):
    """Every entry→target path in a DAG (node sequences)."""
    paths = []
    stack = [(entry, [entry])]
    while stack and len(paths) < limit:
        node, path = stack.pop()
        if node == target:
            paths.append(path)
            continue
        for succ in succs.get(node, ()):
            stack.append((succ, path + [succ]))
    return paths


class TestFixpointIsPathIntersection:
    @settings(max_examples=200, deadline=None)
    @given(dag_problems())
    def test_in_state_equals_meet_over_all_paths(self, problem):
        n, succs, effects, init = problem
        solved = solve_must(succs, effects, entry=0, init=init)
        for target in range(n):
            paths = _all_paths(succs, 0, target)
            if not paths:
                assert target not in solved or target == 0
                continue
            expected = None
            for path in paths:
                state = init
                for node in path[:-1]:
                    acquires, releases = effects[node]
                    state = (state | acquires) - releases
                expected = join_must(expected, state)
            assert solved[target] == expected

    @settings(max_examples=200, deadline=None)
    @given(graph_problems(), st.randoms(use_true_random=False))
    def test_worklist_order_is_irrelevant(self, problem, rnd):
        n, succs, effects, init = problem
        baseline = solve_must(succs, effects, entry=0, init=init)
        for _ in range(3):
            order = list(range(n))
            rnd.shuffle(order)
            assert (
                solve_must(succs, effects, entry=0, init=init, order=order)
                == baseline
            )

    @settings(max_examples=100, deadline=None)
    @given(graph_problems())
    def test_solution_is_a_fixpoint(self, problem):
        # IN[succ] must be ≤ OUT[node] for every edge: re-applying one
        # transfer step never discovers anything new.
        n, succs, effects, init = problem
        solved = solve_must(succs, effects, entry=0, init=init)
        for node, state in solved.items():
            acquires, releases = effects[node]
            out = (state | acquires) - releases
            for succ in succs.get(node, ()):
                assert solved[succ] <= out


# ----------------------------------------------------------------------
# CLI integration: default battery, paths mode, SARIF
# ----------------------------------------------------------------------
TRIGGER_FILE = textwrap.dedent("""
    import threading

    class Notifies:
        def __init__(self):
            self._lock = threading.Lock()
            self._cv = threading.Condition(self._lock)

        def bad(self):
            self._cv.notify_all()
""")


class TestCLI:
    def test_paths_mode_runs_concurrency(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        snippet = tmp_path / "snippet.py"
        snippet.write_text(TRIGGER_FILE)
        assert main([str(snippet)]) == 1
        assert "rt-cv-notify-unheld" in capsys.readouterr().out

    def test_sarif_output(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        snippet = tmp_path / "snippet.py"
        snippet.write_text(TRIGGER_FILE)
        assert main(["--format=sarif", str(snippet)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(CHECKS) == rules
        result = next(
            r for r in run["results"] if r["ruleId"] == "rt-cv-notify-unheld"
        )
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("snippet.py")
        assert location["region"]["startLine"] == 10

    def test_sarif_rules_carry_catalog_metadata(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["--format=sarif", str(clean)]) == 0
        doc = json.loads(capsys.readouterr().out)
        rule = next(
            r
            for r in doc["runs"][0]["tool"]["driver"]["rules"]
            if r["id"] == "rt-racy-field"
        )
        assert rule["properties"]["category"] == "concurrency"
        assert rule["defaultConfiguration"]["level"] == "warning"


# ----------------------------------------------------------------------
# The acceptance criterion: the runtime is clean and waivers justified
# ----------------------------------------------------------------------
def _runtime_dir() -> Path:
    import repro.runtime

    return Path(repro.runtime.__file__).resolve().parent


class TestRuntimeIsClean:
    def test_runtime_has_no_concurrency_findings(self):
        diags = analyze_concurrency([_runtime_dir()])
        gating = [d for d in diags if d.severity >= Severity.WARNING]
        assert not gating, "\n".join(d.format() for d in gating)

    def test_every_waiver_carries_a_justification(self):
        pattern = re.compile(r"# noqa: (rt-[a-z-]+)([^\n]*)")
        unjustified = []
        for path in sorted(_runtime_dir().rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                match = pattern.search(line)
                if not match or match.group(1) not in CONCURRENCY_CHECKS:
                    continue
                if " - " not in match.group(2):
                    unjustified.append(f"{path.name}:{lineno}")
        assert not unjustified, unjustified

    @pytest.mark.parametrize("check", CONCURRENCY_CHECKS)
    def test_each_check_exercised_by_fixtures(self, check):
        # Belt and braces: the catalog promise is that every check has a
        # triggering fixture somewhere in this file.
        source = Path(__file__).read_text()
        assert check in source
