"""Unit tests for fixed-point formats."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixpoint import FIX8, FIX16, FIX32, FixedPointFormat


class TestFormatBasics:
    def test_fix8_layout(self):
        assert FIX8.total_bits == 8
        assert FIX8.frac_bits == 4
        assert FIX8.int_bits == 3
        assert FIX8.scale == 16.0

    def test_ranges(self):
        assert FIX8.raw_min == -128
        assert FIX8.raw_max == 127
        assert FIX8.min_value == -8.0
        assert FIX8.max_value == pytest.approx(7.9375)

    def test_resolution(self):
        assert FIX8.resolution == pytest.approx(1 / 16)
        assert FIX16.resolution == pytest.approx(1 / 256)
        assert FIX32.resolution == pytest.approx(1 / 65536)

    def test_storage_dtypes(self):
        assert FIX8.storage_dtype == np.int8
        assert FIX16.storage_dtype == np.int16
        assert FIX32.storage_dtype == np.int32

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=12, frac_bits=4, name="bad")

    def test_invalid_frac_bits_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=8, frac_bits=8, name="bad")
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=8, frac_bits=-1, name="bad")

    def test_with_frac_bits(self):
        fmt = FIX8.with_frac_bits(6)
        assert fmt.frac_bits == 6
        assert fmt.total_bits == 8


class TestQuantization:
    def test_exact_values_roundtrip(self):
        values = np.array([0.0, 0.5, -0.5, 1.0, -8.0, 7.9375])
        assert np.array_equal(FIX8.roundtrip(values), values)

    def test_saturation_on_overflow(self):
        assert FIX8.roundtrip(100.0) == pytest.approx(7.9375)
        assert FIX8.roundtrip(-100.0) == pytest.approx(-8.0)

    def test_quantize_returns_storage_dtype(self):
        raw = FIX8.quantize(np.array([1.0, 2.0]))
        assert raw.dtype == np.int8

    def test_round_to_nearest(self):
        # 0.03 is closest to 0.0625 * 0.5 -> rounds to 0.0625*round(0.48)=0
        assert FIX8.roundtrip(0.03) == 0.0
        assert FIX8.roundtrip(0.05) == pytest.approx(0.0625)

    def test_saturate_wide_values(self):
        wide = np.array([300, -300, 5], dtype=np.int32)
        out = FIX8.saturate(wide)
        assert out.tolist() == [127, -128, 5]
        assert out.dtype == np.int8

    @given(st.floats(min_value=-7.9, max_value=7.9, allow_nan=False))
    def test_roundtrip_error_bounded(self, value):
        """Quantization error never exceeds half a ULP in range."""
        assert abs(FIX8.roundtrip(value) - value) <= FIX8.resolution / 2 + 1e-12

    @given(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.sampled_from([FIX8, FIX16, FIX32]),
    )
    def test_roundtrip_always_in_range(self, value, fmt):
        out = float(fmt.roundtrip(value))
        assert fmt.min_value <= out <= fmt.max_value

    @given(st.lists(st.floats(-8, 7.9), min_size=1, max_size=32))
    def test_quantize_is_idempotent(self, values):
        once = FIX8.roundtrip(np.array(values))
        twice = FIX8.roundtrip(once)
        assert np.array_equal(once, twice)
