"""Tests for the compiler: allocation, timing, unrolling, place-and-route.

The latency assertions pin the paper's Table 6 anchors — the cost model is
calibrated, so these are regression tests on published numbers.
"""

import pytest

from repro.compiler import (
    BudgetError,
    GridSpec,
    compile_graph,
    critical_path_cycles,
    graph_resources,
    min_unroll_for_rate,
    node_cost,
    place_and_route,
    unroll_sweep,
)
from repro.hw.params import CUGeometry
from repro.mapreduce import (
    DataflowGraph,
    activation_graph,
    conv1d_graph,
    inner_product_graph,
)
from repro.mapreduce.ir import Node


def _node(kind, **kw):
    return Node(node_id=0, kind=kind, **kw)


class TestNodeCost:
    def test_dot_single_cu(self):
        cost = node_cost(_node("dot", parallel=1, width=16, chain_ops=1, reduce_op="sum"))
        assert cost.n_cu == 1
        assert cost.cycles == 5  # 1 map + 4 reduce (paper, Section 5.1.3)

    def test_dot_lane_packing(self):
        """Two 8-wide instances share one 16-lane CU."""
        cost = node_cost(_node("dot", parallel=16, width=8, chain_ops=1, reduce_op="sum"))
        assert cost.n_cu == 8

    def test_dot_partials_merge(self):
        cost = node_cost(_node("dot", parallel=1, width=37, chain_ops=1, reduce_op="sum"))
        assert cost.n_cu == 4  # 3 partials + 1 merge
        assert cost.hops == 2

    def test_map_chain_splitting(self):
        """Chains longer than the stage count split across CUs in series."""
        for chain, expected in [(1, 1), (4, 1), (5, 2), (14, 4), (26, 7)]:
            cost = node_cost(_node("map", width=16, chain_ops=chain))
            assert cost.n_cu == expected, chain

    def test_map_wide_vector(self):
        cost = node_cost(_node("map", width=64, chain_ops=1))
        assert cost.n_cu == 4

    def test_small_const_free(self):
        cost = node_cost(_node("const", weight_values=16))
        assert cost.n_cu == 0
        assert cost.n_mu == 0

    def test_large_const_uses_mus(self):
        cost = node_cost(_node("const", weight_values=20000))
        assert cost.n_mu == 2  # 16384 values per MU

    def test_lut_uses_mu(self):
        cost = node_cost(_node("lut", width=16, weight_values=1024))
        assert cost.n_mu == 1
        assert cost.n_cu == 0

    def test_input_output_free(self):
        assert node_cost(_node("input", width=16)).n_cu == 0
        assert node_cost(_node("output", width=16)).n_cu == 0

    def test_reduce_wide(self):
        narrow = node_cost(_node("reduce", width=8, reduce_op="sum"))
        wide = node_cost(_node("reduce", width=64, reduce_op="sum"))
        assert wide.n_cu > narrow.n_cu
        assert wide.cycles > narrow.cycles


class TestTable6Anchors:
    """Latency/area regression against the paper's microbenchmarks."""

    @pytest.mark.parametrize(
        "builder,paper_ns,paper_mm2,tol_ns",
        [
            (lambda: inner_product_graph(16), 23, 0.04, 1),
            (lambda: activation_graph("relu"), 22, 0.04, 1),
            (lambda: activation_graph("leaky_relu"), 22, 0.04, 1),
            (lambda: activation_graph("tanh_exp"), 69, 0.26, 4),
            (lambda: activation_graph("sigmoid_exp"), 73, 0.31, 4),
            (lambda: activation_graph("tanh_pw"), 38, 0.13, 4),
            (lambda: activation_graph("sigmoid_pw"), 46, 0.17, 4),
            (lambda: activation_graph("act_lut"), 36, 0.12, 2),
        ],
    )
    def test_microbenchmark(self, builder, paper_ns, paper_mm2, tol_ns):
        design = compile_graph(builder())
        assert design.latency_ns == pytest.approx(paper_ns, abs=tol_ns)
        assert design.area_mm2 == pytest.approx(paper_mm2, rel=0.15)

    def test_all_run_at_line_rate(self):
        for name in ("relu", "tanh_exp", "sigmoid_pw", "act_lut"):
            assert compile_graph(activation_graph(name)).line_rate_fraction == 1.0


class TestUnrolling:
    def test_table7_line_rate_fractions(self):
        points = unroll_sweep(lambda u: conv1d_graph(unroll=u))
        assert [p.line_rate_fraction for p in points] == [0.125, 0.25, 0.5, 1.0]

    def test_table7_area_scales_linearly(self):
        points = unroll_sweep(lambda u: conv1d_graph(unroll=u))
        areas = [p.area_mm2 for p in points]
        assert areas == sorted(areas)
        # The 8x unroll costs ~7x the 1x area (fixed gather amortizes).
        assert 5.0 < areas[-1] / areas[0] < 8.5

    def test_min_unroll_for_rate(self):
        point = min_unroll_for_rate(lambda u: conv1d_graph(unroll=u), 0.5)
        assert point.unroll == 4

    def test_min_unroll_unreachable(self):
        with pytest.raises(ValueError):
            min_unroll_for_rate(lambda u: conv1d_graph(unroll=u), 1.0, factors=(1, 2))

    def test_bad_target(self):
        with pytest.raises(ValueError):
            min_unroll_for_rate(lambda u: conv1d_graph(unroll=u), 0.0)


class TestFolding:
    def test_fold_reduces_cu_and_rate(self):
        from repro.mapreduce import lstm_graph
        from repro.ml import indigo_lstm

        graph = lstm_graph(indigo_lstm(seed=0))
        unlimited = compile_graph(graph)
        folded = compile_graph(graph, cu_budget=90, mu_budget=30)
        assert unlimited.n_cu > 90
        assert folded.n_cu <= 90
        assert folded.fold_factor > 1
        assert folded.initiation_interval > unlimited.initiation_interval

    def test_mu_overflow_raises(self):
        g = DataflowGraph(name="big")
        inp = g.add("input", name="x", width=16)
        bank = g.add("const", name="w", weight_values=16384 * 40)
        dot = g.add("dot", preds=[inp, bank], name="d", parallel=1, width=16,
                    chain_ops=1, reduce_op="sum", fn=lambda x: x[:1])
        g.add("output", preds=[dot], name="y", width=1)
        with pytest.raises(ValueError):
            compile_graph(g, cu_budget=90, mu_budget=30)


class TestBudgetSymmetry:
    """Both overflow paths raise the same typed error with the same fields."""

    @staticmethod
    def _mu_heavy():
        g = DataflowGraph(name="mu-heavy")
        inp = g.add("input", name="x", width=16)
        bank = g.add("const", name="w", weight_values=16384 * 40)
        dot = g.add("dot", preds=[inp, bank], name="d", parallel=1, width=16,
                    chain_ops=1, reduce_op="sum", fn=lambda x: x[:1])
        g.add("output", preds=[dot], name="y", width=1)
        return g

    @staticmethod
    def _cu_heavy():
        g = DataflowGraph(name="cu-heavy")
        inp = g.add("input", name="x", width=4)
        m = g.add("map", preds=[inp], name="wide", width=4, chain_ops=1,
                  parallel=400, fn=lambda x: x)
        g.add("output", preds=[m], name="y", width=4)
        return g

    def test_mu_overflow_error_fields(self):
        with pytest.raises(BudgetError) as excinfo:
            compile_graph(self._mu_heavy(), cu_budget=90, mu_budget=30)
        err = excinfo.value
        assert err.graph_name == "mu-heavy"
        assert err.resource == "MU"
        assert err.needed == 40
        assert err.budget == 30
        assert "compression" in str(err)

    def test_cu_overflow_without_fold_error_fields(self):
        with pytest.raises(BudgetError) as excinfo:
            compile_graph(self._cu_heavy(), cu_budget=90, fold=False)
        err = excinfo.value
        assert err.graph_name == "cu-heavy"
        assert err.resource == "CU"
        assert err.needed > err.budget == 90
        assert "fold" in str(err)

    def test_cu_overflow_folds_by_default(self):
        design = compile_graph(self._cu_heavy(), cu_budget=90)
        assert design.fold_factor > 1
        assert design.n_cu <= 90

    def test_budget_error_is_value_error(self):
        assert issubclass(BudgetError, ValueError)


class TestCriticalPath:
    def test_includes_phv_boundary(self):
        g = DataflowGraph(name="empty-ish")
        inp = g.add("input", name="x", width=16)
        g.add("output", preds=[inp], name="y", width=16)
        # 4 (in) + 5 (out hop) + 4 (out) = 13 cycles minimum transit.
        assert critical_path_cycles(g) == 13

    def test_const_serializes_with_data(self):
        g1 = DataflowGraph(name="no-mu")
        inp = g1.add("input", name="x", width=16)
        d1 = g1.add("dot", preds=[inp], name="d", parallel=1, width=16,
                    chain_ops=1, reduce_op="sum", fn=None)
        g1.add("output", preds=[d1], name="y", width=1)

        g2 = DataflowGraph(name="mu")
        inp2 = g2.add("input", name="x", width=16)
        bank = g2.add("const", name="w", weight_values=5000)  # needs an MU
        d2 = g2.add("dot", preds=[inp2, bank], name="d", parallel=1, width=16,
                    chain_ops=1, reduce_op="sum", fn=None)
        g2.add("output", preds=[d2], name="y", width=1)
        assert critical_path_cycles(g2) > critical_path_cycles(g1)

    def test_geometry_affects_latency(self):
        g = activation_graph("tanh_exp")
        shallow = compile_graph(g, CUGeometry(16, 2))
        deep = compile_graph(g, CUGeometry(16, 6))
        # Fewer stages -> more CUs in series -> more hops -> more latency.
        assert shallow.latency_cycles > deep.latency_cycles


class TestPlaceRoute:
    def test_grid_composition(self):
        grid = GridSpec()
        assert len(grid.tiles("cu")) == 90
        assert len(grid.tiles("mu")) == 30

    def test_placement_fits_anomaly_dnn(self, quantized_dnn):
        from repro.mapreduce import dnn_graph

        placement = place_and_route(dnn_graph(quantized_dnn))
        resources = graph_resources(dnn_graph(quantized_dnn))
        assert placement.n_tiles_used == resources.n_cu + resources.n_mu
        assert placement.fold_factor == 1

    def test_routes_exist_and_are_paths(self, quantized_dnn):
        from repro.mapreduce import dnn_graph

        placement = place_and_route(dnn_graph(quantized_dnn))
        assert placement.routes
        for path in placement.routes:
            for a, b in zip(path, path[1:]):
                assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1  # mesh steps

    def test_oversized_graph_folds(self):
        from repro.mapreduce import lstm_graph
        from repro.ml import indigo_lstm

        placement = place_and_route(lstm_graph(indigo_lstm(seed=0)))
        assert placement.fold_factor > 1
        assert placement.n_tiles_used <= 120

    def test_locality_heuristic(self, quantized_dnn):
        """Average route length should be far below the grid diameter."""
        from repro.mapreduce import dnn_graph

        placement = place_and_route(dnn_graph(quantized_dnn))
        mean_hops = placement.total_route_hops / len(placement.routes)
        assert mean_hops < 11  # grid diameter is 20
