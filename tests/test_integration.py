"""Integration tests: the whole system end to end.

These exercise the library the way the paper's evaluation does — train,
quantize, lower, deploy on the switch, replay traffic, and compare against
the control-plane baseline — asserting the *shape* of the paper's results.
"""

import numpy as np
import pytest

from repro import TaurusConfig, TaurusSwitch
from repro.apps import AnomalyDetector, CongestionController, IoTClassifier, cluster_purity
from repro.compiler import compile_graph
from repro.datasets import DNN_FEATURES, dnn_feature_matrix, generate_connections
from repro.hw import TaurusChip
from repro.mapreduce import dnn_graph, kmeans_graph, svm_graph, lstm_graph
from repro.pisa import from_record
from repro.testbed import EndToEndExperiment


class TestTable5Shape:
    """Application overheads: order, magnitudes, line-rate status."""

    @pytest.fixture(scope="class")
    def designs(self, quantized_dnn, trained_svm, trained_kmeans):
        from repro.ml import indigo_lstm

        return {
            "kmeans": compile_graph(kmeans_graph(trained_kmeans)),
            "svm": compile_graph(svm_graph(trained_svm)),
            "dnn": compile_graph(dnn_graph(quantized_dnn)),
            "lstm": compile_graph(
                lstm_graph(indigo_lstm(seed=0)), cu_budget=90, mu_budget=30
            ),
        }

    def test_latency_ordering(self, designs):
        """KMeans < SVM < DNN << LSTM (Table 5)."""
        assert (
            designs["kmeans"].latency_ns
            < designs["svm"].latency_ns
            < designs["dnn"].latency_ns
            < designs["lstm"].latency_ns
        )

    def test_latency_magnitudes(self, designs):
        assert designs["kmeans"].latency_ns == pytest.approx(61, abs=25)
        assert designs["svm"].latency_ns == pytest.approx(83, abs=25)
        assert designs["dnn"].latency_ns == pytest.approx(221, abs=80)
        assert designs["lstm"].latency_ns == pytest.approx(805, abs=120)

    def test_line_rate_except_lstm(self, designs):
        for name in ("kmeans", "svm", "dnn"):
            assert designs[name].line_rate_fraction == 1.0, name
        assert designs["lstm"].line_rate_fraction < 1.0

    def test_area_overheads_small(self, designs):
        chip = TaurusChip()
        for name in ("kmeans", "svm", "dnn"):
            report = chip.design_overheads(designs[name])
            assert report.area_percent < 1.5, name

    def test_switch_latency_overhead(self, designs):
        """KMeans/SVM/DNN add ~6/8/22% to a 1 us switch (Section 5.1.2)."""
        chip = TaurusChip()
        assert chip.switch_latency_overhead_percent(designs["kmeans"]) < 10
        assert chip.switch_latency_overhead_percent(designs["dnn"]) < 30

    def test_everything_fits_the_grid(self, designs):
        for design in designs.values():
            assert design.n_cu <= 90
            assert design.n_mu <= 30


class TestTaurusSwitch:
    def test_full_device_flow(self, quantized_dnn, train_test_split):
        __, test = train_test_split
        switch = TaurusSwitch.with_program(
            dnn_graph(quantized_dnn), feature_names=DNN_FEATURES
        )
        x = dnn_feature_matrix(test)[:16]
        for row in x:
            score = switch.infer(row)
            assert 0.0 <= float(score[0]) <= 1.0
        report = switch.overheads()
        assert report.area_percent < 1.5
        placement = switch.placement()
        assert placement.n_tiles_used > 0

    def test_program_swap(self, quantized_dnn, trained_kmeans):
        switch = TaurusSwitch.with_program(
            dnn_graph(quantized_dnn), feature_names=DNN_FEATURES
        )
        before = switch.design.latency_ns
        switch.install_program(kmeans_graph(trained_kmeans))
        assert switch.design.latency_ns != before

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TaurusConfig(decision_threshold=2.0)
        assert TaurusConfig().n_cus == 90
        assert TaurusConfig().n_mus == 30

    def test_batched_decision_hooks_installed_by_default(
        self, quantized_dnn, train_test_split
    ):
        """with_program wires the vectorized postprocess twin, so batched
        trace replay never falls back to the per-row scalar hook."""
        from repro.datasets import expand_to_packets

        switch = TaurusSwitch.with_program(
            dnn_graph(quantized_dnn), feature_names=DNN_FEATURES
        )
        assert switch.pipeline.postprocess_batch is not None
        __, test = train_test_split
        trace = expand_to_packets(test, max_packets=200, seed=3)
        outcome = switch.process_trace_batch(trace)
        threshold = switch.config.decision_threshold
        assert np.array_equal(outcome.decisions == 1, outcome.ml_scores >= threshold)

    def test_custom_batched_hooks_pass_through(self, quantized_dnn):
        from repro.pisa import DECISION_DROP, DECISION_FORWARD

        def scalar_post(value):
            return DECISION_DROP if float(value[0]) >= 0.9 else DECISION_FORWARD

        def batch_post(values):
            return np.where(values[:, 0] >= 0.9, DECISION_DROP, DECISION_FORWARD)

        def scalar_bypass(phv):
            return phv.get("dst_port") == 22

        def batch_bypass(batch):
            return batch.column("dst_port") == 22

        switch = TaurusSwitch.with_program(
            dnn_graph(quantized_dnn),
            feature_names=DNN_FEATURES,
            postprocess=scalar_post,
            postprocess_batch=batch_post,
            bypass_predicate=scalar_bypass,
            bypass_predicate_batch=batch_bypass,
        )
        assert switch.pipeline.postprocess is scalar_post
        assert switch.pipeline.postprocess_batch is batch_post
        assert switch.pipeline.bypass_predicate is scalar_bypass
        assert switch.pipeline.bypass_predicate_batch is batch_bypass

    def test_batch_only_hooks_rejected(self, quantized_dnn):
        """A batched hook without its scalar oracle would let the two
        execution paths silently diverge — refuse it."""
        graph = dnn_graph(quantized_dnn)
        with pytest.raises(ValueError, match="scalar postprocess"):
            TaurusSwitch.with_program(
                graph,
                feature_names=DNN_FEATURES,
                postprocess_batch=lambda values: values[:, 0] > 0,
            )
        with pytest.raises(ValueError, match="scalar bypass_predicate"):
            TaurusSwitch.with_program(
                graph,
                feature_names=DNN_FEATURES,
                bypass_predicate_batch=lambda batch: batch.column("dst_port") == 22,
            )


class TestAnomalyDetectorApp:
    @pytest.fixture(scope="class")
    def detector(self):
        return AnomalyDetector.from_dataset(n_connections=3000, epochs=12, seed=1)

    def test_offline_scores_near_paper(self, detector):
        held_out = generate_connections(2500, seed=77)
        scores = detector.offline_scores(held_out)
        assert 0.6 < scores["f1_fix8"] < 0.85       # paper: 0.711
        assert abs(scores["f1_fix8"] - scores["f1_float"]) < 0.05

    def test_pipeline_processes_packets(self, detector):
        from repro.datasets import expand_to_packets

        ds = generate_connections(200, seed=9)
        trace = expand_to_packets(ds, max_packets=300, seed=9)
        results = [detector.pipeline.process(from_record(p)) for p in trace.packets[:100]]
        flagged = sum(1 for r in results if r.decision != 0)
        assert 0 < flagged < 100

    def test_weight_update_swaps_model(self, detector):
        from repro.apps import train_anomaly_dnn

        ds = generate_connections(1500, seed=42)
        new_model = train_anomaly_dnn(ds, epochs=3, seed=42)
        old_weights = detector.dnn.get_weights()
        detector.install_weights(new_model, dnn_feature_matrix(ds)[:128])
        assert not np.allclose(old_weights[0][0], detector.dnn.layers[0].weights)


class TestIoTClassifierApp:
    def test_purity_high(self):
        app, features, labels = IoTClassifier.train(n_samples=1200, seed=0)
        assignments = app.classify_batch(features[:300])
        assert cluster_purity(assignments, labels[:300]) > 0.85

    def test_single_classify(self):
        app, features, __ = IoTClassifier.train(n_samples=800, seed=1)
        cluster = app.classify(features[0])
        assert 0 <= cluster < 5

    def test_latency_near_paper(self):
        app, __, __labels = IoTClassifier.train(n_samples=800, seed=2)
        assert app.latency_ns == pytest.approx(61, abs=25)


class TestCongestionApp:
    @pytest.fixture(scope="class")
    def controller(self):
        app, acc = CongestionController.train(n_sequences=600, epochs=8, seed=0)
        return app, acc

    def test_imitation_accuracy(self, controller):
        __, acc = controller
        assert acc > 0.5

    def test_decision_interval_near_paper(self, controller):
        app, __ = controller
        assert app.decision_interval_ns == pytest.approx(805, abs=120)

    def test_faster_decisions_improve_control(self, controller):
        """Sub-us decisions hold the queue lower than 10 ms decisions —
        the paper's argument for running Indigo on the switch."""
        from repro.apps import closed_loop_metrics

        app, __ = controller
        slow = closed_loop_metrics(app, decision_interval_s=10e-3, sim_time_s=0.15, seed=1)
        fast = closed_loop_metrics(app, decision_interval_s=1e-4, sim_time_s=0.15, seed=1)
        assert fast["p99_queue_fraction"] <= slow["p99_queue_fraction"] + 0.05
        assert fast["loss_events"] <= slow["loss_events"] + max(2, 0.5 * slow["loss_events"])


class TestEndToEndTable8:
    @pytest.fixture(scope="class")
    def experiment(self):
        return EndToEndExperiment.build(
            n_connections=2500, max_packets=60_000, epochs=12, seed=0
        )

    def test_taurus_beats_baseline_everywhere(self, experiment):
        rows = experiment.run(sampling_rates=(1e-4, 1e-3))
        for row in rows:
            assert row.detection_advantage > 10
            assert row.taurus.f1_percent > row.baseline.f1_percent

    def test_detection_two_orders_of_magnitude(self, experiment):
        """The abstract's claim at the paper's best baseline point."""
        row = experiment.run_row(1e-4)
        assert row.detection_advantage > 25

    def test_latency_grows_with_sampling(self, experiment):
        rows = experiment.run(sampling_rates=(1e-4, 1e-2))
        assert rows[1].baseline.total_ms > rows[0].baseline.total_ms

    def test_taurus_constant_across_rates(self, experiment):
        rows = experiment.run(sampling_rates=(1e-4, 1e-2))
        assert rows[0].taurus.f1_percent == rows[1].taurus.f1_percent

    def test_dataplane_equivalence(self, experiment):
        assert experiment.verify_dataplane()
