"""Unit and property tests for fixed-point tensors."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.fixpoint import FIX8, FIX16, FixTensor

floats8 = st.floats(min_value=-7.5, max_value=7.5, allow_nan=False)
vectors8 = st.lists(floats8, min_size=1, max_size=16)


class TestConstruction:
    def test_from_float(self):
        t = FixTensor.from_float([1.0, -2.5], FIX8)
        assert t.to_float().tolist() == [1.0, -2.5]

    def test_from_raw_saturates(self):
        t = FixTensor.from_raw(np.array([500, -500], dtype=np.int32), FIX8)
        assert t.raw.tolist() == [127, -128]

    def test_zeros(self):
        t = FixTensor.zeros((2, 3), FIX8)
        assert t.shape == (2, 3)
        assert np.all(t.raw == 0)

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(TypeError):
            FixTensor(np.array([1], dtype=np.int16), FIX8)

    def test_reshape_and_indexing(self):
        t = FixTensor.from_float(np.arange(6) / 4.0, FIX8).reshape(2, 3)
        assert t.shape == (2, 3)
        assert t[0].shape == (3,)
        assert len(t) == 2


class TestArithmetic:
    def test_add_exact(self):
        a = FixTensor.from_float([1.0, 2.0], FIX8)
        b = FixTensor.from_float([0.5, -1.0], FIX8)
        assert (a + b).to_float().tolist() == [1.5, 1.0]

    def test_add_saturates(self):
        a = FixTensor.from_float([7.0], FIX8)
        b = FixTensor.from_float([7.0], FIX8)
        assert (a + b).to_float()[0] == pytest.approx(FIX8.max_value)

    def test_sub_saturates_negative(self):
        a = FixTensor.from_float([-7.0], FIX8)
        b = FixTensor.from_float([7.0], FIX8)
        assert (a - b).to_float()[0] == FIX8.min_value

    def test_mul_rescales(self):
        a = FixTensor.from_float([2.0], FIX8)
        b = FixTensor.from_float([1.5], FIX8)
        assert (a * b).to_float()[0] == pytest.approx(3.0)

    def test_mul_scalar_coercion(self):
        a = FixTensor.from_float([2.0], FIX8)
        assert (a * 2).to_float()[0] == pytest.approx(4.0)

    def test_neg(self):
        a = FixTensor.from_float([1.5, -2.0], FIX8)
        assert (-a).to_float().tolist() == [-1.5, 2.0]

    def test_format_mismatch_rejected(self):
        a = FixTensor.from_float([1.0], FIX8)
        b = FixTensor.from_float([1.0], FIX16)
        with pytest.raises(ValueError):
            __ = a + b

    def test_maximum_minimum(self):
        a = FixTensor.from_float([1.0, -1.0], FIX8)
        assert a.maximum(0.0).to_float().tolist() == [1.0, 0.0]
        assert a.minimum(0.0).to_float().tolist() == [0.0, -1.0]

    def test_equality(self):
        a = FixTensor.from_float([1.0], FIX8)
        b = FixTensor.from_float([1.0], FIX8)
        assert a == b
        assert not (a == FixTensor.from_float([2.0], FIX8))

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(FixTensor.from_float([1.0], FIX8))


class TestReductions:
    def test_sum(self):
        t = FixTensor.from_float([1.0, 2.0, 3.0], FIX8)
        assert t.sum().to_float() == pytest.approx(6.0)

    def test_sum_saturates_once_at_end(self):
        # Intermediate sums exceed the range but the wide accumulator holds.
        t = FixTensor.from_float([7.0, 7.0, -7.0], FIX8)
        assert t.sum().to_float() == pytest.approx(7.0)

    def test_dot_matches_float_for_exact_values(self):
        a = FixTensor.from_float([1.0, 2.0, 0.5], FIX8)
        b = FixTensor.from_float([0.5, 0.25, 2.0], FIX8)
        assert a.dot(b).to_float() == pytest.approx(2.0)

    def test_matvec(self):
        w = FixTensor.from_float([[1.0, 0.0], [0.0, 2.0]], FIX8)
        x = FixTensor.from_float([1.5, 0.5], FIX8)
        assert w.matvec(x).to_float().tolist() == [1.5, 1.0]

    def test_matvec_shape_check(self):
        w = FixTensor.from_float([1.0, 2.0], FIX8)
        x = FixTensor.from_float([1.0, 2.0], FIX8)
        with pytest.raises(ValueError):
            w.matvec(x)

    def test_argmax_argmin(self):
        t = FixTensor.from_float([1.0, 3.0, -2.0], FIX8)
        assert t.argmax() == 1
        assert t.argmin() == 2

    def test_max_min(self):
        t = FixTensor.from_float([1.0, 3.0, -2.0], FIX8)
        assert t.max().to_float() == pytest.approx(3.0)
        assert t.min().to_float() == pytest.approx(-2.0)


class TestProperties:
    @given(vectors8, vectors8)
    def test_add_commutes(self, xs, ys):
        n = min(len(xs), len(ys))
        a = FixTensor.from_float(xs[:n], FIX8)
        b = FixTensor.from_float(ys[:n], FIX8)
        assert (a + b) == (b + a)

    @given(vectors8)
    def test_results_always_in_range(self, xs):
        a = FixTensor.from_float(xs, FIX8)
        for result in (a + a, a * a, a.sum(), -a):
            out = np.atleast_1d(result.to_float())
            assert np.all(out <= FIX8.max_value)
            assert np.all(out >= FIX8.min_value)

    @given(vectors8)
    def test_dot_error_vs_float_bounded(self, xs):
        """Fixed-point dot differs from float dot by bounded rounding error."""
        a = FixTensor.from_float(xs, FIX8)
        exact = float(np.dot(a.to_float(), a.to_float()))
        got = float(a.dot(a).to_float())
        if abs(exact) < FIX8.max_value:  # ignore saturated cases
            # Error sources: one rounding shift (1/2 ulp per product pair).
            bound = FIX8.resolution * (len(xs) / 2 + 1)
            assert abs(got - exact) <= bound

    @given(vectors8)
    def test_sum_matches_float_when_unsaturated(self, xs):
        a = FixTensor.from_float(xs, FIX8)
        exact = float(np.sum(a.to_float()))
        if abs(exact) < FIX8.max_value:
            assert float(a.sum().to_float()) == pytest.approx(exact)
