"""Tests for ``repro.analysis``: trigger + clean fixtures per check.

Every check in the catalog gets (a) a fixture that provokes exactly that
finding and (b) a clean variant the check stays silent on.  A property
test closes the loop: random verifier-clean graphs execute through both
interpreter paths without error, while seeded defect classes are caught
statically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CHECKS,
    Severity,
    lint_source,
    verify_fabric,
    verify_graph,
    worst_severity,
)
from repro.core import TaurusConfig
from repro.fixpoint import FIX8
from repro.mapreduce import DataflowGraph

CFG = TaurusConfig()


def _ids(diags):
    return {d.check_id for d in diags}


def _verify(graph, **kwargs):
    kwargs.setdefault("config", CFG)
    return verify_graph(graph, **kwargs)


def _rt(x):
    return FIX8.roundtrip(x)


def _chain_graph(width=4, name="g"):
    """input -> map(roundtrip) -> output: the minimal clean graph."""
    g = DataflowGraph(name=name)
    inp = g.add("input", name="x", width=width)
    m = g.add("map", preds=[inp], name="m", width=width, chain_ops=1,
              fn=_rt, batch_fn=_rt)
    g.add("output", preds=[m], name="y", width=width)
    return g


def _stateful(key):
    """A state-writing fn whose key is a bytecode literal.

    The verifier recovers state keys from ``LOAD_CONST`` + ``STORE_SUBSCR``
    pairs, so the key must be a literal in the code object — a closure
    variable would be invisible to the scan (by design: it is not a
    statically known key).
    """
    ns = {}
    exec(  # noqa: S102 - building a fixture, key is a test literal
        "def fn(x, state=None):\n"
        f"    state[{key!r}] = x\n"
        "    return x\n",
        ns,
    )
    fn = ns["fn"]
    fn.wants_state = True
    return fn


def _heavy_graph(weight_values):
    """input -> dot(const weights) -> output, with a sized weight bank."""
    g = DataflowGraph(name="heavy")
    inp = g.add("input", name="x", width=4)
    bank = g.add("const", name="w", weight_values=weight_values)
    d = g.add("dot", preds=[inp, bank], name="d", parallel=1, width=4,
              chain_ops=1, reduce_op="sum",
              fn=lambda x: np.sum(x, axis=-1, keepdims=True),
              batch_fn=lambda x: np.sum(x, axis=-1, keepdims=True))
    g.add("output", preds=[d], name="y", width=1)
    return g


class TestCatalog:
    def test_every_check_has_spec(self):
        for check_id, spec in CHECKS.items():
            assert spec.check_id == check_id
            assert spec.category in (
                "shape", "structure", "budget", "fabric", "fork-safety"
            )
            assert spec.summary

    def test_catalog_spans_required_categories(self):
        assert len(CHECKS) >= 8
        categories = {spec.category for spec in CHECKS.values()}
        assert {"shape", "structure", "budget", "fork-safety"} <= categories

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert str(Severity.WARNING) == "warning"

    def test_worst_severity(self):
        assert worst_severity([]) is None
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = lambda x: np.asarray(x) + 1e-4
        assert worst_severity(_verify(g)) == Severity.WARNING

    def test_diagnostic_format_has_provenance(self):
        g = _chain_graph(name="fmt")
        g.nodes[1].fn = g.nodes[1].batch_fn = None
        diag = next(
            d for d in _verify(g, probe=False)
            if d.check_id == "ir-no-semantics"
        )
        text = diag.format()
        assert "fmt" in text and "[ir-no-semantics]" in text
        assert "error" in text


class TestCleanGraph:
    def test_chain_graph_is_clean(self):
        assert _verify(_chain_graph()) == []

    def test_suppress_drops_findings(self):
        g = _chain_graph()
        g.add("map", preds=[g.nodes[1]], name="dead", width=4, chain_ops=1,
              fn=_rt, batch_fn=_rt)
        assert "ir-dead-node" in _ids(_verify(g))
        assert "ir-dead-node" not in _ids(
            _verify(g, suppress={"ir-dead-node"})
        )


class TestStructureChecks:
    def test_cycle_trigger(self):
        g = _chain_graph()
        g.nodes[1].preds.append(2)  # map also consumes the output
        assert _ids(_verify(g)) == {"ir-cycle"}  # everything else skipped

    def test_malformed_io_input_with_preds(self):
        g = _chain_graph()
        extra = g.add("input", name="x2", width=4)
        extra.preds.append(0)
        assert "ir-malformed-io" in _ids(_verify(g, probe=False))

    def test_malformed_io_dangling_pred(self):
        g = _chain_graph()
        g.nodes[1].preds.append(99)
        assert "ir-malformed-io" in _ids(_verify(g))

    def test_malformed_io_output_feeds_onward(self):
        g = _chain_graph()
        g.add("map", preds=[g.nodes[2]], name="after", width=4,
              chain_ops=1, fn=_rt, batch_fn=_rt)
        assert "ir-malformed-io" in _ids(_verify(g))

    def test_no_output_trigger(self):
        g = DataflowGraph(name="g")
        g.add("input", name="x", width=4)
        assert "ir-no-output" in _ids(_verify(g))

    def test_multi_output_trigger(self):
        g = _chain_graph()
        g.add("output", preds=[g.nodes[1]], name="y2", width=4)
        diags = _verify(g)
        assert "ir-multi-output" in _ids(diags)
        assert worst_severity(diags) == Severity.WARNING

    def test_orphan_trigger(self):
        g = _chain_graph()
        g.nodes[1].preds.clear()
        assert "ir-orphan" in _ids(_verify(g))

    def test_unreachable_trigger(self):
        g = _chain_graph()
        bank = g.add("const", name="w", weight_values=4)
        fromconst = g.add("map", preds=[bank], name="c2", width=4,
                          chain_ops=1, fn=_rt, batch_fn=_rt)
        g.nodes[2].preds.append(fromconst.node_id)
        assert "ir-unreachable" in _ids(_verify(g, probe=False))

    def test_dead_node_trigger(self):
        g = _chain_graph()
        g.add("map", preds=[g.nodes[0]], name="dead", width=4, chain_ops=1,
              fn=_rt, batch_fn=_rt)
        assert "ir-dead-node" in _ids(_verify(g))

    def test_const_is_neither_unreachable_nor_dead(self):
        assert _verify(_heavy_graph(weight_values=4)) == []

    def test_state_collision_trigger(self):
        g = DataflowGraph(name="g", temporal_iterations=2)
        inp = g.add("input", name="x", width=4)
        fa, fb = _stateful("h"), _stateful("h")
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=fa, batch_fn=fa)
        b = g.add("map", preds=[a], name="b", width=4, chain_ops=1,
                  fn=fb, batch_fn=fb)
        g.add("output", preds=[b], name="y", width=4)
        assert "ir-state-collision" in _ids(_verify(g, probe=False))

    def test_reserved_state_key_trigger(self):
        g = DataflowGraph(name="g", temporal_iterations=2)
        inp = g.add("input", name="x", width=4)
        fn = _stateful("iteration")
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=fn, batch_fn=fn)
        g.add("output", preds=[a], name="y", width=4)
        assert "ir-state-collision" in _ids(_verify(g, probe=False))

    def test_distinct_state_keys_clean(self):
        g = DataflowGraph(name="g", temporal_iterations=2)
        inp = g.add("input", name="x", width=4)
        fa, fb = _stateful("h"), _stateful("c")
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=fa, batch_fn=fa)
        b = g.add("map", preds=[a], name="b", width=4, chain_ops=1,
                  fn=fb, batch_fn=fb)
        g.add("output", preds=[b], name="y", width=4)
        assert "ir-state-collision" not in _ids(_verify(g, probe=False))

    def test_epilogue_order_trigger(self):
        g = _chain_graph()
        g.temporal_iterations = 2
        g.nodes[1].epilogue = True  # map is epilogue, its consumer is not
        assert "ir-epilogue-order" in _ids(_verify(g, probe=False))

    def test_epilogue_io_trigger(self):
        g = _chain_graph()
        g.temporal_iterations = 2
        for nid in (0, 1, 2):
            g.nodes[nid].epilogue = True
        assert "ir-epilogue-io" in _ids(_verify(g, probe=False))

    def test_epilogue_inert_trigger(self):
        g = _chain_graph()
        for nid in (1, 2):
            g.nodes[nid].epilogue = True
        diags = _verify(g, probe=False)
        inert = [d for d in diags if d.check_id == "ir-epilogue-inert"]
        assert inert and all(d.severity == Severity.INFO for d in inert)

    def test_temporal_no_state_trigger(self):
        g = _chain_graph()
        g.temporal_iterations = 3
        assert "ir-temporal-no-state" in _ids(_verify(g, probe=False))

    def test_lstm_epilogue_and_state_clean(self):
        """The LSTM exercises epilogue + temporal + state — all clean."""
        from repro.mapreduce import lstm_graph
        from repro.ml import indigo_lstm

        diags = _verify(lstm_graph(indigo_lstm(seed=0)))
        assert worst_severity(diags) in (None, Severity.INFO)


class TestShapeChecks:
    def test_width_mismatch_dot_trigger(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        d = g.add("dot", preds=[inp], name="d", parallel=1, width=8,
                  chain_ops=1, reduce_op="sum",
                  fn=lambda x: np.sum(x, axis=-1, keepdims=True),
                  batch_fn=lambda x: np.sum(x, axis=-1, keepdims=True))
        g.add("output", preds=[d], name="y", width=1)
        assert "ir-width-mismatch" in _ids(_verify(g, probe=False))

    def test_width_mismatch_output_trigger(self):
        g = _chain_graph()
        g.nodes[2].width = 2  # output claims 2, map produces 4
        assert "ir-width-mismatch" in _ids(_verify(g, probe=False))

    def test_width_mismatch_reduce_trigger(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        r = g.add("reduce", preds=[inp], name="r", width=7, reduce_op="sum")
        g.add("output", preds=[r], name="y", width=1)
        assert "ir-width-mismatch" in _ids(_verify(g, probe=False))

    def test_gather_width_trigger(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=_rt, batch_fn=_rt)
        b = g.add("map", preds=[inp], name="b", width=4, chain_ops=1,
                  fn=_rt, batch_fn=_rt)
        gt = g.add("gather", preds=[a, b], name="gt", width=5)  # != 8
        g.add("output", preds=[gt], name="y", width=5)
        assert "ir-gather-width" in _ids(_verify(g, probe=False))

    def test_gather_width_clean(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=_rt, batch_fn=_rt)
        b = g.add("map", preds=[inp], name="b", width=4, chain_ops=1,
                  fn=_rt, batch_fn=_rt)
        gt = g.add("gather", preds=[a, b], name="gt", width=8)
        g.add("output", preds=[gt], name="y", width=8)
        assert _verify(g) == []

    def test_map_may_slice_its_input(self):
        """conv-style window extraction: width-4 input, width-2 map."""
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        m = g.add("map", preds=[inp], name="w", width=2, chain_ops=1,
                  fn=lambda x: np.asarray(x)[..., :2],
                  batch_fn=lambda x: np.asarray(x)[..., :2])
        g.add("output", preds=[m], name="y", width=2)
        assert _verify(g) == []

    def test_no_semantics_trigger(self):
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = None
        assert "ir-no-semantics" in _ids(_verify(g, probe=False))

    def test_reduce_op_counts_as_semantics(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        r = g.add("reduce", preds=[inp], name="r", width=4, reduce_op="sum")
        g.add("output", preds=[r], name="y", width=1)
        assert "ir-no-semantics" not in _ids(_verify(g))

    def test_unknown_reduce_op_has_no_semantics(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        r = g.add("reduce", preds=[inp], name="r", width=4,
                  reduce_op="median")
        g.add("output", preds=[r], name="y", width=1)
        assert "ir-no-semantics" in _ids(_verify(g, probe=False))


class TestProbeChecks:
    def test_non_2d_trigger(self):
        g = _chain_graph()
        g.nodes[1].fn = lambda x: np.asarray(x)
        g.nodes[1].batch_fn = lambda x: np.asarray(x)[:, :, None]  # 3-D
        assert "ir-non-2d" in _ids(_verify(g))

    def test_probe_width_trigger(self):
        g = _chain_graph()
        g.nodes[1].fn = lambda x: np.asarray(x)[..., :2]
        g.nodes[1].batch_fn = lambda x: np.asarray(x)[..., :2]
        assert "ir-probe-width" in _ids(_verify(g))  # declares 4, emits 2

    def test_batch_divergence_trigger(self):
        g = _chain_graph()
        g.nodes[1].batch_fn = lambda x: _rt(x) + 0.0625  # one LSB off
        assert "ir-batch-divergence" in _ids(_verify(g))

    def test_fixpoint_drift_trigger(self):
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = lambda x: np.asarray(x) + 1e-4
        diags = _verify(g)
        assert "ir-fixpoint-drift" in _ids(diags)
        assert worst_severity(diags) == Severity.WARNING

    def test_probe_failure_trigger(self):
        def boom(x):
            raise RuntimeError("kaput")

        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = boom
        assert "ir-probe-failure" in _ids(_verify(g))

    def test_probe_skipped_on_structural_errors(self):
        def boom(x):
            raise RuntimeError("kaput")

        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = boom
        g.nodes[1].preds.append(99)  # structural error disables the probe
        assert "ir-probe-failure" not in _ids(_verify(g))

    def test_probe_flag_disables(self):
        def boom(x):
            raise RuntimeError("kaput")

        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = boom
        assert "ir-probe-failure" not in _ids(_verify(g, probe=False))


class TestBudgetChecks:
    def test_mu_overflow_trigger(self):
        diags = _verify(_heavy_graph(16384 * (CFG.n_mus + 10)), probe=False)
        assert "budget-mu-overflow" in _ids(diags)
        assert worst_severity(diags) == Severity.ERROR

    def test_mu_within_budget_clean(self):
        diags = _verify(_heavy_graph(16384 * 2), probe=False)
        assert "budget-mu-overflow" not in _ids(diags)

    def test_cu_fold_and_line_rate_trigger(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        m = g.add("map", preds=[inp], name="wide", width=4, chain_ops=1,
                  parallel=4 * CFG.n_cus, fn=_rt, batch_fn=_rt)
        g.add("output", preds=[m], name="y", width=4)
        diags = _verify(g, probe=False)
        assert {"budget-cu-fold", "budget-line-rate"} <= _ids(diags)
        assert worst_severity(diags) == Severity.INFO  # advisory only

    def test_config_stream_trigger(self):
        assert "budget-config-stream" in _ids(
            _verify(_heavy_graph(70_000), probe=False)
        )

    def test_budgets_skipped_without_config(self):
        diags = verify_graph(
            _heavy_graph(16384 * (CFG.n_mus + 10)), probe=False
        )
        assert not any(d.check_id.startswith("budget-") for d in diags)


class _App:
    """Duck-typed FabricApp stand-in (name + graph is the contract)."""

    def __init__(self, name, graph):
        self.name = name
        self.graph = graph


class TestFabricChecks:
    def test_duplicate_app_trigger(self):
        apps = [_App("a", _chain_graph()), _App("a", _chain_graph())]
        assert "fabric-duplicate-app" in _ids(verify_fabric(apps))

    def test_distinct_apps_clean(self):
        apps = [_App("a", _chain_graph()), _App("b", _chain_graph())]
        assert verify_fabric(apps, config=CFG) == []

    def test_state_overlap_trigger(self):
        def build():
            g = DataflowGraph(name="g", temporal_iterations=2)
            inp = g.add("input", name="x", width=4)
            fn = _stateful("h")
            m = g.add("map", preds=[inp], name="m", width=4, chain_ops=1,
                      fn=fn, batch_fn=fn)
            g.add("output", preds=[m], name="y", width=4)
            return g

        diags = verify_fabric([_App("a", build()), _App("b", build())])
        overlap = [d for d in diags if d.check_id == "fabric-state-overlap"]
        assert overlap and all(d.severity == Severity.INFO for d in overlap)

    def test_mu_residency_trigger(self):
        per_app = 16384 * (CFG.n_mus // 2 + 3)  # 2 apps -> over budget
        apps = [
            _App("a", _heavy_graph(per_app)),
            _App("b", _heavy_graph(per_app)),
        ]
        assert "fabric-mu-residency" in _ids(verify_fabric(apps, config=CFG))


FORK_CLEAN = '''
import os
import sys


def spawn():
    read_fd, write_fd = os.pipe()
    sys.stdout.flush()
    sys.stderr.flush()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        with os.fdopen(write_fd, "wb") as sink:
            sink.write(b"x")
        os._exit(0)
    os.close(write_fd)
    return os.fdopen(read_fd, "rb")


def close(self):
    self._thread.join(timeout=5.0)
'''


class TestForkLint:
    def test_clean_source(self):
        assert lint_source(FORK_CLEAN, "clean.py") == []

    def test_fork_flush_trigger(self):
        src = "import os\ndef f():\n    pid = os.fork()\n    os._exit(0)\n"
        assert "rt-fork-flush" in _ids(lint_source(src))

    def test_fork_child_exit_trigger(self):
        src = (
            "import os, sys\n"
            "def f():\n"
            "    sys.stdout.flush()\n"
            "    pid = os.fork()\n"
        )
        assert "rt-fork-child-exit" in _ids(lint_source(src))

    def test_pipe_ownership_trigger(self):
        src = (
            "import os, sys\n"
            "def f():\n"
            "    r, w = os.pipe()\n"
            "    sys.stdout.flush()\n"
            "    pid = os.fork()\n"
            "    os._exit(0)\n"
        )
        assert "rt-pipe-ownership" in _ids(lint_source(src))

    def test_pipe_fdopen_counts_as_ownership(self):
        src = (
            "import os\n"
            "def f():\n"
            "    r, w = os.pipe()\n"
            "    os.close(w)\n"
            "    return os.fdopen(r, 'rb')\n"
        )
        assert lint_source(src) == []

    def test_unbounded_close_join_trigger(self):
        src = "def close(self):\n    self._t.join()\n"
        diags = lint_source(src)
        assert _ids(diags) == {"rt-unbounded-close-join"}
        assert diags[0].severity == Severity.WARNING

    def test_bounded_join_clean(self):
        src = "def close(self):\n    self._t.join(timeout=1.0)\n"
        assert lint_source(src) == []

    def test_join_outside_close_path_flagged(self):
        # An untimed join outside a close path can park a supervision
        # loop forever on a stuck worker; it must be bounded.
        src = "def collect(self):\n    self._t.join()\n"
        diags = lint_source(src)
        assert _ids(diags) == {"rt-unbounded-recv"}
        assert diags[0].severity == Severity.WARNING

    def test_bounded_join_outside_close_path_clean(self):
        src = "def collect(self):\n    self._t.join(1.0)\n"
        assert lint_source(src) == []

    def test_unbounded_recv_trigger(self):
        src = "def collect(self):\n    return self.worker.recv()\n"
        assert _ids(lint_source(src)) == {"rt-unbounded-recv"}

    def test_unbounded_recv_flagged_even_on_close_path(self):
        # recv() has no close-path exemption: a dead worker never
        # answers, whatever phase the caller is in.
        src = "def close(self):\n    return self.worker.recv()\n"
        assert "rt-unbounded-recv" in _ids(lint_source(src))

    def test_bounded_recv_clean(self):
        src = "def collect(self):\n    return self.worker.recv(30.0)\n"
        assert lint_source(src) == []

    def test_recv_keyword_timeout_clean(self):
        src = (
            "def collect(self):\n"
            "    return self.worker.recv(hang_timeout=30.0)\n"
        )
        assert lint_source(src) == []

    def test_string_join_not_flagged(self):
        src = "def close(self):\n    return ', '.join(['a'])\n"
        assert lint_source(src) == []

    def test_fork_under_lock_with_trigger(self):
        src = (
            "import os, sys\n"
            "def f(lock):\n"
            "    sys.stdout.flush()\n"
            "    with lock:\n"
            "        pid = os.fork()\n"
            "    os._exit(0)\n"
        )
        assert "rt-fork-under-lock" in _ids(lint_source(src))

    def test_fork_under_acquire_trigger(self):
        src = (
            "import os, sys\n"
            "def f(mutex):\n"
            "    sys.stdout.flush()\n"
            "    mutex.acquire()\n"
            "    pid = os.fork()\n"
            "    os._exit(0)\n"
        )
        assert "rt-fork-under-lock" in _ids(lint_source(src))

    def test_noqa_listed_suppression(self):
        src = (
            "import os, sys\n"
            "def f():\n"
            "    r, w = os.pipe()  # noqa: rt-pipe-ownership\n"
            "    sys.stdout.flush()\n"
            "    pid = os.fork()\n"
            "    os._exit(0)\n"
        )
        assert "rt-pipe-ownership" not in _ids(lint_source(src))

    def test_noqa_bare_suppresses_all(self):
        src = "def close(self):\n    self._t.join()  # noqa\n"
        assert lint_source(src) == []

    def test_noqa_other_id_does_not_suppress(self):
        src = "def close(self):\n    self._t.join()  # noqa: rt-fork-flush\n"
        assert "rt-unbounded-close-join" in _ids(lint_source(src))

    def test_import_alias_resolution(self):
        src = (
            "import os as posix\n"
            "def f():\n"
            "    pid = posix.fork()\n"
            "    posix._exit(0)\n"
        )
        assert "rt-fork-flush" in _ids(lint_source(src))

    def test_nested_function_linted_separately(self):
        # The outer function neither forks nor joins; the nested one forks
        # cleanly except for the missing flush.
        src = (
            "import os\n"
            "def outer():\n"
            "    def inner():\n"
            "        pid = os.fork()\n"
            "        os._exit(0)\n"
            "    return inner\n"
        )
        diags = lint_source(src)
        assert _ids(diags) == {"rt-fork-flush"}

    def test_runtime_sources_are_clean(self):
        from pathlib import Path

        import repro.runtime
        from repro.analysis import lint_paths

        runtime_dir = Path(repro.runtime.__file__).parent
        assert lint_paths([runtime_dir]) == []


class TestCLI:
    """``python -m repro.analysis`` in paths mode (the shipped-graph
    battery is exercised by the CI lint job itself, not re-trained here)."""

    def _write(self, tmp_path, source):
        target = tmp_path / "snippet.py"
        target.write_text(source, encoding="utf-8")
        return str(target)

    def test_clean_paths_exit_zero(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        assert main([self._write(tmp_path, FORK_CLEAN)]) == 0

    def test_findings_exit_one_and_print(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        src = "import os\ndef f():\n    pid = os.fork()\n    os._exit(0)\n"
        assert main([self._write(tmp_path, src)]) == 1
        out = capsys.readouterr().out
        assert "[rt-fork-flush]" in out
        assert "snippet.py:3" in out

    def test_suppress_flag(self, tmp_path):
        from repro.analysis.__main__ import main

        src = "import os\ndef f():\n    pid = os.fork()\n    os._exit(0)\n"
        path = self._write(tmp_path, src)
        assert main([path, "--suppress", "rt-fork-flush"]) == 0

    def test_unknown_suppress_rejected(self, tmp_path):
        from repro.analysis.__main__ import main

        with pytest.raises(SystemExit):
            main(["--suppress", "not-a-check"])

    def test_list_checks(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        for check_id in CHECKS:
            assert check_id in out


class TestShippedGraphsClean:
    """The CI gate's contract: zero warning+ findings on shipped graphs."""

    def test_dnn_graph_clean(self, quantized_dnn):
        from repro.mapreduce import dnn_graph

        assert worst_severity(_verify(dnn_graph(quantized_dnn))) in (
            None, Severity.INFO,
        )

    def test_svm_graph_clean(self, trained_svm):
        from repro.mapreduce import svm_graph

        diags = _verify(svm_graph(trained_svm))
        assert "ir-fixpoint-drift" not in _ids(diags)  # bias is on-grid
        assert worst_severity(diags) in (None, Severity.INFO)

    def test_kmeans_graph_clean(self, trained_kmeans):
        from repro.mapreduce import kmeans_graph

        assert worst_severity(_verify(kmeans_graph(trained_kmeans))) in (
            None, Severity.INFO,
        )

    def test_microbench_graphs_clean(self):
        from repro.mapreduce import (
            activation_graph,
            conv1d_graph,
            inner_product_graph,
        )

        for g in (
            inner_product_graph(16),
            activation_graph("tanh_pw"),
            activation_graph("act_lut"),
            conv1d_graph(unroll=8),
        ):
            assert worst_severity(_verify(g)) in (None, Severity.INFO), g.name


class TestFrontendIntegration:
    def test_lowering_rejects_invalid_graph(self):
        from repro.mapreduce.frontend import _verified

        g = DataflowGraph(name="bad")
        g.add("input", name="x", width=4)  # no output node
        with pytest.raises(ValueError, match="ir-no-output"):
            _verified(g)

    def test_lowering_passes_valid_graph(self):
        from repro.mapreduce.frontend import _verified

        g = _chain_graph()
        assert _verified(g) is g


# ----------------------------------------------------------------------
# Property test: clean random graphs execute; seeded defects are caught.
# ----------------------------------------------------------------------
_OPS = st.lists(
    st.sampled_from(["map", "dot", "reduce", "gather"]),
    min_size=0, max_size=5,
)


def _random_graph(width, ops):
    """A random layered chain, clean by construction.

    Always starts with one map node so defect seeding has a guaranteed
    victim whose kind carries fn/batch_fn semantics.
    """
    g = DataflowGraph(name="random")
    cursor = g.add("input", name="x", width=width)
    cur_width = width
    for i, op in enumerate(["map"] + ops):
        if cur_width == 1 and op in ("reduce", "dot"):
            op = "map"
        if op == "map":
            cursor = g.add("map", preds=[cursor], name=f"m{i}",
                           width=cur_width, chain_ops=1, fn=_rt, batch_fn=_rt)
        elif op == "dot":
            def dot_fn(x):
                return _rt(np.sum(x, axis=-1, keepdims=True))

            cursor = g.add("dot", preds=[cursor], name=f"d{i}", parallel=1,
                           width=cur_width, chain_ops=1, reduce_op="sum",
                           fn=dot_fn, batch_fn=dot_fn)
            cur_width = 1
        elif op == "reduce":
            cursor = g.add("reduce", preds=[cursor], name=f"r{i}",
                           width=cur_width, reduce_op="max")
            cur_width = 1
        elif op == "gather":
            cursor = g.add("gather", preds=[cursor], name=f"g{i}",
                           width=cur_width)
    g.add("output", preds=[cursor], name="y", width=cur_width)
    return g


class TestPropertyCleanGraphsExecute:
    @settings(max_examples=40, deadline=None)
    @given(width=st.integers(2, 8), ops=_OPS, seed=st.integers(0, 2**16))
    def test_verifier_clean_graphs_execute(self, width, ops, seed):
        g = _random_graph(width, ops)
        assert _verify(g) == []  # clean by construction

        rng = np.random.default_rng(seed)
        features = FIX8.roundtrip(rng.uniform(-2, 2, size=(4, width)))
        batch = g.execute_batch(features)
        assert batch.shape == (4, g.outputs()[0].width)
        for b in range(4):
            scalar = np.atleast_1d(g.execute(features[b]))
            assert np.array_equal(scalar, batch[b])

    @settings(max_examples=25, deadline=None)
    @given(
        width=st.integers(2, 8),
        ops=_OPS,
        defect=st.sampled_from(
            ["gather-width", "no-semantics", "dead-node", "no-output",
             "dangling-pred", "drift"]
        ),
    )
    def test_seeded_defects_are_caught(self, width, ops, defect):
        g = _random_graph(width, ops)
        victim = next(n for n in g.nodes.values() if n.kind == "map")
        out = g.outputs()[0]
        expected = {
            "gather-width": "ir-gather-width",
            "no-semantics": "ir-no-semantics",
            "dead-node": "ir-dead-node",
            "no-output": "ir-no-output",
            "dangling-pred": "ir-malformed-io",
            "drift": "ir-fixpoint-drift",
        }[defect]

        if defect == "gather-width":
            gt = g.add("gather", preds=[victim], name="badg",
                       width=victim.width + 3)
            out.preds, out.width = [gt.node_id], gt.width
        elif defect == "no-semantics":
            victim.fn = victim.batch_fn = None
        elif defect == "dead-node":
            g.add("map", preds=[victim], name="deadm", width=victim.width,
                  chain_ops=1, fn=_rt, batch_fn=_rt)
        elif defect == "no-output":
            del g.nodes[out.node_id]
        elif defect == "dangling-pred":
            victim.preds.append(4096)
        elif defect == "drift":
            # Seed at the *last* hop: a downstream roundtrip would erase
            # off-grid leakage before it reaches the output.
            bad = lambda x: np.asarray(x) * 0 + 1e-4  # noqa: E731
            m = g.add("map", preds=[g.nodes[out.preds[0]]], name="driftm",
                      width=out.width, chain_ops=1, fn=bad, batch_fn=bad)
            out.preds = [m.node_id]

        assert expected in _ids(_verify(g)), defect
