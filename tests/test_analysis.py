"""Tests for ``repro.analysis``: trigger + clean fixtures per check.

Every check in the catalog gets (a) a fixture that provokes exactly that
finding and (b) a clean variant the check stays silent on.  A property
test closes the loop: random verifier-clean graphs execute through both
interpreter paths without error, while seeded defect classes are caught
statically.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CHECKS,
    TOP,
    Interval,
    Severity,
    analyze_effects,
    analyze_ranges,
    lint_source,
    verify_fabric,
    verify_graph,
    worst_severity,
)
from repro.core import TaurusConfig
from repro.fixpoint import FIX8, FIX16, FIX32
from repro.mapreduce import DataflowGraph

CFG = TaurusConfig()


def _ids(diags):
    return {d.check_id for d in diags}


def _verify(graph, **kwargs):
    kwargs.setdefault("config", CFG)
    return verify_graph(graph, **kwargs)


def _rt(x):
    return FIX8.roundtrip(x)


def _chain_graph(width=4, name="g"):
    """input -> map(roundtrip) -> output: the minimal clean graph."""
    g = DataflowGraph(name=name)
    inp = g.add("input", name="x", width=width)
    m = g.add("map", preds=[inp], name="m", width=width, chain_ops=1,
              fn=_rt, batch_fn=_rt)
    g.add("output", preds=[m], name="y", width=width)
    return g


def _stateful(key):
    """A state-writing fn whose key is a bytecode literal.

    The verifier recovers state keys from ``LOAD_CONST`` + ``STORE_SUBSCR``
    pairs, so the key must be a literal in the code object — a closure
    variable would be invisible to the scan (by design: it is not a
    statically known key).
    """
    ns = {}
    exec(  # noqa: S102 - building a fixture, key is a test literal
        "def fn(x, state=None):\n"
        f"    state[{key!r}] = x\n"
        "    return x\n",
        ns,
    )
    fn = ns["fn"]
    fn.wants_state = True
    return fn


def _heavy_graph(weight_values):
    """input -> dot(const weights) -> output, with a sized weight bank."""
    g = DataflowGraph(name="heavy")
    inp = g.add("input", name="x", width=4)
    bank = g.add("const", name="w", weight_values=weight_values)
    d = g.add("dot", preds=[inp, bank], name="d", parallel=1, width=4,
              chain_ops=1, reduce_op="sum",
              fn=lambda x: np.sum(x, axis=-1, keepdims=True),
              batch_fn=lambda x: np.sum(x, axis=-1, keepdims=True))
    g.add("output", preds=[d], name="y", width=1)
    return g


class TestCatalog:
    def test_every_check_has_spec(self):
        for check_id, spec in CHECKS.items():
            assert spec.check_id == check_id
            assert spec.category in (
                "shape", "structure", "budget", "fabric", "fork-safety",
                "range", "concurrency",
            )
            assert spec.summary

    def test_catalog_spans_required_categories(self):
        assert len(CHECKS) >= 8
        categories = {spec.category for spec in CHECKS.values()}
        assert {
            "shape", "structure", "budget", "fork-safety", "range",
            "concurrency",
        } <= categories

    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert str(Severity.WARNING) == "warning"

    def test_worst_severity(self):
        assert worst_severity([]) is None
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = lambda x: np.asarray(x) + 1e-4
        assert worst_severity(_verify(g)) == Severity.WARNING

    def test_diagnostic_format_has_provenance(self):
        g = _chain_graph(name="fmt")
        g.nodes[1].fn = g.nodes[1].batch_fn = None
        diag = next(
            d for d in _verify(g, probe=False)
            if d.check_id == "ir-no-semantics"
        )
        text = diag.format()
        assert "fmt" in text and "[ir-no-semantics]" in text
        assert "error" in text


class TestCleanGraph:
    def test_chain_graph_is_clean(self):
        assert _verify(_chain_graph()) == []

    def test_suppress_drops_findings(self):
        g = _chain_graph()
        g.add("map", preds=[g.nodes[1]], name="dead", width=4, chain_ops=1,
              fn=_rt, batch_fn=_rt)
        assert "ir-dead-node" in _ids(_verify(g))
        assert "ir-dead-node" not in _ids(
            _verify(g, suppress={"ir-dead-node"})
        )


class TestStructureChecks:
    def test_cycle_trigger(self):
        g = _chain_graph()
        g.nodes[1].preds.append(2)  # map also consumes the output
        assert _ids(_verify(g)) == {"ir-cycle"}  # everything else skipped

    def test_malformed_io_input_with_preds(self):
        g = _chain_graph()
        extra = g.add("input", name="x2", width=4)
        extra.preds.append(0)
        assert "ir-malformed-io" in _ids(_verify(g, probe=False))

    def test_malformed_io_dangling_pred(self):
        g = _chain_graph()
        g.nodes[1].preds.append(99)
        assert "ir-malformed-io" in _ids(_verify(g))

    def test_malformed_io_output_feeds_onward(self):
        g = _chain_graph()
        g.add("map", preds=[g.nodes[2]], name="after", width=4,
              chain_ops=1, fn=_rt, batch_fn=_rt)
        assert "ir-malformed-io" in _ids(_verify(g))

    def test_no_output_trigger(self):
        g = DataflowGraph(name="g")
        g.add("input", name="x", width=4)
        assert "ir-no-output" in _ids(_verify(g))

    def test_multi_output_trigger(self):
        g = _chain_graph()
        g.add("output", preds=[g.nodes[1]], name="y2", width=4)
        diags = _verify(g)
        assert "ir-multi-output" in _ids(diags)
        assert worst_severity(diags) == Severity.WARNING

    def test_orphan_trigger(self):
        g = _chain_graph()
        g.nodes[1].preds.clear()
        assert "ir-orphan" in _ids(_verify(g))

    def test_unreachable_trigger(self):
        g = _chain_graph()
        bank = g.add("const", name="w", weight_values=4)
        fromconst = g.add("map", preds=[bank], name="c2", width=4,
                          chain_ops=1, fn=_rt, batch_fn=_rt)
        g.nodes[2].preds.append(fromconst.node_id)
        assert "ir-unreachable" in _ids(_verify(g, probe=False))

    def test_dead_node_trigger(self):
        g = _chain_graph()
        g.add("map", preds=[g.nodes[0]], name="dead", width=4, chain_ops=1,
              fn=_rt, batch_fn=_rt)
        assert "ir-dead-node" in _ids(_verify(g))

    def test_const_is_neither_unreachable_nor_dead(self):
        assert _verify(_heavy_graph(weight_values=4)) == []

    def test_state_collision_trigger(self):
        g = DataflowGraph(name="g", temporal_iterations=2)
        inp = g.add("input", name="x", width=4)
        fa, fb = _stateful("h"), _stateful("h")
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=fa, batch_fn=fa)
        b = g.add("map", preds=[a], name="b", width=4, chain_ops=1,
                  fn=fb, batch_fn=fb)
        g.add("output", preds=[b], name="y", width=4)
        assert "ir-state-collision" in _ids(_verify(g, probe=False))

    def test_reserved_state_key_trigger(self):
        g = DataflowGraph(name="g", temporal_iterations=2)
        inp = g.add("input", name="x", width=4)
        fn = _stateful("iteration")
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=fn, batch_fn=fn)
        g.add("output", preds=[a], name="y", width=4)
        assert "ir-state-collision" in _ids(_verify(g, probe=False))

    def test_distinct_state_keys_clean(self):
        g = DataflowGraph(name="g", temporal_iterations=2)
        inp = g.add("input", name="x", width=4)
        fa, fb = _stateful("h"), _stateful("c")
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=fa, batch_fn=fa)
        b = g.add("map", preds=[a], name="b", width=4, chain_ops=1,
                  fn=fb, batch_fn=fb)
        g.add("output", preds=[b], name="y", width=4)
        assert "ir-state-collision" not in _ids(_verify(g, probe=False))

    def test_epilogue_order_trigger(self):
        g = _chain_graph()
        g.temporal_iterations = 2
        g.nodes[1].epilogue = True  # map is epilogue, its consumer is not
        assert "ir-epilogue-order" in _ids(_verify(g, probe=False))

    def test_epilogue_io_trigger(self):
        g = _chain_graph()
        g.temporal_iterations = 2
        for nid in (0, 1, 2):
            g.nodes[nid].epilogue = True
        assert "ir-epilogue-io" in _ids(_verify(g, probe=False))

    def test_epilogue_inert_trigger(self):
        g = _chain_graph()
        for nid in (1, 2):
            g.nodes[nid].epilogue = True
        diags = _verify(g, probe=False)
        inert = [d for d in diags if d.check_id == "ir-epilogue-inert"]
        assert inert and all(d.severity == Severity.INFO for d in inert)

    def test_temporal_no_state_trigger(self):
        g = _chain_graph()
        g.temporal_iterations = 3
        assert "ir-temporal-no-state" in _ids(_verify(g, probe=False))

    def test_lstm_epilogue_and_state_clean(self):
        """The LSTM exercises epilogue + temporal + state — all clean."""
        from repro.mapreduce import lstm_graph
        from repro.ml import indigo_lstm

        diags = _verify(lstm_graph(indigo_lstm(seed=0)))
        assert worst_severity(diags) in (None, Severity.INFO)


class TestShapeChecks:
    def test_width_mismatch_dot_trigger(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        d = g.add("dot", preds=[inp], name="d", parallel=1, width=8,
                  chain_ops=1, reduce_op="sum",
                  fn=lambda x: np.sum(x, axis=-1, keepdims=True),
                  batch_fn=lambda x: np.sum(x, axis=-1, keepdims=True))
        g.add("output", preds=[d], name="y", width=1)
        assert "ir-width-mismatch" in _ids(_verify(g, probe=False))

    def test_width_mismatch_output_trigger(self):
        g = _chain_graph()
        g.nodes[2].width = 2  # output claims 2, map produces 4
        assert "ir-width-mismatch" in _ids(_verify(g, probe=False))

    def test_width_mismatch_reduce_trigger(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        r = g.add("reduce", preds=[inp], name="r", width=7, reduce_op="sum")
        g.add("output", preds=[r], name="y", width=1)
        assert "ir-width-mismatch" in _ids(_verify(g, probe=False))

    def test_gather_width_trigger(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=_rt, batch_fn=_rt)
        b = g.add("map", preds=[inp], name="b", width=4, chain_ops=1,
                  fn=_rt, batch_fn=_rt)
        gt = g.add("gather", preds=[a, b], name="gt", width=5)  # != 8
        g.add("output", preds=[gt], name="y", width=5)
        assert "ir-gather-width" in _ids(_verify(g, probe=False))

    def test_gather_width_clean(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        a = g.add("map", preds=[inp], name="a", width=4, chain_ops=1,
                  fn=_rt, batch_fn=_rt)
        b = g.add("map", preds=[inp], name="b", width=4, chain_ops=1,
                  fn=_rt, batch_fn=_rt)
        gt = g.add("gather", preds=[a, b], name="gt", width=8)
        g.add("output", preds=[gt], name="y", width=8)
        assert _verify(g) == []

    def test_map_may_slice_its_input(self):
        """conv-style window extraction: width-4 input, width-2 map."""
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        m = g.add("map", preds=[inp], name="w", width=2, chain_ops=1,
                  fn=lambda x: np.asarray(x)[..., :2],
                  batch_fn=lambda x: np.asarray(x)[..., :2])
        g.add("output", preds=[m], name="y", width=2)
        assert _verify(g) == []

    def test_no_semantics_trigger(self):
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = None
        assert "ir-no-semantics" in _ids(_verify(g, probe=False))

    def test_reduce_op_counts_as_semantics(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        r = g.add("reduce", preds=[inp], name="r", width=4, reduce_op="sum")
        g.add("output", preds=[r], name="y", width=1)
        assert "ir-no-semantics" not in _ids(_verify(g))

    def test_unknown_reduce_op_has_no_semantics(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        r = g.add("reduce", preds=[inp], name="r", width=4,
                  reduce_op="median")
        g.add("output", preds=[r], name="y", width=1)
        assert "ir-no-semantics" in _ids(_verify(g, probe=False))


class TestProbeChecks:
    def test_non_2d_trigger(self):
        g = _chain_graph()
        g.nodes[1].fn = lambda x: np.asarray(x)
        g.nodes[1].batch_fn = lambda x: np.asarray(x)[:, :, None]  # 3-D
        assert "ir-non-2d" in _ids(_verify(g))

    def test_probe_width_trigger(self):
        g = _chain_graph()
        g.nodes[1].fn = lambda x: np.asarray(x)[..., :2]
        g.nodes[1].batch_fn = lambda x: np.asarray(x)[..., :2]
        assert "ir-probe-width" in _ids(_verify(g))  # declares 4, emits 2

    def test_batch_divergence_trigger(self):
        g = _chain_graph()
        g.nodes[1].batch_fn = lambda x: _rt(x) + 0.0625  # one LSB off
        assert "ir-batch-divergence" in _ids(_verify(g))

    def test_fixpoint_drift_trigger(self):
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = lambda x: np.asarray(x) + 1e-4
        diags = _verify(g)
        assert "ir-fixpoint-drift" in _ids(diags)
        assert worst_severity(diags) == Severity.WARNING

    def test_probe_failure_trigger(self):
        def boom(x):
            raise RuntimeError("kaput")

        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = boom
        assert "ir-probe-failure" in _ids(_verify(g))

    def test_probe_skipped_on_structural_errors(self):
        def boom(x):
            raise RuntimeError("kaput")

        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = boom
        g.nodes[1].preds.append(99)  # structural error disables the probe
        assert "ir-probe-failure" not in _ids(_verify(g))

    def test_probe_flag_disables(self):
        def boom(x):
            raise RuntimeError("kaput")

        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = boom
        assert "ir-probe-failure" not in _ids(_verify(g, probe=False))


class TestBudgetChecks:
    def test_mu_overflow_trigger(self):
        diags = _verify(_heavy_graph(16384 * (CFG.n_mus + 10)), probe=False)
        assert "budget-mu-overflow" in _ids(diags)
        assert worst_severity(diags) == Severity.ERROR

    def test_mu_within_budget_clean(self):
        diags = _verify(_heavy_graph(16384 * 2), probe=False)
        assert "budget-mu-overflow" not in _ids(diags)

    def test_cu_fold_and_line_rate_trigger(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=4)
        m = g.add("map", preds=[inp], name="wide", width=4, chain_ops=1,
                  parallel=4 * CFG.n_cus, fn=_rt, batch_fn=_rt)
        g.add("output", preds=[m], name="y", width=4)
        diags = _verify(g, probe=False)
        assert {"budget-cu-fold", "budget-line-rate"} <= _ids(diags)
        assert worst_severity(diags) == Severity.INFO  # advisory only

    def test_config_stream_trigger(self):
        assert "budget-config-stream" in _ids(
            _verify(_heavy_graph(70_000), probe=False)
        )

    def test_budgets_skipped_without_config(self):
        diags = verify_graph(
            _heavy_graph(16384 * (CFG.n_mus + 10)), probe=False
        )
        assert not any(d.check_id.startswith("budget-") for d in diags)


class _App:
    """Duck-typed FabricApp stand-in (name + graph is the contract)."""

    def __init__(self, name, graph):
        self.name = name
        self.graph = graph


class TestFabricChecks:
    def test_duplicate_app_trigger(self):
        apps = [_App("a", _chain_graph()), _App("a", _chain_graph())]
        assert "fabric-duplicate-app" in _ids(verify_fabric(apps))

    def test_distinct_apps_clean(self):
        apps = [_App("a", _chain_graph()), _App("b", _chain_graph())]
        assert verify_fabric(apps, config=CFG) == []

    def test_state_overlap_trigger(self):
        def build():
            g = DataflowGraph(name="g", temporal_iterations=2)
            inp = g.add("input", name="x", width=4)
            fn = _stateful("h")
            m = g.add("map", preds=[inp], name="m", width=4, chain_ops=1,
                      fn=fn, batch_fn=fn)
            g.add("output", preds=[m], name="y", width=4)
            return g

        diags = verify_fabric([_App("a", build()), _App("b", build())])
        overlap = [d for d in diags if d.check_id == "fabric-state-overlap"]
        assert overlap and all(d.severity == Severity.INFO for d in overlap)

    def test_mu_residency_trigger(self):
        per_app = 16384 * (CFG.n_mus // 2 + 3)  # 2 apps -> over budget
        apps = [
            _App("a", _heavy_graph(per_app)),
            _App("b", _heavy_graph(per_app)),
        ]
        assert "fabric-mu-residency" in _ids(verify_fabric(apps, config=CFG))


FORK_CLEAN = '''
import os
import sys


def spawn():
    read_fd, write_fd = os.pipe()
    sys.stdout.flush()
    sys.stderr.flush()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        with os.fdopen(write_fd, "wb") as sink:
            sink.write(b"x")
        os._exit(0)
    os.close(write_fd)
    return os.fdopen(read_fd, "rb")


def close(self):
    self._thread.join(timeout=5.0)
'''


class TestForkLint:
    def test_clean_source(self):
        assert lint_source(FORK_CLEAN, "clean.py") == []

    def test_fork_flush_trigger(self):
        src = "import os\ndef f():\n    pid = os.fork()\n    os._exit(0)\n"
        assert "rt-fork-flush" in _ids(lint_source(src))

    def test_fork_child_exit_trigger(self):
        src = (
            "import os, sys\n"
            "def f():\n"
            "    sys.stdout.flush()\n"
            "    pid = os.fork()\n"
        )
        assert "rt-fork-child-exit" in _ids(lint_source(src))

    def test_pipe_ownership_trigger(self):
        src = (
            "import os, sys\n"
            "def f():\n"
            "    r, w = os.pipe()\n"
            "    sys.stdout.flush()\n"
            "    pid = os.fork()\n"
            "    os._exit(0)\n"
        )
        assert "rt-pipe-ownership" in _ids(lint_source(src))

    def test_pipe_fdopen_counts_as_ownership(self):
        src = (
            "import os\n"
            "def f():\n"
            "    r, w = os.pipe()\n"
            "    os.close(w)\n"
            "    return os.fdopen(r, 'rb')\n"
        )
        assert lint_source(src) == []

    def test_unbounded_close_join_trigger(self):
        src = "def close(self):\n    self._t.join()\n"
        diags = lint_source(src)
        assert _ids(diags) == {"rt-unbounded-close-join"}
        assert diags[0].severity == Severity.WARNING

    def test_bounded_join_clean(self):
        src = "def close(self):\n    self._t.join(timeout=1.0)\n"
        assert lint_source(src) == []

    def test_join_outside_close_path_flagged(self):
        # An untimed join outside a close path can park a supervision
        # loop forever on a stuck worker; it must be bounded.
        src = "def collect(self):\n    self._t.join()\n"
        diags = lint_source(src)
        assert _ids(diags) == {"rt-unbounded-recv"}
        assert diags[0].severity == Severity.WARNING

    def test_bounded_join_outside_close_path_clean(self):
        src = "def collect(self):\n    self._t.join(1.0)\n"
        assert lint_source(src) == []

    def test_unbounded_recv_trigger(self):
        src = "def collect(self):\n    return self.worker.recv()\n"
        assert _ids(lint_source(src)) == {"rt-unbounded-recv"}

    def test_unbounded_recv_flagged_even_on_close_path(self):
        # recv() has no close-path exemption: a dead worker never
        # answers, whatever phase the caller is in.
        src = "def close(self):\n    return self.worker.recv()\n"
        assert "rt-unbounded-recv" in _ids(lint_source(src))

    def test_bounded_recv_clean(self):
        src = "def collect(self):\n    return self.worker.recv(30.0)\n"
        assert lint_source(src) == []

    def test_recv_keyword_timeout_clean(self):
        src = (
            "def collect(self):\n"
            "    return self.worker.recv(hang_timeout=30.0)\n"
        )
        assert lint_source(src) == []

    def test_string_join_not_flagged(self):
        src = "def close(self):\n    return ', '.join(['a'])\n"
        assert lint_source(src) == []

    def test_fork_under_lock_with_trigger(self):
        src = (
            "import os, sys\n"
            "def f(lock):\n"
            "    sys.stdout.flush()\n"
            "    with lock:\n"
            "        pid = os.fork()\n"
            "    os._exit(0)\n"
        )
        assert "rt-fork-under-lock" in _ids(lint_source(src))

    def test_fork_under_acquire_trigger(self):
        src = (
            "import os, sys\n"
            "def f(mutex):\n"
            "    sys.stdout.flush()\n"
            "    mutex.acquire()\n"
            "    pid = os.fork()\n"
            "    os._exit(0)\n"
        )
        assert "rt-fork-under-lock" in _ids(lint_source(src))

    def test_noqa_listed_suppression(self):
        src = (
            "import os, sys\n"
            "def f():\n"
            "    r, w = os.pipe()  # noqa: rt-pipe-ownership\n"
            "    sys.stdout.flush()\n"
            "    pid = os.fork()\n"
            "    os._exit(0)\n"
        )
        assert "rt-pipe-ownership" not in _ids(lint_source(src))

    def test_noqa_bare_suppresses_all(self):
        src = "def close(self):\n    self._t.join()  # noqa\n"
        assert lint_source(src) == []

    def test_noqa_other_id_does_not_suppress(self):
        src = "def close(self):\n    self._t.join()  # noqa: rt-fork-flush\n"
        assert "rt-unbounded-close-join" in _ids(lint_source(src))

    def test_import_alias_resolution(self):
        src = (
            "import os as posix\n"
            "def f():\n"
            "    pid = posix.fork()\n"
            "    posix._exit(0)\n"
        )
        assert "rt-fork-flush" in _ids(lint_source(src))

    def test_nested_function_linted_separately(self):
        # The outer function neither forks nor joins; the nested one forks
        # cleanly except for the missing flush.
        src = (
            "import os\n"
            "def outer():\n"
            "    def inner():\n"
            "        pid = os.fork()\n"
            "        os._exit(0)\n"
            "    return inner\n"
        )
        diags = lint_source(src)
        assert _ids(diags) == {"rt-fork-flush"}

    def test_runtime_sources_are_clean(self):
        from pathlib import Path

        import repro.runtime
        from repro.analysis import lint_paths

        runtime_dir = Path(repro.runtime.__file__).parent
        assert lint_paths([runtime_dir]) == []


class TestLockOrderLint:
    """rt-lock-order: inconsistent lock-acquisition orders across functions."""

    INVERTED = (
        "def f(a_lock, b_lock):\n"
        "    with a_lock:\n"
        "        with b_lock:\n"
        "            pass\n"
        "def g(a_lock, b_lock):\n"
        "    with b_lock:\n"
        "        with a_lock:\n"
        "            pass\n"
    )

    def test_inversion_trigger(self):
        diags = [
            d for d in lint_source(self.INVERTED)
            if d.check_id == "rt-lock-order"
        ]
        assert len(diags) == 1
        # Reported once, at the later of the two orderings, naming both.
        assert diags[0].line == 7
        assert "f()" in diags[0].message and "g()" in diags[0].message

    def test_consistent_order_clean(self):
        src = (
            "def f(a_lock, b_lock):\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
            "def g(a_lock, b_lock):\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            pass\n"
        )
        assert lint_source(src) == []

    def test_multi_item_with_records_order(self):
        # `with a, b:` acquires left to right — inverting it elsewhere
        # is the same deadlock.
        src = (
            "def f(a_lock, b_lock):\n"
            "    with a_lock, b_lock:\n"
            "        pass\n"
            "def g(a_lock, b_lock):\n"
            "    with b_lock:\n"
            "        with a_lock:\n"
            "            pass\n"
        )
        assert "rt-lock-order" in _ids(lint_source(src))

    def test_non_lock_names_ignored(self):
        src = (
            "def f(conn, handle):\n"
            "    with conn:\n"
            "        with handle:\n"
            "            pass\n"
            "def g(conn, handle):\n"
            "    with handle:\n"
            "        with conn:\n"
            "            pass\n"
        )
        assert lint_source(src) == []

    def test_single_lock_never_flagged(self):
        src = (
            "def f(a_lock):\n"
            "    with a_lock:\n"
            "        pass\n"
            "def g(a_lock):\n"
            "    with a_lock:\n"
            "        pass\n"
        )
        assert lint_source(src) == []


class TestCLI:
    """``python -m repro.analysis`` in paths mode (the shipped-graph
    battery is exercised by the CI lint job itself, not re-trained here)."""

    def _write(self, tmp_path, source):
        target = tmp_path / "snippet.py"
        target.write_text(source, encoding="utf-8")
        return str(target)

    def test_clean_paths_exit_zero(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        assert main([self._write(tmp_path, FORK_CLEAN)]) == 0

    def test_findings_exit_one_and_print(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        src = "import os\ndef f():\n    pid = os.fork()\n    os._exit(0)\n"
        assert main([self._write(tmp_path, src)]) == 1
        out = capsys.readouterr().out
        assert "[rt-fork-flush]" in out
        assert "snippet.py:3" in out

    def test_suppress_flag(self, tmp_path):
        from repro.analysis.__main__ import main

        src = "import os\ndef f():\n    pid = os.fork()\n    os._exit(0)\n"
        path = self._write(tmp_path, src)
        assert main([path, "--suppress", "rt-fork-flush"]) == 0

    def test_unknown_suppress_rejected(self, tmp_path):
        from repro.analysis.__main__ import main

        with pytest.raises(SystemExit):
            main(["--suppress", "not-a-check"])

    def test_list_checks(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["--list-checks"]) == 0
        out = capsys.readouterr().out
        for check_id in CHECKS:
            assert check_id in out

    def test_json_findings(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        src = "import os\ndef f():\n    pid = os.fork()\n    os._exit(0)\n"
        assert main([self._write(tmp_path, src), "--format=json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["exit_code"] == 1
        assert doc["summary"]["total"] == len(doc["findings"])
        flush = next(
            f for f in doc["findings"] if f["check_id"] == "rt-fork-flush"
        )
        assert flush["category"] == "fork-safety"
        assert flush["severity"] == "error"
        assert flush["line"] == 3
        assert flush["source"].endswith("snippet.py")

    def test_json_clean_is_empty_report(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        assert main([self._write(tmp_path, FORK_CLEAN), "--format=json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == []
        assert doc["summary"] == {
            "total": 0, "error": 0, "warning": 0, "info": 0, "exit_code": 0,
        }


class TestShippedGraphsClean:
    """The CI gate's contract: zero warning+ findings on shipped graphs."""

    def test_dnn_graph_clean(self, quantized_dnn):
        from repro.mapreduce import dnn_graph

        assert worst_severity(_verify(dnn_graph(quantized_dnn))) in (
            None, Severity.INFO,
        )

    def test_svm_graph_clean(self, trained_svm):
        from repro.mapreduce import svm_graph

        diags = _verify(svm_graph(trained_svm))
        assert "ir-fixpoint-drift" not in _ids(diags)  # bias is on-grid
        assert worst_severity(diags) in (None, Severity.INFO)

    def test_kmeans_graph_clean(self, trained_kmeans):
        from repro.mapreduce import kmeans_graph

        assert worst_severity(_verify(kmeans_graph(trained_kmeans))) in (
            None, Severity.INFO,
        )

    def test_microbench_graphs_clean(self):
        from repro.mapreduce import (
            activation_graph,
            conv1d_graph,
            inner_product_graph,
        )

        for g in (
            inner_product_graph(16),
            activation_graph("tanh_pw"),
            activation_graph("act_lut"),
            conv1d_graph(unroll=8),
        ):
            assert worst_severity(_verify(g)) in (None, Severity.INFO), g.name


class TestFrontendIntegration:
    def test_lowering_rejects_invalid_graph(self):
        from repro.mapreduce.frontend import _verified

        g = DataflowGraph(name="bad")
        g.add("input", name="x", width=4)  # no output node
        with pytest.raises(ValueError, match="ir-no-output"):
            _verified(g)

    def test_lowering_passes_valid_graph(self):
        from repro.mapreduce.frontend import _verified

        g = _chain_graph()
        assert _verified(g) is g


# ----------------------------------------------------------------------
# Property test: clean random graphs execute; seeded defects are caught.
# ----------------------------------------------------------------------
_OPS = st.lists(
    st.sampled_from(["map", "dot", "reduce", "gather"]),
    min_size=0, max_size=5,
)


def _random_graph(width, ops):
    """A random layered chain, clean by construction.

    Always starts with one map node so defect seeding has a guaranteed
    victim whose kind carries fn/batch_fn semantics.
    """
    g = DataflowGraph(name="random")
    cursor = g.add("input", name="x", width=width)
    cur_width = width
    for i, op in enumerate(["map"] + ops):
        if cur_width == 1 and op in ("reduce", "dot"):
            op = "map"
        if op == "map":
            cursor = g.add("map", preds=[cursor], name=f"m{i}",
                           width=cur_width, chain_ops=1, fn=_rt, batch_fn=_rt)
        elif op == "dot":
            def dot_fn(x):
                return _rt(np.sum(x, axis=-1, keepdims=True))

            cursor = g.add("dot", preds=[cursor], name=f"d{i}", parallel=1,
                           width=cur_width, chain_ops=1, reduce_op="sum",
                           fn=dot_fn, batch_fn=dot_fn)
            cur_width = 1
        elif op == "reduce":
            cursor = g.add("reduce", preds=[cursor], name=f"r{i}",
                           width=cur_width, reduce_op="max")
            cur_width = 1
        elif op == "gather":
            cursor = g.add("gather", preds=[cursor], name=f"g{i}",
                           width=cur_width)
    g.add("output", preds=[cursor], name="y", width=cur_width)
    return g


class TestPropertyCleanGraphsExecute:
    @settings(max_examples=40, deadline=None)
    @given(width=st.integers(2, 8), ops=_OPS, seed=st.integers(0, 2**16))
    def test_verifier_clean_graphs_execute(self, width, ops, seed):
        g = _random_graph(width, ops)
        assert _verify(g) == []  # clean by construction

        rng = np.random.default_rng(seed)
        features = FIX8.roundtrip(rng.uniform(-2, 2, size=(4, width)))
        batch = g.execute_batch(features)
        assert batch.shape == (4, g.outputs()[0].width)
        for b in range(4):
            scalar = np.atleast_1d(g.execute(features[b]))
            assert np.array_equal(scalar, batch[b])

    @settings(max_examples=25, deadline=None)
    @given(
        width=st.integers(2, 8),
        ops=_OPS,
        defect=st.sampled_from(
            ["gather-width", "no-semantics", "dead-node", "no-output",
             "dangling-pred", "drift"]
        ),
    )
    def test_seeded_defects_are_caught(self, width, ops, defect):
        g = _random_graph(width, ops)
        victim = next(n for n in g.nodes.values() if n.kind == "map")
        out = g.outputs()[0]
        expected = {
            "gather-width": "ir-gather-width",
            "no-semantics": "ir-no-semantics",
            "dead-node": "ir-dead-node",
            "no-output": "ir-no-output",
            "dangling-pred": "ir-malformed-io",
            "drift": "ir-fixpoint-drift",
        }[defect]

        if defect == "gather-width":
            gt = g.add("gather", preds=[victim], name="badg",
                       width=victim.width + 3)
            out.preds, out.width = [gt.node_id], gt.width
        elif defect == "no-semantics":
            victim.fn = victim.batch_fn = None
        elif defect == "dead-node":
            g.add("map", preds=[victim], name="deadm", width=victim.width,
                  chain_ops=1, fn=_rt, batch_fn=_rt)
        elif defect == "no-output":
            del g.nodes[out.node_id]
        elif defect == "dangling-pred":
            victim.preds.append(4096)
        elif defect == "drift":
            # Seed at the *last* hop: a downstream roundtrip would erase
            # off-grid leakage before it reaches the output.
            bad = lambda x: np.asarray(x) * 0 + 1e-4  # noqa: E731
            m = g.add("map", preds=[g.nodes[out.preds[0]]], name="driftm",
                      width=out.width, chain_ops=1, fn=bad, batch_fn=bad)
            out.preds = [m.node_id]

        assert expected in _ids(_verify(g)), defect


# ----------------------------------------------------------------------
# Range analysis: trigger + clean per check, waivers, widening, soundness.
# ----------------------------------------------------------------------
def _ranged_graph(value_range, *, transfer="roundtrip", payload=None,
                  width=4, waivers=(), fn=_rt):
    """input(value_range) -> map(transfer, payload) -> output."""
    g = DataflowGraph(name="ranged")
    inp = g.add("input", name="x", width=width, value_range=value_range)
    m = g.add("map", preds=[inp], name="m", width=width, chain_ops=1,
              fn=fn, batch_fn=fn, transfer=transfer,
              payload=payload or {}, waivers=waivers)
    g.add("output", preds=[m], name="y", width=width)
    return g


def _dot_graph(value_range, weights, fmt):
    """input -> dot(resident bank) -> output with a dot transfer."""
    w = np.atleast_2d(np.asarray(weights, dtype=np.float64))

    def fn(x):
        return fmt.roundtrip(
            (np.asarray(x, dtype=np.float64)[..., None, :] * w).sum(axis=-1)
        )

    g = DataflowGraph(name="dotted")
    inp = g.add("input", name="x", width=w.shape[1],
                value_range=value_range)
    bank = g.add("const", name="w", weight_values=int(w.size),
                 payload={"values": w})
    d = g.add("dot", preds=[inp, bank], name="d", parallel=1,
              width=w.shape[1], chain_ops=1, reduce_op="sum",
              fn=fn, batch_fn=fn, transfer="dot",
              payload={"weights": w, "fmt": fmt})
    g.add("output", preds=[d], name="y", width=w.shape[0])
    return g


def _accum_fn(key, fmt=None):
    """An executable recurrent accumulator matching ``state_accum``."""
    ns = {"FMT": fmt}
    body = f"    out = state.get({key!r}, 0.0) + x\n"
    if fmt is not None:
        body += "    out = FMT.roundtrip(out)\n"
    exec(  # noqa: S102 - building a fixture, key is a test literal
        "def fn(x, state=None):\n" + body +
        f"    state[{key!r}] = out\n"
        "    return out\n",
        ns,
    )
    fn = ns["fn"]
    fn.wants_state = True
    return fn


def _accum_graph(iterations, fmt=None):
    g = DataflowGraph(name="accum", temporal_iterations=iterations)
    inp = g.add("input", name="x", width=1, value_range=(0.0, 1.0))
    payload = {"key": "acc", "state_writes": {"acc": "output"}}
    if fmt is not None:
        payload["fmt"] = fmt
    fn = _accum_fn("acc", fmt)
    g.add("map", preds=[inp], name="acc_node", width=1, chain_ops=1,
          fn=fn, batch_fn=fn, transfer="state_accum", payload=payload)
    g.add("output", preds=[g.nodes[1]], name="y", width=1)
    return g


def _assert_observed_within(graph, report, features):
    """Every value ``execute_batch`` produces sits in its interval."""

    def observer(node, value, iteration):
        if node.kind == "const":
            return  # resident banks, not streamed values
        iv = report.intervals[node.node_id]
        arr = np.asarray(value, dtype=np.float64)
        assert arr.min() >= iv.lo - 1e-9, (node.name, iv, float(arr.min()))
        assert arr.max() <= iv.hi + 1e-9, (node.name, iv, float(arr.max()))

    graph.execute_batch(features, observer=observer)


class TestIntervalLattice:
    def test_join_and_contains(self):
        a, b = Interval(-1.0, 0.5), Interval(0.0, 2.0)
        assert a.join(b) == Interval(-1.0, 2.0)
        assert a.join(b).contains(2.0) and not a.contains(2.0)

    def test_top_absorbs(self):
        assert Interval(-1.0, 1.0).join(TOP) == TOP
        assert not TOP.bounded

    def test_invalid_rejected(self):
        with pytest.raises(ValueError, match="lo must not exceed hi"):
            Interval(1.0, -1.0)


class TestRangeChecks:
    def test_saturate_trigger(self):
        fmt = FIX8.with_frac_bits(6)  # Q1.6: ~[-2, 2)
        report = analyze_ranges(
            _ranged_graph((-4.0, 4.0), payload={"fmt": fmt},
                          fn=fmt.roundtrip)
        )
        sat = [d for d in report.diagnostics
               if d.check_id == "an-may-saturate"]
        assert len(sat) == 1 and sat[0].severity == Severity.WARNING
        # The post-clip interval is the format's representable range.
        iv = report.interval_of("m")
        assert iv == Interval(fmt.min_value, fmt.max_value)

    def test_saturate_clean(self):
        fmt = FIX8.with_frac_bits(6)
        report = analyze_ranges(
            _ranged_graph((-1.0, 1.0), payload={"fmt": fmt},
                          fn=fmt.roundtrip)
        )
        assert report.diagnostics == []
        assert report.interval_of("m") == Interval(-1.0, 1.0)

    def test_unbounded_input_is_top_and_flagged(self):
        report = analyze_ranges(_ranged_graph(None))
        assert report.interval_of("x") == TOP
        assert "an-may-saturate" in _ids(report.diagnostics)

    def test_acc_overflow_trigger(self):
        # |W|·2^16 · |x|·2^16 exceeds int64: the wide MAC would wrap.
        g = _dot_graph((-30000.0, 30000.0), np.full((1, 4), 32000.0), FIX32)
        assert "an-acc-overflow" in _ids(analyze_ranges(g).diagnostics)

    def test_acc_overflow_clean(self):
        g = _dot_graph((-1.0, 1.0), np.full((1, 4), 0.25), FIX32)
        report = analyze_ranges(g)
        assert report.diagnostics == []
        assert report.interval_of("d") == Interval(-1.0, 1.0)

    def test_lut_oob_trigger(self):
        g = _ranged_graph(
            (-4.0, 4.0), transfer="lut",
            payload={"domain": (-2.0, 2.0), "range": (0.0, 1.0)},
        )
        assert "an-lut-oob" in _ids(analyze_ranges(g).diagnostics)

    def test_lut_in_domain_clean(self):
        g = _ranged_graph(
            (-2.0, 2.0), transfer="lut",
            payload={"domain": (-2.0, 2.0), "range": (0.0, 1.0)},
        )
        report = analyze_ranges(g)
        assert report.diagnostics == []
        assert report.interval_of("m") == Interval(0.0, 1.0)

    def test_narrowable_info(self):
        fmt = FIX16.with_frac_bits(4)  # Q11.4: +/-0.4 fits 8 bits
        report = analyze_ranges(
            _ranged_graph((-0.4, 0.4), payload={"fmt": fmt},
                          fn=fmt.roundtrip)
        )
        narrow = [d for d in report.diagnostics
                  if d.check_id == "an-narrowable"]
        assert len(narrow) == 1 and narrow[0].severity == Severity.INFO
        assert "8 bits" in narrow[0].message

    def test_narrowable_clean_when_width_is_used(self):
        fmt = FIX16.with_frac_bits(4)
        report = analyze_ranges(
            _ranged_graph((-1000.0, 1000.0), payload={"fmt": fmt},
                          fn=fmt.roundtrip)
        )
        assert report.diagnostics == []

    def test_waiver_downgrades_to_info(self):
        fmt = FIX8.with_frac_bits(6)
        report = analyze_ranges(
            _ranged_graph((-4.0, 4.0), payload={"fmt": fmt},
                          fn=fmt.roundtrip,
                          waivers=("an-may-saturate",))
        )
        sat = [d for d in report.diagnostics
               if d.check_id == "an-may-saturate"]
        assert len(sat) == 1
        assert sat[0].severity == Severity.INFO
        assert "waived at lowering" in sat[0].message

    def test_suppress_drops_findings(self):
        fmt = FIX8.with_frac_bits(6)
        g = _ranged_graph((-4.0, 4.0), payload={"fmt": fmt},
                          fn=fmt.roundtrip)
        report = analyze_ranges(g, suppress={"an-may-saturate"})
        assert report.diagnostics == []

    def test_unknown_transfer_rejected(self):
        g = _ranged_graph((-1.0, 1.0), transfer="no-such-transfer")
        with pytest.raises(KeyError, match="no-such-transfer"):
            analyze_ranges(g)


class TestRangeStateful:
    def test_bounded_iterations_converge(self):
        g = _accum_graph(iterations=3)
        report = analyze_ranges(g)
        assert report.passes == 3
        # Three joined writes of [0, 1] on a zero-initialized key.
        assert report.state["acc"] == Interval(0.0, 3.0)
        _assert_observed_within(g, report, np.full((4, 1), 1.0))

    def test_widening_reaches_fixed_point(self):
        from repro.analysis.ranges import WIDEN_AFTER

        g = _accum_graph(iterations=64, fmt=FIX8)
        report = analyze_ranges(g)
        # Still growing at the widening threshold: the key jumps to TOP
        # and the next pass is stable by absorption.
        assert report.passes == WIDEN_AFTER + 1
        assert report.state["acc"] == TOP
        assert "an-may-saturate" in _ids(report.diagnostics)
        # The saturating format still bounds the node's output.
        assert report.interval_of("acc_node") == Interval(
            FIX8.min_value, FIX8.max_value
        )
        _assert_observed_within(g, report, np.full((4, 1), 1.0))

    def test_declared_state_range_used(self):
        g = _ranged_graph(
            (-1.0, 1.0), transfer="state_read", payload={"keys": ("h",)},
        )
        g.nodes[1].fn = g.nodes[1].batch_fn = None
        report = analyze_ranges(g)
        # No writer: zero-initialized state stays [0, 0].
        assert report.interval_of("m") == Interval(0.0, 0.0)


_RANGE_OPS = st.lists(
    st.sampled_from(["rt", "affine", "clip", "relu", "tanh", "dot"]),
    min_size=0, max_size=6,
)


def _affine_fn(scale, offset):
    def fn(x):
        return np.asarray(x, dtype=np.float64) * scale + offset
    return fn


def _clip_fn(lo, hi):
    def fn(x):
        return np.clip(np.asarray(x, dtype=np.float64), lo, hi)
    return fn


def _bank_dot_fn(w):
    def fn(x):
        return FIX8.roundtrip(
            (np.asarray(x, dtype=np.float64) * w).sum(axis=-1, keepdims=True)
        )
    return fn


def _random_ranged_graph(width, ops, rng):
    """A random transfer-annotated chain whose semantics the transfers
    model exactly — the soundness property's universe."""
    from repro.ml.activations import relu, tanh

    g = DataflowGraph(name="ranged-random")
    cursor = g.add("input", name="x", width=width, value_range=(-2.0, 2.0))
    cur_width = width
    for i, op in enumerate(ops):
        if op == "dot" and cur_width == 1:
            op = "rt"
        if op == "rt":
            cursor = g.add("map", preds=[cursor], name=f"rt{i}",
                           width=cur_width, chain_ops=1, fn=_rt, batch_fn=_rt,
                           transfer="roundtrip")
        elif op == "affine":
            scale = float(rng.choice([-1.5, -0.5, 0.5, 1.25]))
            offset = float(rng.choice([-0.25, 0.0, 0.5]))
            fn = _affine_fn(scale, offset)
            cursor = g.add("map", preds=[cursor], name=f"a{i}",
                           width=cur_width, chain_ops=1, fn=fn, batch_fn=fn,
                           transfer="affine",
                           payload={"scale": scale, "offset": offset})
        elif op == "clip":
            fn = _clip_fn(-1.0, 1.0)
            cursor = g.add("map", preds=[cursor], name=f"c{i}",
                           width=cur_width, chain_ops=1, fn=fn, batch_fn=fn,
                           transfer="clip", payload={"clip": (-1.0, 1.0)})
        elif op == "relu":
            cursor = g.add("map", preds=[cursor], name=f"re{i}",
                           width=cur_width, chain_ops=1, fn=relu,
                           batch_fn=relu, transfer="relu")
        elif op == "tanh":
            cursor = g.add("map", preds=[cursor], name=f"t{i}",
                           width=cur_width, chain_ops=1, fn=tanh,
                           batch_fn=tanh, transfer="tanh")
        elif op == "dot":
            w = FIX8.roundtrip(rng.uniform(-1.0, 1.0, size=cur_width))
            bank = g.add("const", name=f"w{i}", weight_values=int(w.size),
                         payload={"values": w})
            fn = _bank_dot_fn(w)
            cursor = g.add("dot", preds=[cursor, bank], name=f"d{i}",
                           parallel=1, width=cur_width, chain_ops=1,
                           reduce_op="sum", fn=fn, batch_fn=fn,
                           transfer="dot",
                           payload={"weights": w.reshape(1, -1),
                                    "fmt": FIX8})
            cur_width = 1
    g.add("output", preds=[cursor], name="y", width=cur_width)
    return g


class TestRangeSoundness:
    """The analysis contract: observed values sit inside predicted
    intervals for any input satisfying the declared preconditions."""

    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(2, 6), ops=_RANGE_OPS, seed=st.integers(0, 2**16))
    def test_observed_within_predicted(self, width, ops, seed):
        rng = np.random.default_rng(seed)
        g = _random_ranged_graph(width, ops, rng)
        report = analyze_ranges(g)
        features = FIX8.roundtrip(rng.uniform(-2.0, 2.0, size=(5, width)))
        _assert_observed_within(g, report, features)

    def test_saturating_corpus_is_flagged(self):
        narrow = FIX8.with_frac_bits(6)
        corpus = [
            (_ranged_graph((-4.0, 4.0), payload={"fmt": narrow},
                           fn=narrow.roundtrip), "an-may-saturate"),
            (_dot_graph((-30000.0, 30000.0), np.full((1, 4), 32000.0),
                        FIX32), "an-acc-overflow"),
            (_ranged_graph((-4.0, 4.0), transfer="lut",
                           payload={"domain": (-2.0, 2.0),
                                    "range": (0.0, 1.0)}), "an-lut-oob"),
        ]
        for g, expected in corpus:
            assert expected in _ids(analyze_ranges(g).diagnostics), expected


class TestShippedGraphsRangeClean:
    """Acceptance: every shipped lowering passes the range gate —
    zero warning+ findings (waivers are already info-severity)."""

    def _assert_range_clean(self, graph):
        report = analyze_ranges(graph)
        gating = [d for d in report.diagnostics
                  if d.severity >= Severity.WARNING]
        assert gating == [], [d.format() for d in gating]

    def test_dnn(self, quantized_dnn):
        from repro.mapreduce import dnn_graph

        self._assert_range_clean(dnn_graph(quantized_dnn))

    def test_svm(self, trained_svm):
        from repro.mapreduce import svm_graph

        self._assert_range_clean(svm_graph(trained_svm))

    def test_kmeans(self, trained_kmeans):
        from repro.mapreduce import kmeans_graph

        self._assert_range_clean(kmeans_graph(trained_kmeans))

    def test_lstm(self):
        from repro.mapreduce import lstm_graph
        from repro.ml import indigo_lstm

        self._assert_range_clean(lstm_graph(indigo_lstm(seed=0)))

    def test_microbenches(self):
        from repro.mapreduce import (
            activation_graph,
            conv1d_graph,
            inner_product_graph,
        )
        from repro.ml.activations import ACTIVATIONS

        self._assert_range_clean(inner_product_graph(16))
        self._assert_range_clean(conv1d_graph(unroll=8))
        for name in ACTIVATIONS:
            self._assert_range_clean(activation_graph(name))


# ----------------------------------------------------------------------
# Effects classification and the certified fusion plan.
# ----------------------------------------------------------------------
def _reader(key):
    """A state-reading fn whose key is a bytecode literal."""
    ns = {}
    exec(  # noqa: S102 - building a fixture, key is a test literal
        "def fn(x, state=None):\n"
        f"    return x + state.get({key!r}, 0.0)\n",
        ns,
    )
    fn = ns["fn"]
    fn.wants_state = True
    return fn


class TestEffects:
    def test_pure_map_is_stateless_and_fusable(self):
        plan = analyze_effects(_chain_graph())
        assert plan.effect_of("m").effect == "stateless"
        assert plan.effect_of("m").fusable
        # Pure but not element-wise: input/output never fuse.
        assert plan.effect_of("x").effect == "stateless"
        assert not plan.effect_of("x").fusable

    def test_state_write_classified(self):
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = _stateful("flow")
        e = analyze_effects(g).effect_of("m")
        assert e.effect == "state-write"
        assert e.state_writes == ("flow",)
        assert not e.fusable

    def test_state_read_classified(self):
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = _reader("h")
        e = analyze_effects(g).effect_of("m")
        assert e.effect == "state-read"
        assert e.state_reads == ("h",)

    def test_iteration_read_is_temporal(self):
        g = _chain_graph()
        g.nodes[1].fn = g.nodes[1].batch_fn = _reader("iteration")
        assert analyze_effects(g).effect_of("m").effect == "temporal"

    def test_epilogue_is_temporal(self):
        g = _chain_graph()
        g.nodes[1].epilogue = True
        e = analyze_effects(g).effect_of("m")
        assert e.effect == "temporal"
        assert not e.fusable

    def test_lstm_classification(self):
        from repro.mapreduce import lstm_graph
        from repro.ml import indigo_lstm

        plan = analyze_effects(lstm_graph(indigo_lstm(seed=0)))
        assert plan.effect_of("read_h").effect == "state-read"
        assert plan.effect_of("cell_update").effect == "state-write"
        assert set(plan.effect_of("cell_update").state_writes) == {"c", "h"}
        assert plan.effect_of("select_step").effect == "temporal"
        assert plan.effect_of("gate_matvec").effect == "stateless"
        # Nothing in the recurrent cell is fusable.
        assert plan.chains == []

    def test_svm_chain(self, trained_svm):
        from repro.mapreduce import svm_graph

        plan = analyze_effects(svm_graph(trained_svm))
        assert ("scale_gamma", "exp_lut") in plan.chain_names()

    def test_act_lut_chain(self):
        from repro.mapreduce import activation_graph

        plan = analyze_effects(activation_graph("act_lut"))
        assert ("lut_addr", "table", "rescale") in plan.chain_names()

    def test_branching_consumer_breaks_chain(self):
        g = _chain_graph()
        m = g.nodes[1]
        m2 = g.add("map", preds=[m], name="m2", width=m.width, chain_ops=1,
                   fn=_rt, batch_fn=_rt)
        # A second consumer of m: fusing m into m2 would hide m's edge.
        tap = g.add("map", preds=[m], name="tap", width=m.width,
                    chain_ops=1, fn=_rt, batch_fn=_rt)
        out = g.outputs()[0]
        out.preds = [m2.node_id, tap.node_id]
        out.width = m2.width + tap.width
        assert analyze_effects(g).chains == []

    @pytest.mark.parametrize("builder", ["act_lut", "conv1d"])
    def test_chain_composition_is_bit_identical(self, builder):
        """The FusionPlan certificate: composing a chain's member
        callables reproduces the tail's observed values exactly."""
        from repro.mapreduce import activation_graph, conv1d_graph

        g = (activation_graph("act_lut") if builder == "act_lut"
             else conv1d_graph(unroll=8))
        plan = analyze_effects(g)
        assert plan.chains, "expected at least one fusable chain"

        width = next(
            n.width for n in g.nodes.values() if n.kind == "input"
        )
        rng = np.random.default_rng(7)
        features = FIX8.roundtrip(rng.uniform(-2.0, 2.0, size=(6, width)))
        observed = {}

        def observer(node, value, iteration):
            observed[node.node_id] = np.asarray(value).copy()

        g.execute_batch(features, observer=observer)
        for chain in plan.chains:
            head = g.nodes[chain[0]]
            pred = next(
                p for p in head.preds if g.nodes[p].kind != "const"
            )
            value = observed[pred]
            for nid in chain:
                value = g.nodes[nid].batch_fn(value)
            np.testing.assert_array_equal(value, observed[chain[-1]])
