"""Regression tests: the exact-match index survives install()/lookup interleave.

PR 2 made exact tables consult a lazily (re)built hash index.  The index
must be invalidated by every control-plane mutation — including installs
that happen *after* lookups already forced a build — and both the scalar
and the batched lookup paths must see freshly installed entries
immediately.
"""

from __future__ import annotations

import numpy as np

from repro.pisa import (
    Action,
    MatchActionTable,
    MatchKind,
    PHV,
    PHVBatch,
    PHVLayout,
    TableEntry,
)

LAYOUT = PHVLayout(fields=(("dst_port", 16), ("protocol", 8), ("mark", 8)))


def _phv(dst_port: int, protocol: int = 0) -> PHV:
    phv = PHV(LAYOUT)
    phv.set("dst_port", dst_port)
    phv.set("protocol", protocol)
    return phv


def _batch(dst_ports, protocols=None) -> PHVBatch:
    batch = PHVBatch(LAYOUT, len(dst_ports))
    batch.set_column("dst_port", np.asarray(dst_ports, dtype=np.int64))
    batch.set_column(
        "protocol",
        np.zeros(len(dst_ports), dtype=np.int64)
        if protocols is None
        else np.asarray(protocols, dtype=np.int64),
    )
    return batch


def _table() -> MatchActionTable:
    table = MatchActionTable(
        name="acl", key_fields=("dst_port", "protocol"), kind=MatchKind.EXACT
    )
    table.install(TableEntry({"dst_port": 80, "protocol": 0}, Action.noop()))
    return table


class TestExactIndexInvalidation:
    def test_install_after_scalar_lookup_is_visible(self):
        table = _table()
        assert table.lookup(_phv(80)) is table.entries[0].action  # builds index
        assert table.lookup(_phv(443)) is table.default_action
        misses_before = table.misses

        late = TableEntry({"dst_port": 443, "protocol": 0}, Action.noop())
        table.install(late)
        assert table.lookup(_phv(443)) is late.action
        assert late.hits == 1
        assert table.misses == misses_before

    def test_install_after_batch_lookup_is_visible(self):
        table = _table()
        first = table.lookup_batch(_batch([80, 443]))  # builds index
        assert list(first) == [0, -1]

        late = TableEntry({"dst_port": 443, "protocol": 0}, Action.noop())
        table.install(late)
        winners = table.lookup_batch(_batch([80, 443, 7]))
        positions = {
            int(w): None if w < 0 else table.entries[int(w)]
            for w in winners
        }
        assert table.entries[int(winners[0])].match["dst_port"] == 80
        assert table.entries[int(winners[1])] is late
        assert int(winners[2]) == -1
        assert late.hits == 1
        del positions

    def test_scalar_and_batch_agree_after_interleaved_installs(self):
        """Interleave installs and lookups; both paths stay in lockstep."""
        table = _table()
        ports = [80, 443, 8080, 22, 7]
        for round_no, port in enumerate([443, 8080, 22]):
            table.lookup_batch(_batch(ports))  # force an index build
            table.install(
                TableEntry({"dst_port": port, "protocol": 0}, Action.noop())
            )
            scalar = [
                -1 if table._find(_phv(p)) is None
                else table.entries.index(table._find(_phv(p)))
                for p in ports
            ]
            batch = [int(w) for w in table.lookup_batch(_batch(ports))]
            assert scalar == batch, f"diverged after install round {round_no}"

    def test_late_wildcard_outranks_indexed_entry_in_both_paths(self):
        """A higher-priority partial-key entry installed after lookups must
        beat the full-key index hit (position order is the tiebreak)."""
        table = _table()
        table.lookup(_phv(80))  # index built with only the full-key entry
        wildcard = TableEntry({"protocol": 0}, Action.noop(), priority=9)
        table.install(wildcard)

        assert table._find(_phv(80)) is wildcard
        winners = table.lookup_batch(_batch([80, 443]))
        assert table.entries[int(winners[0])] is wildcard
        assert table.entries[int(winners[1])] is wildcard

    def test_remove_all_after_lookup_invalidates(self):
        table = _table()
        assert int(table.lookup_batch(_batch([80]))[0]) == 0
        assert table.remove_all() == 1
        assert table.lookup(_phv(80)) is table.default_action
        assert list(table.lookup_batch(_batch([80]))) == [-1]
