"""Tests for the hardware models: area/power anchors, CU/MU, grid, ASIC."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fixpoint import FIX8, FixTensor
from repro.hw import (
    BankConflictError,
    ComputeUnit,
    CUGeometry,
    MapReduceBlock,
    MemoryUnit,
    SwitchChipParams,
    TaurusChip,
    cu_area_mm2,
    fu_area_um2,
    fu_power_uw,
    grid_area_mm2,
    grid_composition,
    mu_area_mm2,
)
from repro.mapreduce import inner_product_graph


class TestTable4Anchors:
    """Per-FU area/power by precision — exact paper values (Table 4)."""

    @pytest.mark.parametrize(
        "precision,area,power",
        [("fix8", 670, 456), ("fix16", 1338, 887), ("fix32", 2949, 2341)],
    )
    def test_per_fu(self, precision, area, power):
        geom = CUGeometry(16, 4, precision)
        assert fu_area_um2(geom) == pytest.approx(area, rel=0.01)
        assert fu_power_uw(geom) == pytest.approx(power, rel=0.01)

    def test_precision_scaling_factors(self):
        a8 = fu_area_um2(CUGeometry(16, 4, "fix8"))
        a16 = fu_area_um2(CUGeometry(16, 4, "fix16"))
        a32 = fu_area_um2(CUGeometry(16, 4, "fix32"))
        assert a16 / a8 == pytest.approx(2.0, rel=0.05)
        assert a32 / a8 == pytest.approx(4.4, rel=0.05)


class TestFig9Scaling:
    def test_area_decreases_with_lanes(self):
        areas = [fu_area_um2(CUGeometry(l, 4)) for l in (4, 8, 16, 32)]
        assert areas == sorted(areas, reverse=True)

    def test_power_decreases_with_lanes(self):
        powers = [fu_power_uw(CUGeometry(l, 4)) for l in (4, 8, 16, 32)]
        assert powers == sorted(powers, reverse=True)

    def test_fig9_range(self):
        """4-lane point near 1.5k um^2, 32-lane near 0.5k (Fig. 9a)."""
        assert 1300 < fu_area_um2(CUGeometry(4, 4)) < 1700
        assert 450 < fu_area_um2(CUGeometry(32, 4)) < 600


class TestBlockAnchors:
    def test_cu_area(self):
        assert cu_area_mm2() == pytest.approx(0.044, abs=0.001)

    def test_mu_area(self):
        assert mu_area_mm2() == pytest.approx(0.029, abs=0.001)

    def test_grid_area(self):
        assert grid_area_mm2() == pytest.approx(4.8, abs=0.1)

    def test_grid_composition(self):
        assert grid_composition() == (90, 30)

    def test_area_overhead_percent(self):
        chip = TaurusChip()
        report = chip.grid_overheads()
        assert report.area_percent == pytest.approx(3.8, abs=0.15)

    def test_power_overhead_percent(self):
        chip = TaurusChip()
        report = chip.grid_overheads()
        assert report.power_percent == pytest.approx(2.8, abs=0.2)

    def test_iso_area_mats(self):
        """One block displaces ~3 MATs (Section 5.1.1)."""
        assert TaurusChip().iso_area_mats() == pytest.approx(2.5, abs=0.6)

    def test_die_growth(self):
        assert TaurusChip().added_die_area_percent() == pytest.approx(3.8, abs=0.2)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CUGeometry(0, 4)
        with pytest.raises(ValueError):
            CUGeometry(16, 4, "fix64")


class TestComputeUnit:
    def test_dot_matches_fixtensor(self):
        cu = ComputeUnit()
        x = FixTensor.from_float(np.linspace(-1, 1, 16), FIX8)
        w = FixTensor.from_float(np.linspace(1, -1, 16), FIX8)
        result = cu.dot(x, w)
        assert result.value.raw[0] == x.dot(w).raw

    def test_dot_cycle_count(self):
        cu = ComputeUnit()
        x = FixTensor.from_float(np.ones(16), FIX8)
        result = cu.dot(x, x)
        assert result.cycles == 5  # 1 map + 4-cycle reduce tree

    def test_map_chain(self):
        cu = ComputeUnit(map_chain=[("mul", 2.0), ("add", 1.0)])
        out = cu.execute(FixTensor.from_float([1.0, -1.0], FIX8))
        assert out.value.to_float().tolist() == [3.0, -1.0]
        assert out.stages_used == 2

    def test_chain_too_long_rejected(self):
        with pytest.raises(ValueError):
            ComputeUnit(map_chain=[("add", 1.0)] * 5)  # 5 > 4 stages

    def test_vector_too_wide_rejected(self):
        cu = ComputeUnit()
        with pytest.raises(ValueError):
            cu.execute(FixTensor.from_float(np.ones(17), FIX8))

    def test_map_reduce_combo(self):
        cu = ComputeUnit(map_chain=[("mul", 2.0)], reduce_op="sum")
        out = cu.execute(FixTensor.from_float([1.0, 2.0], FIX8))
        assert out.value.to_float()[0] == pytest.approx(6.0)

    def test_unknown_ops_rejected(self):
        with pytest.raises(ValueError):
            ComputeUnit(map_chain=[("frobnicate", None)])
        with pytest.raises(ValueError):
            ComputeUnit(reduce_op="median")

    def test_utilization_tracking(self):
        cu = ComputeUnit(map_chain=[("add", 0.0)])
        assert cu.utilization == 0.0
        cu.execute(FixTensor.from_float([1.0], FIX8))
        assert cu.utilization > 0.0


class TestMemoryUnit:
    def test_capacity(self):
        mu = MemoryUnit()
        assert mu.capacity_values == 16384
        assert mu.capacity_bytes == 16384

    def test_load_read_roundtrip(self):
        mu = MemoryUnit()
        values = np.linspace(-4, 4, 32)
        mu.load(values)
        tensor, cycles = mu.read_vector(0, 16)
        assert cycles == 1  # single-cycle SRAM (Section 4)
        assert np.allclose(tensor.to_float(), FIX8.roundtrip(values[:16]))

    def test_overflow_rejected(self):
        mu = MemoryUnit()
        with pytest.raises(ValueError):
            mu.load(np.zeros(20000))

    def test_wide_read_conflicts(self):
        mu = MemoryUnit(banks=4)
        mu.load(np.ones(16))
        with pytest.raises(BankConflictError):
            mu.read_vector(0, 5)  # 5 consecutive addrs over 4 banks collide

    def test_lookup_clamps(self):
        mu = MemoryUnit()
        mu.load(np.linspace(0, 1, 64))
        low, __ = mu.lookup(0, 64, -5)
        high, __ = mu.lookup(0, 64, 999)
        assert low.to_float()[0] == pytest.approx(0.0, abs=1 / 16)
        assert high.to_float()[0] == pytest.approx(1.0, abs=1 / 16)

    def test_read_beyond_capacity(self):
        mu = MemoryUnit()
        with pytest.raises(ValueError):
            mu.read_vector(16380, 16)

    @given(st.integers(1, 16), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_striping_conflict_free_up_to_banks(self, width, base):
        mu = MemoryUnit(banks=16)
        tensor, cycles = mu.read_vector(base, width)
        assert cycles == 1
        assert tensor.size == width


class TestMapReduceBlock:
    def test_process_returns_latency(self):
        block = MapReduceBlock(inner_product_graph(16))
        result = block.process(np.ones(16))
        assert result.latency_ns == pytest.approx(23, abs=1)

    def test_line_rate_no_stall(self):
        block = MapReduceBlock(inner_product_graph(16))
        first = block.process(np.ones(16), at_cycle=0)
        second = block.process(np.ones(16), at_cycle=1)
        assert first.latency_ns == second.latency_ns  # II = 1: no stall

    def test_folded_block_stalls(self):
        from repro.mapreduce import conv1d_graph

        block = MapReduceBlock(conv1d_graph(unroll=1))  # II = 8
        block.process(np.ones(9), at_cycle=0)
        result = block.process(np.ones(9), at_cycle=1)
        assert result.latency_ns > block.design.latency_ns  # queued 7 cycles

    def test_reconfigure_swaps_program(self):
        block = MapReduceBlock(inner_product_graph(16))
        old_latency = block.latency_ns
        from repro.mapreduce import activation_graph

        block.reconfigure(activation_graph("tanh_exp"))
        assert block.latency_ns != old_latency

    def test_process_batch(self):
        block = MapReduceBlock(inner_product_graph(16))
        out = block.process_batch(np.ones((5, 16)))
        assert out.shape == (5, 1)

    def test_run_batch_matches_scalar(self):
        block = MapReduceBlock(inner_product_graph(16))
        feats = np.linspace(-1, 1, 5 * 16).reshape(5, 16)
        result = block.run_batch(feats)
        scalar = np.stack([block.graph.execute(row) for row in feats])
        assert np.array_equal(result.values, scalar)

    def test_run_batch_ii_accounting(self):
        from repro.mapreduce import conv1d_graph
        from repro.hw.params import CLOCK_GHZ

        block = MapReduceBlock(conv1d_graph(unroll=1))  # II = 8
        result = block.run_batch(np.ones((10, 9)))
        ii = block.design.initiation_interval
        assert result.initiation_interval == ii
        expected_cycles = block.design.latency_cycles + 9 * ii
        assert result.duration_ns == pytest.approx(expected_cycles / CLOCK_GHZ)
        assert result.throughput_pkt_s == pytest.approx(
            10 / (result.duration_ns * 1e-9)
        )
        # Long batches converge to the II-limited line-rate fraction.
        big = block.run_batch(np.ones((5000, 9)))
        steady = block.throughput_gpkt_s * 1e9
        assert big.throughput_pkt_s == pytest.approx(steady, rel=0.05)

    def test_run_batch_advances_issue_clock(self):
        block = MapReduceBlock(inner_product_graph(16))
        first = block.run_batch(np.ones((7, 16)))
        assert first.accepted_at_cycle == 0
        assert block.packets_processed == 7
        stalled = block.process(np.ones(16), at_cycle=0)  # queued behind batch
        assert stalled.latency_ns > block.design.latency_ns

    def test_run_batch_stalls_behind_earlier_work(self):
        block = MapReduceBlock(inner_product_graph(16))
        block.process(np.ones(16), at_cycle=0)
        queued = block.run_batch(np.ones((3, 16)), at_cycle=0)
        assert queued.accepted_at_cycle == block.design.initiation_interval
        # Stalled arrivals pay the wait in latency_ns, as process() does.
        assert queued.latency_ns > block.design.latency_ns
        back_to_back = block.run_batch(np.ones((2, 16)))
        # Batches issue contiguously: 1 (process) + 3 (first batch) slots.
        assert back_to_back.accepted_at_cycle == 4 * block.design.initiation_interval


class TestSwitchChipParams:
    def test_mat_area(self):
        chip = SwitchChipParams()
        # 50% of 500 mm^2 over 128 MATs.
        assert chip.mat_area_mm2 == pytest.approx(1.953, abs=0.01)

    def test_pipeline_shares(self):
        chip = SwitchChipParams()
        assert chip.pipeline_area_mm2 == 125.0
        assert chip.pipeline_power_w == 67.5
