"""Tests for the from-scratch ML models: Dense/DNN, SVM, KMeans, LSTM."""

import numpy as np
import pytest

from repro.datasets import generate_congestion_traces, iot_cluster_dataset
from repro.ml import (
    SGD,
    Adam,
    Dense,
    DNN,
    KMeans,
    LSTM,
    RBFKernelSVM,
    accuracy,
    anomaly_detection_dnn,
    indigo_lstm,
    iot_classifier_dnn,
)


def _blobs(n=400, seed=0, sep=3.0):
    rng = np.random.default_rng(seed)
    half = n // 2
    x = np.vstack(
        [rng.normal(-sep / 2, 1.0, size=(half, 2)), rng.normal(sep / 2, 1.0, size=(n - half, 2))]
    )
    y = np.concatenate([np.zeros(half, dtype=int), np.ones(n - half, dtype=int)])
    order = rng.permutation(n)
    return x[order], y[order]


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3)
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 3)

    def test_gradient_check(self):
        """Analytic gradients match central finite differences."""
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, activation="tanh", rng=rng)
        x = rng.normal(size=(4, 3))
        out = layer.forward(x, train=True)
        grad_out = rng.normal(size=out.shape)
        __, grad_w, __ = layer.backward(grad_out)
        eps = 1e-6
        for idx in [(0, 0), (1, 2)]:
            layer.weights[idx] += eps
            up = float(np.sum(layer.forward(x) * grad_out))
            layer.weights[idx] -= 2 * eps
            down = float(np.sum(layer.forward(x) * grad_out))
            layer.weights[idx] += eps
            numeric = (up - down) / (2 * eps)
            assert grad_w[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)))


class TestDNN:
    def test_learns_blobs(self):
        x, y = _blobs()
        model = DNN([2, 8, 1], output="sigmoid", seed=0)
        model.fit(x, y, epochs=20, lr=0.1)
        assert accuracy(y, model.predict(x)) > 0.95

    def test_learns_multiclass(self):
        rng = np.random.default_rng(2)
        centers = np.array([[0, 3], [3, -3], [-3, -3]])
        y = rng.integers(0, 3, size=600)
        x = centers[y] + rng.normal(size=(600, 2))
        model = DNN([2, 16, 3], output="softmax", seed=1)
        model.fit(x, y, epochs=25, lr=0.1)
        assert accuracy(y, model.predict(x)) > 0.9

    def test_loss_decreases(self):
        x, y = _blobs()
        model = DNN([2, 6, 1], output="sigmoid", seed=0)
        log = model.fit(x, y, epochs=15, lr=0.05)
        assert log.losses[-1] < log.losses[0]

    def test_get_set_weights_roundtrip(self):
        model = DNN([3, 4, 2], seed=0)
        weights = model.get_weights()
        other = DNN([3, 4, 2], seed=99)
        other.set_weights(weights)
        x = np.random.default_rng(0).normal(size=(5, 3))
        assert np.allclose(model.forward(x), other.forward(x))

    def test_set_weights_shape_check(self):
        model = DNN([3, 4, 2], seed=0)
        with pytest.raises(ValueError):
            model.set_weights([(np.zeros((2, 2)), np.zeros(2))] * 2)

    def test_sigmoid_head_needs_one_unit(self):
        with pytest.raises(ValueError):
            DNN([4, 2], output="sigmoid")

    def test_paper_architectures(self):
        assert anomaly_detection_dnn().layer_sizes == [6, 12, 6, 3, 1]
        assert iot_classifier_dnn((4, 10, 2)).layer_sizes == [4, 10, 2]
        assert anomaly_detection_dnn().n_params == 187

    def test_class_weighting_raises_recall(self):
        rng = np.random.default_rng(3)
        # 10:1 imbalanced blobs.
        x0 = rng.normal(-1, 1.2, size=(900, 2))
        x1 = rng.normal(1, 1.2, size=(90, 2))
        x = np.vstack([x0, x1])
        y = np.concatenate([np.zeros(900, dtype=int), np.ones(90, dtype=int)])
        plain = DNN([2, 8, 1], output="sigmoid", seed=0)
        plain.fit(x, y, epochs=10, lr=0.05)
        weighted = DNN([2, 8, 1], output="sigmoid", seed=0)
        weighted.fit(x, y, epochs=10, lr=0.05, class_weight={0: 1.0, 1: 8.0})
        recall_plain = np.mean(plain.predict(x)[y == 1])
        recall_weighted = np.mean(weighted.predict(x)[y == 1])
        assert recall_weighted >= recall_plain


class TestSVM:
    def test_learns_blobs(self):
        x, y = _blobs(300, sep=4.0)
        svm = RBFKernelSVM(budget=32, epochs=3, seed=0).fit(x, y)
        assert accuracy(y, svm.predict(x)) > 0.9

    def test_budget_respected(self):
        x, y = _blobs(300)
        svm = RBFKernelSVM(budget=10, epochs=2, seed=0).fit(x, y)
        assert svm.n_support <= 10

    def test_nonlinear_boundary(self):
        """RBF kernel separates concentric rings (linear cannot)."""
        rng = np.random.default_rng(4)
        r_inner = rng.uniform(0, 1, 200)
        r_outer = rng.uniform(2.0, 3.0, 200)
        theta = rng.uniform(0, 2 * np.pi, 400)
        r = np.concatenate([r_inner, r_outer])
        x = np.stack([r * np.cos(theta), r * np.sin(theta)], axis=1)
        y = np.concatenate([np.zeros(200, dtype=int), np.ones(200, dtype=int)])
        svm = RBFKernelSVM(gamma=1.0, budget=64, epochs=4, seed=0).fit(x, y)
        assert accuracy(y, svm.predict(x)) > 0.85

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RBFKernelSVM().predict(np.zeros((1, 2)))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            RBFKernelSVM().fit(np.zeros((0, 2)), np.zeros(0))

    def test_weight_bytes(self, trained_svm):
        assert trained_svm.weight_bytes() == (
            trained_svm.support_vectors.size + trained_svm.alphas.size + 1
        )


class TestKMeans:
    def test_recovers_clusters(self):
        x, y = iot_cluster_dataset(900, n_classes=5, seed=1, spread=0.6)
        km = KMeans(5, seed=1).fit(x)
        # Map clusters to majority labels and check purity.
        assignments = km.predict(x)
        purity = 0
        for c in range(5):
            members = y[assignments == c]
            if len(members):
                purity += np.bincount(members).max()
        assert purity / len(y) > 0.9

    def test_predict_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.zeros((1, 2)))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            KMeans(10).fit(np.zeros((3, 2)))

    def test_inertia_better_than_random_assignment(self):
        x, __ = iot_cluster_dataset(400, seed=2)
        km = KMeans(5, seed=2).fit(x)
        random_centroids = x[:5]
        km_random = KMeans(5, seed=2)
        km_random.centroids = random_centroids
        assert km.inertia(x) <= km_random.inertia(x)

    def test_converges(self):
        x, __ = iot_cluster_dataset(400, seed=3)
        km = KMeans(5, max_iter=200, seed=3).fit(x)
        assert km.n_iter_ < 200


class TestLSTM:
    def test_shapes(self):
        lstm = LSTM(input_size=3, hidden_size=8, n_actions=4, seed=0)
        seqs = np.zeros((5, 7, 3))
        assert lstm.forward(seqs).shape == (5, 4)
        assert lstm.predict(seqs).shape == (5,)

    def test_probabilities_normalized(self):
        lstm = LSTM(3, 8, 4, seed=0)
        probs = lstm.forward(np.random.default_rng(0).normal(size=(6, 5, 3)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_training_reduces_loss(self):
        seqs, actions = generate_congestion_traces(300, seed=5)
        lstm = indigo_lstm(input_size=seqs.shape[-1], n_actions=5, seed=0)
        losses = lstm.fit(seqs, actions, epochs=8)
        assert losses[-1] < losses[0]

    def test_beats_chance_on_imitation(self):
        seqs, actions = generate_congestion_traces(800, seed=6)
        cut = 600
        lstm = indigo_lstm(input_size=seqs.shape[-1], n_actions=5, seed=0)
        lstm.fit(seqs[:cut], actions[:cut], epochs=12)
        acc = float(np.mean(lstm.predict(seqs[cut:]) == actions[cut:]))
        chance = float(np.mean(actions[cut:] == np.bincount(actions[:cut]).argmax()))
        assert acc > max(0.4, chance - 0.05)

    def test_paper_configuration(self):
        lstm = indigo_lstm()
        assert lstm.hidden_size == 32

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            LSTM(0, 4, 2)


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        param = np.array([1.0])
        SGD(lr=0.1).step(param, np.array([1.0]), key=0)
        assert param[0] == pytest.approx(0.9)

    def test_sgd_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.9)
        param = np.array([0.0])
        opt.step(param, np.array([1.0]), key=0)
        first_step = abs(param[0])
        opt.step(param, np.array([1.0]), key=0)
        assert abs(param[0]) > 2 * first_step  # momentum compounds

    def test_adam_converges_on_quadratic(self):
        opt = Adam(lr=0.1)
        param = np.array([5.0])
        for __ in range(200):
            opt.begin_step()
            opt.step(param, 2 * param, key=0)
        assert abs(param[0]) < 0.1

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
