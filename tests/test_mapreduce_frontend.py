"""Tests for model -> dataflow-graph lowering (functional fidelity)."""

import numpy as np
import pytest

from repro.datasets import dnn_feature_matrix, generate_congestion_traces, svm_feature_matrix
from repro.mapreduce import (
    activation_graph,
    conv1d_graph,
    dnn_graph,
    inner_product_graph,
    kmeans_graph,
    lstm_graph,
    svm_graph,
)
from repro.ml import indigo_lstm


class TestDNNGraph:
    def test_bit_exact_with_quantized_model(self, quantized_dnn, train_test_split):
        """Graph execution (exact activations) == QuantizedModel, bitwise."""
        __, test = train_test_split
        graph = dnn_graph(quantized_dnn, exact_activations=True)
        x = dnn_feature_matrix(test)[:64]
        for row in x:
            via_graph = float(graph.execute(row)[0])
            via_model = float(quantized_dnn(row).reshape(-1)[0])
            assert via_graph == via_model

    def test_hw_activations_close(self, quantized_dnn, train_test_split):
        """Piecewise activations barely move the decision boundary."""
        __, test = train_test_split
        graph = dnn_graph(quantized_dnn)  # hardware approximations
        x = dnn_feature_matrix(test)[:256]
        agree = 0
        for row in x:
            hw = float(graph.execute(row)[0]) >= 0.5
            exact = float(quantized_dnn(row).reshape(-1)[0]) >= 0.5
            agree += hw == exact
        assert agree / len(x) > 0.95

    def test_structure(self, quantized_dnn):
        graph = dnn_graph(quantized_dnn)
        kinds = [n.kind for n in graph.topo_order()]
        assert kinds.count("dot") == 4      # 4 weight layers
        assert kinds.count("const") >= 4
        assert kinds[-1] == "output" or "output" in kinds

    def test_softmax_head_lowered_to_argmax(self):
        from repro.fixpoint import quantize_model
        from repro.ml import iot_classifier_dnn
        from repro.datasets import iot_binary_dataset

        x, y = iot_binary_dataset(600, seed=0)
        model = iot_classifier_dnn((4, 10, 2), seed=0)
        model.fit(x, y, epochs=5)
        q = quantize_model(model, x[:128])
        graph = dnn_graph(q)
        # Linear head -> no activation map after the last dot/gather.
        out_width = graph.outputs()[0].width
        assert out_width == 2


class TestSVMGraph:
    def test_decision_agreement(self, trained_svm, train_test_split):
        __, test = train_test_split
        graph = svm_graph(trained_svm)
        x = svm_feature_matrix(test)[:128]
        agree = 0
        for row in x:
            graph_pred = float(graph.execute(row)[0]) >= 0.0
            model_pred = bool(trained_svm.predict(row[None, :])[0])
            agree += graph_pred == model_pred
        assert agree / len(x) > 0.9

    def test_unfitted_rejected(self):
        from repro.ml import RBFKernelSVM

        with pytest.raises(ValueError):
            svm_graph(RBFKernelSVM())

    def test_has_lut_node(self, trained_svm):
        graph = svm_graph(trained_svm)
        assert any(n.kind == "lut" for n in graph.nodes.values())


class TestKMeansGraph:
    def test_cluster_agreement(self, trained_kmeans):
        from repro.datasets import iot_cluster_dataset

        graph = kmeans_graph(trained_kmeans)
        x, __ = iot_cluster_dataset(200, seed=9)
        agree = 0
        for row in x:
            graph_cluster = int(graph.execute(row)[0])
            model_cluster = int(trained_kmeans.predict(row[None, :])[0])
            agree += graph_cluster == model_cluster
        assert agree / len(x) > 0.95

    def test_unfitted_rejected(self):
        from repro.ml import KMeans

        with pytest.raises(ValueError):
            kmeans_graph(KMeans(3))


class TestLSTMGraph:
    def test_action_agreement(self):
        seqs, actions = generate_congestion_traces(250, seed=4)
        lstm = indigo_lstm(input_size=seqs.shape[-1], n_actions=5, seed=0)
        lstm.fit(seqs[:200], actions[:200], epochs=8)
        graph = lstm_graph(lstm, window_steps=seqs.shape[1])
        agree = 0
        n = 40
        for seq in seqs[200 : 200 + n]:
            graph_action = int(graph.execute(seq.reshape(-1), state={})[0])
            model_action = int(lstm.predict(seq[None])[0])
            agree += graph_action == model_action
        assert agree / n > 0.7  # fix8 + piecewise gates shift some decisions

    def test_temporal_iterations(self):
        lstm = indigo_lstm(seed=0)
        graph = lstm_graph(lstm, window_steps=8)
        assert graph.temporal_iterations == 8

    def test_head_is_epilogue(self):
        lstm = indigo_lstm(seed=0)
        graph = lstm_graph(lstm)
        epilogue_kinds = {n.kind for n in graph.nodes.values() if n.epilogue}
        assert "dot" in epilogue_kinds
        assert "reduce" in epilogue_kinds


class TestMicrobenchGraphs:
    def test_inner_product_executes(self):
        graph = inner_product_graph(16)
        out = graph.execute(np.ones(16))
        assert out.shape == (1,)

    def test_activation_graphs_execute(self):
        for name in ("relu", "tanh_pw", "sigmoid_exp", "act_lut"):
            graph = activation_graph(name)
            out = graph.execute(np.linspace(-2, 2, 16))
            assert out.shape == (16,)

    def test_relu_graph_semantics(self):
        graph = activation_graph("relu")
        out = graph.execute(np.array([-1.0] * 8 + [1.0] * 8))
        assert np.all(out[:8] == 0.0)
        assert np.all(out[8:] > 0.0)

    def test_conv1d_full_unroll_matches_numpy(self):
        graph = conv1d_graph(n_outputs=8, kernel=2, unroll=8)
        x = np.linspace(-1, 1, 9)
        out = graph.execute(x)
        assert out.shape == (8,)

    def test_conv1d_unroll_divides(self):
        with pytest.raises(ValueError):
            conv1d_graph(n_outputs=8, unroll=3)

    def test_conv1d_initiation_interval(self):
        assert conv1d_graph(unroll=1).initiation_interval == 8
        assert conv1d_graph(unroll=8).initiation_interval == 1
