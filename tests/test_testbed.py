"""Tests for the end-to-end testbed: events, traffic, baseline, training."""

import pytest

from repro.testbed import (
    ControlPlaneBaseline,
    EventQueue,
    OnlineTrainer,
    StageLatencies,
    TaurusDataPlane,
    TrainingCostModel,
    build_workload,
)


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        q.run()
        assert fired == ["a", "b"]

    def test_priority_breaks_ties(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append("low"), priority=5)
        q.schedule(1.0, lambda: fired.append("high"), priority=0)
        q.run()
        assert fired == ["high", "low"]

    def test_run_until(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: fired.append(1))
        q.schedule(5.0, lambda: fired.append(5))
        q.run(until=2.0)
        assert fired == [1]
        assert q.now == 2.0
        assert len(q) == 1

    def test_cannot_schedule_past(self):
        q = EventQueue()
        q.schedule(1.0, lambda: q.schedule(0.5, lambda: None))
        with pytest.raises(ValueError):
            q.run()

    def test_schedule_in(self):
        q = EventQueue()
        fired = []
        q.schedule(1.0, lambda: q.schedule_in(0.5, lambda: fired.append(q.now)))
        q.run()
        assert fired == [1.5]


@pytest.fixture(scope="module")
def small_workload():
    return build_workload(n_connections=800, max_packets=25_000, seed=2)


class TestWorkload:
    def test_split_disjoint_sizes(self, small_workload):
        assert len(small_workload.train) + len(small_workload.live) == 800

    def test_trace_matches_live_flows(self, small_workload):
        assert len(small_workload.trace.flows) == len(small_workload.live)

    def test_packet_rate_positive(self, small_workload):
        assert small_workload.packet_rate_pps > 0

    def test_anomalous_packets_present(self, small_workload):
        assert 0 < small_workload.anomalous_packets < small_workload.n_packets


class TestControlPlaneBaseline:
    def test_stage_latency_model(self):
        stages = StageLatencies()
        assert stages.db_ms(1) < stages.db_ms(30) < stages.db_ms(3000)
        # Bulk regime: marginal cost collapses past the knee.
        marginal_small = stages.db_ms(30) - stages.db_ms(29)
        marginal_big = stages.db_ms(3000) - stages.db_ms(2999)
        assert marginal_big < marginal_small

    def test_batches_grow_with_sampling(self, small_workload, trained_dnn):
        baseline = ControlPlaneBaseline(model=trained_dnn, seed=0)
        low = baseline.run(small_workload.trace, 1e-4)
        high = baseline.run(small_workload.trace, 1e-2)
        assert high.mean_batch > low.mean_batch

    def test_detection_far_below_taurus(self, small_workload, trained_dnn, quantized_dnn):
        baseline = ControlPlaneBaseline(model=trained_dnn, seed=0)
        result = baseline.run(small_workload.trace, 1e-3)
        taurus = TaurusDataPlane(quantized_dnn).run(small_workload.trace)
        assert taurus.detected_percent > 10 * max(result.detected_percent, 0.1)

    def test_total_is_stage_sum(self, small_workload, trained_dnn):
        baseline = ControlPlaneBaseline(model=trained_dnn, seed=0)
        r = baseline.run(small_workload.trace, 1e-3)
        assert r.total_ms == pytest.approx(
            r.xdp_ms + r.db_ms + r.ml_ms + r.install_ms, rel=1e-6
        )

    def test_rules_bounded_by_flows(self, small_workload, trained_dnn):
        baseline = ControlPlaneBaseline(model=trained_dnn, seed=0)
        r = baseline.run(small_workload.trace, 1e-2)
        assert r.rules_installed <= len(small_workload.trace.flows)

    def test_invalid_rate(self, small_workload, trained_dnn):
        baseline = ControlPlaneBaseline(model=trained_dnn, seed=0)
        with pytest.raises(ValueError):
            baseline.run(small_workload.trace, 0.0)


class TestTaurusDataPlane:
    def test_full_model_accuracy(self, small_workload, quantized_dnn, train_test_split):
        """The data plane sustains the model's offline F1 (Section 5.2.2)."""
        plane = TaurusDataPlane(quantized_dnn)
        result = plane.run(small_workload.trace)
        assert result.f1_percent > 60.0
        assert result.detected_percent > 50.0

    def test_latency_is_fabric_latency(self, small_workload, quantized_dnn):
        plane = TaurusDataPlane(quantized_dnn)
        result = plane.run(small_workload.trace)
        assert result.added_latency_ns == pytest.approx(151, abs=25)

    def test_fabric_equivalence(self, small_workload, quantized_dnn):
        plane = TaurusDataPlane(quantized_dnn)
        assert plane.verify_equivalence(small_workload.trace, n_samples=16)

    def test_fabric_equivalence_full_trace(self, small_workload, quantized_dnn):
        """Default verify now streams the whole trace, not a spot check."""
        plane = TaurusDataPlane(quantized_dnn)
        assert plane.verify_equivalence(small_workload.trace)

    def test_chunk_size_does_not_change_scores(self, small_workload, quantized_dnn):
        plane = TaurusDataPlane(quantized_dnn)
        small = plane.run(small_workload.trace, chunk_size=1000)
        big = plane.run(small_workload.trace, chunk_size=100_000)
        assert small == big

    def test_invalid_chunk_size(self, small_workload, quantized_dnn):
        plane = TaurusDataPlane(quantized_dnn)
        with pytest.raises(ValueError):
            plane.run(small_workload.trace, chunk_size=0)

    def test_scoring_does_not_advance_issue_clock(self, small_workload, quantized_dnn):
        """run/verify are read-only passes: a later per-packet inference on
        the scoring block must not see a phantom stall from them."""
        plane = TaurusDataPlane(quantized_dnn)
        plane.run(small_workload.trace)
        plane.verify_equivalence(small_workload.trace)
        result = plane.exact_block.process(
            small_workload.trace.packets[0].features, at_cycle=0
        )
        assert result.latency_ns == plane.exact_block.design.latency_ns


class TestExperimentReusesTaurusPass:
    def test_one_streamed_pass_per_sweep(self, monkeypatch):
        """Regression: run_row used to recompute the (sampling-rate-
        independent) Taurus result for every row of the sweep."""
        from repro.testbed import EndToEndExperiment
        from repro.testbed import dataplane as dataplane_mod

        experiment = EndToEndExperiment.build(
            n_connections=400, max_packets=4000, epochs=2, seed=0
        )
        calls = {"run": 0}
        # The default Taurus pass is the full batched switch model.
        original = dataplane_mod.TaurusDataPlane.run_switch

        def counting_run(self, trace, chunk_size=dataplane_mod.DEFAULT_CHUNK_SIZE):
            calls["run"] += 1
            return original(self, trace, chunk_size)

        monkeypatch.setattr(dataplane_mod.TaurusDataPlane, "run_switch", counting_run)
        rows = experiment.run(sampling_rates=(1e-4, 1e-3, 1e-2))
        assert calls["run"] == 1
        # The rows are unchanged: every one carries the single shared pass.
        direct = original(experiment.dataplane, experiment.workload.trace)
        for row in rows:
            assert row.taurus == direct


class TestOnlineTrainer:
    @pytest.fixture(scope="class")
    def trainer(self, train_test_split):
        train, test = train_test_split
        return OnlineTrainer(
            train_pool=train, test_pool=test, packet_rate_pps=500_000, seed=0
        )

    def test_f1_improves(self, trainer):
        curve = trainer.run(1e-2, batch_size=64, epochs=1, horizon_s=1.0, max_updates=60)
        assert curve[-1].f1_percent > curve[0].f1_percent

    def test_higher_sampling_converges_faster(self, trainer):
        """Fig. 13's headline."""
        slow = trainer.run(1e-4, batch_size=64, epochs=1, horizon_s=20.0, max_updates=60)
        fast = trainer.run(1e-2, batch_size=64, epochs=1, horizon_s=20.0, max_updates=60)
        target = 66.0
        t_slow = trainer.time_to_reach(slow, target)
        t_fast = trainer.time_to_reach(fast, target)
        assert t_fast is not None
        assert t_slow is None or t_fast < t_slow

    def test_cost_model_scales(self):
        cost = TrainingCostModel()
        assert cost.update_ms(256, 10) > cost.update_ms(64, 1)

    def test_curve_points_monotone_in_time(self, trainer):
        curve = trainer.run(1e-3, batch_size=64, epochs=1, horizon_s=2.0, max_updates=30)
        times = [p.time_s for p in curve]
        assert times == sorted(times)

    def test_invalid_args(self, trainer):
        with pytest.raises(ValueError):
            trainer.run(0.0)
        with pytest.raises(ValueError):
            trainer.run(1e-2, batch_size=0)
