"""Tests for the application layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import (
    APPLICATIONS,
    CountMinSketch,
    ElasticRSS,
    ReactionTime,
    cluster_purity,
    meets_requirement,
)


class TestRegistry:
    def test_table1_row_count(self):
        assert len(APPLICATIONS) == 10  # Table 1's rows

    def test_categories(self):
        cats = {app.category for app in APPLICATIONS}
        assert cats == {"security", "performance"}

    def test_per_packet_apps_need_taurus(self):
        """Apps with packet timescales cannot be served by a ms control plane."""
        control_plane_latency = 32e-3  # Table 8's best case
        taurus_latency = 221e-9
        for app in APPLICATIONS:
            if ReactionTime.PACKET in app.timescales:
                assert not meets_requirement(app, control_plane_latency), app.name
                assert meets_requirement(app, taurus_latency), app.name

    def test_flow_scale_apps_tolerate_control_plane(self):
        heavy_hitters = next(a for a in APPLICATIONS if a.name == "heavy_hitters")
        assert meets_requirement(heavy_hitters, 5e-3)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            meets_requirement(APPLICATIONS[0], -1.0)


class TestCountMinSketch:
    def test_never_undercounts(self):
        """The CMS estimate is a one-sided overapproximation."""
        rng = np.random.default_rng(0)
        cms = CountMinSketch(width=256, depth=4)
        truth: dict[tuple, int] = {}
        for __ in range(3000):
            key = (int(rng.integers(0, 200)),)
            cms.update(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert cms.query(key) >= count

    def test_error_bound(self):
        """Overcount <= 2N/width for the vast majority of keys."""
        rng = np.random.default_rng(1)
        cms = CountMinSketch(width=512, depth=4)
        truth: dict[tuple, int] = {}
        for __ in range(5000):
            key = (int(rng.integers(0, 500)),)
            cms.update(key)
            truth[key] = truth.get(key, 0) + 1
        bound = 2 * cms.total / cms.width
        violations = sum(
            1 for key, count in truth.items() if cms.query(key) - count > bound
        )
        assert violations / len(truth) < 0.07

    def test_conservative_update_tighter(self):
        rng = np.random.default_rng(2)
        keys = [(int(rng.integers(0, 300)),) for __ in range(4000)]
        plain = CountMinSketch(width=128, depth=4, conservative=False)
        conservative = CountMinSketch(width=128, depth=4, conservative=True)
        truth: dict[tuple, int] = {}
        for key in keys:
            plain.update(key)
            conservative.update(key)
            truth[key] = truth.get(key, 0) + 1
        err_plain = sum(plain.query(k) - c for k, c in truth.items())
        err_cons = sum(conservative.query(k) - c for k, c in truth.items())
        assert err_cons <= err_plain

    def test_heavy_hitters_found(self):
        cms = CountMinSketch(width=1024, depth=4)
        for __ in range(900):
            cms.update(("elephant",))
        for i in range(100):
            cms.update((f"mouse{i}",))
        hh = cms.heavy_hitters([("elephant",), ("mouse1",)], threshold_fraction=0.5)
        assert hh == [("elephant",)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        cms = CountMinSketch()
        with pytest.raises(ValueError):
            cms.update(("k",), count=0)
        with pytest.raises(ValueError):
            cms.heavy_hitters([], threshold_fraction=0.0)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=300))
    @settings(max_examples=20, deadline=None)
    def test_total_conserved(self, keys):
        cms = CountMinSketch(width=64, depth=3)
        for k in keys:
            cms.update((k,))
        assert cms.total == len(keys)

    @given(st.lists(st.integers(0, 80), min_size=0, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_query_batch_matches_scalar_query(self, keys):
        """The paired batch hook is bit-identical to per-key queries."""
        cms = CountMinSketch(width=64, depth=3)
        for k in keys:
            cms.update((k,))
        probe = [(k,) for k in set(keys)] + [("absent",)]
        batch = cms.query_batch(probe)
        assert batch.dtype == np.int64
        assert batch.shape == (len(probe),)
        assert [int(v) for v in batch] == [cms.query(key) for key in probe]

    def test_query_batch_empty(self):
        cms = CountMinSketch(width=64, depth=3)
        empty = cms.query_batch([])
        assert empty.shape == (0,) and empty.dtype == np.int64


class TestElasticRSS:
    def _flows(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        return [tuple(int(v) for v in rng.integers(0, 2**32, size=5)) for __ in range(n)]

    def test_deterministic(self):
        rss = ElasticRSS(n_cores=8)
        flow = (1, 2, 3, 4, 5)
        assert rss.select_core(flow) == rss.select_core(flow)

    def test_roughly_uniform(self):
        rss = ElasticRSS(n_cores=8)
        counts = np.bincount([rss.select_core(f) for f in self._flows(2000)], minlength=8)
        assert counts.min() > 0.6 * counts.mean()
        assert counts.max() < 1.4 * counts.mean()

    def test_disabled_core_gets_nothing(self):
        rss = ElasticRSS(n_cores=4)
        rss.set_weight(2, 0.0)
        cores = {rss.select_core(f) for f in self._flows(500)}
        assert 2 not in cores

    def test_consistency_on_core_removal(self):
        """Only flows on the removed core move (rendezvous property)."""
        rss = ElasticRSS(n_cores=8)
        flows = self._flows(600)
        before = {f: rss.select_core(f) for f in flows}
        rss.set_weight(3, 0.0)
        moved_from_other = sum(
            1 for f in flows
            if before[f] != 3 and rss.select_core(f) != before[f]
        )
        assert moved_from_other == 0

    def test_disruption_metric(self):
        rss = ElasticRSS(n_cores=8)
        flows = self._flows(400)
        disruption = rss.disruption_on_change(flows, core=0, new_weight=0.0)
        assert 0.05 < disruption < 0.25  # ~1/8 of flows move

    def test_weight_scales_share(self):
        rss = ElasticRSS(n_cores=4)
        rss.set_weight(0, 3.0)
        counts = np.bincount([rss.select_core(f) for f in self._flows(3000)], minlength=4)
        assert counts[0] > 1.5 * counts[1:].mean()

    def test_invalid(self):
        with pytest.raises(ValueError):
            ElasticRSS(n_cores=0)
        rss = ElasticRSS(n_cores=2)
        with pytest.raises(IndexError):
            rss.set_weight(5, 1.0)
        with pytest.raises(ValueError):
            rss.set_weight(0, -1.0)

    def test_scores_batch_bit_identical_to_scalar(self):
        rss = ElasticRSS(n_cores=8, weights=np.array([1, 2, 0, 1, 3, 1, 1, 0.5]))
        flows = self._flows(200)
        batched = rss.scores_batch(flows)
        assert batched.shape == (len(flows), 8)
        for i, flow in enumerate(flows):
            assert np.array_equal(batched[i], rss.scores(flow))

    def test_select_core_batch_bit_identical_to_scalar(self):
        rss = ElasticRSS(n_cores=8)
        flows = self._flows(300)
        scalar = np.array([rss.select_core(f) for f in flows])
        batched = rss.select_core_batch(flows)
        assert batched.dtype == np.int64
        assert np.array_equal(batched, scalar)

    def test_select_core_batch_records_assignments(self):
        rss = ElasticRSS(n_cores=4)
        flows = self._flows(50)
        cores = rss.select_core_batch(flows)
        for flow, core in zip(flows, cores):
            assert rss.assignments[rss._flow_key(flow)] == int(core)

    def test_batch_empty(self):
        rss = ElasticRSS(n_cores=4)
        assert rss.scores_batch([]).shape == (0, 4)
        empty = rss.select_core_batch([])
        assert empty.shape == (0,) and empty.dtype == np.int64


class TestClusterPurity:
    def test_perfect(self):
        a = np.array([0, 0, 1, 1])
        assert cluster_purity(a, a) == 1.0

    def test_mixed(self):
        assignments = np.array([0, 0, 0, 0])
        labels = np.array([0, 0, 1, 1])
        assert cluster_purity(assignments, labels) == 0.5

    def test_shape_check(self):
        with pytest.raises(ValueError):
            cluster_purity(np.array([0]), np.array([0, 1]))
