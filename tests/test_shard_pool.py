"""Lifecycle + identity tests for the persistent shard worker pool.

:class:`~repro.runtime.ShardPool` keeps pre-forked (or thread-backed)
workers warm across runs and dispatches pipelined chunks instead of one
task per run.  These tests pin the contract down:

* repeated runs on one pool are **bit/stat-identical** to the
  fork-per-run oracle (and to the single-pipeline oracle), including
  per-chunk incremental state-delta transport;
* a killed worker is detected, reported with its exit status, and
  replaced by a fresh fork;
* pool close is deterministic — bounded, idempotent, and safe under an
  abandoned mid-trace run;
* the ``pool=True`` surfaces on :class:`TaurusDataPlane`
  (``run`` / ``run_switch`` / ``run_multi`` / ``verify_equivalence``)
  match their fork-per-run twins call for call.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.hw import MapReduceBlock
from repro.mapreduce import dnn_graph
from repro.runtime import ShardPool, ShardedRuntime, WorkerCrash

from test_shard_runtime import (
    MAX_SHARDS,
    _assert_equivalent,
    _oracle,
    _pipeline,
    _random_columns,
    _reset,
)

HAS_FORK = hasattr(os, "fork")
POOL_MODES = ["thread"] + (["fork"] if HAS_FORK else [])


@pytest.fixture(scope="module")
def blocks(quantized_dnn):
    """Oracle block + one per shard, all identically configured."""
    return [
        MapReduceBlock(dnn_graph(quantized_dnn)) for _ in range(MAX_SHARDS + 1)
    ]


def _pooled_runtime(blocks, shards, slots, tables, mode, pool_options=None):
    for block in blocks[1 : shards + 1]:
        _reset(block)
    return ShardedRuntime(
        lambda i: _pipeline(blocks[i + 1], slots, tables),
        shards=shards,
        executor="serial",
        pool=mode,
        pool_options=pool_options,
    )


class _Sleeper:
    """A worker context whose chunks take arbitrarily long (for close
    determinism under an abandoned run)."""

    def handle(self, kind, payload):
        if kind == "sleep":
            time.sleep(payload)
        return "done"


class TestPoolIdentity:
    @pytest.mark.parametrize("mode", POOL_MODES)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_pool_matches_oracle(self, blocks, shards, mode):
        """One pooled run == the single-pipeline oracle, every observable."""
        columns = _random_columns(seed=31, n=150)
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(blocks, shards, slots=16, tables=True, mode=mode)
        with runtime:
            _assert_equivalent(oracle, runtime, columns)

    @pytest.mark.parametrize("mode", POOL_MODES)
    def test_repeated_runs_match_fork_per_run(self, blocks, mode):
        """Warm workers across back-to-back runs == fresh forks per run.

        The fork-per-run oracle (the PR-3 executor path) accumulates
        pipeline state across runs; warm pool workers must accumulate
        the same state chunk-delta by chunk-delta.
        """
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(blocks, 2, slots=16, tables=True, mode=mode)
        with runtime:
            for seed in (32, 33, 34):
                _assert_equivalent(
                    oracle, runtime, _random_columns(seed, 90), chunk_size=16
                )

    @pytest.mark.skipif(not HAS_FORK, reason="fork pool needs POSIX")
    def test_reset_state_gives_fresh_run_semantics(self, blocks):
        """snapshot/restore per run == rebuilding pipelines per run."""
        runtime = _pooled_runtime(blocks, 2, slots=16, tables=True, mode="fork")
        with runtime:
            baseline = [pipe.state_snapshot() for pipe in runtime.pipelines]
            columns = _random_columns(seed=35, n=80)
            first = runtime.process_trace(columns, chunk_size=16)
            runtime.reset_state(baseline)
            second = runtime.process_trace(columns, chunk_size=16)
            assert np.array_equal(first.decisions, second.decisions)
            assert np.array_equal(
                first.ml_scores, second.ml_scores, equal_nan=True
            )
            state = runtime.merged_state()
            # Two identical fresh runs, not one accumulated double run.
            assert state["parser_packets"] == columns.n


class TestPoolLifecycle:
    @pytest.mark.skipif(not HAS_FORK, reason="fork pool needs POSIX")
    def test_killed_worker_recovered_transparently(self, blocks):
        """SIGKILLing a worker mid-run no longer fails the run: the pool
        re-forks a replacement from parent state, replays the unacked
        chunks, and the merged result matches the oracle bit-for-bit.
        The crash is visible only on the health surface."""
        oracle = _oracle(blocks, 16, False)
        runtime = _pooled_runtime(blocks, 2, slots=16, tables=False, mode="fork")
        with runtime:
            victim = runtime.pool.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            _assert_equivalent(
                oracle, runtime, _random_columns(36, 60), chunk_size=16
            )
            assert runtime.pool.worker_pids[0] != victim
            assert runtime.pool.alive() == [True, True]
            health = runtime.pool_health
            assert health is runtime.pool.health
            assert health.worker(0).crashes == 1
            assert health.restarts >= 1
            # The replacement keeps serving follow-up runs correctly.
            _assert_equivalent(
                oracle, runtime, _random_columns(37, 60), chunk_size=16
            )

    @pytest.mark.skipif(not HAS_FORK, reason="fork pool needs POSIX")
    def test_worker_crash_carries_exit_status(self):
        pool = ShardPool([_Sleeper()], mode="fork", close_timeout=0.5)
        with pool:
            os.kill(pool.worker_pids[0], signal.SIGKILL)
            pool.submit(0, "sleep", 0.0)
            with pytest.raises(WorkerCrash) as info:
                pool.collect(0)
            assert info.value.exit_status == -signal.SIGKILL
            assert info.value.signal_name == "SIGKILL"
            assert info.value.worker_index == 0
            # Human-readable report: signal by name, not a negative int.
            assert "SIGKILL" in str(info.value)
            assert str(pool.worker_pids[0]) in str(info.value)

    @pytest.mark.skipif(not HAS_FORK, reason="fork pool needs POSIX")
    def test_close_is_deterministic_under_abandoned_run(self):
        """Requests in flight, responses never collected, workers stuck
        mid-chunk: close() must still return within its bound and leave
        no child behind."""
        pool = ShardPool([_Sleeper(), _Sleeper()], mode="fork", close_timeout=0.5)
        pids = list(pool.worker_pids)
        pool.submit(0, "sleep", 30.0)
        pool.submit(0, "sleep", 30.0)  # queued behind the first
        pool.submit(1, "sleep", 30.0)
        time.sleep(0.2)  # workers are now parked inside their chunks
        t0 = time.perf_counter()
        pool.close()
        assert time.perf_counter() - t0 < 4.0
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)  # reaped, not leaked
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.submit(0, "sleep", 0.0)

    @pytest.mark.skipif(not HAS_FORK, reason="fork pool needs POSIX")
    def test_close_timeout_is_one_end_to_end_budget(self):
        """``close_timeout`` bounds a slot's *whole* teardown — writer
        join, reap, and worker close share one deadline instead of each
        burning a full budget in sequence (worst case used to be ~3x)."""
        pool = ShardPool([_Sleeper()], mode="fork", close_timeout=0.6)
        pool.submit(0, "sleep", 30.0)
        pool.submit(0, "sleep", 30.0)  # writer parked behind a stuck worker
        time.sleep(0.2)
        t0 = time.perf_counter()
        pool.close()
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.5, (
            f"close took {elapsed:.2f}s; budget must be end-to-end, "
            "not per teardown phase"
        )

    @pytest.mark.parametrize("mode", POOL_MODES)
    def test_dispatch_stream_failure_surfaces_not_hangs(self, mode):
        """A request stream whose iterator raises mid-run must fail the
        run promptly (echoed through the worker as an abort) instead of
        stranding the collector on a response that will never come — and
        the worker must stay usable."""

        class Echo:
            def handle(self, kind, payload):
                return payload

        def bad_stream():
            yield ("echo", 1)
            raise RuntimeError("staging blew up")

        with ShardPool([Echo()], mode=mode) as pool:
            with pytest.raises(RuntimeError, match="staging blew up"):
                pool.map_streams([(bad_stream(), 3)])
            assert pool.alive() == [True]
            # The conversation stayed in sync: new runs still work.
            assert pool.map_streams([(iter([("echo", 7)]), 1)]) == [[7]]

    @pytest.mark.skipif(not HAS_FORK, reason="fork pool needs POSIX")
    def test_failed_run_resyncs_parent_from_workers(self, blocks):
        """A run that fails after some chunks executed worker-side must
        not leave this process's pipelines behind the workers: the next
        (successful) run still matches the oracle exactly."""
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(blocks, 2, slots=16, tables=True, mode="fork")
        with runtime:
            columns = _random_columns(seed=61, n=80)
            # Poison one chunk payload so dispatch fails mid-run on one
            # shard while other chunks have already executed.
            real_requests = ShardedRuntime._chunk_requests

            def poisoned(sub, chunk, want_delta):
                for i, request in enumerate(real_requests(sub, chunk, want_delta)):
                    if i == 1:
                        raise RuntimeError("poisoned chunk")
                    yield request

            runtime._chunk_requests = poisoned
            with pytest.raises(RuntimeError):
                runtime.process_trace(columns, chunk_size=16)
            runtime._chunk_requests = real_requests
            # The invariant the resync maintains: this process's
            # pipelines equal the workers', observable for observable,
            # even though the failed run's deltas were discarded.
            snapshots = runtime.pool.broadcast("snapshot")
            for pipe, theirs in zip(runtime.pipelines, snapshots):
                mine = pipe.state_snapshot()
                assert mine["stats"] == theirs["stats"]
                for name, values in theirs["registers"].items():
                    assert np.array_equal(mine["registers"][name], values)
                assert mine["parser_packets"] == theirs["parser_packets"]
                assert mine["tables"] == theirs["tables"]
                assert mine["block"] == theirs["block"]
            # And after a rewind the pool serves a pristine run again.
            runtime.rewind_state()
            _assert_equivalent(oracle, runtime, columns, chunk_size=16)

    @pytest.mark.skipif(not HAS_FORK, reason="fork pool needs POSIX")
    def test_idle_multi_worker_close_is_fast_eof(self):
        """Regression: initial workers inherited earlier siblings'
        parent-side pipe fds, so closing worker 0's request pipe never
        EOFed it while a later sibling lived — close() of a healthy idle
        pool degraded to close_timeout + SIGKILL per worker."""
        pool = ShardPool(
            [_Sleeper(), _Sleeper(), _Sleeper()], mode="fork", close_timeout=5.0
        )
        assert pool.broadcast("ping") == ["done", "done", "done"]
        t0 = time.perf_counter()
        pool.close()
        assert time.perf_counter() - t0 < 2.0, "EOF shutdown degraded to SIGKILL"
        # Clean EOF exits, not signal deaths.
        assert [slot.worker._exit_status for slot in pool._slots] == [0, 0, 0]

    def test_thread_mode_close_unblocks_inflight_run(self):
        """Regression: thread-mode close() mid-run broke the stream
        without signalling, stranding the run's collector in an untimed
        response-queue get forever."""
        import threading

        release = threading.Event()

        class Slow:
            def handle(self, kind, payload):
                release.wait(5.0)
                return payload

        pool = ShardPool([Slow()], mode="thread", close_timeout=0.5)
        outcome = {}

        def run():
            try:
                outcome["result"] = pool.map_streams(
                    [(iter([("echo", i) for i in range(4)]), 4)]
                )
            except RuntimeError as exc:
                outcome["error"] = str(exc)

        runner = threading.Thread(target=run, daemon=True)
        runner.start()
        time.sleep(0.2)  # the run is now in flight on the worker
        pool.close()
        release.set()  # let the in-flight chunk finish
        runner.join(timeout=3.0)
        assert not runner.is_alive(), "run stranded after close()"
        assert "error" in outcome  # aborted, not silently short-delivered

    @pytest.mark.parametrize("mode", POOL_MODES)
    def test_worker_exception_is_in_band(self, mode):
        """A handler exception fails the run but leaves the worker alive
        and the conversation in sync."""

        class Fragile:
            def handle(self, kind, payload):
                if kind == "boom":
                    raise ValueError("chunk exploded")
                return payload

        with ShardPool([Fragile()], mode=mode) as pool:
            with pytest.raises(RuntimeError, match="chunk exploded"):
                pool.broadcast("boom")
            assert pool.alive() == [True]
            assert pool.broadcast("echo", [41]) == [41]

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            ShardPool([], mode="thread")
        with pytest.raises(ValueError):
            ShardPool([_Sleeper()], mode="hyperdrive")
        with pytest.raises(ValueError):
            ShardPool([_Sleeper()], mode="thread", window=0)


class TestPooledDataPlane:
    @pytest.fixture()
    def small_trace(self, train_test_split):
        from repro.datasets import expand_to_packets

        __, test = train_test_split
        return expand_to_packets(test, max_packets=400, seed=51)

    def test_run_switch_repeated_matches_fork_per_run(
        self, quantized_dnn, small_trace
    ):
        from repro.testbed.dataplane import TaurusDataPlane

        executor = "fork" if HAS_FORK else "thread"
        plain = TaurusDataPlane(quantized_dnn, shards=2, executor=executor)
        with TaurusDataPlane(
            quantized_dnn, shards=2, executor=executor, pool=True
        ) as pooled:
            for __ in range(3):
                expected = plain.run_switch(small_trace, chunk_size=64)
                assert expected == pooled.run_switch(small_trace, chunk_size=64)
                assert (
                    plain.last_modeled_drain_ns == pooled.last_modeled_drain_ns
                )

    def test_run_and_verify_through_pool(self, quantized_dnn, small_trace):
        from repro.testbed.dataplane import TaurusDataPlane

        plain = TaurusDataPlane(quantized_dnn, shards=2)
        with TaurusDataPlane(quantized_dnn, shards=2, pool=True) as pooled:
            assert plain.run(small_trace, chunk_size=32) == pooled.run(
                small_trace, chunk_size=32
            )
            assert pooled.verify_equivalence(small_trace, chunk_size=32)

    def test_run_multi_reuses_and_resets_the_fabric(
        self, quantized_dnn, small_trace
    ):
        from repro.testbed.dataplane import TaurusDataPlane

        plain = TaurusDataPlane(quantized_dnn, shards=2)
        with TaurusDataPlane(quantized_dnn, shards=2, pool=True) as pooled:
            apps = [pooled.anomaly_app(), pooled.anomaly_app(name="anomaly2")]
            traces = [small_trace, small_trace]
            expected = plain.run_multi(apps, traces, chunk_size=64)
            first = pooled.run_multi(apps, traces, chunk_size=64)
            assert pooled.last_fabric is not None
            fabric = pooled.last_fabric
            second = pooled.run_multi(apps, traces, chunk_size=64)
            assert pooled.last_fabric is fabric  # cached, not rebuilt
            for outcome in (first, second):
                for name in expected.results:
                    assert np.array_equal(
                        expected.results[name].decisions,
                        outcome.results[name].decisions,
                    )
                    assert np.array_equal(
                        expected.results[name].ml_scores,
                        outcome.results[name].ml_scores,
                        equal_nan=True,
                    )
                assert outcome.drain_ns == expected.drain_ns
                assert outcome.reconfigurations == expected.reconfigurations
