"""Tests for activation functions and their hardware approximations."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import (
    ACTIVATIONS,
    build_lut,
    leaky_relu,
    lut_activation,
    relu,
    sigmoid,
    sigmoid_piecewise,
    sigmoid_taylor,
    softmax,
    tanh_piecewise,
    tanh_taylor,
)
from repro.ml.activations import activation

xs = np.linspace(-8, 8, 401)


class TestExact:
    def test_relu(self):
        assert relu(np.array([-1.0, 2.0])).tolist() == [0.0, 2.0]

    def test_leaky_relu_slope(self):
        assert leaky_relu(np.array([-8.0]))[0] == pytest.approx(-1.0)

    def test_sigmoid_limits(self):
        assert sigmoid(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-9)
        assert sigmoid(np.array([100.0]))[0] == pytest.approx(1.0, abs=1e-9)
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_numerically_stable(self):
        out = sigmoid(np.array([-710.0, 710.0]))
        assert np.all(np.isfinite(out))

    def test_softmax_normalizes(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs.argmax() == 2

    def test_activation_lookup(self):
        assert activation("relu") is relu
        with pytest.raises(ValueError):
            activation("gelu")


class TestApproximations:
    def test_taylor_sigmoid_close(self):
        err = np.max(np.abs(sigmoid_taylor(xs) - sigmoid(xs)))
        assert err < 0.02

    def test_taylor_tanh_close(self):
        err = np.max(np.abs(tanh_taylor(xs) - np.tanh(xs)))
        assert err < 0.03

    def test_piecewise_sigmoid_close(self):
        err = np.max(np.abs(sigmoid_piecewise(xs) - sigmoid(xs)))
        assert err < 0.08  # PW trades accuracy for 3x less area (Table 6)

    def test_piecewise_tanh_close(self):
        err = np.max(np.abs(tanh_piecewise(xs) - np.tanh(xs)))
        assert err < 0.16

    def test_piecewise_monotone(self):
        out = sigmoid_piecewise(xs)
        assert np.all(np.diff(out) >= -1e-12)

    def test_piecewise_range(self):
        out = sigmoid_piecewise(np.linspace(-50, 50, 101))
        assert np.all((out >= 0.0) & (out <= 1.0))

    @given(st.floats(-8, 8))
    def test_taylor_in_unit_interval(self, x):
        val = float(sigmoid_taylor(np.array([x]))[0])
        assert -0.01 <= val <= 1.01


class TestLUT:
    def test_build_lut_shape(self):
        table = build_lut(np.tanh, entries=1024)
        assert table.shape == (1024,)

    def test_lut_activation_error_small(self):
        lut = lut_activation(np.tanh)
        err = np.max(np.abs(lut(xs) - np.tanh(xs)))
        assert err < 0.02  # 1024 x 8-bit entries (Section 5.1.3)

    def test_lut_clamps_out_of_range(self):
        lut = lut_activation(np.tanh)
        assert lut(np.array([100.0]))[0] == pytest.approx(np.tanh(8.0), abs=0.02)
        assert lut(np.array([-100.0]))[0] == pytest.approx(np.tanh(-8.0), abs=0.02)


class TestRegistry:
    def test_all_variants_present(self):
        expected = {
            "relu", "leaky_relu", "tanh_exp", "sigmoid_exp",
            "tanh_pw", "sigmoid_pw", "act_lut",
        }
        assert expected == set(ACTIVATIONS)

    def test_chain_lengths_order(self):
        """Taylor > piecewise > LUT > ReLU in op-chain cost (Table 6)."""
        chains = {name: spec.chain_ops for name, spec in ACTIVATIONS.items()}
        assert chains["relu"] < chains["act_lut"] < chains["tanh_pw"]
        assert chains["tanh_pw"] < chains["tanh_exp"]
        assert chains["sigmoid_pw"] < chains["sigmoid_exp"]

    def test_only_lut_uses_tables(self):
        for name, spec in ACTIVATIONS.items():
            assert (spec.lut_tables > 0) == (name == "act_lut")

    def test_error_vs_reference_api(self):
        err = ACTIVATIONS["tanh_pw"].error_vs_reference(xs)
        assert 0.0 < err < 0.2
