"""Shared fixtures: small trained models reused across the test suite.

Training is deterministic (seeded) and sized to keep the suite fast;
session scope means each model trains once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    dnn_feature_matrix,
    generate_connections,
    iot_cluster_dataset,
    svm_feature_matrix,
)
from repro.fixpoint import quantize_model
from repro.ml import KMeans, RBFKernelSVM, anomaly_detection_dnn


@pytest.fixture(scope="session")
def connections():
    """A moderately sized NSL-KDD-like dataset."""
    return generate_connections(4000, seed=11)


@pytest.fixture(scope="session")
def train_test_split(connections):
    rng = np.random.default_rng(5)
    return connections.split(0.7, rng)


@pytest.fixture(scope="session")
def trained_dnn(train_test_split):
    train, __ = train_test_split
    model = anomaly_detection_dnn(seed=3)
    model.fit(dnn_feature_matrix(train), train.labels, epochs=15, batch_size=64)
    return model


@pytest.fixture(scope="session")
def quantized_dnn(trained_dnn, train_test_split):
    train, __ = train_test_split
    return quantize_model(trained_dnn, dnn_feature_matrix(train)[:256])


@pytest.fixture(scope="session")
def trained_svm(train_test_split):
    train, __ = train_test_split
    model = RBFKernelSVM(budget=16, epochs=2, seed=3)
    model.fit(svm_feature_matrix(train)[:600], train.labels[:600])
    return model


@pytest.fixture(scope="session")
def trained_kmeans():
    features, __ = iot_cluster_dataset(1200, seed=7)
    return KMeans(n_clusters=5, seed=7).fit(features)
