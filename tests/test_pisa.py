"""Tests for the PISA switch substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pisa import (
    MAX_OPS_PER_STAGE,
    Action,
    FlowFeatureAccumulator,
    LogTransformTable,
    MatchActionTable,
    MatchKind,
    PIFO,
    Packet,
    PacketQueue,
    PortLikelihoodTable,
    Primitive,
    RegisterArray,
    RoundRobinArbiter,
    StandardizeTable,
    TableEntry,
    default_layout,
    default_parser,
)
from repro.pisa.phv import PHV, PHVLayout


def _phv(**values):
    layout = default_layout(("f0", "f1"))
    phv = PHV(layout)
    for k, v in values.items():
        phv.set(k, v)
    return phv


class TestPHV:
    def test_layout_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PHVLayout(fields=(("a", 8), ("a", 8)))

    def test_layout_rejects_unknown_features(self):
        with pytest.raises(ValueError):
            PHVLayout(fields=(("a", 8),), feature_fields=("b",))

    def test_header_fields_masked_to_width(self):
        phv = _phv()
        phv.set("protocol", 0x1FF)  # 8-bit field
        assert phv.get("protocol") == 0xFF

    def test_feature_vector_quantized(self):
        phv = _phv()
        phv.set_features(np.array([0.26, -100.0]))
        vec = phv.feature_vector()
        assert vec[0] == pytest.approx(0.25)  # fix8 roundtrip
        assert vec[1] == -8.0                 # clipped to format range

    def test_set_features_length_check(self):
        phv = _phv()
        with pytest.raises(ValueError):
            phv.set_features(np.zeros(3))

    def test_unknown_field_raises(self):
        phv = _phv()
        with pytest.raises(KeyError):
            phv.get("no_such_field")


class TestParser:
    def test_tcp_path_extracts_ports(self):
        layout = default_layout(("f0",))
        parser = default_parser(layout)
        packet = Packet(headers={"protocol": 0, "src_port": 1234, "dst_port": 80,
                                 "urgent_flag": 1, "src_ip": 1, "dst_ip": 2, "seq": 9})
        phv = parser.parse(packet)
        assert phv.get("src_port") == 1234
        assert phv.get("urgent_flag") == 1

    def test_udp_path_skips_tcp_fields(self):
        layout = default_layout(("f0",))
        parser = default_parser(layout)
        packet = Packet(headers={"protocol": 1, "src_port": 53, "urgent_flag": 1})
        phv = parser.parse(packet)
        assert phv.get("src_port") == 53
        assert phv.get("urgent_flag") == 0  # not extracted on the UDP path

    def test_unknown_protocol_takes_default(self):
        layout = default_layout(("f0",))
        parser = default_parser(layout)
        phv = parser.parse(Packet(headers={"protocol": 7}))
        assert phv.get("src_port") == 0

    def test_payload_len_recorded(self):
        layout = default_layout(("f0",))
        parser = default_parser(layout)
        phv = parser.parse(Packet(headers={"protocol": 0}, payload_len=777))
        assert phv.get("payload_len") == 777

    def test_bad_transition_target_rejected(self):
        from repro.pisa import ParseState, Parser

        with pytest.raises(ValueError):
            Parser(
                default_layout(("f0",)),
                {"start": ParseState(name="start", default_next="nowhere")},
            )


class TestParserLoopDetection:
    def _looping_parser(self):
        from repro.pisa import ParseState, Parser

        return Parser(
            default_layout(("f0",)),
            {
                "start": ParseState(name="start", default_next="spin"),
                "spin": ParseState(name="spin", default_next="start"),
            },
        )

    def test_scalar_parse_raises(self):
        parser = self._looping_parser()
        with pytest.raises(RuntimeError, match="parse graph loop detected"):
            parser.parse(Packet(headers={"protocol": 0}))

    def test_batch_parse_raises(self):
        parser = self._looping_parser()
        with pytest.raises(RuntimeError, match="parse graph loop detected"):
            parser.parse_batch(
                {"protocol": np.zeros(4, dtype=np.int64)},
                np.zeros(4, dtype=np.int64),
            )

    def test_select_loop_detected(self):
        """A loop reached through a select branch also trips the guard."""
        from repro.pisa import ParseState, Parser

        parser = Parser(
            default_layout(("f0",)),
            {
                "start": ParseState(
                    name="start", select="protocol",
                    transitions={0: "start"}, default_next=None,
                ),
            },
        )
        with pytest.raises(RuntimeError, match="parse graph loop detected"):
            parser.parse(Packet(headers={"protocol": 0}))


class TestBatchParser:
    def test_batch_matches_scalar_paths(self):
        layout = default_layout(("f0",))
        scalar = default_parser(layout)
        batch_parser = default_parser(layout)
        packets = [
            Packet(headers={"protocol": 0, "src_port": 1234, "dst_port": 80,
                            "urgent_flag": 1, "src_ip": 1, "dst_ip": 2, "seq": 9},
                   payload_len=10),
            Packet(headers={"protocol": 1, "src_port": 53, "urgent_flag": 1},
                   payload_len=20),
            Packet(headers={"protocol": 7, "src_port": 9}, payload_len=30),
        ]
        n = len(packets)
        field_names = {name for p in packets for name in p.headers}
        headers = {
            name: np.array([int(p.headers.get(name, 0)) for p in packets],
                           dtype=np.int64)
            for name in field_names
        }
        payload = np.array([p.payload_len for p in packets], dtype=np.int64)
        out = batch_parser.parse_batch(headers, payload)
        for i, packet in enumerate(packets):
            expected = scalar.parse(packet)
            materialized = out.to_phv(i)
            assert materialized.values == expected.values, f"packet {i}"
        assert batch_parser.packets_parsed == n


class TestActions:
    def test_vliw_width_enforced(self):
        prims = [Primitive("ml_score", lambda phv: 1.0)] * (MAX_OPS_PER_STAGE + 1)
        with pytest.raises(ValueError):
            Action("too_wide", prims)

    def test_vliw_reads_before_writes(self):
        """All slots see the pre-action PHV (true VLIW semantics)."""
        phv = _phv(ml_score=5)
        action = Action(
            "swapish",
            [
                Primitive("ml_score", lambda p: p.get("decision") + 1),
                Primitive("decision", lambda p: p.get("ml_score") % 4),
            ],
        )
        action.apply(phv)
        assert phv.get("ml_score") == 1   # old decision (0) + 1
        assert phv.get("decision") == 1   # old score (5) % 4

    def test_set_const_helper(self):
        phv = _phv()
        Action.set_const("drop", "decision", 2).apply(phv)
        assert phv.get("decision") == 2


class TestMAT:
    def _table(self, kind=MatchKind.EXACT):
        return MatchActionTable(
            name="t", key_fields=("dst_port",), kind=kind, max_entries=4
        )

    def test_exact_match_hit(self):
        table = self._table()
        table.install(TableEntry({"dst_port": 80}, Action.set_const("f", "decision", 1)))
        phv = _phv(dst_port=80)
        table.apply(phv)
        assert phv.get("decision") == 1
        assert table.entries[0].hits == 1

    def test_miss_uses_default(self):
        table = self._table()
        phv = _phv(dst_port=22)
        table.apply(phv)
        assert table.misses == 1

    def test_capacity_enforced(self):
        table = self._table()
        for port in range(4):
            table.install(TableEntry({"dst_port": port}, Action.noop()))
        with pytest.raises(RuntimeError):
            table.install(TableEntry({"dst_port": 99}, Action.noop()))

    def test_non_key_field_rejected(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.install(TableEntry({"src_port": 1}, Action.noop()))

    def test_ternary_priority(self):
        table = MatchActionTable(
            name="t", key_fields=("dst_port",), kind=MatchKind.TERNARY
        )
        table.install(
            TableEntry({"dst_port": (0, 0)}, Action.set_const("lo", "decision", 1), priority=1)
        )
        table.install(
            TableEntry({"dst_port": (80, 0xFFFF)}, Action.set_const("hi", "decision", 2), priority=10)
        )
        phv = _phv(dst_port=80)
        table.apply(phv)
        assert phv.get("decision") == 2  # higher priority wins

    def test_lpm(self):
        table = MatchActionTable(name="t", key_fields=("src_ip",), kind=MatchKind.LPM)
        table.install(
            TableEntry({"src_ip": (0x0A000000, 8)}, Action.set_const("n", "decision", 1))
        )
        hit = _phv(src_ip=0x0A01FFFF)
        table.apply(hit)
        assert hit.get("decision") == 1
        miss = _phv(src_ip=0x0B000000)
        table.apply(miss)
        assert miss.get("decision") == 0

    def test_range(self):
        table = MatchActionTable(name="t", key_fields=("dst_port",), kind=MatchKind.RANGE)
        table.install(
            TableEntry({"dst_port": (1024, 2048)}, Action.set_const("e", "decision", 1))
        )
        inside = _phv(dst_port=1500)
        table.apply(inside)
        assert inside.get("decision") == 1

    def test_remove_all(self):
        table = self._table()
        table.install(TableEntry({"dst_port": 1}, Action.noop()))
        assert table.remove_all() == 1
        assert table.occupancy == 0

    def test_install_keeps_priority_then_insertion_order(self):
        """bisect-based install == full re-sort: ties keep install order."""
        table = MatchActionTable(
            name="t", key_fields=("dst_port",), kind=MatchKind.TERNARY,
            max_entries=16,
        )
        entries = [
            TableEntry({"dst_port": (i, 0xFFFF)}, Action.noop(f"a{i}"), priority=p)
            for i, p in enumerate([1, 5, 1, 9, 5, 0])
        ]
        for e in entries:
            table.install(e)
        names = [e.action.name for e in table.entries]
        assert names == ["a3", "a1", "a4", "a0", "a2", "a5"]

    def test_exact_index_consulted_and_wildcard_wins_by_position(self):
        table = MatchActionTable(
            name="t", key_fields=("protocol", "dst_port"), kind=MatchKind.EXACT
        )
        table.install(
            TableEntry({"protocol": 0, "dst_port": 80},
                       Action.set_const("full", "decision", 1), priority=1)
        )
        table.install(
            TableEntry({"protocol": 0},
                       Action.set_const("wild", "decision", 2), priority=9)
        )
        hit = _phv(protocol=0, dst_port=80)
        table.apply(hit)
        # The wildcard entry has higher priority, so it must win even
        # though the full-key entry sits in the hash index.
        assert hit.get("decision") == 2
        other = _phv(protocol=0, dst_port=22)
        table.apply(other)
        assert other.get("decision") == 2
        miss = _phv(protocol=3, dst_port=80)
        table.apply(miss)
        assert table.misses == 1

    def test_constructor_entries_sorted_by_priority(self):
        """Entries passed at construction get the same priority order
        install() maintains (the old code only repaired on first sort)."""
        low = TableEntry({"dst_port": (0, 0)}, Action.set_const("lo", "decision", 1),
                         priority=1)
        high = TableEntry({"dst_port": (80, 0xFFFF)},
                          Action.set_const("hi", "decision", 2), priority=10)
        table = MatchActionTable(
            name="t", key_fields=("dst_port",), kind=MatchKind.TERNARY,
            entries=[low, high],
        )
        phv = _phv(dst_port=80)
        table.apply(phv)
        assert phv.get("decision") == 2

    def test_batch_column_views_are_read_only(self):
        from repro.pisa.phv import PHVBatch

        batch = PHVBatch(default_layout(("f0", "f1")), 4)
        batch.set_column("dst_port", np.array([1, 2, 3, 4]))
        for name in ("dst_port", "src_port"):  # written and never-written
            with pytest.raises(ValueError):
                batch.column(name)[0] = 99
        assert batch.column("dst_port")[0] == 1

    def test_lookup_batch_counters_match_scalar(self):
        def build():
            t = MatchActionTable(
                name="t", key_fields=("dst_port",), kind=MatchKind.RANGE
            )
            t.install(TableEntry({"dst_port": (0, 100)}, Action.noop(), priority=1))
            t.install(TableEntry({"dst_port": (50, 200)}, Action.noop(), priority=9))
            return t
        scalar_t, batch_t = build(), build()
        ports = [10, 60, 150, 999, 60]
        for port in ports:
            scalar_t.lookup(_phv(dst_port=port))
        from repro.pisa.phv import PHVBatch
        batch = PHVBatch(default_layout(("f0", "f1")), len(ports))
        batch.set_column("dst_port", np.array(ports))
        batch_t.lookup_batch(batch)
        assert (scalar_t.lookups, scalar_t.misses) == (batch_t.lookups, batch_t.misses)
        assert [e.hits for e in scalar_t.entries] == [e.hits for e in batch_t.entries]


class TestRegisters:
    def test_saturating_add(self):
        reg = RegisterArray(size=8, width_bits=4)
        key = (1, 2, 3, 4, 5)
        for __ in range(100):
            reg.add(key)
        assert reg.read(key) == 15  # saturates at 2^4 - 1

    def test_add_saturates_exactly_at_width(self):
        """One big add clips to 2^width_bits - 1, not a wrapped value."""
        reg = RegisterArray(size=4, width_bits=8)
        key = (9, 9, 9, 9, 9)
        assert reg.add(key, amount=1_000_000) == 255
        assert reg.add(key, amount=1) == 255  # stays pinned at the ceiling

    def test_write_saturates_at_width(self):
        reg = RegisterArray(size=4, width_bits=16)
        key = (1, 1, 1, 1, 1)
        reg.write(key, 1 << 40)
        assert reg.read(key) == (1 << 16) - 1
        reg.write(key, 123)
        assert reg.read(key) == 123

    def test_deterministic_indexing(self):
        reg = RegisterArray(size=1024)
        key = (10, 20, 30, 40, 50)
        assert reg.index_of(key) == reg.index_of(key)

    def test_flow_accumulator(self):
        acc = FlowFeatureAccumulator(slots=256)
        key = (1, 2, 3, 4, 6)
        first = acc.update(key, size_bytes=100, urgent=True, now_s=1.0)
        second = acc.update(key, size_bytes=200, urgent=False, now_s=1.5)
        assert first["flow_pkts"] == 1
        assert second["flow_pkts"] == 2
        assert second["flow_bytes"] == 300
        assert second["flow_urgent"] == 1
        assert second["flow_duration_ms"] == 500

    def test_collisions_possible_with_small_array(self):
        reg = RegisterArray(size=2)
        keys = [(i, 0, 0, 0, 0) for i in range(20)]
        indices = {reg.index_of(k) for k in keys}
        assert indices <= {0, 1}

    def test_vectorized_hash_matches_scalar(self):
        from repro.pisa import fnv1a_columns
        from repro.pisa.registers import _fnv1a

        rng = np.random.default_rng(3)
        keys = [tuple(int(v) for v in rng.integers(0, 2**32, size=5))
                for __ in range(64)]
        cols = [np.array([k[j] for k in keys], dtype=np.int64) for j in range(5)]
        assert np.array_equal(
            fnv1a_columns(cols),
            np.array([_fnv1a(k) for k in keys], dtype=np.uint64),
        )
        reg = RegisterArray(size=77)
        assert np.array_equal(
            reg.index_columns(cols),
            np.array([reg.index_of(k) for k in keys]),
        )

    def test_update_batch_matches_sequential_updates(self):
        """Order-respecting batch accumulation == N scalar updates,
        including collisions, saturation, and first-seen tracking."""
        rng = np.random.default_rng(5)
        n = 300
        keys = [tuple(int(v) for v in rng.integers(0, 8, size=5)) for __ in range(n)]
        sizes = rng.integers(64, 1500, size=n)
        urgent = rng.random(n) < 0.4
        times = np.sort(rng.uniform(0.0, 2.0, size=n))

        scalar_acc = FlowFeatureAccumulator(slots=16)
        # Tiny byte-count width so saturation actually engages mid-run.
        scalar_acc.byte_count = RegisterArray(16, width_bits=12)
        batch_acc = FlowFeatureAccumulator(slots=16)
        batch_acc.byte_count = RegisterArray(16, width_bits=12)

        scalar_out = [
            scalar_acc.update(keys[i], int(sizes[i]), bool(urgent[i]), float(times[i]))
            for i in range(n)
        ]
        cols = [np.array([k[j] for k in keys], dtype=np.int64) for j in range(5)]
        batch_out = batch_acc.update_batch(cols, sizes, urgent, times)

        for field_name in ("flow_pkts", "flow_bytes", "flow_urgent", "flow_duration_ms"):
            assert np.array_equal(
                np.array([o[field_name] for o in scalar_out]),
                batch_out[field_name],
            ), field_name
        for reg in ("packet_count", "byte_count", "urgent_count", "first_seen_ms"):
            assert np.array_equal(
                getattr(scalar_acc, reg).values, getattr(batch_acc, reg).values
            ), reg

    def test_update_batch_split_equals_one_shot(self):
        """Chunked batches carry register state across the boundary."""
        rng = np.random.default_rng(9)
        n = 100
        cols = [rng.integers(0, 4, size=n).astype(np.int64) for __ in range(5)]
        sizes = rng.integers(64, 1500, size=n)
        urgent = rng.random(n) < 0.5
        times = np.sort(rng.uniform(0.0, 1.0, size=n))

        one = FlowFeatureAccumulator(slots=8)
        whole = one.update_batch(cols, sizes, urgent, times)
        two = FlowFeatureAccumulator(slots=8)
        first = two.update_batch(
            [c[:60] for c in cols], sizes[:60], urgent[:60], times[:60]
        )
        second = two.update_batch(
            [c[60:] for c in cols], sizes[60:], urgent[60:], times[60:]
        )
        for field_name in whole:
            assert np.array_equal(
                whole[field_name],
                np.concatenate([first[field_name], second[field_name]]),
            ), field_name


class TestLookupTables:
    def test_port_likelihood_learning(self):
        ports = np.array([80, 80, 80, 4444, 4444])
        labels = np.array([0, 0, 0, 1, 1])
        table = PortLikelihoodTable.from_traffic(ports, labels)
        assert table.lookup(80) == 0.0
        assert table.lookup(4444) == 1.0
        assert table.lookup(9999) == 0.5  # default prior

    def test_log_transform_accuracy(self):
        table = LogTransformTable()
        values = np.logspace(0, 6, 50)
        assert table.error_vs_exact(values) < 0.09  # linear-in-segment bound

    def test_log_transform_below_one(self):
        assert LogTransformTable().lookup(0.5) == 0.5

    def test_standardize_fit_apply(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 2.0, size=(500, 3))
        table = StandardizeTable.fit(x)
        out = table.apply(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_standardize_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            StandardizeTable(means=np.zeros(2), scales=np.array([1.0, 0.0]))


class TestScheduler:
    def test_pifo_orders_by_rank(self):
        pifo = PIFO()
        pifo.push("low", rank=10.0)
        pifo.push("high", rank=1.0)
        assert pifo.pop() == "high"
        assert pifo.pop() == "low"

    def test_pifo_fifo_on_ties(self):
        pifo = PIFO()
        for i in range(5):
            pifo.push(i, rank=0.0)
        assert [pifo.pop() for __ in range(5)] == [0, 1, 2, 3, 4]

    def test_pifo_tail_drop(self):
        pifo = PIFO(capacity=2)
        assert pifo.push("a", 1.0)
        assert pifo.push("b", 1.0)
        assert not pifo.push("c", 1.0)
        assert pifo.drops == 1

    def test_pifo_empty_pop(self):
        with pytest.raises(IndexError):
            PIFO().pop()

    def test_queue_watermark(self):
        q = PacketQueue("q", capacity=10)
        for i in range(7):
            q.push(i)
        q.pop()
        assert q.high_watermark == 7

    def test_round_robin_interleaves(self):
        a = PacketQueue("a")
        b = PacketQueue("b")
        for i in range(3):
            a.push(f"a{i}")
            b.push(f"b{i}")
        arb = RoundRobinArbiter([a, b])
        order = arb.drain()
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_round_robin_skips_empty(self):
        a = PacketQueue("a")
        b = PacketQueue("b")
        b.push("only")
        arb = RoundRobinArbiter([a, b])
        assert arb.select() == "only"
        assert arb.select() is None

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_pifo_pop_order_is_sorted(self, ranks):
        pifo = PIFO()
        for r in ranks:
            pifo.push(r, rank=r)
        popped = [pifo.pop() for __ in range(len(ranks))]
        assert popped == sorted(popped)

    # ------------------------------------------------------------------
    # PacketQueue deque regression (pop was list.pop(0): O(N^2) drains)
    # ------------------------------------------------------------------
    def test_packet_queue_fifo_drop_watermark_semantics(self):
        q = PacketQueue("q", capacity=3)
        assert q.push(1) and q.push(2) and q.push(3)
        assert not q.push(4)  # tail-drop at capacity
        assert q.drops == 1
        assert q.pop() == 1  # FIFO head
        assert q.push(5)
        assert [q.pop(), q.pop(), q.pop()] == [2, 3, 5]
        assert q.high_watermark == 3  # survives the drain
        assert q.drops == 1
        with pytest.raises(IndexError):
            q.pop()

    def test_packet_queue_full_trace_drain_is_linear(self):
        """200k push/pop pairs must complete promptly — the old
        ``list.pop(0)`` head-pop made this quadratic (tens of seconds)."""
        import time

        q = PacketQueue("q", capacity=300_000)
        t0 = time.perf_counter()
        for i in range(200_000):
            q.push(i)
        for i in range(200_000):
            assert q.pop() == i
        assert time.perf_counter() - t0 < 5.0
        assert q.high_watermark == 200_000

    # ------------------------------------------------------------------
    # Round-robin fairness on uneven / bursty queue mixes
    # ------------------------------------------------------------------
    def test_round_robin_uneven_backlogs_alternate_until_exhaustion(self):
        a = PacketQueue("a")
        b = PacketQueue("b")
        for i in range(9):
            a.push(f"a{i}")
        for i in range(3):
            b.push(f"b{i}")
        arb = RoundRobinArbiter([a, b])
        order = arb.drain()
        # Strict alternation while both are backlogged, then the longer
        # queue drains alone — no starvation, no double-serving.
        assert order[:6] == ["a0", "b0", "a1", "b1", "a2", "b2"]
        assert order[6:] == [f"a{i}" for i in range(3, 9)]

    def test_round_robin_bursty_arrivals_share_fairly(self):
        """Bursts landing on one queue must not starve the other: while
        both queues hold packets, service strictly alternates."""
        rng = np.random.default_rng(7)
        a = PacketQueue("a", capacity=10_000)
        b = PacketQueue("b", capacity=10_000)
        arb = RoundRobinArbiter([a, b])
        served: list[str] = []
        for __ in range(400):
            # Bursty offered load: one queue gets a burst, the other a
            # trickle, swapping at random.
            burst, trickle = (a, b) if rng.random() < 0.5 else (b, a)
            for __ in range(int(rng.integers(0, 8))):
                burst.push(burst.name)
            if rng.random() < 0.5:
                trickle.push(trickle.name)
            both_busy = len(a) > 0 and len(b) > 0
            item = arb.select()
            if both_busy and served and len(a) and len(b):
                assert item != served[-1], "double-served a busy mix"
            if item is not None:
                served.append(item)
        served += arb.drain()
        assert served.count("a") == 0 or served.count("b") > 0
        # Everything offered was eventually served.
        assert len(a) == 0 and len(b) == 0

    def test_round_robin_counts_match_offered_load(self):
        """Equal standing backlogs get exactly equal service."""
        a = PacketQueue("a", capacity=2000)
        b = PacketQueue("b", capacity=2000)
        for i in range(500):
            a.push(("a", i))
            b.push(("b", i))
        arb = RoundRobinArbiter([a, b])
        first_half = [arb.select() for __ in range(500)]
        names = [name for name, __ in first_half]
        assert names.count("a") == 250
        assert names.count("b") == 250
        # And FIFO within each queue.
        assert [i for name, i in first_half if name == "a"] == list(range(250))
