"""Tests for the PISA switch substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pisa import (
    MAX_OPS_PER_STAGE,
    Action,
    FlowFeatureAccumulator,
    LogTransformTable,
    MatchActionTable,
    MatchKind,
    PIFO,
    Packet,
    PacketQueue,
    PortLikelihoodTable,
    Primitive,
    RegisterArray,
    RoundRobinArbiter,
    StandardizeTable,
    TableEntry,
    default_layout,
    default_parser,
)
from repro.pisa.phv import PHV, PHVLayout


def _phv(**values):
    layout = default_layout(("f0", "f1"))
    phv = PHV(layout)
    for k, v in values.items():
        phv.set(k, v)
    return phv


class TestPHV:
    def test_layout_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PHVLayout(fields=(("a", 8), ("a", 8)))

    def test_layout_rejects_unknown_features(self):
        with pytest.raises(ValueError):
            PHVLayout(fields=(("a", 8),), feature_fields=("b",))

    def test_header_fields_masked_to_width(self):
        phv = _phv()
        phv.set("protocol", 0x1FF)  # 8-bit field
        assert phv.get("protocol") == 0xFF

    def test_feature_vector_quantized(self):
        phv = _phv()
        phv.set_features(np.array([0.26, -100.0]))
        vec = phv.feature_vector()
        assert vec[0] == pytest.approx(0.25)  # fix8 roundtrip
        assert vec[1] == -8.0                 # clipped to format range

    def test_set_features_length_check(self):
        phv = _phv()
        with pytest.raises(ValueError):
            phv.set_features(np.zeros(3))

    def test_unknown_field_raises(self):
        phv = _phv()
        with pytest.raises(KeyError):
            phv.get("no_such_field")


class TestParser:
    def test_tcp_path_extracts_ports(self):
        layout = default_layout(("f0",))
        parser = default_parser(layout)
        packet = Packet(headers={"protocol": 0, "src_port": 1234, "dst_port": 80,
                                 "urgent_flag": 1, "src_ip": 1, "dst_ip": 2, "seq": 9})
        phv = parser.parse(packet)
        assert phv.get("src_port") == 1234
        assert phv.get("urgent_flag") == 1

    def test_udp_path_skips_tcp_fields(self):
        layout = default_layout(("f0",))
        parser = default_parser(layout)
        packet = Packet(headers={"protocol": 1, "src_port": 53, "urgent_flag": 1})
        phv = parser.parse(packet)
        assert phv.get("src_port") == 53
        assert phv.get("urgent_flag") == 0  # not extracted on the UDP path

    def test_unknown_protocol_takes_default(self):
        layout = default_layout(("f0",))
        parser = default_parser(layout)
        phv = parser.parse(Packet(headers={"protocol": 7}))
        assert phv.get("src_port") == 0

    def test_payload_len_recorded(self):
        layout = default_layout(("f0",))
        parser = default_parser(layout)
        phv = parser.parse(Packet(headers={"protocol": 0}, payload_len=777))
        assert phv.get("payload_len") == 777

    def test_bad_transition_target_rejected(self):
        from repro.pisa import ParseState, Parser

        with pytest.raises(ValueError):
            Parser(
                default_layout(("f0",)),
                {"start": ParseState(name="start", default_next="nowhere")},
            )


class TestActions:
    def test_vliw_width_enforced(self):
        prims = [Primitive("ml_score", lambda phv: 1.0)] * (MAX_OPS_PER_STAGE + 1)
        with pytest.raises(ValueError):
            Action("too_wide", prims)

    def test_vliw_reads_before_writes(self):
        """All slots see the pre-action PHV (true VLIW semantics)."""
        phv = _phv(ml_score=5)
        action = Action(
            "swapish",
            [
                Primitive("ml_score", lambda p: p.get("decision") + 1),
                Primitive("decision", lambda p: p.get("ml_score") % 4),
            ],
        )
        action.apply(phv)
        assert phv.get("ml_score") == 1   # old decision (0) + 1
        assert phv.get("decision") == 1   # old score (5) % 4

    def test_set_const_helper(self):
        phv = _phv()
        Action.set_const("drop", "decision", 2).apply(phv)
        assert phv.get("decision") == 2


class TestMAT:
    def _table(self, kind=MatchKind.EXACT):
        return MatchActionTable(
            name="t", key_fields=("dst_port",), kind=kind, max_entries=4
        )

    def test_exact_match_hit(self):
        table = self._table()
        table.install(TableEntry({"dst_port": 80}, Action.set_const("f", "decision", 1)))
        phv = _phv(dst_port=80)
        table.apply(phv)
        assert phv.get("decision") == 1
        assert table.entries[0].hits == 1

    def test_miss_uses_default(self):
        table = self._table()
        phv = _phv(dst_port=22)
        table.apply(phv)
        assert table.misses == 1

    def test_capacity_enforced(self):
        table = self._table()
        for port in range(4):
            table.install(TableEntry({"dst_port": port}, Action.noop()))
        with pytest.raises(RuntimeError):
            table.install(TableEntry({"dst_port": 99}, Action.noop()))

    def test_non_key_field_rejected(self):
        table = self._table()
        with pytest.raises(ValueError):
            table.install(TableEntry({"src_port": 1}, Action.noop()))

    def test_ternary_priority(self):
        table = MatchActionTable(
            name="t", key_fields=("dst_port",), kind=MatchKind.TERNARY
        )
        table.install(
            TableEntry({"dst_port": (0, 0)}, Action.set_const("lo", "decision", 1), priority=1)
        )
        table.install(
            TableEntry({"dst_port": (80, 0xFFFF)}, Action.set_const("hi", "decision", 2), priority=10)
        )
        phv = _phv(dst_port=80)
        table.apply(phv)
        assert phv.get("decision") == 2  # higher priority wins

    def test_lpm(self):
        table = MatchActionTable(name="t", key_fields=("src_ip",), kind=MatchKind.LPM)
        table.install(
            TableEntry({"src_ip": (0x0A000000, 8)}, Action.set_const("n", "decision", 1))
        )
        hit = _phv(src_ip=0x0A01FFFF)
        table.apply(hit)
        assert hit.get("decision") == 1
        miss = _phv(src_ip=0x0B000000)
        table.apply(miss)
        assert miss.get("decision") == 0

    def test_range(self):
        table = MatchActionTable(name="t", key_fields=("dst_port",), kind=MatchKind.RANGE)
        table.install(
            TableEntry({"dst_port": (1024, 2048)}, Action.set_const("e", "decision", 1))
        )
        inside = _phv(dst_port=1500)
        table.apply(inside)
        assert inside.get("decision") == 1

    def test_remove_all(self):
        table = self._table()
        table.install(TableEntry({"dst_port": 1}, Action.noop()))
        assert table.remove_all() == 1
        assert table.occupancy == 0


class TestRegisters:
    def test_saturating_add(self):
        reg = RegisterArray(size=8, width_bits=4)
        key = (1, 2, 3, 4, 5)
        for __ in range(100):
            reg.add(key)
        assert reg.read(key) == 15  # saturates at 2^4 - 1

    def test_deterministic_indexing(self):
        reg = RegisterArray(size=1024)
        key = (10, 20, 30, 40, 50)
        assert reg.index_of(key) == reg.index_of(key)

    def test_flow_accumulator(self):
        acc = FlowFeatureAccumulator(slots=256)
        key = (1, 2, 3, 4, 6)
        first = acc.update(key, size_bytes=100, urgent=True, now_s=1.0)
        second = acc.update(key, size_bytes=200, urgent=False, now_s=1.5)
        assert first["flow_pkts"] == 1
        assert second["flow_pkts"] == 2
        assert second["flow_bytes"] == 300
        assert second["flow_urgent"] == 1
        assert second["flow_duration_ms"] == 500

    def test_collisions_possible_with_small_array(self):
        reg = RegisterArray(size=2)
        keys = [(i, 0, 0, 0, 0) for i in range(20)]
        indices = {reg.index_of(k) for k in keys}
        assert indices <= {0, 1}


class TestLookupTables:
    def test_port_likelihood_learning(self):
        ports = np.array([80, 80, 80, 4444, 4444])
        labels = np.array([0, 0, 0, 1, 1])
        table = PortLikelihoodTable.from_traffic(ports, labels)
        assert table.lookup(80) == 0.0
        assert table.lookup(4444) == 1.0
        assert table.lookup(9999) == 0.5  # default prior

    def test_log_transform_accuracy(self):
        table = LogTransformTable()
        values = np.logspace(0, 6, 50)
        assert table.error_vs_exact(values) < 0.09  # linear-in-segment bound

    def test_log_transform_below_one(self):
        assert LogTransformTable().lookup(0.5) == 0.5

    def test_standardize_fit_apply(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 2.0, size=(500, 3))
        table = StandardizeTable.fit(x)
        out = table.apply(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_standardize_rejects_zero_scale(self):
        with pytest.raises(ValueError):
            StandardizeTable(means=np.zeros(2), scales=np.array([1.0, 0.0]))


class TestScheduler:
    def test_pifo_orders_by_rank(self):
        pifo = PIFO()
        pifo.push("low", rank=10.0)
        pifo.push("high", rank=1.0)
        assert pifo.pop() == "high"
        assert pifo.pop() == "low"

    def test_pifo_fifo_on_ties(self):
        pifo = PIFO()
        for i in range(5):
            pifo.push(i, rank=0.0)
        assert [pifo.pop() for __ in range(5)] == [0, 1, 2, 3, 4]

    def test_pifo_tail_drop(self):
        pifo = PIFO(capacity=2)
        assert pifo.push("a", 1.0)
        assert pifo.push("b", 1.0)
        assert not pifo.push("c", 1.0)
        assert pifo.drops == 1

    def test_pifo_empty_pop(self):
        with pytest.raises(IndexError):
            PIFO().pop()

    def test_queue_watermark(self):
        q = PacketQueue("q", capacity=10)
        for i in range(7):
            q.push(i)
        q.pop()
        assert q.high_watermark == 7

    def test_round_robin_interleaves(self):
        a = PacketQueue("a")
        b = PacketQueue("b")
        for i in range(3):
            a.push(f"a{i}")
            b.push(f"b{i}")
        arb = RoundRobinArbiter([a, b])
        order = arb.drain()
        assert order == ["a0", "b0", "a1", "b1", "a2", "b2"]

    def test_round_robin_skips_empty(self):
        a = PacketQueue("a")
        b = PacketQueue("b")
        b.push("only")
        arb = RoundRobinArbiter([a, b])
        assert arb.select() == "only"
        assert arb.select() is None

    @given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=25, deadline=None)
    def test_pifo_pop_order_is_sorted(self, ranks):
        pifo = PIFO()
        for r in ranks:
            pifo.push(r, rank=r)
        popped = [pifo.pop() for __ in range(len(ranks))]
        assert popped == sorted(popped)
