"""Tests for the synthetic dataset substrates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    ATTACK_CLASSES,
    DNN_FEATURES,
    FEATURE_NAMES,
    SVM_FEATURES,
    expand_to_packets,
    dnn_feature_matrix,
    generate_congestion_traces,
    generate_connections,
    iot_binary_dataset,
    iot_cluster_dataset,
    oracle_action,
    svm_feature_matrix,
)


class TestNSLKDD:
    def test_shapes(self):
        ds = generate_connections(500, seed=0)
        assert ds.features.shape == (500, len(FEATURE_NAMES))
        assert len(ds.labels) == 500
        assert len(ds.attack_types) == 500

    def test_anomaly_fraction(self):
        ds = generate_connections(2000, anomaly_fraction=0.3, seed=1)
        assert np.mean(ds.labels) == pytest.approx(0.3, abs=0.02)

    def test_attack_taxonomy(self):
        ds = generate_connections(3000, seed=2)
        present = set(np.unique(ds.attack_types))
        assert present == set(range(len(ATTACK_CLASSES)))

    def test_labels_match_types(self):
        ds = generate_connections(1000, seed=3)
        assert np.array_equal(ds.labels, (ds.attack_types > 0).astype(np.int64))

    def test_deterministic(self):
        a = generate_connections(100, seed=7)
        b = generate_connections(100, seed=7)
        assert np.array_equal(a.features, b.features)

    def test_split(self):
        ds = generate_connections(1000, seed=4)
        train, test = ds.split(0.7, np.random.default_rng(0))
        assert len(train) == 700
        assert len(test) == 300

    def test_split_bounds(self):
        ds = generate_connections(100, seed=5)
        with pytest.raises(ValueError):
            ds.split(1.5, np.random.default_rng(0))

    def test_feature_matrices(self):
        ds = generate_connections(400, seed=6)
        assert dnn_feature_matrix(ds).shape == (400, len(DNN_FEATURES))
        assert svm_feature_matrix(ds).shape == (400, len(SVM_FEATURES))

    def test_features_standardized(self):
        x = dnn_feature_matrix(generate_connections(2000, seed=8))
        assert np.allclose(x.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(x.std(axis=0), 1.0, atol=1e-6)

    def test_dos_separable_from_benign(self):
        """DoS floods must be visibly different (high count/serror)."""
        ds = generate_connections(3000, seed=9)
        dos = ds.features[ds.attack_types == 1]
        benign = ds.features[ds.attack_types == 0]
        count_col = FEATURE_NAMES.index("count")
        assert np.median(dos[:, count_col]) > 5 * np.median(benign[:, count_col])

    def test_u2r_overlaps_benign(self):
        """U2R is near-indistinguishable (the hard class)."""
        ds = generate_connections(5000, seed=10)
        u2r = ds.features[ds.attack_types == 4]
        benign = ds.features[ds.attack_types == 0]
        count_col = FEATURE_NAMES.index("count")
        ratio = np.median(u2r[:, count_col]) / np.median(benign[:, count_col])
        assert 0.5 < ratio < 2.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            generate_connections(0)
        with pytest.raises(ValueError):
            generate_connections(10, anomaly_fraction=1.5)

    def test_column_lookup(self):
        ds = generate_connections(50, seed=11)
        assert ds.column("duration").shape == (50,)
        with pytest.raises(ValueError):
            ds.column("nonexistent")


class TestPacketExpansion:
    @pytest.fixture(scope="class")
    def trace(self):
        ds = generate_connections(400, seed=1)
        return expand_to_packets(ds, seed=2, max_packets=20000)

    def test_time_ordered(self, trace):
        times = [p.time for p in trace.packets]
        assert times == sorted(times)

    def test_flow_sequencing(self, trace):
        seen: dict[int, int] = {}
        for p in trace.packets:
            expected = seen.get(p.flow_id, 0)
            assert p.seq_in_flow == expected
            seen[p.flow_id] = expected + 1

    def test_labels_propagate(self, trace):
        flows = {f.flow_id: f.label for f in trace.flows}
        for p in trace.packets[:500]:
            assert p.label == flows[p.flow_id]

    def test_sizes_in_mtu_range(self, trace):
        for p in trace.packets[:500]:
            assert 64 <= p.size_bytes <= 1500

    def test_dilation_scales_times(self):
        ds = generate_connections(150, seed=3)
        base = expand_to_packets(ds, seed=4, time_dilation=1.0)
        dilated = expand_to_packets(ds, seed=4, time_dilation=10.0)
        assert dilated.duration == pytest.approx(base.duration * 10.0, rel=1e-6)
        assert dilated.time_dilation == 10.0

    def test_max_packets_cap(self):
        ds = generate_connections(300, seed=5)
        trace = expand_to_packets(ds, seed=6, max_packets=100)
        assert len(trace) == 100

    def test_flows_are_short_lived(self):
        """Flow lifetimes must be << trace duration (the detection-window
        property the Table 8 baseline depends on)."""
        ds = generate_connections(500, seed=7)
        trace = expand_to_packets(ds, seed=8)
        spans = {}
        for p in trace.packets:
            lo, hi = spans.get(p.flow_id, (p.time, p.time))
            spans[p.flow_id] = (min(lo, p.time), max(hi, p.time))
        durations = [hi - lo for lo, hi in spans.values()]
        assert np.median(durations) < trace.duration / 3

    def test_invalid_args(self):
        ds = generate_connections(50, seed=9)
        with pytest.raises(ValueError):
            expand_to_packets(ds, offered_gbps=0.0)
        with pytest.raises(ValueError):
            expand_to_packets(ds, time_dilation=0.5)
        with pytest.raises(ValueError):
            expand_to_packets(ds, flow_span_fraction=0.0)

    def test_anomalous_fraction_tracks_dataset(self, trace):
        assert 0.2 < trace.anomalous_fraction < 0.7


class TestIoT:
    def test_binary_shapes(self):
        x, y = iot_binary_dataset(500, seed=0)
        assert x.shape == (500, 4)
        assert set(np.unique(y)) == {0, 1}

    def test_binary_overlap_regime(self):
        """Classes must overlap enough that accuracy lands near 67%."""
        from repro.ml import DNN, accuracy

        x, y = iot_binary_dataset(4000, seed=1)
        model = DNN([4, 10, 2], output="softmax", seed=0)
        model.fit(x[:3000], y[:3000], epochs=15)
        acc = accuracy(y[3000:], model.predict(x[3000:]))
        assert 0.60 < acc < 0.75

    def test_cluster_shapes(self):
        x, y = iot_cluster_dataset(300, n_classes=5, seed=2)
        assert x.shape == (300, 11)
        assert y.max() == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            iot_binary_dataset(0)
        with pytest.raises(ValueError):
            iot_cluster_dataset(10, n_classes=1)


class TestCongestion:
    def test_shapes(self):
        seqs, actions = generate_congestion_traces(50, seed=0)
        assert seqs.shape == (50, 8, 5)
        assert actions.shape == (50,)

    def test_actions_in_range(self):
        __, actions = generate_congestion_traces(200, seed=1)
        assert actions.min() >= 0
        assert actions.max() <= 4

    def test_oracle_halves_on_loss(self):
        assert oracle_action(queue_frac=0.2, loss=0.5, utilization=0.5) == 0

    def test_oracle_grows_when_idle(self):
        assert oracle_action(queue_frac=0.05, loss=0.0, utilization=0.2) == 4

    def test_oracle_holds_at_operating_point(self):
        assert oracle_action(queue_frac=0.4, loss=0.0, utilization=0.9) == 2

    def test_observations_normalized(self):
        seqs, __ = generate_congestion_traces(100, seed=2)
        assert np.all(seqs[:, :, 1] >= 0)  # delivery rate
        assert np.all(seqs[:, :, 4] <= 1.0)  # loss fraction

    @given(st.integers(min_value=1, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_any_size_works(self, n):
        seqs, actions = generate_congestion_traces(n, seed=3)
        assert len(seqs) == n
        assert len(actions) == n
