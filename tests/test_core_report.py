"""Tests for the report-rendering helpers and device config."""

import os

import pytest

from repro.core import TaurusConfig, render_table, series_to_text, write_result


class TestRenderTable:
    def test_alignment(self):
        out = render_table("T", ["a", "bb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_float_formatting(self):
        out = render_table("T", ["x"], [[0.123456], [12345.6], [0.0001]])
        assert "0.123" in out
        assert "1.23e+04" in out or "12345" in out.replace(",", "")

    def test_empty_rows(self):
        out = render_table("T", ["a"], [])
        assert "a" in out


class TestWriteResult:
    def test_writes_file(self, tmp_path):
        path = write_result("unit_test_table", "hello", results_dir=str(tmp_path))
        assert os.path.exists(path)
        with open(path) as fh:
            assert fh.read() == "hello\n"

    def test_series_to_text(self):
        out = series_to_text("fig", {"a": [(1.0, 2.0), (3.0, 4.0)]})
        assert "# series: a" in out
        assert "1\t2" in out


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = TaurusConfig()
        assert cfg.geometry.lanes == 16
        assert cfg.geometry.stages == 4
        assert cfg.geometry.precision == "fix8"
        assert (cfg.n_cus, cfg.n_mus) == (90, 30)

    def test_custom_grid(self):
        cfg = TaurusConfig(grid_rows=8, grid_cols=8)
        assert cfg.n_cus + cfg.n_mus == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            TaurusConfig(grid_rows=0)
