"""Tests for the integrated pipeline (bypass, decisions) and INT."""

import numpy as np
import pytest

from repro.datasets import DNN_FEATURES
from repro.hw import MapReduceBlock
from repro.mapreduce import dnn_graph
from repro.pisa import (
    DECISION_FLAG,
    DECISION_FORWARD,
    Action,
    MatchActionTable,
    MatchKind,
    Packet,
    TableEntry,
    TaurusPipeline,
    port_bypass,
)
from repro.telemetry import IntFrame, IntStack, int_features


@pytest.fixture(scope="module")
def pipeline(quantized_dnn):
    block = MapReduceBlock(dnn_graph(quantized_dnn))
    ssh_bypass, ssh_bypass_batch = port_bypass(22)
    return TaurusPipeline(
        block=block,
        feature_names=DNN_FEATURES,
        bypass_predicate=ssh_bypass,
        bypass_predicate_batch=ssh_bypass_batch,
    )


def _packet(features, dst_port=80, t=0.0):
    return Packet(
        headers={"protocol": 0, "src_ip": 1, "dst_ip": 2, "src_port": 5555,
                 "dst_port": dst_port, "urgent_flag": 0, "seq": 0},
        payload_len=100,
        arrival_time=t,
        features=np.asarray(features, dtype=np.float64),
    )


class TestPipeline:
    def test_ml_packet_gets_score_and_latency(self, pipeline):
        result = pipeline.process(_packet(np.zeros(6)))
        assert result.ml_score is not None
        assert not result.bypassed
        assert result.latency_ns > 1000.0  # base + fabric

    def test_bypass_packet_unaffected(self, pipeline):
        result = pipeline.process(_packet(np.zeros(6), dst_port=22))
        assert result.bypassed
        assert result.ml_score is None
        assert result.latency_ns == 1000.0  # no added latency (Fig. 6)

    def test_bypass_cheaper_than_ml(self, pipeline):
        ml = pipeline.process(_packet(np.zeros(6)))
        byp = pipeline.process(_packet(np.zeros(6), dst_port=22))
        assert ml.latency_ns - byp.latency_ns == pytest.approx(
            pipeline.block.latency_ns, abs=1.0
        )

    def test_decisions_cover_score_range(self, pipeline, train_test_split):
        from repro.datasets import dnn_feature_matrix

        __, test = train_test_split
        x = dnn_feature_matrix(test)[:64]
        decisions = {pipeline.process(_packet(row)).decision for row in x}
        assert DECISION_FLAG in decisions
        assert DECISION_FORWARD in decisions

    def test_postprocess_safety_override(self, quantized_dnn):
        """Postprocessing rules bound the ML decision (Section 3.2)."""
        block = MapReduceBlock(dnn_graph(quantized_dnn))
        pipe = TaurusPipeline(block=block, feature_names=DNN_FEATURES)
        safety = MatchActionTable(
            name="safety", key_fields=("dst_port",), kind=MatchKind.EXACT
        )
        # Never touch DNS traffic regardless of the model's opinion.
        safety.install(
            TableEntry({"dst_port": 53}, Action.set_const("allow", "decision", DECISION_FORWARD))
        )
        pipe.install_postprocess(safety)
        anomalous_looking = np.full(6, 3.0)
        result = pipe.process(_packet(anomalous_looking, dst_port=53))
        assert result.decision == DECISION_FORWARD

    def test_stats_accumulate(self, quantized_dnn):
        block = MapReduceBlock(dnn_graph(quantized_dnn))
        ssh_bypass, ssh_bypass_batch = port_bypass(22)
        pipe = TaurusPipeline(
            block=block, feature_names=DNN_FEATURES,
            bypass_predicate=ssh_bypass,
            bypass_predicate_batch=ssh_bypass_batch,
        )
        pipe.process(_packet(np.zeros(6)))
        pipe.process(_packet(np.zeros(6), dst_port=22))
        assert pipe.stats["ml"] == 1
        assert pipe.stats["bypass"] == 1

    def test_process_trace_orders_by_time(self, pipeline):
        packets = [_packet(np.zeros(6), t=1.0), _packet(np.zeros(6), t=0.5)]
        results = pipeline.process_trace(packets)
        assert results[0].packet.arrival_time == 0.5

    def test_no_block_means_all_bypass(self):
        pipe = TaurusPipeline(block=None, feature_names=DNN_FEATURES)
        result = pipe.process(_packet(np.zeros(6)))
        assert result.bypassed


class TestINT:
    def _frame(self, i=0, depth=10):
        return IntFrame(
            switch_id=i, queue_depth=depth, hop_latency_ns=500.0,
            link_utilization=0.5, timestamp_ns=float(i),
        )

    def test_stack_push_bounded(self):
        stack = IntStack(max_hops=2)
        assert stack.push(self._frame(0))
        assert stack.push(self._frame(1))
        assert not stack.push(self._frame(2))
        assert len(stack) == 2

    def test_aggregates(self):
        stack = IntStack()
        stack.push(self._frame(0, depth=10))
        stack.push(self._frame(1, depth=50))
        assert stack.path_latency_ns == 1000.0
        assert stack.max_queue_depth == 50

    def test_features_vector(self):
        stack = IntStack()
        stack.push(self._frame())
        feats = int_features(stack)
        assert feats.shape == (4,)
        assert feats[0] == 1.0  # hop count

    def test_frame_validation(self):
        with pytest.raises(ValueError):
            IntFrame(0, queue_depth=-1, hop_latency_ns=1.0,
                     link_utilization=0.5, timestamp_ns=0.0)
        with pytest.raises(ValueError):
            IntFrame(0, queue_depth=1, hop_latency_ns=1.0,
                     link_utilization=1.5, timestamp_ns=0.0)

    def test_empty_stack_features(self):
        feats = int_features(IntStack())
        assert feats[0] == 0.0
