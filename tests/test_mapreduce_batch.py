"""Batched dataflow execution: bit-identity, epilogue, and input contracts.

The batched interpreter must be a pure widening of the scalar one:
``execute_batch(stack(xs)) == stack(execute(x) for x in xs)`` bit-for-bit,
for every app graph and fixed-point format.  Epilogue nodes run exactly
once (after the last temporal iteration), and input features reach node
callables as read-only views.
"""

import numpy as np
import pytest

from repro.datasets import (
    dnn_feature_matrix,
    generate_congestion_traces,
    iot_cluster_dataset,
    svm_feature_matrix,
)
from repro.fixpoint import FIX8, FIX16, quantize_model
from repro.mapreduce import (
    activation_graph,
    conv1d_graph,
    dnn_graph,
    inner_product_graph,
    kmeans_graph,
    lstm_graph,
    svm_graph,
)
from repro.mapreduce.ir import DataflowGraph
from repro.mapreduce.ops import MAP_OPS, REDUCE_OPS
from repro.ml import KMeans, indigo_lstm


def assert_batch_matches_scalar(graph, feats):
    """execute_batch == stacked scalar execute, bit-for-bit."""
    batched = graph.execute_batch(feats)
    scalar = np.stack([graph.execute(row) for row in feats])
    assert batched.shape == scalar.shape
    assert np.array_equal(batched, scalar)


# ----------------------------------------------------------------------
# Property: batch == scalar across the app graphs, FIX8 and FIX16
# ----------------------------------------------------------------------
class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("total_bits", [8, 16])
    @pytest.mark.parametrize("exact", [False, True])
    def test_dnn(self, trained_dnn, train_test_split, total_bits, exact):
        train, test = train_test_split
        q = quantize_model(trained_dnn, dnn_feature_matrix(train)[:256], total_bits)
        graph = dnn_graph(q, exact_activations=exact)
        feats = dnn_feature_matrix(test)[:96]
        assert_batch_matches_scalar(graph, feats)

    @pytest.mark.parametrize("fmt", [FIX8, FIX16], ids=lambda f: f.name)
    def test_svm(self, trained_svm, train_test_split, fmt):
        __, test = train_test_split
        graph = svm_graph(trained_svm, fmt=fmt)
        assert_batch_matches_scalar(graph, svm_feature_matrix(test)[:96])

    @pytest.mark.parametrize("fmt", [FIX8, FIX16], ids=lambda f: f.name)
    def test_kmeans(self, fmt):
        features, __ = iot_cluster_dataset(600, seed=7)
        model = KMeans(n_clusters=5, seed=7).fit(features)
        graph = kmeans_graph(model, fmt=fmt)
        assert_batch_matches_scalar(graph, features[:96])

    @pytest.mark.parametrize("fmt", [FIX8, FIX16], ids=lambda f: f.name)
    def test_lstm_temporal(self, fmt):
        """The recurrent graph: per-batch state + once-only epilogue."""
        seqs, __ = generate_congestion_traces(64, seed=4)
        lstm = indigo_lstm(input_size=seqs.shape[-1], n_actions=5, seed=0)
        graph = lstm_graph(lstm, window_steps=seqs.shape[1], fmt=fmt)
        assert_batch_matches_scalar(graph, seqs.reshape(len(seqs), -1))

    def test_microbenchmarks(self):
        rng = np.random.default_rng(3)
        cases = [
            (inner_product_graph(16), 16),
            (activation_graph("relu"), 16),
            (activation_graph("act_lut"), 16),
            (conv1d_graph(n_outputs=8, kernel=2, unroll=8), 9),
            (conv1d_graph(n_outputs=8, kernel=2, unroll=2), 9),
        ]
        for graph, dim in cases:
            feats = rng.uniform(-2, 2, size=(48, dim))
            assert_batch_matches_scalar(graph, feats)

    def test_batch_rejects_non_2d(self):
        graph = inner_product_graph(16)
        with pytest.raises(ValueError, match="expects"):
            graph.execute_batch(np.ones(16))

    def test_fallback_loops_scalar_fn(self):
        """Nodes lowered without a batch_fn still execute (row loop)."""
        g = DataflowGraph("fallback")
        inp = g.add("input", name="x", width=3)
        doubled = g.add(
            "map", preds=[inp], name="double", width=3, chain_ops=1,
            fn=lambda x: 2.0 * x,
        )
        g.add("output", preds=[doubled], name="y", width=3)
        feats = np.arange(12, dtype=np.float64).reshape(4, 3)
        assert np.array_equal(g.execute_batch(feats), 2.0 * feats)

    def test_reduce_node_without_fn_uses_named_op(self):
        """Reduce nodes lowered without fn fall back to REDUCE_OPS."""
        g = DataflowGraph("opreduce")
        inp = g.add("input", name="x", width=4)
        red = g.add("reduce", preds=[inp], name="maxval", width=4, reduce_op="max")
        g.add("output", preds=[red], name="y", width=1)
        feats = np.array([[1.0, 7.0, 3.0, 2.0], [9.0, 0.0, 4.0, 5.0]])
        assert np.array_equal(g.execute(feats[0]), [7.0])
        assert np.array_equal(g.execute_batch(feats), [[7.0], [9.0]])

    def test_fallback_rejects_stateful_scalar_fn(self):
        g = DataflowGraph("stateful", temporal_iterations=2)
        inp = g.add("input", name="x", width=1)

        def acc(x, state):
            return x

        acc.wants_state = True
        node = g.add("map", preds=[inp], name="acc", width=1, chain_ops=1, fn=acc)
        g.add("output", preds=[node], name="y", width=1)
        with pytest.raises(ValueError, match="batch_fn"):
            g.execute_batch(np.ones((2, 1)))


# ----------------------------------------------------------------------
# Epilogue contract
# ----------------------------------------------------------------------
def _counting_temporal_graph(iterations=5):
    calls = {"body": 0, "epilogue": 0}
    g = DataflowGraph("epi", temporal_iterations=iterations)
    inp = g.add("input", name="x", width=2)

    def body(x):
        calls["body"] += 1
        return x + 1.0

    def epilogue(x):
        calls["epilogue"] += 1
        return 2.0 * x

    b = g.add("map", preds=[inp], name="body", width=2, chain_ops=1,
              fn=body, batch_fn=body)
    e = g.add("map", preds=[b], name="epi", width=2, chain_ops=1,
              fn=epilogue, batch_fn=epilogue, epilogue=True)
    g.add("output", preds=[e], name="y", width=2, epilogue=True)
    return g, calls


class TestEpilogueSemantics:
    def test_scalar_epilogue_runs_once(self):
        """Regression: epilogue fns used to run on *every* iteration."""
        g, calls = _counting_temporal_graph(iterations=5)
        out = g.execute(np.zeros(2))
        assert calls == {"body": 5, "epilogue": 1}
        assert np.array_equal(out, np.full(2, 2.0))  # 2 * (0 + 1), once

    def test_batch_epilogue_runs_once(self):
        g, calls = _counting_temporal_graph(iterations=5)
        out = g.execute_batch(np.zeros((3, 2)))
        assert calls == {"body": 5, "epilogue": 1}
        assert np.array_equal(out, np.full((3, 2), 2.0))

    def test_lstm_head_fn_call_counts(self):
        """The LSTM action head (epilogue) fires once per execute; the
        recurrent cell fires once per history element."""
        seqs, __ = generate_congestion_traces(4, seed=1)
        lstm = indigo_lstm(input_size=seqs.shape[-1], n_actions=5, seed=0)
        graph = lstm_graph(lstm, window_steps=seqs.shape[1])
        counts = {}
        for node in graph.nodes.values():
            if node.name in ("cell_update", "action_head"):
                counts[node.name] = 0

                def wrap(fn, key):
                    def counted(*args, **kwargs):
                        counts[key] += 1
                        return fn(*args, **kwargs)

                    counted.wants_state = getattr(fn, "wants_state", False)
                    return counted

                node.fn = wrap(node.fn, node.name)
                node.batch_fn = wrap(node.batch_fn, node.name)
        graph.execute(seqs[0].reshape(-1))
        assert counts["cell_update"] == graph.temporal_iterations
        assert counts["action_head"] == 1
        counts["cell_update"] = counts["action_head"] = 0
        graph.execute_batch(seqs.reshape(len(seqs), -1))
        assert counts["cell_update"] == graph.temporal_iterations
        assert counts["action_head"] == 1

    def test_epilogue_feeding_body_rejected_at_build_time(self):
        g = DataflowGraph("bad", temporal_iterations=3)
        inp = g.add("input", name="x", width=1)
        e = g.add("map", preds=[inp], name="epi", width=1, chain_ops=1,
                  fn=lambda x: x, epilogue=True)
        with pytest.raises(ValueError, match="feeds"):
            g.add("output", preds=[e], name="y", width=1)  # output NOT epilogue


# ----------------------------------------------------------------------
# Read-only input contract
# ----------------------------------------------------------------------
class TestReadOnlyInputs:
    def test_scalar_input_view_is_read_only(self):
        seen = {}

        def probe(x):
            seen["writeable"] = x.flags.writeable
            return x

        g = DataflowGraph("ro")
        inp = g.add("input", name="x", width=2)
        n = g.add("map", preds=[inp], name="probe", width=2, chain_ops=1, fn=probe)
        g.add("output", preds=[n], name="y", width=2)
        g.execute(np.ones(2))
        assert seen["writeable"] is False

    def test_batch_input_view_is_read_only(self):
        seen = {}

        def probe(x):
            seen["writeable"] = x.flags.writeable
            return x

        g = DataflowGraph("ro")
        inp = g.add("input", name="x", width=2)
        n = g.add("map", preds=[inp], name="probe", width=2, chain_ops=1,
                  fn=probe, batch_fn=probe)
        g.add("output", preds=[n], name="y", width=2)
        g.execute_batch(np.ones((3, 2)))
        assert seen["writeable"] is False

    def test_mutating_fn_raises_and_caller_array_intact(self):
        def vandal(x):
            x[:] = 0.0  # a buggy node fn trying to mutate shared input
            return x

        g = DataflowGraph("mut")
        inp = g.add("input", name="x", width=2)
        n = g.add("map", preds=[inp], name="vandal", width=2, chain_ops=1,
                  fn=vandal, batch_fn=vandal)
        g.add("output", preds=[n], name="y", width=2)
        features = np.array([3.0, 4.0])
        with pytest.raises(ValueError):
            g.execute(features)
        batch = np.array([[3.0, 4.0]])
        with pytest.raises(ValueError):
            g.execute_batch(batch)
        # The caller's arrays were never touched (execute copies them).
        assert np.array_equal(features, [3.0, 4.0])
        assert np.array_equal(batch, [[3.0, 4.0]])

    def test_sibling_consumers_see_pristine_features(self):
        """Two input consumers observe the same, unmodified features."""
        seen = []

        def record(x):
            seen.append(x.copy())
            return x

        g = DataflowGraph("siblings")
        inp = g.add("input", name="x", width=2)
        a = g.add("map", preds=[inp], name="a", width=2, chain_ops=1,
                  fn=record, batch_fn=record)
        b = g.add("map", preds=[inp], name="b", width=2, chain_ops=1,
                  fn=record, batch_fn=record)
        merged = g.add("gather", preds=[a, b], name="g", width=4)
        g.add("output", preds=[merged], name="y", width=4)
        out = g.execute(np.array([1.0, 2.0]))
        assert np.array_equal(seen[0], seen[1])
        assert np.array_equal(out, [1.0, 2.0, 1.0, 2.0])


# ----------------------------------------------------------------------
# Ops accept (B, width) blocks
# ----------------------------------------------------------------------
class TestOpsBatchSemantics:
    def test_map_ops_broadcast_over_batch(self):
        a = np.arange(6, dtype=np.float64).reshape(2, 3)
        b = np.ones((2, 3))
        for name, op in MAP_OPS.items():
            out = op.fn(a) if op.arity == 1 else op.fn(a, b)
            assert out.shape == (2, 3), name

    def test_reduce_ops_contract_last_axis(self):
        v = np.array([[1.0, 5.0, 2.0], [4.0, 0.0, 3.0]])
        assert REDUCE_OPS["sum"].fn(v).shape == (2,)
        assert np.array_equal(REDUCE_OPS["max"].fn(v), [5.0, 4.0])
        assert np.array_equal(REDUCE_OPS["argmax"].fn(v), [1, 0])
        assert np.array_equal(REDUCE_OPS["argmin"].fn(v), [0, 1])

    def test_reduce_batched_keeps_lane_axis(self):
        v = np.array([[1.0, 5.0, 2.0], [4.0, 0.0, 3.0]])
        out = REDUCE_OPS["min"].batched(v)
        assert out.shape == (2, 1)
        assert np.array_equal(out, [[1.0], [0.0]])
        # Rows of a batched reduce match the row-at-a-time reduce.
        for name, op in REDUCE_OPS.items():
            rows = np.stack([np.asarray(op.fn(row)) for row in v])
            assert np.array_equal(np.asarray(op.fn(v)), rows), name
