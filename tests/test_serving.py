"""Always-on inference service: admission, overload, and fault composition.

The serving contract under test:

* admission is **explicit and deterministic** — a seeded bursty arrival
  schedule replayed against a virtual clock yields the exact same
  ACCEPTED / DEFERRED / SHED sequence every time, queues never exceed
  their bound, and the counters account for every submit exactly;
* overload policies behave as documented — reject-new sheds at the cap,
  drop-oldest evicts the queue head (and delivers its fate), and
  degrade-to-sampling admits with a deterministic row stride up to a
  hard cap;
* accepted chunks are **bit-identical to the batch oracle** — a fresh
  runtime replaying the completed chunks in recorded ``seq`` order
  reproduces every result exactly, *including* when a
  :class:`~repro.runtime.FaultPlan` is killing pool workers mid-service;
* shutdown is a graceful bounded drain and the per-interval stats ride
  :meth:`PoolHealth.snapshot`/:meth:`PoolHealth.since` without resetting
  the live pool.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hw import MapReduceBlock
from repro.mapreduce import dnn_graph
from repro.runtime import (
    ACCEPTED,
    DEFERRED,
    SHED,
    ClientSpec,
    FaultPlan,
    InferenceService,
    PoolHealth,
    ShardedRuntime,
    VirtualClock,
    WorkerHealth,
)
from repro.testbed import bursty_schedule, chunk_columns, replay_virtual

from test_shard_runtime import (
    _oracle,
    _pipeline,
    _random_columns,
    _reset,
)

HAS_FORK = hasattr(os, "fork")
fork_only = pytest.mark.skipif(not HAS_FORK, reason="fault injection needs fork")

FAST_WATCHDOG = {"hang_timeout": 0.75, "heartbeat_interval": 0.1,
                 "retry_backoff": 0.01}

SLOTS = 32
CHUNK = 16


@pytest.fixture(scope="module")
def blocks(quantized_dnn):
    """Oracle block + two shard blocks, identically configured."""
    return [MapReduceBlock(dnn_graph(quantized_dnn)) for __ in range(3)]


def _runtime(blocks, shards=2, pool=None, pool_options=None) -> ShardedRuntime:
    for block in blocks[1 : shards + 1]:
        _reset(block)
    return ShardedRuntime(
        lambda i: _pipeline(blocks[i + 1], SLOTS, tables=False),
        shards=shards,
        executor="serial",
        pool=pool,
        pool_options=pool_options,
    )


def _service(backend, *, clock, depth=4, overload="reject-new", **spec_kw):
    return InferenceService(
        backend,
        [ClientSpec(name="tenant", queue_depth=depth, **spec_kw)],
        overload=overload,
        chunk_size=CHUNK,
        clock=clock,
    )


def _chunks(seed=11, n=160, size=20):
    return chunk_columns(_random_columns(seed=seed, n=n), size)


def _results_equal(a, b) -> bool:
    return (
        np.array_equal(a.order, b.order)
        and np.array_equal(a.times, b.times)
        and np.array_equal(a.decisions, b.decisions)
        and np.array_equal(a.ml_scores, b.ml_scores, equal_nan=True)
        and np.array_equal(a.latencies_ns, b.latencies_ns)
        and np.array_equal(a.bypassed, b.bypassed)
        and a.aggregates.keys() == b.aggregates.keys()
        and all(
            np.array_equal(a.aggregates[k], b.aggregates[k])
            for k in a.aggregates
        )
    )


# ----------------------------------------------------------------------
# Satellite: PoolHealth.snapshot() / since() window deltas
# ----------------------------------------------------------------------
class TestHealthWindows:
    def test_snapshot_is_a_deep_copy(self):
        health = PoolHealth.for_pool(2)
        mark = health.snapshot()
        health.worker(0).crashes += 3
        health.worker(1).replayed_chunks += 7
        assert mark.crashes == 0 and mark.replayed_chunks == 0
        assert health.crashes == 3 and health.replayed_chunks == 7

    def test_since_diffs_per_worker(self):
        health = PoolHealth.for_pool(2)
        health.worker(0).crashes = 2
        health.worker(1).hangs = 1
        mark = health.snapshot()
        health.worker(0).crashes = 5
        health.worker(0).restarts = 4
        delta = health.since(mark)
        assert delta.worker(0).crashes == 3
        assert delta.worker(0).restarts == 4
        assert delta.worker(1).hangs == 0
        assert health.crashes == 5  # live counters untouched

    def test_since_unknown_worker_counts_from_zero(self):
        mark = PoolHealth.for_pool(1)
        health = PoolHealth(
            workers=[WorkerHealth(index=0), WorkerHealth(index=1, crashes=2)]
        )
        assert health.since(mark).crashes == 2

    def test_since_unchanged_error_is_blanked(self):
        health = PoolHealth.for_pool(1)
        health.worker(0).last_error = "old"
        mark = health.snapshot()
        assert health.since(mark).worker(0).last_error == ""
        health.worker(0).last_error = "new"
        assert health.since(mark).worker(0).last_error == "new"


# ----------------------------------------------------------------------
# Admission control, one policy at a time (virtual clock, manual pump)
# ----------------------------------------------------------------------
class TestAdmission:
    def test_reject_new_sheds_at_the_bound(self, blocks):
        clock = VirtualClock()
        with _service(_runtime(blocks), clock=clock, depth=2) as svc:
            chunks = _chunks()
            verdicts = [svc.submit("tenant", c).status for c in chunks[:4]]
            assert verdicts == [ACCEPTED, ACCEPTED, SHED, SHED]
            assert svc.stats().queue_depths["tenant"] == 2
            svc.pump(max_requests=1)
            assert svc.submit("tenant", chunks[4]).status == ACCEPTED

    def test_token_bucket_defers_with_retry_after(self, blocks):
        clock = VirtualClock()
        with _service(
            _runtime(blocks), clock=clock, depth=8, rate=10.0, burst=2.0
        ) as svc:
            chunks = _chunks()
            assert svc.submit("tenant", chunks[0]).accepted
            assert svc.submit("tenant", chunks[1]).accepted
            third = svc.submit("tenant", chunks[2])
            assert third.status == DEFERRED
            assert third.reason == "rate-limited"
            assert third.retry_after_s == pytest.approx(0.1)
            clock.advance(third.retry_after_s)
            assert svc.submit("tenant", chunks[2]).accepted
            assert svc.stats().deferred == 1

    def test_deadline_expires_queued_requests(self, blocks):
        clock = VirtualClock()
        with _service(_runtime(blocks), clock=clock, depth=8) as svc:
            chunks = _chunks()
            svc.submit("tenant", chunks[0], deadline_s=0.5)
            svc.submit("tenant", chunks[1], deadline_s=10.0)
            clock.advance(1.0)
            svc.pump()
            results = svc.take_results("tenant")
            assert [r.status for r in results] == ["expired", "completed"]
            stats = svc.stats()
            assert stats.expired == stats.deadline_violations == 1
            assert stats.completed == 1

    def test_drop_oldest_evicts_and_reports(self, blocks):
        clock = VirtualClock()
        with _service(
            _runtime(blocks), clock=clock, depth=2, overload="drop-oldest"
        ) as svc:
            chunks = _chunks()
            first = svc.submit("tenant", chunks[0])
            svc.submit("tenant", chunks[1])
            third = svc.submit("tenant", chunks[2])
            assert third.accepted  # made room by evicting the head
            evicted = svc.take_results("tenant")
            assert [r.status for r in evicted] == ["evicted"]
            assert evicted[0].request_id == first.request_id
            assert svc.stats().evicted == 1
            svc.pump()
            done = svc.take_results("tenant")
            assert [r.status for r in done] == ["completed", "completed"]

    def test_degrade_to_sampling_strides_then_sheds(self, blocks):
        clock = VirtualClock()
        with _service(
            _runtime(blocks), clock=clock, depth=2,
            overload="degrade-to-sampling",
        ) as svc:
            chunks = _chunks(size=20)
            strides = [svc.submit("tenant", c).stride for c in chunks[:4]]
            assert strides == [1, 1, 2, 4]
            fifth = svc.submit("tenant", chunks[4])
            assert fifth.status == SHED  # hard cap at 2 * depth
            svc.pump()
            done = svc.take_results("tenant")
            assert [r.n_packets for r in done] == [20, 20, 10, 5]
            assert svc.stats().sampled == 2

    def test_draining_sheds_new_submits(self, blocks):
        clock = VirtualClock()
        with _service(_runtime(blocks), clock=clock) as svc:
            chunks = _chunks()
            svc.submit("tenant", chunks[0])
            stats = svc.drain()
            assert stats.completed == 1 and stats.queue_depths["tenant"] == 0
            late = svc.submit("tenant", chunks[1])
            assert late.status == SHED and late.reason == "draining"

    def test_unknown_client_raises(self, blocks):
        clock = VirtualClock()
        with _service(_runtime(blocks), clock=clock) as svc:
            with pytest.raises(KeyError):
                svc.submit("stranger", _chunks()[0])


# ----------------------------------------------------------------------
# Satellite: exact accounting under a seeded bursty arrival schedule
# ----------------------------------------------------------------------
def _run_schedule(blocks, seed):
    clock = VirtualClock()
    specs = [
        ClientSpec(
            name="alpha", queue_depth=3, rate=150.0, burst=4.0,
            result_depth=256,
        ),
        ClientSpec(name="beta", queue_depth=2, result_depth=256),
    ]
    svc = InferenceService(
        _runtime(blocks), specs, chunk_size=CHUNK, clock=clock,
    )
    chunks = {
        "alpha": _chunks(seed=seed, n=120, size=10),
        "beta": _chunks(seed=seed + 1, n=80, size=10),
    }
    schedule = bursty_schedule(
        {name: len(c) for name, c in chunks.items()},
        seed=seed, base_rate=400.0, burst_factor=20.0,
        burst_every=6, burst_len=4,
    )
    admissions = replay_virtual(svc, schedule, chunks, clock, pump_every=3)
    depths = svc.stats().queue_depths
    svc.drain()
    stats = svc.stats()
    results = svc.take_results()
    svc.close()
    return admissions, stats, results, depths


class TestExactAccounting:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_counters_account_for_every_submit(self, blocks, seed):
        admissions, stats, results, depths = _run_schedule(blocks, seed)
        by_status = {
            status: sum(1 for a in admissions if a.status == status)
            for status in (ACCEPTED, DEFERRED, SHED)
        }
        assert stats.submitted == len(admissions)
        assert stats.accepted == by_status[ACCEPTED]
        assert stats.deferred == by_status[DEFERRED]
        assert stats.shed == by_status[SHED]
        # Every accepted request's fate is delivered exactly once.
        assert stats.completed + stats.expired + stats.evicted == stats.accepted
        fates = {r.request_id for r in results}
        accepted_ids = {a.request_id for a in admissions if a.accepted}
        assert fates == accepted_ids
        # Bounded queues: never deeper than the admission-time cap.
        assert all(depth <= 3 for depth in depths.values())
        assert stats.queue_depths == {"alpha": 0, "beta": 0}

    def test_schedule_replays_identically(self, blocks):
        first = _run_schedule(blocks, seed=1234)[0]
        second = _run_schedule(blocks, seed=1234)[0]
        assert [
            (a.status, a.client, a.stride, a.reason) for a in first
        ] == [
            (a.status, a.client, a.stride, a.reason) for a in second
        ]

    def test_queue_never_exceeds_bound_mid_run(self, blocks):
        clock = VirtualClock()
        with _service(_runtime(blocks), clock=clock, depth=3) as svc:
            chunks = _chunks(n=200, size=10)
            for i, chunk in enumerate(chunks):
                clock.advance(0.001)
                svc.submit("tenant", chunk)
                assert svc.stats().queue_depths["tenant"] <= 3
                if i % 4 == 3:
                    svc.pump(max_requests=1)


# ----------------------------------------------------------------------
# Satellite: accepted chunks bit-identical to the oracle, faults active
# ----------------------------------------------------------------------
def _serve_and_replay(blocks, pool, pool_options=None, shards=2):
    """Serve chunks through a pooled service, then replay the completed
    sequence on the fresh single-pipeline oracle; returns result pairs."""
    clock = VirtualClock()
    chunks = _chunks(seed=29, n=240, size=24)
    svc = _service(
        _runtime(blocks, shards=shards, pool=pool, pool_options=pool_options),
        clock=clock, depth=len(chunks),
    )
    admissions = []
    for chunk in chunks:
        clock.advance(0.002)
        admissions.append(svc.submit("tenant", chunk))
    assert all(a.accepted for a in admissions)
    svc.drain()
    results = [r for r in svc.take_results() if r.status == "completed"]
    stats = svc.stats()
    svc.close()
    assert len(results) == len(chunks)

    oracle = _oracle(blocks, SLOTS, tables=False)
    pairs = []
    for record in sorted(results, key=lambda r: r.seq):
        expected = oracle.process_trace_batch(
            chunks[record.request_id], chunk_size=CHUNK
        )
        pairs.append((expected, record.result))
    return pairs, stats


class TestServedResultsIdentity:
    def test_thread_pool_matches_oracle(self, blocks):
        pairs, __ = _serve_and_replay(blocks, pool="thread")
        assert all(_results_equal(e, g) for e, g in pairs)

    @fork_only
    def test_crash_injected_service_matches_oracle(self, blocks):
        """A worker SIGKILLed mid-service recovers transparently: every
        accepted chunk's result still matches the unfaulted oracle."""
        # Ordinals count per map_streams run, and every service request is
        # its own run — ordinal 0 is each worker's first chunk of the
        # first request it serves after the plan is armed.
        plan = (
            FaultPlan()
            .add(worker=0, ordinal=0, kind="kill")
            .add(worker=1, ordinal=0, kind="kill")
        )
        pairs, stats = _serve_and_replay(
            blocks, pool="fork",
            pool_options={"faults": plan, **FAST_WATCHDOG},
        )
        assert stats.pool is not None and stats.pool.crashes >= 2
        assert stats.pool.restarts >= 2
        assert all(_results_equal(e, g) for e, g in pairs)

    @fork_only
    def test_admission_keeps_answering_during_recovery(self, blocks):
        """The ingress gate answers while the pool replaces a dead worker:
        a hang fault stalls scoring ~0.75 s, but submits stay instant."""
        import time as _time

        plan = FaultPlan().add(worker=0, ordinal=0, kind="hang", seconds=30.0)
        chunks = _chunks(seed=5, n=120, size=24)
        svc = _service(
            _runtime(blocks, pool="fork",
                     pool_options={"faults": plan, **FAST_WATCHDOG}),
            clock=VirtualClock(), depth=len(chunks),
        )
        try:
            for chunk in chunks[:2]:
                svc.submit("tenant", chunk)
            svc.start()
            _time.sleep(0.2)  # dispatcher is now stuck in the hang window
            t0 = _time.monotonic()
            verdict = svc.submit("tenant", chunks[2])
            elapsed = _time.monotonic() - t0
            assert verdict.accepted
            assert elapsed < 0.2, "admission blocked behind recovery"
            svc.drain()
            done = [r for r in svc.take_results() if r.status == "completed"]
            assert len(done) == 3
            assert svc.stats().pool.hangs >= 1
        finally:
            svc.close()


# ----------------------------------------------------------------------
# Multi-tenant fabric serving (anomaly DNN + IoT KMeans)
# ----------------------------------------------------------------------
class TestMultiTenantFabric:
    def test_two_tenant_fabric_identity(self, quantized_dnn):
        """Two clients on two apps through one pooled fabric: every
        completed chunk matches a fresh fabric replaying the recorded
        scoring order — the IoT KMeans app rides the shared
        ``action_postprocess`` hook pair (no per-row fallback)."""
        from repro.datasets import iot_cluster_dataset, iot_packet_trace
        from repro.ml import KMeans
        from repro.runtime import FabricApp, MultiAppFabric

        feats, __ = iot_cluster_dataset(400, seed=3)
        km = KMeans(n_clusters=5, seed=0).fit(feats)

        def make_fabric(pool):
            return MultiAppFabric(
                [
                    FabricApp.from_quantized_dnn(quantized_dnn),
                    FabricApp.from_kmeans(km),
                ],
                shards=2,
                pool=pool,
            )

        anomaly_chunks = _chunks(seed=17, n=120, size=20)
        iot_chunks = chunk_columns(iot_packet_trace(120, seed=4), 20)
        clock = VirtualClock()
        svc = InferenceService(
            make_fabric("thread"),
            [
                ClientSpec(name="secops", app="anomaly", queue_depth=16),
                ClientSpec(name="iot-floor", app="iot", queue_depth=16),
            ],
            chunk_size=CHUNK,
            clock=clock,
        )
        submitted = {}
        for a, b in zip(anomaly_chunks, iot_chunks):
            clock.advance(0.001)
            ra = svc.submit("secops", a)
            submitted[ra.request_id] = ("anomaly", a)
            rb = svc.submit("iot-floor", b)
            submitted[rb.request_id] = ("iot", b)
        svc.drain()
        results = [r for r in svc.take_results() if r.status == "completed"]
        assert len(results) == len(submitted)
        kmeans_decisions = np.concatenate(
            [
                r.result.decisions
                for r in results
                if submitted[r.request_id][0] == "iot"
            ]
        )
        assert set(np.unique(kmeans_decisions)) <= set(range(5))
        assert len(np.unique(kmeans_decisions)) >= 2  # nontrivial clustering
        svc.close()

        oracle = make_fabric(None)
        for rec in sorted(results, key=lambda r: r.seq):
            app, cols = submitted[rec.request_id]
            empty = cols.slice(slice(0, 0))
            traces = {
                a.name: (cols if a.name == app else empty)
                for a in oracle.apps
            }
            expected = oracle.run(traces, chunk_size=CHUNK).results[app]
            assert _results_equal(expected, rec.result)
        oracle.close()


# ----------------------------------------------------------------------
# Lifecycle: threaded dispatch, graceful drain, interval stats
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_threaded_service_round_trip(self, blocks):
        import time as _time

        svc = _service(_runtime(blocks), clock=_time.monotonic, depth=8)
        try:
            svc.start()
            chunks = _chunks(n=80, size=20)
            for chunk in chunks:
                assert svc.submit("tenant", chunk).accepted
            deadline = _time.monotonic() + 10.0
            collected = []
            while len(collected) < len(chunks) and _time.monotonic() < deadline:
                collected.extend(svc.take_results("tenant"))
                _time.sleep(0.01)
            assert len(collected) == len(chunks)
            assert all(r.status == "completed" for r in collected)
            assert all(r.time_to_decision_s >= 0 for r in collected)
        finally:
            svc.close()

    def test_interval_stats_window(self, blocks):
        clock = VirtualClock()
        with _service(
            _runtime(blocks, pool="thread"), clock=clock, depth=8
        ) as svc:
            chunks = _chunks(n=60, size=20)
            svc.interval_stats()  # open a fresh window
            for chunk in chunks:
                svc.submit("tenant", chunk)
            svc.pump()
            window = svc.interval_stats()
            assert window.completed == len(chunks)
            assert window.pool is not None  # rides PoolHealth.snapshot
            idle = svc.interval_stats()
            assert idle.completed == 0 and idle.submitted == 0
            assert np.isnan(idle.p50_decision_s)
            # Cumulative stats are unaffected by window marks.
            assert svc.stats().completed == len(chunks)

    def test_close_is_idempotent_and_closes_backend(self, blocks):
        clock = VirtualClock()
        runtime = _runtime(blocks, pool="thread")
        svc = _service(runtime, clock=clock)
        svc.submit("tenant", _chunks()[0])
        svc.close()
        svc.close()
        assert runtime.pool is None or runtime.pool._closed

    def test_results_buffer_is_bounded(self, blocks):
        clock = VirtualClock()
        with InferenceService(
            _runtime(blocks),
            [ClientSpec(name="tenant", queue_depth=4, result_depth=2)],
            chunk_size=CHUNK,
            clock=clock,
        ) as svc:
            chunks = _chunks(n=80, size=20)
            for chunk in chunks[:4]:
                svc.submit("tenant", chunk)
            svc.pump()
            results = svc.take_results("tenant")
            assert len(results) == 2  # oldest two were dropped, counted
            assert svc.stats().results_dropped == 2
