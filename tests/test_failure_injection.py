"""Failure-injection and robustness tests.

The paper argues the data plane must stay correct under hostile or
degenerate conditions; these tests stress the substrates the same way:
saturating inputs, adversarial flows, register collisions, queue overflow,
and mid-stream weight swaps.
"""

import numpy as np

from repro.datasets import DNN_FEATURES
from repro.fixpoint import FIX8
from repro.hw import MapReduceBlock
from repro.mapreduce import dnn_graph
from repro.pisa import (
    FlowFeatureAccumulator,
    Packet,
    PacketQueue,
    TaurusPipeline,
)


class TestSaturatingInputs:
    def test_extreme_features_never_crash(self, quantized_dnn):
        """Adversarial feature values saturate cleanly, never overflow."""
        graph = dnn_graph(quantized_dnn)
        for value in (1e9, -1e9, 0.0, np.inf, -np.inf):
            features = np.full(6, np.nan_to_num(value))
            out = graph.execute(features)
            assert np.all(np.isfinite(out))
            assert 0.0 <= float(out[0]) <= 1.0  # sigmoid output range

    def test_fixed_point_saturation_is_total(self, quantized_dnn):
        """Every representable input maps to a valid score (no wrap)."""
        graph = dnn_graph(quantized_dnn)
        rng = np.random.default_rng(0)
        for __ in range(50):
            features = rng.uniform(FIX8.min_value, FIX8.max_value, size=6)
            out = graph.execute(features)
            assert 0.0 <= float(out[0]) <= 1.0


class TestPipelineRobustness:
    def _pipeline(self, quantized_dnn):
        block = MapReduceBlock(dnn_graph(quantized_dnn))
        return TaurusPipeline(block=block, feature_names=DNN_FEATURES)

    def test_missing_features_handled(self, quantized_dnn):
        """Packets without a feature payload still transit (zeros)."""
        pipe = self._pipeline(quantized_dnn)
        packet = Packet(headers={"protocol": 0}, payload_len=10)
        result = pipe.process(packet)
        assert result.ml_score is not None

    def test_malformed_protocol(self, quantized_dnn):
        pipe = self._pipeline(quantized_dnn)
        packet = Packet(headers={"protocol": 255}, payload_len=10,
                        features=np.zeros(6))
        result = pipe.process(packet)  # unknown protocol -> default parse
        assert result.decision in (0, 1, 2)

    def test_flow_register_collision_storm(self):
        """Millions of flows over a small register array degrade gracefully
        (aggregates are approximate, never crash)."""
        acc = FlowFeatureAccumulator(slots=64)
        rng = np.random.default_rng(1)
        for i in range(2000):
            key = tuple(int(v) for v in rng.integers(0, 2**32, size=5))
            aggregates = acc.update(key, size_bytes=100, urgent=False, now_s=i * 1e-6)
            assert aggregates["flow_pkts"] >= 1

    def test_queue_overflow_drops_not_crashes(self):
        queue = PacketQueue("q", capacity=4)
        for i in range(10):
            queue.push(i)
        assert queue.drops == 6
        assert len(queue) == 4


class TestWeightSwapUnderTraffic:
    def test_mid_stream_reconfigure(self, quantized_dnn, trained_dnn, train_test_split):
        """Weight updates swap atomically between packets; scores stay valid
        before and after (the Section 5.2.3 update path)."""
        from repro.datasets import dnn_feature_matrix
        from repro.fixpoint import quantize_model

        train, __ = train_test_split
        block = MapReduceBlock(dnn_graph(quantized_dnn))
        x = dnn_feature_matrix(train)[:20]
        before = [float(block.process(row).value[0]) for row in x[:10]]
        # Retrain briefly and push new weights.
        trained_dnn.fit(dnn_feature_matrix(train)[:500], train.labels[:500], epochs=1)
        new_q = quantize_model(trained_dnn, dnn_feature_matrix(train)[:128])
        block.reconfigure(dnn_graph(new_q))
        after = [float(block.process(row).value[0]) for row in x[10:]]
        for score in before + after:
            assert 0.0 <= score <= 1.0


class TestDegenerateWorkloads:
    def test_all_benign_trace(self):
        from repro.datasets import expand_to_packets, generate_connections
        from repro.testbed import ControlPlaneBaseline
        from repro.ml import anomaly_detection_dnn

        ds = generate_connections(200, anomaly_fraction=0.0, seed=3)
        trace = expand_to_packets(ds, max_packets=2000, seed=3)
        model = anomaly_detection_dnn(seed=0)  # untrained
        result = ControlPlaneBaseline(model=model, seed=0).run(trace, 1e-2)
        assert result.detected_percent == 0.0  # nothing to detect

    def test_all_anomalous_trace(self, quantized_dnn):
        from repro.datasets import expand_to_packets, generate_connections
        from repro.testbed import TaurusDataPlane

        ds = generate_connections(200, anomaly_fraction=1.0, seed=4)
        trace = expand_to_packets(ds, max_packets=2000, seed=4)
        result = TaurusDataPlane(quantized_dnn).run(trace)
        assert result.n_packets == len(trace.packets)
        assert 0.0 <= result.detected_percent <= 100.0

    def test_single_packet_trace(self):
        from repro.datasets import expand_to_packets, generate_connections

        ds = generate_connections(5, seed=5)
        trace = expand_to_packets(ds, max_packets=1, seed=5)
        assert len(trace) == 1
