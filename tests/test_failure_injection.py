"""Failure-injection and robustness tests.

The paper argues the data plane must stay correct under hostile or
degenerate conditions; these tests stress the substrates the same way:
saturating inputs, adversarial flows, register collisions, queue overflow,
and mid-stream weight swaps — and, for the worker pool, deterministic
crash injection: seeded :class:`~repro.runtime.FaultPlan` kill / hang /
torn-frame events must leave pooled runs **bit-identical** to the
unfaulted oracle, with the damage visible only on the pool's health
surface (plus the poison-chunk and degraded-mode escape hatches when
recovery cannot help).
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets import DNN_FEATURES
from repro.fixpoint import FIX8
from repro.hw import MapReduceBlock
from repro.mapreduce import dnn_graph
from repro.pisa import (
    FlowFeatureAccumulator,
    Packet,
    PacketQueue,
    TaurusPipeline,
)
from repro.runtime import (
    FaultEvent,
    FaultPlan,
    PoisonChunk,
    PoolError,
    ShardPool,
    ShardedRuntime,
)

from test_shard_runtime import (
    _assert_equivalent,
    _oracle,
    _pipeline,
    _random_columns,
    _reset,
)

HAS_FORK = hasattr(os, "fork")
fork_only = pytest.mark.skipif(not HAS_FORK, reason="fault injection needs fork")

#: Watchdog knobs fast enough for tests: chunks score in milliseconds,
#: so a 0.75 s deadline with 0.1 s heartbeats catches injected hangs
#: quickly without ever tripping on real work.
FAST_WATCHDOG = {"hang_timeout": 0.75, "heartbeat_interval": 0.1,
                 "retry_backoff": 0.01}


class TestSaturatingInputs:
    def test_extreme_features_never_crash(self, quantized_dnn):
        """Adversarial feature values saturate cleanly, never overflow."""
        graph = dnn_graph(quantized_dnn)
        for value in (1e9, -1e9, 0.0, np.inf, -np.inf):
            features = np.full(6, np.nan_to_num(value))
            out = graph.execute(features)
            assert np.all(np.isfinite(out))
            assert 0.0 <= float(out[0]) <= 1.0  # sigmoid output range

    def test_fixed_point_saturation_is_total(self, quantized_dnn):
        """Every representable input maps to a valid score (no wrap)."""
        graph = dnn_graph(quantized_dnn)
        rng = np.random.default_rng(0)
        for __ in range(50):
            features = rng.uniform(FIX8.min_value, FIX8.max_value, size=6)
            out = graph.execute(features)
            assert 0.0 <= float(out[0]) <= 1.0


class TestPipelineRobustness:
    def _pipeline(self, quantized_dnn):
        block = MapReduceBlock(dnn_graph(quantized_dnn))
        return TaurusPipeline(block=block, feature_names=DNN_FEATURES)

    def test_missing_features_handled(self, quantized_dnn):
        """Packets without a feature payload still transit (zeros)."""
        pipe = self._pipeline(quantized_dnn)
        packet = Packet(headers={"protocol": 0}, payload_len=10)
        result = pipe.process(packet)
        assert result.ml_score is not None

    def test_malformed_protocol(self, quantized_dnn):
        pipe = self._pipeline(quantized_dnn)
        packet = Packet(headers={"protocol": 255}, payload_len=10,
                        features=np.zeros(6))
        result = pipe.process(packet)  # unknown protocol -> default parse
        assert result.decision in (0, 1, 2)

    def test_flow_register_collision_storm(self):
        """Millions of flows over a small register array degrade gracefully
        (aggregates are approximate, never crash)."""
        acc = FlowFeatureAccumulator(slots=64)
        rng = np.random.default_rng(1)
        for i in range(2000):
            key = tuple(int(v) for v in rng.integers(0, 2**32, size=5))
            aggregates = acc.update(key, size_bytes=100, urgent=False, now_s=i * 1e-6)
            assert aggregates["flow_pkts"] >= 1

    def test_queue_overflow_drops_not_crashes(self):
        queue = PacketQueue("q", capacity=4)
        for i in range(10):
            queue.push(i)
        assert queue.drops == 6
        assert len(queue) == 4


class TestWeightSwapUnderTraffic:
    def test_mid_stream_reconfigure(self, quantized_dnn, trained_dnn, train_test_split):
        """Weight updates swap atomically between packets; scores stay valid
        before and after (the Section 5.2.3 update path)."""
        from repro.datasets import dnn_feature_matrix
        from repro.fixpoint import quantize_model

        train, __ = train_test_split
        block = MapReduceBlock(dnn_graph(quantized_dnn))
        x = dnn_feature_matrix(train)[:20]
        before = [float(block.process(row).value[0]) for row in x[:10]]
        # Retrain briefly and push new weights.
        trained_dnn.fit(dnn_feature_matrix(train)[:500], train.labels[:500], epochs=1)
        new_q = quantize_model(trained_dnn, dnn_feature_matrix(train)[:128])
        block.reconfigure(dnn_graph(new_q))
        after = [float(block.process(row).value[0]) for row in x[10:]]
        for score in before + after:
            assert 0.0 <= score <= 1.0


class TestDegenerateWorkloads:
    def test_all_benign_trace(self):
        from repro.datasets import expand_to_packets, generate_connections
        from repro.testbed import ControlPlaneBaseline
        from repro.ml import anomaly_detection_dnn

        ds = generate_connections(200, anomaly_fraction=0.0, seed=3)
        trace = expand_to_packets(ds, max_packets=2000, seed=3)
        model = anomaly_detection_dnn(seed=0)  # untrained
        result = ControlPlaneBaseline(model=model, seed=0).run(trace, 1e-2)
        assert result.detected_percent == 0.0  # nothing to detect

    def test_all_anomalous_trace(self, quantized_dnn):
        from repro.datasets import expand_to_packets, generate_connections
        from repro.testbed import TaurusDataPlane

        ds = generate_connections(200, anomaly_fraction=1.0, seed=4)
        trace = expand_to_packets(ds, max_packets=2000, seed=4)
        result = TaurusDataPlane(quantized_dnn).run(trace)
        assert result.n_packets == len(trace.packets)
        assert 0.0 <= result.detected_percent <= 100.0

    def test_single_packet_trace(self):
        from repro.datasets import expand_to_packets, generate_connections

        ds = generate_connections(5, seed=5)
        trace = expand_to_packets(ds, max_packets=1, seed=5)
        assert len(trace) == 1


# ---------------------------------------------------------------------------
# Crash-transparent pool runs (deterministic fault injection)
# ---------------------------------------------------------------------------

MAX_FAULT_SHARDS = 4


@pytest.fixture(scope="module")
def blocks(quantized_dnn):
    """Oracle block + one per shard, all identically configured."""
    return [
        MapReduceBlock(dnn_graph(quantized_dnn))
        for _ in range(MAX_FAULT_SHARDS + 1)
    ]


def _pooled_runtime(blocks, shards, pool_options=None):
    for block in blocks[1 : shards + 1]:
        _reset(block)
    return ShardedRuntime(
        lambda i: _pipeline(blocks[i + 1], slots=16, tables=True),
        shards=shards,
        executor="serial",
        pool="fork",
        pool_options=pool_options,
    )


class _Echo:
    """Minimal pool context for pool-level fault tests."""

    def handle(self, kind, payload):
        return payload


class TestFaultPlan:
    """The plan itself: validation, consumption, seeded sampling."""

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("segfault")

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultEvent("kill", times=0)

    def test_events_consume_per_take(self):
        plan = FaultPlan().add(0, 1, "kill").add(1, 0, "delay", seconds=0.1)
        assert len(plan) == 2
        assert plan.take(0, 1).kind == "kill"
        assert plan.take(0, 1) is None  # consumed
        assert plan.take(0, 0) is None  # never armed
        assert plan.take(1, 0).seconds == 0.1
        assert plan.fired == [(0, 1, "kill"), (1, 0, "delay")]

    def test_times_replays_the_same_event(self):
        plan = FaultPlan().add(0, 2, "kill", times=3)
        assert all(plan.take(0, 2) is not None for _ in range(3))
        assert plan.take(0, 2) is None

    def test_random_is_deterministic_and_in_grid(self):
        a = FaultPlan.random(99, workers=4, chunks=8, events=5)
        b = FaultPlan.random(99, workers=4, chunks=8, events=5)
        assert len(a) == len(b) == 5
        assert sorted(a._events) == sorted(b._events)
        for (worker, ordinal), event in a._events.items():
            assert 0 <= worker < 4 and 0 <= ordinal < 8
            assert event.kind in ("kill", "hang", "torn_frame")


@fork_only
class TestCrashTransparentRuns:
    """The tentpole contract: a mid-run worker failure is invisible to
    the caller — results, stats, and merged state are bit-identical to
    an unfaulted run, and the crash shows up only in ``pool.health``."""

    @pytest.mark.parametrize("kind", ["kill", "torn_frame"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_single_crash_identity(self, blocks, shards, kind):
        plan = FaultPlan().add(1, 1, kind)
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(
            blocks, shards, pool_options=dict(FAST_WATCHDOG, faults=plan)
        )
        with runtime:
            _assert_equivalent(
                oracle, runtime, _random_columns(seed=101, n=150)
            )
            health = runtime.pool_health
            assert plan.fired == [(1, 1, kind)]
            assert health.worker(1).crashes == 1
            assert health.worker(1).restarts >= 1
            assert health.replayed_chunks >= 1
            assert runtime.pool.alive() == [True] * shards

    @pytest.mark.parametrize("shards", [2, 4])
    def test_hang_identity(self, blocks, shards):
        """A hung worker is killed by the watchdog (heartbeats report it
        stuck mid-request) and recovered exactly like a crash."""
        plan = FaultPlan().add(0, 1, "hang")  # sleeps "forever"
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(
            blocks, shards, pool_options=dict(FAST_WATCHDOG, faults=plan)
        )
        with runtime:
            _assert_equivalent(
                oracle, runtime, _random_columns(seed=102, n=150)
            )
            health = runtime.pool_health
            assert health.worker(0).hangs == 1
            assert health.crashes == 0  # a hang is not an exit
            assert runtime.pool.alive() == [True] * shards

    def test_delay_fault_is_benign(self, blocks):
        """``delay`` shifts timing without breaking anything — the
        negative control for the watchdog (no kill below the deadline)."""
        plan = FaultPlan().add(0, 0, "delay", seconds=0.2)
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(
            blocks, 2, pool_options=dict(FAST_WATCHDOG, faults=plan)
        )
        with runtime:
            _assert_equivalent(
                oracle, runtime, _random_columns(seed=103, n=100)
            )
            assert runtime.pool_health.healthy
            assert runtime.pool_health.crashes == 0

    def test_crash_on_first_and_last_chunk(self, blocks):
        """Boundary ordinals: death before any ack and death on the
        final chunk both recover (nothing-acked and everything-acked
        replay windows)."""
        plan = FaultPlan().add(0, 0, "kill").add(1, 3, "torn_frame")
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(
            blocks, 2, pool_options=dict(FAST_WATCHDOG, faults=plan)
        )
        with runtime:
            _assert_equivalent(
                oracle, runtime, _random_columns(seed=104, n=150)
            )
            assert runtime.pool_health.crashes == len(plan.fired)

    def test_back_to_back_runs_after_recovery(self, blocks):
        """A recovered pool keeps accumulating state correctly: the run
        *after* the crash still matches the oracle chunk-delta for
        chunk-delta."""
        plan = FaultPlan().add(0, 1, "kill")
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(
            blocks, 2, pool_options=dict(FAST_WATCHDOG, faults=plan)
        )
        with runtime:
            for seed in (105, 106, 107):
                _assert_equivalent(
                    oracle, runtime, _random_columns(seed=seed, n=90)
                )
            assert runtime.pool_health.crashes == 1  # only the injected one

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        shards=st.sampled_from([1, 2, 4]),
    )
    def test_random_fault_plans_identity(self, blocks, seed, shards):
        """Property: *any* seeded plan of kill/hang/torn-frame events is
        invisible in the results."""
        plan = FaultPlan.random(seed, workers=shards, chunks=3, events=2)
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(
            blocks, shards, pool_options=dict(FAST_WATCHDOG, faults=plan)
        )
        with runtime:
            _assert_equivalent(
                oracle, runtime, _random_columns(seed=seed % 1000, n=150)
            )
            health = runtime.pool_health
            # Consumed events bound observed failures from above: an
            # event wrapped onto a chunk headed for an already-dying
            # worker is consumed but never executes.
            assert health.crashes + health.hangs <= len(plan.fired)
            if plan.fired:
                assert health.crashes + health.hangs >= 1


@fork_only
class TestPoisonChunkAndDegradedMode:
    """The escape hatches when replay cannot converge."""

    def test_poison_chunk_raises_typed_error(self):
        # The same chunk kills every replacement: after
        # ``max_chunk_retries`` replays the pool must stop blaming the
        # worker and indict the chunk.
        plan = FaultPlan().add(0, 1, "kill", times=10)
        pool = ShardPool(
            [_Echo(), _Echo()], mode="fork",
            max_chunk_retries=2, retry_backoff=0.01, faults=plan,
        )
        try:
            streams = [
                (iter([("echo", i) for i in range(3)]), 3) for _ in range(2)
            ]
            with pytest.raises(PoisonChunk) as info:
                pool.map_streams(streams)
            assert isinstance(info.value, PoolError)
            assert info.value.worker_index == 0
            assert info.value.ordinal == 1
            assert "refusing further replay" in str(info.value)
            # The pool survives the indictment: both workers live, and a
            # fault-free run still completes.
            assert pool.alive() == [True, True]
            assert pool.map_streams(
                [(iter([("echo", 7)]), 1), (iter([("echo", 8)]), 1)]
            ) == [[7], [8]]
        finally:
            pool.close()

    def test_repeated_crashes_degrade_to_in_parent_scoring(self, blocks):
        """Past ``max_worker_crashes`` the shard falls back to scoring
        in the parent — slower, still bit-identical, and counted on the
        health surface."""
        # ``times=2`` guarantees a second death whether or not the first
        # attempt had already shipped chunk 2 to the dying worker (a
        # consumed-but-never-executed event does not re-fire on replay).
        plan = FaultPlan().add(0, 1, "kill").add(0, 2, "kill", times=2)
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(
            blocks, 2,
            pool_options=dict(FAST_WATCHDOG, faults=plan, max_worker_crashes=1),
        )
        with runtime:
            _assert_equivalent(
                oracle, runtime, _random_columns(seed=108, n=150)
            )
            health = runtime.pool_health
            assert health.worker(0).degraded_chunks >= 1
            assert health.degraded
            # The shard was re-forked after the degraded run: the pool
            # still serves (and accumulates) follow-up runs exactly.
            _assert_equivalent(
                oracle, runtime, _random_columns(seed=109, n=90)
            )

    def test_fork_failure_degrades_instead_of_failing(self, blocks):
        """If re-forking a replacement itself fails (fd/memory pressure),
        the run still completes in-parent rather than erroring out."""
        plan = FaultPlan().add(0, 1, "kill")
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _pooled_runtime(
            blocks, 2, pool_options=dict(FAST_WATCHDOG, faults=plan)
        )
        with runtime:
            original_spawn = runtime.pool._spawn

            def failing_spawn(index):
                raise OSError("fork: resource temporarily unavailable")

            runtime.pool._spawn = failing_spawn
            try:
                _assert_equivalent(
                    oracle, runtime, _random_columns(seed=110, n=150)
                )
            finally:
                runtime.pool._spawn = original_spawn
            assert runtime.pool_health.worker(0).degraded_chunks >= 1


class TestFaultConfigValidation:
    def test_thread_mode_rejects_faults(self):
        with pytest.raises(ValueError, match="fault injection requires fork"):
            ShardPool([_Echo()], mode="thread", faults=FaultPlan())

    def test_pool_options_require_pool(self, quantized_dnn):
        from repro.testbed import TaurusDataPlane

        with pytest.raises(ValueError, match="pool_options requires pool"):
            TaurusDataPlane(quantized_dnn, pool_options={"hang_timeout": 1.0})


@fork_only
class TestDataPlaneCrashTransparency:
    """End-to-end: an injected worker death inside ``run_switch`` is
    invisible in the detection result."""

    def test_run_switch_with_injected_kill(self, quantized_dnn):
        from repro.datasets import expand_to_packets, generate_connections
        from repro.testbed import TaurusDataPlane

        ds = generate_connections(150, anomaly_fraction=0.5, seed=6)
        trace = expand_to_packets(ds, max_packets=1200, seed=6)

        plain = TaurusDataPlane(quantized_dnn, shards=2, executor="fork")
        expected = plain.run_switch(trace, chunk_size=64)

        plan = FaultPlan().add(0, 1, "kill")
        with TaurusDataPlane(
            quantized_dnn, shards=2, executor="fork", pool=True,
            pool_options=dict(FAST_WATCHDOG, faults=plan),
        ) as faulted:
            got = faulted.run_switch(trace, chunk_size=64)
            assert faulted.pool_health.crashes == 1
            again = faulted.run_switch(trace, chunk_size=64)

        for name in ("detected_percent", "false_positive_rate",
                     "added_latency_ns", "n_packets"):
            expect = getattr(expected, name, None)
            if expect is None:
                continue
            assert getattr(got, name) == expect, name
            assert getattr(again, name) == expect, name
