"""Tests for the MapReduce DSL and dataflow IR."""

import numpy as np
import pytest

from repro.mapreduce import DataflowGraph, MapReduceControlBlock
from repro.mapreduce.ops import MAP_OPS, REDUCE_OPS, reduce_tree_depth


class PerceptronBlock(MapReduceControlBlock):
    """The Fig. 4 DNN-layer control block, verbatim in the DSL."""

    def build(self, features):
        w = self.weights["w"]
        linear = self.map(
            range(len(w)),
            lambda i: self.reduce(
                self.map(range(w.shape[1]), lambda j: w[i, j] * features[j]),
                lambda a, b: a + b,
            ),
        )
        return self.map(linear, lambda v: max(v, 0.0))


class TestDSL:
    def test_fig4_layer_matches_numpy(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(5, 8))
        x = rng.normal(size=8)
        block = PerceptronBlock()
        block.load_weights(w=w)
        out = block(x)
        assert np.allclose(out, np.maximum(w @ x, 0.0))

    def test_trace_counts_patterns(self):
        block = PerceptronBlock()
        block.load_weights(w=np.ones((3, 4)))
        block(np.ones(4))
        # Outer map (3 neurons) + 3 inner maps + activation map = 5 maps,
        # one reduce per neuron = 3 reduces.
        assert block.trace.maps == 5
        assert block.trace.reduces == 3
        assert block.trace.reduce_elements == 12

    def test_trace_resets_per_call(self):
        block = PerceptronBlock()
        block.load_weights(w=np.ones((2, 2)))
        block(np.ones(2))
        first = block.trace.maps
        block(np.ones(2))
        assert block.trace.maps == first

    def test_reduce_is_tree_ordered(self):
        """Non-associative body exposes evaluation order; must be a tree."""
        block = MapReduceControlBlock()
        got = block.reduce([1.0, 2.0, 3.0, 4.0], lambda a, b: a + b)
        assert got == 10.0
        # Tree order for subtraction: ((1-2)-(3-4)) = 0, fold would give -8.
        tree = block.reduce([1.0, 2.0, 3.0, 4.0], lambda a, b: a - b)
        assert tree == 0.0

    def test_reduce_empty_raises(self):
        with pytest.raises(ValueError):
            MapReduceControlBlock().reduce([], lambda a, b: a + b)

    def test_map_int_domain(self):
        block = MapReduceControlBlock()
        assert block.map(4, lambda i: i * 2).tolist() == [0, 2, 4, 6]


class TestOps:
    def test_all_map_ops_execute(self):
        a = np.array([1.0, -2.0])
        b = np.array([0.5, 0.5])
        for name, op in MAP_OPS.items():
            out = op.fn(a, b) if op.arity == 2 else op.fn(a)
            assert out.shape == a.shape, name

    def test_reduce_ops(self):
        v = np.array([3.0, -1.0, 2.0])
        assert REDUCE_OPS["sum"].fn(v) == pytest.approx(4.0)
        assert REDUCE_OPS["max"].fn(v) == 3.0
        assert REDUCE_OPS["argmin"].fn(v) == 1

    def test_reduce_tree_depth(self):
        assert reduce_tree_depth(16, 16) == 4  # paper: 4 cycles for 16 lanes
        assert reduce_tree_depth(2, 16) == 1
        assert reduce_tree_depth(1, 16) == 0
        assert reduce_tree_depth(12, 16) == 4
        assert reduce_tree_depth(32, 16) == 4  # capped by lanes


class TestIR:
    def _simple_graph(self):
        g = DataflowGraph(name="t")
        inp = g.add("input", name="x", width=4)
        double = g.add(
            "map", preds=[inp], name="double", width=4, chain_ops=1,
            fn=lambda x: 2.0 * x,
        )
        total = g.add(
            "reduce", preds=[double], name="sum", width=4, reduce_op="sum",
            fn=lambda x: np.atleast_1d(np.sum(x)),
        )
        g.add("output", preds=[total], name="y", width=1)
        return g

    def test_execute(self):
        g = self._simple_graph()
        assert g.execute(np.array([1.0, 2.0, 3.0, 4.0]))[0] == 20.0

    def test_topo_order_respects_deps(self):
        g = self._simple_graph()
        order = [n.name for n in g.topo_order()]
        assert order.index("x") < order.index("double") < order.index("sum")

    def test_cycle_detected(self):
        g = DataflowGraph(name="cycle")
        a = g.add("map", name="a", width=1, chain_ops=1, fn=lambda x: x)
        b = g.add("map", preds=[a], name="b", width=1, chain_ops=1, fn=lambda x: x)
        a.preds.append(b.node_id)
        with pytest.raises(ValueError):
            g.topo_order()

    def test_gather_concatenates(self):
        g = DataflowGraph(name="g")
        inp = g.add("input", name="x", width=2)
        left = g.add("map", preds=[inp], name="l", width=1, chain_ops=1,
                     fn=lambda x: x[:1])
        right = g.add("map", preds=[inp], name="r", width=1, chain_ops=1,
                      fn=lambda x: x[1:] * 10)
        merged = g.add("gather", preds=[left, right], name="m", width=2)
        g.add("output", preds=[merged], name="y", width=2)
        out = g.execute(np.array([1.0, 2.0]))
        assert out.tolist() == [1.0, 20.0]

    def test_missing_semantics_raises(self):
        g = DataflowGraph(name="bad")
        inp = g.add("input", name="x", width=1)
        g.add("map", preds=[inp], name="nofn", width=1, chain_ops=1)
        with pytest.raises(ValueError):
            g.execute(np.array([1.0]))

    def test_no_output_raises(self):
        g = DataflowGraph(name="noout")
        g.add("input", name="x", width=1)
        with pytest.raises(ValueError):
            g.execute(np.array([1.0]))

    def test_unknown_kind_rejected(self):
        g = DataflowGraph(name="k")
        with pytest.raises(ValueError):
            g.add("transmogrify", name="z")

    def test_temporal_state_iteration(self):
        """State-carrying nodes see the iteration index and persist values."""
        g = DataflowGraph(name="acc", temporal_iterations=3)
        inp = g.add("input", name="x", width=1)

        def accumulate(x, state):
            state["acc"] = state.get("acc", 0.0) + x[0] + state["iteration"]
            return np.atleast_1d(state["acc"])

        accumulate.wants_state = True
        node = g.add("map", preds=[inp], name="acc", width=1, chain_ops=1, fn=accumulate)
        g.add("output", preds=[node], name="y", width=1)
        # iterations: acc = (1+0) + (1+1) + (1+2) = 6
        assert g.execute(np.array([1.0]))[0] == 6.0
