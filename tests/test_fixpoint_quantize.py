"""Tests for post-training quantization (the Table 3 machinery)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.datasets import dnn_feature_matrix
from repro.fixpoint import (
    FixTensor,
    QuantizedLinear,
    choose_frac_bits,
    format_for_range,
    quantize_model,
)
from repro.ml import accuracy, f1_score
from repro.ml.dnn import DNN


class TestChooseFracBits:
    def test_small_values_get_more_frac_bits(self):
        assert choose_frac_bits(np.array([0.1, -0.2]), 8) > choose_frac_bits(
            np.array([5.0, -6.0]), 8
        )

    def test_zero_input(self):
        assert choose_frac_bits(np.zeros(4), 8) == 7

    def test_coverage_no_saturation(self):
        values = np.array([3.7, -2.1])
        fmt = format_for_range(values, 8)
        assert fmt.max_value >= 3.7 or fmt.roundtrip(3.7) == pytest.approx(
            3.7, abs=fmt.resolution
        )

    @given(st.floats(min_value=0.01, max_value=100.0))
    def test_peak_always_representable(self, peak):
        fmt = format_for_range(np.array([peak]), 8)
        # Within one resolution step of the peak (may clip to max_value).
        assert fmt.roundtrip(peak) >= peak - fmt.resolution - peak * 0.01


class TestQuantizedLinear:
    def _layer(self, act="relu"):
        fmt = format_for_range(np.array([4.0]), 8)
        return QuantizedLinear(
            weights=FixTensor.from_float([[1.0, -1.0]], fmt),
            bias=FixTensor.from_float([0.5], fmt),
            activation=act,
            in_fmt=fmt,
            act_fmt=fmt,
        )

    def test_linear_math(self):
        layer = self._layer("linear")
        out = layer(np.array([1.0, 0.5]))
        assert out[0, 0] == pytest.approx(1.0, abs=0.1)

    def test_relu_clamps(self):
        layer = self._layer("relu")
        out = layer(np.array([-2.0, 2.0]))  # 1*-2 + -1*2 + 0.5 = -3.5 -> 0
        assert out[0, 0] == 0.0

    def test_unknown_activation_rejected(self):
        layer = self._layer("linear")
        layer.activation = "swish"
        with pytest.raises(ValueError):
            layer(np.array([1.0, 1.0]))


class TestQuantizeModel:
    def test_fix8_accuracy_close_to_float(self, trained_dnn, train_test_split):
        """The Table 3 headline: fix8 loses almost no accuracy."""
        __, test = train_test_split
        x = dnn_feature_matrix(test)
        qmodel = quantize_model(trained_dnn, x[:256])
        float_pred = trained_dnn.predict(x)
        quant_pred = (qmodel(x).reshape(-1) >= 0.5).astype(np.int64)
        float_f1 = f1_score(test.labels, float_pred)
        quant_f1 = f1_score(test.labels, quant_pred)
        assert abs(float_f1 - quant_f1) < 0.02

    def test_agreement_rate_high(self, trained_dnn, quantized_dnn, train_test_split):
        __, test = train_test_split
        x = dnn_feature_matrix(test)
        float_pred = trained_dnn.predict(x)
        quant_pred = (quantized_dnn(x).reshape(-1) >= 0.5).astype(np.int64)
        # 8-bit resolution flips a few near-threshold scores; label-level
        # agreement stays high and F1 parity (previous test) is preserved.
        assert accuracy(float_pred, quant_pred) > 0.88

    def test_weight_bytes(self, quantized_dnn):
        # 6->12->6->3->1 network: 187 parameters at 1 byte each.
        assert quantized_dnn.weight_bytes == 187

    def test_wider_formats_reduce_error(self, trained_dnn, train_test_split):
        __, test = train_test_split
        x = dnn_feature_matrix(test)[:200]
        ref = trained_dnn.forward(x).reshape(-1)
        err8 = np.abs(quantize_model(trained_dnn, x, 8)(x).reshape(-1) - ref).mean()
        err16 = np.abs(quantize_model(trained_dnn, x, 16)(x).reshape(-1) - ref).mean()
        assert err16 <= err8

    def test_predict_multiclass(self):
        model = DNN([4, 8, 3], output="softmax", seed=0)
        x = np.random.default_rng(0).normal(size=(50, 4))
        y = (x[:, 0] > 0).astype(int) + (x[:, 1] > 0).astype(int)
        model.fit(x, y, epochs=10)
        q = quantize_model(model, x)
        agreement = np.mean(q.predict(x) == model.predict(x))
        assert agreement > 0.9
