"""Property tests: the multi-app fabric == each app alone, exactly.

:class:`~repro.runtime.MultiAppFabric` time-multiplexes several compiled
programs over shared grid lanes; these tests drive two heterogeneous apps
(the anomaly DNN and the Indigo congestion LSTM) through the fabric at
shards ∈ {1, 2, 4} under every scheduling policy and assert each app's
merged results and pipeline state are bit/stat-identical to running that
app alone on its own trace — i.e. interleaving never leaks
register/recurrent state between apps.  Reconfiguration accounting, the
chunk scheduler, the ``run_multi`` surface, and the experiment scenario
are covered alongside.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import (
    CongestionTraceConfig,
    congestion_packet_trace,
    expand_to_packets,
    generate_connections,
)
from repro.hw import MapReduceBlock
from repro.ml import indigo_lstm
from repro.runtime import (
    FabricApp,
    MultiAppFabric,
    schedule_chunks,
)

HAS_FORK = hasattr(os, "fork")
CFG = CongestionTraceConfig()


@pytest.fixture(scope="module")
def lstm():
    """An Indigo-shaped LSTM (seeded init; training is irrelevant to
    identity/throughput semantics)."""
    return indigo_lstm(seed=4)


@pytest.fixture(scope="module")
def anomaly_trace(train_test_split):
    __, test = train_test_split
    return expand_to_packets(test, max_packets=600, seed=31)


@pytest.fixture(scope="module")
def congestion_trace():
    return congestion_packet_trace(140, CFG, seed=32)


def _apps(quantized_dnn, lstm, weights=(1.0, 1.0)):
    return [
        FabricApp.from_quantized_dnn(
            quantized_dnn, name="anomaly", weight=weights[0]
        ),
        FabricApp.from_lstm(
            lstm, window_steps=CFG.window_steps, name="congestion",
            weight=weights[1],
        ),
    ]


def _oracle(app, trace, chunk_size=64):
    """The app alone on a dedicated block — the PR-2 single-pipeline path."""
    pipe = app.build_pipeline(MapReduceBlock(app.graph))
    result = pipe.process_trace_batch(trace, chunk_size=chunk_size)
    return result, pipe


def _assert_result_equal(result, oracle, label):
    assert np.array_equal(result.order, oracle.order), f"{label}: order"
    assert np.array_equal(result.times, oracle.times), f"{label}: times"
    assert np.array_equal(result.decisions, oracle.decisions), (
        f"{label}: decisions"
    )
    assert np.array_equal(
        result.ml_scores, oracle.ml_scores, equal_nan=True
    ), f"{label}: ml_scores"
    assert np.array_equal(result.latencies_ns, oracle.latencies_ns), (
        f"{label}: latencies"
    )
    assert np.array_equal(result.bypassed, oracle.bypassed), f"{label}: bypass"
    assert result.aggregates.keys() == oracle.aggregates.keys()
    for key in oracle.aggregates:
        assert np.array_equal(
            result.aggregates[key], oracle.aggregates[key]
        ), f"{label}: aggregate {key}"


def _assert_state_matches(fabric, name, oracle_pipe):
    """The app's merged pipeline state == the standalone pipeline's."""
    state = fabric.app_state(name)
    assert state["stats"] == oracle_pipe.stats, name
    for reg, values in state["registers"].items():
        assert np.array_equal(
            values, getattr(oracle_pipe.accumulator, reg).values
        ), f"{name}: register {reg}"
    assert state["parser_packets"] == oracle_pipe.parser.packets_parsed
    for qname, queue in (
        ("ml", oracle_pipe.ml_queue),
        ("bypass", oracle_pipe.bypass_queue),
    ):
        assert state["queues"][qname]["drops"] == queue.drops
        assert (
            state["queues"][qname]["high_watermark"] == queue.high_watermark
        )
    assert state["arbiter_turn"] == oracle_pipe.arbiter._turn


class TestMultiAppIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("policy", ["round_robin", "weighted", "serial"])
    def test_identical_to_each_app_alone(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace,
        shards, policy,
    ):
        """Per-app results and state never depend on shards or policy."""
        apps = _apps(quantized_dnn, lstm)
        oracle_a, pipe_a = _oracle(apps[0], anomaly_trace)
        oracle_c, pipe_c = _oracle(apps[1], congestion_trace)
        fabric = MultiAppFabric(
            apps, shards=shards, chunk_size=64, executor="serial"
        )
        outcome = fabric.run(
            {"anomaly": anomaly_trace, "congestion": congestion_trace},
            policy=policy,
        )
        _assert_result_equal(outcome.results["anomaly"], oracle_a, "anomaly")
        _assert_result_equal(
            outcome.results["congestion"], oracle_c, "congestion"
        )
        _assert_state_matches(fabric, "anomaly", pipe_a)
        _assert_state_matches(fabric, "congestion", pipe_c)
        assert outcome.n_packets == len(anomaly_trace) + len(congestion_trace)
        assert outcome.drain_ns == fabric.last_drain_ns > 0

    def test_interleave_does_not_leak_recurrent_or_register_state(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace
    ):
        """Back-to-back multi-app runs == back-to-back standalone runs.

        Register state accumulates across traces *within* an app; a second
        fabric pass must reproduce a second standalone pass exactly, which
        it can only do if no state bled between apps during either pass.
        """
        apps = _apps(quantized_dnn, lstm)
        pipe_a = apps[0].build_pipeline(MapReduceBlock(apps[0].graph))
        pipe_c = apps[1].build_pipeline(MapReduceBlock(apps[1].graph))
        fabric = MultiAppFabric(apps, shards=2, chunk_size=50)
        for __ in range(2):
            oracle_a = pipe_a.process_trace_batch(anomaly_trace, chunk_size=50)
            oracle_c = pipe_c.process_trace_batch(
                congestion_trace, chunk_size=50
            )
            outcome = fabric.run(
                {"anomaly": anomaly_trace, "congestion": congestion_trace}
            )
            _assert_result_equal(
                outcome.results["anomaly"], oracle_a, "anomaly"
            )
            _assert_result_equal(
                outcome.results["congestion"], oracle_c, "congestion"
            )
            _assert_state_matches(fabric, "anomaly", pipe_a)
            _assert_state_matches(fabric, "congestion", pipe_c)

    @pytest.mark.parametrize(
        "executor",
        ["serial", "thread"] + (["fork"] if HAS_FORK else []),
    )
    def test_executors_agree(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace, executor
    ):
        """Every executor produces the oracle's exact results and state
        (fork additionally proves multi-pipeline-per-lane write-back)."""
        apps = _apps(quantized_dnn, lstm)
        oracle_a, pipe_a = _oracle(apps[0], anomaly_trace)
        oracle_c, pipe_c = _oracle(apps[1], congestion_trace)
        fabric = MultiAppFabric(
            apps, shards=2, chunk_size=64, executor=executor
        )
        outcome = fabric.run(
            {"anomaly": anomaly_trace, "congestion": congestion_trace}
        )
        _assert_result_equal(outcome.results["anomaly"], oracle_a, "anomaly")
        _assert_result_equal(
            outcome.results["congestion"], oracle_c, "congestion"
        )
        _assert_state_matches(fabric, "anomaly", pipe_a)
        _assert_state_matches(fabric, "congestion", pipe_c)

    @pytest.mark.skipif(not HAS_FORK, reason="fork executor needs POSIX")
    def test_fork_restores_resident_program(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace
    ):
        """Regression: fork write-back must also sync which program each
        lane's block left resident — otherwise a *second* run on the same
        fabric models a different reconfiguration bill per executor."""
        outcomes = {}
        for executor in ("serial", "fork"):
            # Three apps on two lanes: lane 0 time-multiplexes two apps,
            # so its forked worker leaves a non-initial program resident.
            apps = _apps(quantized_dnn, lstm) + [
                FabricApp.from_quantized_dnn(quantized_dnn, name="anomaly2")
            ]
            fabric = MultiAppFabric(
                apps, shards=2, chunk_size=64, executor=executor
            )
            traces = {
                "anomaly": anomaly_trace,
                "congestion": congestion_trace,
                "anomaly2": anomaly_trace,
            }
            first = fabric.run(traces)
            assert first.reconfigurations > 0  # lane 0 really switches
            outcomes[executor] = fabric.run(traces)
        assert (
            outcomes["serial"].reconfigurations
            == outcomes["fork"].reconfigurations
        )
        assert outcomes["serial"].drain_ns == outcomes["fork"].drain_ns

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(20, 120),
        st.sampled_from([1, 2, 4]),
        st.sampled_from(["round_robin", "weighted", "serial"]),
    )
    @settings(max_examples=6, deadline=None)
    def test_property_random_workloads(
        self, quantized_dnn, lstm, seed, n, shards, policy
    ):
        """Randomized traces: the fabric never diverges from the oracles."""
        dataset = generate_connections(max(n // 2, 10), seed=seed)
        trace_a = expand_to_packets(dataset, max_packets=n, seed=seed)
        trace_c = congestion_packet_trace(
            max(n // 3, 5), CFG, seed=seed, n_flows=7
        )
        apps = _apps(quantized_dnn, lstm, weights=(2.0, 1.0))
        oracle_a, __ = _oracle(apps[0], trace_a, chunk_size=17)
        oracle_c, __ = _oracle(apps[1], trace_c, chunk_size=17)
        fabric = MultiAppFabric(apps, shards=shards, chunk_size=17)
        outcome = fabric.run(
            {"anomaly": trace_a, "congestion": trace_c}, policy=policy
        )
        _assert_result_equal(outcome.results["anomaly"], oracle_a, "anomaly")
        _assert_result_equal(
            outcome.results["congestion"], oracle_c, "congestion"
        )


class TestReconfigurationAccounting:
    def test_single_lane_pays_for_program_switches(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace
    ):
        """One shared grid: every app switch bills the issue clock."""
        apps = _apps(quantized_dnn, lstm)
        fabric = MultiAppFabric(apps, shards=1, chunk_size=64)
        rr = fabric.run(
            {"anomaly": anomaly_trace, "congestion": congestion_trace},
            policy="round_robin",
        )
        assert rr.reconfigurations > 1
        assert rr.reconfig_ns > 0
        serial = fabric.run(
            {"anomaly": anomaly_trace, "congestion": congestion_trace},
            policy="serial",
        )
        # Running each app to completion switches once; interleaving
        # switches on (nearly) every chunk boundary.
        assert serial.reconfigurations == 1
        assert serial.reconfigurations < rr.reconfigurations
        assert serial.drain_ns < rr.drain_ns

    def test_affine_lanes_eliminate_thrash(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace
    ):
        """shards >= apps: each app owns its lanes — zero reconfigs, and
        concurrent lanes drain faster than the time-shared grid."""
        apps = _apps(quantized_dnn, lstm)
        shared = MultiAppFabric(apps, shards=1, chunk_size=64)
        one = shared.run(
            {"anomaly": anomaly_trace, "congestion": congestion_trace}
        )
        affine = MultiAppFabric(apps, shards=2, chunk_size=64)
        two = affine.run(
            {"anomaly": anomaly_trace, "congestion": congestion_trace}
        )
        assert two.reconfigurations == 0
        assert two.reconfig_ns == 0.0
        assert 0 < two.drain_ns < one.drain_ns
        assert two.model_pkt_per_s > one.model_pkt_per_s

    def test_reconfigure_respects_block_budgets(self, quantized_dnn):
        """Regression: reconfigure used to drop the block's MU budget and
        hard-code the CU budget instead of honouring the constructor's."""
        from repro.mapreduce import dnn_graph

        graph = dnn_graph(quantized_dnn, name="budget_probe")
        block = MapReduceBlock(graph, cu_budget=4, mu_budget=30)
        folded = block.design.fold_factor
        assert folded > 1
        block.reconfigure(
            dnn_graph(quantized_dnn, name="budget_probe_swap")
        )
        assert block.design.fold_factor == folded  # stays folded

    def test_accounted_swap_advances_issue_clock(self, quantized_dnn):
        from repro.mapreduce import dnn_graph

        block = MapReduceBlock(dnn_graph(quantized_dnn, name="p0"))
        other = dnn_graph(quantized_dnn, name="p1")
        before = block._next_issue_cycle
        block.reconfigure(other)  # control-plane swap: free by default
        assert block._next_issue_cycle == before
        block.reconfigure(block.graph, account=True)
        assert block._next_issue_cycle == before + block.reconfig_cycles
        assert block.reconfig_cycles == block.reconfig_cycles_for(block.graph)
        assert block.graph.config_words() > 0


class TestChunkScheduler:
    def test_round_robin_alternates(self):
        assert schedule_chunks([3, 3]) == [0, 1, 0, 1, 0, 1]
        assert schedule_chunks([4, 1]) == [0, 1, 0, 0, 0]

    def test_serial_runs_to_completion(self):
        assert schedule_chunks([2, 3], policy="serial") == [0, 0, 1, 1, 1]

    def test_weighted_is_proportional(self):
        order = schedule_chunks(
            [9, 3], weights=[3.0, 1.0], policy="weighted"
        )
        # In every window of 4 issues before either app runs dry, the
        # 3x-weighted app issues 3 chunks.
        assert order[:8].count(0) == 6
        assert [a for a in order if a == 1] == [1, 1, 1]

    def test_weighted_defaults_to_fair(self):
        assert schedule_chunks([2, 2], policy="weighted") == [0, 1, 0, 1]

    def test_per_app_order_is_fifo(self):
        for policy in ("round_robin", "weighted", "serial"):
            order = schedule_chunks([5, 4, 3], policy=policy)
            assert len(order) == 12
            for a, count in enumerate((5, 4, 3)):
                assert order.count(a) == count

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_chunks([1], policy="lottery")
        with pytest.raises(ValueError):
            schedule_chunks([-1])
        with pytest.raises(ValueError):
            schedule_chunks([1, 1], weights=[1.0, 0.0], policy="weighted")
        with pytest.raises(ValueError):
            schedule_chunks([1, 1], weights=[1.0], policy="weighted")


class TestFabricSurface:
    def test_run_multi_on_dataplane(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace
    ):
        from repro.testbed.dataplane import TaurusDataPlane

        dataplane = TaurusDataPlane(quantized_dnn, shards=2)
        apps = [
            dataplane.anomaly_app(),
            FabricApp.from_lstm(
                lstm, window_steps=CFG.window_steps, name="congestion"
            ),
        ]
        oracle_a, __ = _oracle(apps[0], anomaly_trace, chunk_size=8192)
        outcome = dataplane.run_multi(
            apps,
            {"anomaly": anomaly_trace, "congestion": congestion_trace},
        )
        _assert_result_equal(outcome.results["anomaly"], oracle_a, "anomaly")
        assert dataplane.last_modeled_drain_ns == outcome.drain_ns > 0
        assert dataplane.last_fabric is not None
        assert outcome.shards == 2

    def test_traces_as_sequence(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace
    ):
        apps = _apps(quantized_dnn, lstm)
        fabric = MultiAppFabric(apps, chunk_size=64)
        by_name = fabric.run(
            {"anomaly": anomaly_trace, "congestion": congestion_trace}
        )
        fabric2 = MultiAppFabric(_apps(quantized_dnn, lstm), chunk_size=64)
        by_position = fabric2.run([anomaly_trace, congestion_trace])
        _assert_result_equal(
            by_position.results["anomaly"], by_name.results["anomaly"], "a"
        )

    def test_empty_app_trace(self, quantized_dnn, lstm, anomaly_trace):
        from repro.datasets.packets import TraceColumns

        apps = _apps(quantized_dnn, lstm)
        fabric = MultiAppFabric(apps, shards=2, chunk_size=64)
        outcome = fabric.run(
            {
                "anomaly": anomaly_trace,
                "congestion": TraceColumns.from_packets([]),
            }
        )
        assert len(outcome.results["congestion"]) == 0
        assert len(outcome.results["anomaly"]) == len(anomaly_trace)

    def test_validation(self, quantized_dnn, lstm, anomaly_trace):
        apps = _apps(quantized_dnn, lstm)
        with pytest.raises(ValueError):
            MultiAppFabric(apps, shards=0)
        with pytest.raises(ValueError):
            MultiAppFabric(apps, policy="lottery")
        fabric = MultiAppFabric(apps)
        with pytest.raises(ValueError):
            fabric.register(
                FabricApp.from_quantized_dnn(quantized_dnn, name="anomaly")
            )
        with pytest.raises(ValueError):
            fabric.run({"anomaly": anomaly_trace})  # congestion missing
        with pytest.raises(ValueError):
            MultiAppFabric([]).run({})
        with pytest.raises(KeyError):
            fabric.app_state("nope")

    def test_register_after_run_rejected(
        self, quantized_dnn, lstm, anomaly_trace, congestion_trace
    ):
        apps = _apps(quantized_dnn, lstm)
        fabric = MultiAppFabric(apps, chunk_size=64)
        fabric.run({"anomaly": anomaly_trace, "congestion": congestion_trace})
        with pytest.raises(RuntimeError):
            fabric.register(
                FabricApp.from_quantized_dnn(quantized_dnn, name="late")
            )

    def test_unsorted_packet_trace_matches_oracle(
        self, quantized_dnn, lstm
    ):
        """Regression: a PacketTrace whose packets are NOT in arrival
        order must still merge bit-identically.  The cached
        ``shard_columns`` partition indexes the trace's *original* column
        order, so the fabric may only reuse it for already-sorted traces."""
        from repro.datasets.packets import PacketTrace

        dataset = generate_connections(60, seed=51)
        sorted_trace = expand_to_packets(dataset, max_packets=200, seed=52)
        scrambled = PacketTrace(
            packets=list(reversed(sorted_trace.packets)),
            flows=sorted_trace.flows,
            duration=sorted_trace.duration,
            offered_gbps=sorted_trace.offered_gbps,
        )
        app = FabricApp.from_quantized_dnn(quantized_dnn, name="anomaly")
        oracle, __ = _oracle(app, scrambled, chunk_size=32)
        for shards in (1, 2, 4):
            fabric = MultiAppFabric([app], shards=shards, chunk_size=32)
            outcome = fabric.run({"anomaly": scrambled})
            _assert_result_equal(
                outcome.results["anomaly"], oracle, f"shards={shards}"
            )

    def test_design_cache_is_bounded(self, quantized_dnn):
        """Regression: per-update fresh graphs must not grow the block's
        compiled-design cache (and pin their graphs) without bound."""
        from repro.hw.grid import DESIGN_CACHE_LIMIT
        from repro.mapreduce import dnn_graph

        block = MapReduceBlock(dnn_graph(quantized_dnn, name="g0"))
        for i in range(DESIGN_CACHE_LIMIT * 2):
            block.reconfigure(dnn_graph(quantized_dnn, name=f"g{i + 1}"))
        assert len(block._design_cache) <= DESIGN_CACHE_LIMIT
        # The resident program always stays cached.
        assert any(
            g is block.graph for g, __ in block._design_cache.values()
        )

    def test_lane_affinity_map(self, quantized_dnn, lstm):
        apps = _apps(quantized_dnn, lstm)
        assert MultiAppFabric(apps, shards=1).lane_apps() == [[0, 1]]
        assert MultiAppFabric(apps, shards=2).lane_apps() == [[0], [1]]
        assert MultiAppFabric(apps, shards=4).lane_apps() == [
            [0], [1], [0], [1],
        ]
        fabric = MultiAppFabric(apps, shards=4)
        assert fabric.app_lanes(0) == [0, 2]
        assert fabric.app_lanes(1) == [1, 3]


class TestExperimentScenario:
    def test_multi_app_row(self):
        from repro.testbed import EndToEndExperiment

        experiment = EndToEndExperiment.build(
            n_connections=400, max_packets=3000, epochs=2, seed=0
        )
        row = experiment.run_multi_app(
            n_congestion_packets=200, lstm_sequences=80, lstm_epochs=1
        )
        assert row.policy == "round_robin"
        assert row.n_packets == 3000 + 200
        assert row.drain_ns > 0
        # shards=1 data plane: the two apps time-share one grid.
        assert row.reconfigurations > 0
        assert 0.0 <= row.congestion_action_agreement <= 1.0
        # The shared fabric must not change what the anomaly app detects.
        solo = experiment.taurus_result()
        assert row.anomaly == solo


class TestActionPostprocessHooks:
    """The shared scalar+batch decision hook pair and its KMeans consumer."""

    def test_scalar_batch_agree_per_row(self):
        from repro.pisa.pipeline import action_postprocess

        scalar, batch = action_postprocess()
        values = np.array(
            [[3.2, 1.0], [-0.4, 2.0], [7.9, 3.0]], dtype=np.float64
        )
        vectorized = batch(values)
        assert vectorized.dtype == np.int64
        assert vectorized.tolist() == [scalar(row) for row in values]

    def test_component_selection(self):
        from repro.pisa.pipeline import action_postprocess

        scalar, batch = action_postprocess(component=1)
        values = np.array([[9.0, 4.6], [9.0, -1.2]])
        assert batch(values).tolist() == [4, -1]
        assert scalar(values[0]) == 4

    def test_from_kmeans_builds_serving_app(self):
        from repro.datasets import (
            IOT_CLUSTER_FEATURES,
            iot_cluster_dataset,
            iot_packet_trace,
        )
        from repro.ml import KMeans

        feats, __ = iot_cluster_dataset(300, seed=7)
        km = KMeans(n_clusters=4, seed=1).fit(feats)
        app = FabricApp.from_kmeans(km)
        assert app.name == "iot"
        assert tuple(app.feature_names) == IOT_CLUSTER_FEATURES

        trace = iot_packet_trace(96, seed=9)
        fabric = MultiAppFabric([app], shards=1)
        result = fabric.run({"iot": trace}, chunk_size=32).results["iot"]
        fabric.close()
        assert result.decisions.shape == (96,)
        assert set(np.unique(result.decisions)) <= set(range(4))

    def test_from_kmeans_rejects_bad_inputs(self):
        from repro.datasets import iot_cluster_dataset
        from repro.ml import KMeans

        with pytest.raises(ValueError, match="fitted"):
            FabricApp.from_kmeans(KMeans(n_clusters=3, seed=0))
        feats, __ = iot_cluster_dataset(200, seed=2)
        km = KMeans(n_clusters=3, seed=0).fit(feats)
        with pytest.raises(ValueError, match="feature"):
            FabricApp.from_kmeans(km, feature_names=("a", "b"))
