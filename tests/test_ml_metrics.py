"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import (
    accuracy,
    confusion_matrix,
    detection_rate,
    f1_score,
    macro_f1,
    precision_recall,
)

labels = st.lists(st.integers(0, 1), min_size=1, max_size=200)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 1])) == 1.0

    def test_none_correct(self):
        assert accuracy(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 0]))

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0


class TestConfusion:
    def test_counts(self):
        mat = confusion_matrix(np.array([0, 0, 1, 1]), np.array([0, 1, 1, 1]))
        assert mat.tolist() == [[1, 1], [0, 2]]

    def test_n_classes_override(self):
        mat = confusion_matrix(np.array([0]), np.array([0]), n_classes=3)
        assert mat.shape == (3, 3)

    def test_total_preserved(self):
        y = np.array([0, 1, 2, 1, 0])
        p = np.array([1, 1, 2, 0, 0])
        assert confusion_matrix(y, p).sum() == 5


class TestF1:
    def test_known_value(self):
        # TP=1, FP=1, FN=1 -> precision=recall=0.5 -> F1=0.5
        y = np.array([1, 0, 1])
        p = np.array([1, 1, 0])
        assert f1_score(y, p) == pytest.approx(0.5)

    def test_no_positives_predicted(self):
        assert f1_score(np.array([1, 1]), np.array([0, 0])) == 0.0

    def test_precision_recall_pair(self):
        y = np.array([1, 1, 0, 0])
        p = np.array([1, 0, 1, 0])
        precision, recall = precision_recall(y, p)
        assert precision == 0.5
        assert recall == 0.5

    def test_detection_rate_is_recall(self):
        y = np.array([1, 1, 1, 0])
        p = np.array([1, 0, 0, 0])
        assert detection_rate(y, p) == pytest.approx(1 / 3)

    def test_macro_f1_averages(self):
        y = np.array([0, 0, 1, 1])
        p = np.array([0, 0, 1, 1])
        assert macro_f1(y, p, 2) == 1.0

    @given(labels)
    def test_f1_bounded(self, ys):
        ys = np.array(ys)
        rng = np.random.default_rng(0)
        ps = rng.integers(0, 2, size=len(ys))
        assert 0.0 <= f1_score(ys, ps) <= 1.0

    @given(labels)
    def test_perfect_prediction_maximal(self, ys):
        ys = np.array(ys)
        score = f1_score(ys, ys)
        if ys.sum() > 0:
            assert score == 1.0
        else:
            assert score == 0.0

    @given(labels)
    def test_f1_le_max_of_precision_recall(self, ys):
        ys = np.array(ys)
        ps = np.roll(ys, 1)
        precision, recall = precision_recall(ys, ps)
        assert f1_score(ys, ps) <= max(precision, recall) + 1e-12
