"""Property tests: the sharded runtime == the single-pipeline oracle, exactly.

:class:`~repro.runtime.ShardedRuntime` partitions a trace flow-consistently
across N independent pipelines and merges their outputs; these tests drive
identical workloads through :meth:`TaurusPipeline.process_trace_batch` (the
PR-2 oracle) and the runtime at shards ∈ {1, 2, 4} and assert every
observable matches bit/stat-for-bit — merged decisions, scores, latencies,
bypass flags, aggregates, stats, MAT counters, register contents, parser
and block counters, queue watermarks, and the arbiter turn — across
TCP/UDP mixes, register-collision traces, and all executor strategies.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import DNN_FEATURES, expand_to_packets
from repro.datasets.packets import TraceColumns
from repro.hw import MapReduceBlock
from repro.mapreduce import dnn_graph
from repro.pisa import (
    Action,
    DECISION_DROP,
    DECISION_FORWARD,
    FlowFeatureAccumulator,
    MatchActionTable,
    MatchKind,
    Packet,
    TableEntry,
    TaurusPipeline,
    threshold_postprocess,
)
from repro.runtime import ShardedRuntime, prefetch, run_tasks

MAX_SHARDS = 4
HAS_FORK = hasattr(os, "fork")


@pytest.fixture(scope="module")
def blocks(quantized_dnn):
    """Oracle block + one per shard, all identically configured."""
    return [
        MapReduceBlock(dnn_graph(quantized_dnn)) for _ in range(MAX_SHARDS + 1)
    ]


def _reset(block: MapReduceBlock) -> None:
    block._next_issue_cycle = 0
    block.packets_processed = 0


def _install_tables(pipe: TaurusPipeline) -> None:
    """Pre/postprocess MATs covering all four match kinds."""
    pre_exact = MatchActionTable(
        name="pre_exact", key_fields=("protocol", "dst_port"), kind=MatchKind.EXACT
    )
    pre_exact.install(
        TableEntry(
            {"protocol": 0, "dst_port": 80},
            Action.set_const("tag", "seq", 1),
            priority=1,
        )
    )
    pre_exact.install(
        TableEntry({"protocol": 1}, Action.set_const("udp", "seq", 2), priority=5)
    )
    pre_range = MatchActionTable(
        name="pre_range", key_fields=("src_port",), kind=MatchKind.RANGE
    )
    pre_range.install(
        TableEntry(
            {"src_port": (2000, 40000)},
            Action.set_const("boost", DNN_FEATURES[0], 1.25),
        )
    )
    post_ternary = MatchActionTable(
        name="post_ternary", key_fields=("src_ip",), kind=MatchKind.TERNARY
    )
    post_ternary.install(
        TableEntry(
            {"src_ip": (0x0A000000, 0xFF000000)},
            Action.set_const("drop10", "decision", DECISION_DROP),
            priority=3,
        )
    )
    post_lpm = MatchActionTable(
        name="post_lpm", key_fields=("dst_ip",), kind=MatchKind.LPM
    )
    post_lpm.install(
        TableEntry(
            {"dst_ip": (0xC0A80000, 16)},
            Action.set_const("lan_ok", "decision", DECISION_FORWARD),
        )
    )
    pipe.install_preprocess(pre_exact)
    pipe.install_preprocess(pre_range)
    pipe.install_postprocess(post_ternary)
    pipe.install_postprocess(post_lpm)


def _pipeline(block, slots: int, tables: bool) -> TaurusPipeline:
    scalar_post, batch_post = threshold_postprocess(0.5)
    pipe = TaurusPipeline(
        block=block,
        feature_names=DNN_FEATURES,
        postprocess=scalar_post,
        postprocess_batch=batch_post,
    )
    # Small register files force flow collisions; slot-consistent sharding
    # must keep colliding flows together.
    pipe.accumulator = FlowFeatureAccumulator(slots=slots)
    if tables:
        _install_tables(pipe)
    return pipe


def _oracle(blocks, slots: int, tables: bool) -> TaurusPipeline:
    _reset(blocks[0])
    return _pipeline(blocks[0], slots, tables)


def _runtime(
    blocks, shards: int, slots: int, tables: bool, executor: str = "serial"
) -> ShardedRuntime:
    for block in blocks[1 : shards + 1]:
        _reset(block)
    return ShardedRuntime(
        lambda i: _pipeline(blocks[i + 1], slots, tables),
        shards=shards,
        executor=executor,
    )


def _packet(rng: np.random.Generator, t: float) -> Packet:
    protocol = int(rng.choice([0, 0, 1, 7]))
    features = None if rng.random() < 0.1 else rng.uniform(-3.0, 3.0, size=6)
    return Packet(
        headers={
            "protocol": protocol,
            "src_ip": int(rng.choice([0x0A000001, 0x0A0000FF, 0x0B000001, 3])),
            "dst_ip": int(rng.choice([0xC0A80A0A, 0xC0A90A0A, 17])),
            "src_port": int(rng.choice([1024, 2222, 40000, 55555])),
            "dst_port": int(rng.choice([22, 53, 80, 3306, 9999])),
            "urgent_flag": int(rng.random() < 0.3),
            "seq": int(rng.integers(0, 100)),
        },
        payload_len=int(rng.integers(0, 1400)),
        arrival_time=t,
        features=features,
    )


def _random_columns(seed: int, n: int) -> TraceColumns:
    rng = np.random.default_rng(seed)
    # Duplicate timestamps on purpose: merge order must stay stable.
    times = np.round(rng.uniform(0.0, 0.01, size=n), 4)
    return TraceColumns.from_packets([_packet(rng, float(t)) for t in times])


def _assert_equivalent(oracle: TaurusPipeline, runtime: ShardedRuntime, columns,
                       chunk_size: int = 16):
    expected = oracle.process_trace_batch(columns, chunk_size=chunk_size)
    merged = runtime.process_trace(columns, chunk_size=chunk_size)

    assert np.array_equal(expected.order, merged.order), "order diverged"
    assert np.array_equal(expected.times, merged.times), "times diverged"
    assert np.array_equal(expected.decisions, merged.decisions), "decisions"
    assert np.array_equal(
        expected.ml_scores, merged.ml_scores, equal_nan=True
    ), "ml_scores diverged"
    assert np.array_equal(
        expected.latencies_ns, merged.latencies_ns
    ), "latencies diverged"
    assert np.array_equal(expected.bypassed, merged.bypassed), "bypass flags"
    assert expected.aggregates.keys() == merged.aggregates.keys()
    for key in expected.aggregates:
        assert np.array_equal(
            expected.aggregates[key], merged.aggregates[key]
        ), f"aggregate {key} diverged"

    state = runtime.merged_state()
    assert state["stats"] == oracle.stats
    for name, values in state["registers"].items():
        assert np.array_equal(
            values, getattr(oracle.accumulator, name).values
        ), f"register {name} diverged"
    oracle_tables = oracle.preprocess_tables + oracle.postprocess_tables
    assert len(state["tables"]) == len(oracle_tables)
    for table_state, table in zip(state["tables"], oracle_tables):
        assert table_state["lookups"] == table.lookups, table.name
        assert table_state["misses"] == table.misses, table.name
        assert table_state["hits"] == [e.hits for e in table.entries], table.name
    assert state["parser_packets"] == oracle.parser.packets_parsed
    assert state["block_packets"] == oracle.block.packets_processed
    assert state["block_issue_cycles"] == oracle.block._next_issue_cycle
    for name, queue in (("ml", oracle.ml_queue), ("bypass", oracle.bypass_queue)):
        assert state["queues"][name]["drops"] == queue.drops
        assert state["queues"][name]["high_watermark"] == queue.high_watermark
    assert state["arbiter_turn"] == oracle.arbiter._turn
    return expected, merged


class TestShardMergeDeterminism:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_all_match_kinds_with_collisions(self, blocks, shards):
        """TCP/UDP mix, all four MAT kinds, colliding flow registers."""
        columns = _random_columns(seed=1, n=160)
        oracle = _oracle(blocks, slots=16, tables=True)
        runtime = _runtime(blocks, shards, slots=16, tables=True)
        expected, __ = _assert_equivalent(oracle, runtime, columns)
        assert len({int(d) for d in expected.decisions}) >= 2

    @pytest.mark.parametrize(
        "executor",
        ["serial", "thread"]
        + (["fork"] if HAS_FORK else []),
    )
    def test_executors_agree(self, blocks, executor):
        """Every executor strategy produces the oracle's exact state.

        The fork strategy additionally proves worker-state write-back:
        registers, counters, and the block clock mutate in a child
        process and must land back in the parent's pipelines.
        """
        columns = _random_columns(seed=2, n=120)
        oracle = _oracle(blocks, slots=8, tables=True)
        runtime = _runtime(blocks, 2, slots=8, tables=True, executor=executor)
        _assert_equivalent(oracle, runtime, columns)

    def test_sequential_runs_accumulate_state(self, blocks):
        """Back-to-back traces keep register state, like one pipeline."""
        oracle = _oracle(blocks, slots=16, tables=False)
        runtime = _runtime(blocks, 2, slots=16, tables=False)
        for seed in (3, 4):
            _assert_equivalent(oracle, runtime, _random_columns(seed, 60))

    def test_packet_trace_partitions_cached(self, blocks, train_test_split):
        """PacketTrace input reuses the trace's cached shard partition."""
        __, test = train_test_split
        trace = expand_to_packets(test, max_packets=400, seed=9)
        oracle = _oracle(blocks, slots=64, tables=True)
        runtime = _runtime(blocks, 2, slots=64, tables=True)
        slots = runtime.slots
        _assert_equivalent(oracle, runtime, trace, chunk_size=64)
        assert (2, slots) in trace._shard_views
        parts = trace.shard_columns(2, slots)
        assert sum(len(indices) for indices, __ in parts) == len(trace)
        assert trace.shard_columns(2, slots) is parts  # cached, not rebuilt

    def test_more_shards_than_flows(self, blocks):
        """Shards beyond the flow count leave some workers empty."""
        rng = np.random.default_rng(6)
        packets = [_packet(rng, float(t)) for t in np.linspace(0, 0.01, 30)]
        for p in packets:  # collapse to one five-tuple -> one busy shard
            p.headers.update(src_ip=9, dst_ip=9, src_port=9, dst_port=9, protocol=0)
        columns = TraceColumns.from_packets(packets)
        oracle = _oracle(blocks, slots=16, tables=False)
        runtime = _runtime(blocks, 4, slots=16, tables=False)
        _assert_equivalent(oracle, runtime, columns)
        busy = [p.stats["ml"] + p.stats["bypass"] for p in runtime.pipelines]
        assert sorted(busy)[:3] == [0, 0, 0]

    def test_empty_trace(self, blocks):
        runtime = _runtime(blocks, 2, slots=16, tables=False)
        out = runtime.process_trace(TraceColumns.from_packets([]))
        assert len(out) == 0
        assert runtime.last_drain_ns == 0.0

    def test_modeled_drain_shrinks_with_shards(self, blocks):
        columns = _random_columns(seed=7, n=200)
        drains = {}
        for shards in (1, 4):
            runtime = _runtime(blocks, shards, slots=1024, tables=False)
            runtime.process_trace(columns)
            drains[shards] = runtime.last_drain_ns
        assert 0 < drains[4] < drains[1]

    def test_validation(self, blocks):
        with pytest.raises(ValueError):
            _runtime(blocks, 0, slots=16, tables=False)
        with pytest.raises(ValueError):
            ShardedRuntime(
                lambda i: _pipeline(blocks[i + 1], slots=16 + i, tables=False),
                shards=2,
            )

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(2, 36),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=8, deadline=None)
    def test_property_random_workloads(self, blocks, seed, n, shards):
        """Randomized workloads: the merge never diverges from the oracle."""
        columns = _random_columns(seed=seed, n=n)
        oracle = _oracle(blocks, slots=8, tables=True)
        runtime = _runtime(blocks, shards, slots=8, tables=True)
        _assert_equivalent(oracle, runtime, columns, chunk_size=5)


class TestShardedDataPlane:
    def test_run_switch_matches_single_shard(self, quantized_dnn, train_test_split):
        """TaurusDataPlane(shards=N) is the same machine, end to end."""
        from repro.testbed.dataplane import TaurusDataPlane

        __, test = train_test_split
        trace = expand_to_packets(test, max_packets=500, seed=21)
        base = TaurusDataPlane(quantized_dnn)
        sharded = TaurusDataPlane(quantized_dnn, shards=3, executor="thread")
        assert base.run_switch(trace) == sharded.run_switch(trace)
        assert 0 < sharded.last_modeled_drain_ns < base.last_modeled_drain_ns
        # The scoring shortcut agrees too, sharded + double-buffered
        # (small chunks force the multi-worker split).
        assert base.run(trace, chunk_size=64) == sharded.run(trace, chunk_size=64)
        assert sharded.verify_equivalence(trace, chunk_size=64)

    def test_overlap_is_a_no_op_semantically(self, quantized_dnn, train_test_split):
        from repro.testbed.dataplane import TaurusDataPlane

        __, test = train_test_split
        trace = expand_to_packets(test, max_packets=300, seed=22)
        plain = TaurusDataPlane(quantized_dnn, overlap=False)
        buffered = TaurusDataPlane(quantized_dnn, overlap=True)
        assert plain.run(trace, chunk_size=32) == buffered.run(trace, chunk_size=32)

    def test_shards_validated(self, quantized_dnn):
        from repro.testbed.dataplane import TaurusDataPlane

        with pytest.raises(ValueError):
            TaurusDataPlane(quantized_dnn, shards=0)


class TestArbiterMergeWithBypass:
    """The merged arbiter turn under ``shards > 1`` must follow the shard
    that processed the globally-last packet — observable only when the
    bypass split makes per-shard turns diverge."""

    @staticmethod
    def _bypass_pipeline(block, slots: int) -> TaurusPipeline:
        scalar_post, batch_post = threshold_postprocess(0.5)

        def bypass_scalar(phv) -> bool:
            return int(phv.get("protocol")) == 1

        def bypass_batch(batch):
            return batch.int_column("protocol") == 1

        pipe = TaurusPipeline(
            block=block,
            feature_names=DNN_FEATURES,
            bypass_predicate=bypass_scalar,
            bypass_predicate_batch=bypass_batch,
            postprocess=scalar_post,
            postprocess_batch=batch_post,
        )
        pipe.accumulator = FlowFeatureAccumulator(slots=slots)
        return pipe

    @staticmethod
    def _two_flow_packets(last_protocol: int):
        """Alternating packets of an ML flow (proto 0) and a bypass flow
        (proto 1) that provably land on *different* shards, ending on the
        requested flow."""
        rng = np.random.default_rng(41)
        ml_headers = {
            "protocol": 0, "src_ip": 0x0A000001, "dst_ip": 0xC0A80A0A,
            "src_port": 1024, "dst_port": 80,
        }
        for port in range(2000, 2600):
            bypass_headers = {
                "protocol": 1, "src_ip": 0x0B000001, "dst_ip": 0xC0A90A0A,
                "src_port": port, "dst_port": 53,
            }
            probe = []
            for headers in (ml_headers, bypass_headers):
                packet = _packet(rng, 0.0)
                packet.headers.update(headers)
                probe.append(packet)
            assignments = TraceColumns.from_packets(probe).shard_assignments(
                2, 16
            )
            if assignments[0] != assignments[1]:
                break
        else:  # pragma: no cover - FNV would have to collide 600 times
            pytest.fail("could not split the two flows across shards")
        packets = []
        for i, t in enumerate(np.linspace(0.0, 0.01, 41)):
            headers = (
                ml_headers
                if (i + last_protocol) % 2 == 0
                else bypass_headers
            )
            packet = _packet(rng, float(t))
            packet.headers.update(headers)
            packets.append(packet)
        assert packets[-1].headers["protocol"] == last_protocol
        return packets

    @pytest.mark.parametrize("last_protocol", [0, 1])
    def test_merged_turn_tracks_globally_last_packet(
        self, blocks, last_protocol
    ):
        # The final packet pins the merged turn: protocol 0 drains the ML
        # queue (turn -> bypass), protocol 1 the bypass queue (turn -> ml).
        columns = TraceColumns.from_packets(
            self._two_flow_packets(last_protocol)
        )
        _reset(blocks[0])
        oracle = self._bypass_pipeline(blocks[0], 16)
        for block in blocks[1:3]:
            _reset(block)
        runtime = ShardedRuntime(
            lambda i: self._bypass_pipeline(blocks[i + 1], 16), shards=2
        )
        expected = oracle.process_trace_batch(columns, chunk_size=16)
        merged = runtime.process_trace(columns, chunk_size=16)
        assert np.array_equal(expected.bypassed, merged.bypassed)
        state = runtime.merged_state()
        assert state["arbiter_turn"] == oracle.arbiter._turn
        assert state["arbiter_turn"] == (last_protocol + 1) % 2
        # Each flow's shard saw only its own path, so per-shard turns
        # genuinely diverge — the merge has a real choice to make.
        turns = {pipe.arbiter._turn for pipe in runtime.pipelines}
        assert turns == {0, 1}
        assert state["queues"]["ml"]["high_watermark"] == 1
        assert state["queues"]["bypass"]["high_watermark"] == 1


class TestRuntimePrimitives:
    def test_prefetch_preserves_order(self):
        items = [(i, np.full(4, i)) for i in range(17)]
        out = list(prefetch(iter(items), depth=2))
        assert [i for i, __ in out] == list(range(17))

    def test_prefetch_propagates_errors(self):
        def gen():
            yield 1
            raise RuntimeError("producer blew up")

        it = prefetch(gen(), depth=2)
        assert next(it) == 1
        with pytest.raises(RuntimeError, match="producer blew up"):
            next(it)

    def test_prefetch_early_exit(self):
        for item in prefetch(iter(range(1000)), depth=2):
            if item == 3:
                break  # must not deadlock on the producer thread

    def test_prefetch_close_after_producer_exhausts(self):
        """Closing with the buffer full (producer blocked on its final
        ``done`` put) must not deadlock the join."""
        it = prefetch(iter([1, 2, 3]), depth=2)
        assert next(it) == 1
        it.close()
        assert not it._worker.is_alive()

    def test_prefetch_early_break_stops_producer_promptly(self):
        """Abandoning the iterator must not leave the producer parked in
        ``buffer.put`` until its poll times out: close() drains the
        buffer, so the worker exits and joins immediately."""
        import time

        with prefetch(iter(range(1_000_000)), depth=2) as staged:
            for item in staged:
                if item == 3:
                    break
        t0 = time.perf_counter()
        staged.close()  # idempotent; the with-block already closed
        assert time.perf_counter() - t0 < 0.05
        assert not staged._worker.is_alive()

    def test_prefetch_consumer_exception_cleans_up(self):
        """A consumer-side exception mid-iteration must stop the producer
        deterministically (no reliance on GC collecting a generator)."""
        staged = prefetch(iter(range(1_000_000)), depth=2)
        with pytest.raises(RuntimeError, match="consumer blew up"):
            with staged:
                for __ in staged:
                    raise RuntimeError("consumer blew up")
        assert not staged._worker.is_alive()
        with pytest.raises(StopIteration):
            next(staged)  # closed iterators are exhausted

    def test_prefetch_closes_generator_source(self):
        """A generator source's finally-block runs on shutdown."""
        cleaned = []

        def source():
            try:
                for i in range(1_000_000):
                    yield i
            finally:
                cleaned.append(True)

        with prefetch(source(), depth=2) as staged:
            assert next(staged) == 0
        assert cleaned == [True]

    def test_prefetch_validates_depth(self):
        with pytest.raises(ValueError):
            next(prefetch(iter([1]), depth=0))

    def test_prefetch_close_race_unblocks_consumer(self):
        """Regression: ``__next__`` used an untimed ``buffer.get()``, so a
        racing ``close()`` from another thread (which drains the buffer)
        stranded a consumer already parked in ``get`` forever.  The
        consumer must observe the stop flag and finish as exhausted."""
        import threading
        import time

        release = threading.Event()

        def source():
            yield 1
            release.wait(5.0)  # stall so the buffer stays empty
            yield 2

        staged = prefetch(source(), depth=2, join_timeout=0.2)
        assert next(staged) == 1
        outcome = {}

        def consume():
            try:
                next(staged)
                outcome["value"] = "item"
            except StopIteration:
                outcome["value"] = "stopped"

        consumer = threading.Thread(target=consume, daemon=True)
        consumer.start()
        time.sleep(0.15)  # the consumer is now blocked in __next__
        staged.close()
        consumer.join(timeout=2.0)
        release.set()
        assert not consumer.is_alive(), "consumer stranded after close()"
        assert outcome["value"] == "stopped"

    def test_thread_executor_caps_workers_at_host_cpus(self, monkeypatch):
        """Regression: ``run_tasks`` spawned ``len(tasks)`` threads no
        matter the host, oversubscribing small machines on wide runs."""
        from repro.runtime import executors

        captured = {}
        real_pool = executors.ThreadPoolExecutor

        class SpyPool(real_pool):
            def __init__(self, max_workers=None, **kwargs):
                captured["max_workers"] = max_workers
                super().__init__(max_workers=max_workers, **kwargs)

        monkeypatch.setattr(executors, "ThreadPoolExecutor", SpyPool)
        monkeypatch.setattr(executors, "available_parallelism", lambda: 3)
        out = run_tasks([lambda i=i: i for i in range(16)], "thread")
        assert out == list(range(16))
        assert captured["max_workers"] == 3
        # Fewer tasks than CPUs still sizes to the tasks.
        captured.clear()
        run_tasks([lambda: 1, lambda: 2], "thread")
        assert captured["max_workers"] == 2

    @pytest.mark.skipif(
        not sys.platform.startswith("linux"),
        reason="counts fds via /proc (Linux) and needs fork",
    )
    def test_fork_failure_closes_pipes_and_reaps_children(self, monkeypatch):
        """Regression: a mid-loop ``os.fork`` failure (e.g. EAGAIN) leaked
        the just-created pipe pair and left earlier children unreaped."""
        import errno

        real_fork = os.fork
        calls = {"n": 0}
        spawned: list[int] = []

        def flaky_fork():
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError(errno.EAGAIN, "Resource temporarily unavailable")
            pid = real_fork()
            if pid:
                spawned.append(pid)
            return pid

        open_fds = lambda: len(os.listdir("/proc/self/fd"))
        before = open_fds()
        monkeypatch.setattr(os, "fork", flaky_fork)
        with pytest.raises(OSError, match="unavailable"):
            run_tasks([lambda: 1, lambda: 2], "fork")
        monkeypatch.setattr(os, "fork", real_fork)
        assert open_fds() == before, "fork failure leaked pipe fds"
        # The first (successfully spawned) child was reaped, not stranded.
        assert spawned
        for pid in spawned:
            with pytest.raises(ChildProcessError):
                os.waitpid(pid, os.WNOHANG)

    @pytest.mark.parametrize(
        "mode", ["serial", "thread"] + (["fork"] if HAS_FORK else [])
    )
    def test_run_tasks_modes_agree(self, mode):
        tasks = [lambda i=i: np.arange(i, i + 3) for i in range(5)]
        out = run_tasks(tasks, mode)
        assert [int(a[0]) for a in out] == list(range(5))

    @pytest.mark.skipif(not HAS_FORK, reason="fork executor needs POSIX")
    def test_fork_worker_failure_raises(self):
        def boom():
            raise ValueError("shard exploded")

        with pytest.raises(RuntimeError, match="shard exploded"):
            run_tasks([boom, lambda: 1], "fork")

    @pytest.mark.skipif(not HAS_FORK, reason="fork executor needs POSIX")
    def test_fork_nonzero_exit_status_surfaces(self, monkeypatch):
        """Regression: a child that ships a well-formed payload but dies
        nonzero (e.g. killed during ``os._exit`` bookkeeping) was silently
        trusted.  The patched ``os._exit`` is inherited by the forked
        children, so every worker writes a good result and then exits 5 —
        the parent must refuse all of them."""
        real_exit = os._exit
        monkeypatch.setattr(os, "_exit", lambda status: real_exit(5))
        with pytest.raises(RuntimeError, match="exited with status 5"):
            run_tasks([lambda: 1, lambda: 2], "fork")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            run_tasks([lambda: 1, lambda: 2], "hyperdrive")
