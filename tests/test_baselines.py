"""Tests for the baselines: accelerators (Table 2), MAT-only ML, caching."""

import numpy as np
import pytest

from repro.baselines import (
    ACCELERATORS,
    CPU_XEON,
    GPU_T4,
    TPU_V2,
    BinarizedDNN,
    InferenceCache,
    RuleInstallModel,
    iisy_mat_cost,
    n2net_mat_cost,
    taurus_iso_area_mats,
    weights_vs_rules_bytes,
)
from repro.datasets import dnn_feature_matrix
from repro.ml import f1_score


class TestAccelerators:
    """Table 2: unbatched inference latency on control-plane hardware."""

    @pytest.mark.parametrize(
        "model,paper_ms",
        [(CPU_XEON, 0.67), (GPU_T4, 1.15), (TPU_V2, 3.51)],
    )
    def test_batch1_latency(self, model, paper_ms):
        assert model.latency_ms(1) == pytest.approx(paper_ms, rel=0.02)

    def test_cpu_fastest_unbatched(self):
        """The paper's point: a plain CPU wins at batch 1."""
        assert CPU_XEON.latency_ms(1) < GPU_T4.latency_ms(1) < TPU_V2.latency_ms(1)

    def test_batching_amortizes(self):
        for model in ACCELERATORS.values():
            assert model.per_item_ms(256) < model.per_item_ms(1)

    def test_first_item_pays_full_batch(self):
        assert GPU_T4.first_item_latency_ms(256) > GPU_T4.latency_ms(1)

    def test_all_slower_than_taurus_by_orders_of_magnitude(self):
        taurus_ms = 221e-6  # 221 ns
        for model in ACCELERATORS.values():
            assert model.latency_ms(1) / taurus_ms > 1000

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            CPU_XEON.latency_ms(0)


class TestMATOnlyCosts:
    def test_n2net_anomaly_dnn_cost(self):
        """4-layer BNN needs 48 MATs (Section 5.1.4)."""
        assert n2net_mat_cost(4).n_mats == 48

    def test_iisy_costs(self):
        assert iisy_mat_cost("svm").n_mats == 8
        assert iisy_mat_cost("kmeans").n_mats == 2

    def test_iisy_unknown_model(self):
        with pytest.raises(ValueError):
            iisy_mat_cost("transformer")

    def test_taurus_iso_area_much_cheaper(self):
        """Taurus's block ~ 3 MATs vs N2Net's 48 for the same DNN."""
        taurus_mats = taurus_iso_area_mats()
        assert taurus_mats < 3.5
        assert n2net_mat_cost(4).n_mats / taurus_mats > 10

    def test_mat_cost_area(self):
        cost = iisy_mat_cost("svm")
        assert cost.area_mm2() == pytest.approx(8 * 1.953, rel=0.01)


class TestBinarizedDNN:
    def test_runs_and_underperforms_fix8(self, trained_dnn, quantized_dnn, train_test_split):
        """BNNs work but are imprecise (the paper's critique)."""
        train, test = train_test_split
        x = dnn_feature_matrix(test)
        bnn = BinarizedDNN(trained_dnn)
        bnn.calibrate(dnn_feature_matrix(train), train.labels)
        bnn_f1 = f1_score(test.labels, bnn.predict(x))
        fix8_pred = (quantized_dnn(x).reshape(-1) >= 0.5).astype(np.int64)
        fix8_f1 = f1_score(test.labels, fix8_pred)
        assert bnn_f1 < fix8_f1
        assert bnn_f1 > 0.3  # it does *something*

    def test_mat_cost_matches_layers(self, trained_dnn):
        bnn = BinarizedDNN(trained_dnn)
        assert bnn.mat_cost().n_mats == 12 * 4

    def test_outputs_binary(self, trained_dnn):
        bnn = BinarizedDNN(trained_dnn)
        preds = bnn.predict(np.random.default_rng(0).normal(size=(20, 6)))
        assert set(np.unique(preds)) <= {0, 1}


class TestRuleInstall:
    def test_base_latency(self):
        assert RuleInstallModel().latency_ms(0) == pytest.approx(3.0)

    def test_grows_with_occupancy(self):
        model = RuleInstallModel()
        assert model.latency_ms(10_000) > model.latency_ms(100)

    def test_negative_occupancy(self):
        with pytest.raises(ValueError):
            RuleInstallModel().latency_ms(-1)


class TestInferenceCache:
    def test_miss_then_hit(self):
        cache = InferenceCache()
        features = np.array([1.0, 2.0])
        decision, __ = cache.lookup(features)
        assert decision is None
        cache.fill(features, 1)
        decision, __ = cache.lookup(features)
        assert decision == 1
        assert cache.hit_rate == 0.5

    def test_miss_penalty_includes_all_stages(self):
        cache = InferenceCache()
        penalty = cache.miss_penalty_ms()
        assert penalty > cache.accelerator.latency_ms(1)
        assert penalty > cache.install.latency_ms(0)

    def test_eviction_at_capacity(self):
        cache = InferenceCache(capacity=2)
        for i in range(3):
            cache.fill(np.array([float(i)]), 0)
        assert len(cache.rules) == 2
        assert cache.evictions == 1

    def test_varying_inputs_defeat_caching(self):
        """The Section 2.2 argument: continuous features -> constant misses."""
        rng = np.random.default_rng(0)
        cache = InferenceCache()
        misses = 0
        for __ in range(200):
            features = rng.normal(size=4)
            decision, __lat = cache.lookup(features)
            if decision is None:
                misses += 1
                cache.fill(features, 0)
        assert misses == 200  # every distinct input misses


class TestWeightsVsRules:
    def test_paper_ratio_magnitude(self):
        """Weights beat rules by ~3 orders of magnitude (Section 3)."""
        weight_bytes = 187  # anomaly DNN at 8 bits
        __, rules, ratio = weights_vs_rules_bytes(weight_bytes, n_distinct_inputs=12_000)
        assert rules > 500_000
        assert ratio > 1000

    def test_invalid(self):
        with pytest.raises(ValueError):
            weights_vs_rules_bytes(0, 10)
