"""IoT traffic classification with KMeans at line rate.

The paper's smallest application benchmark: cluster IoT device traffic
(11 features, 5 categories) and classify each flow's packets by nearest
centroid on the MapReduce fabric — 61 ns added latency, 0.3 mm^2.

Run:  python examples/iot_classification.py
"""

import numpy as np

from repro.apps import IoTClassifier, cluster_purity
from repro.compiler import place_and_route
from repro.hw import TaurusChip
from repro.mapreduce import kmeans_graph


def main() -> None:
    print("clustering synthetic IoT device traffic ...")
    app, features, labels = IoTClassifier.train(n_samples=4000, seed=0)

    assignments = app.classify_batch(features[:1000])
    purity = cluster_purity(assignments, labels[:1000])
    print(f"cluster purity on {len(assignments)} flows: {purity:.3f}")

    design = app.block.design
    chip = TaurusChip()
    report = chip.design_overheads(design)
    print(f"\nfabric cost ({design.n_cu} CUs, {design.n_mu} MUs):")
    print(f"  latency : {report.latency_ns:.0f} ns   (paper: 61 ns)")
    print(f"  area    : {report.area_mm2:.2f} mm^2 (+{report.area_percent:.1f}%)")
    print(f"  power   : {report.power_mw:.0f} mW (+{report.power_percent:.1f}%)")
    print(f"  rate    : {report.throughput_gpkt_s:.1f} GPkt/s")

    placement = place_and_route(kmeans_graph(app.kmeans))
    print(
        f"\nplaced on the 12x10 grid: {placement.n_tiles_used} tiles, "
        f"longest route {placement.max_route_hops} hops"
    )

    print("\nper-device-category assignment counts:")
    for cluster in range(5):
        members = labels[:1000][assignments == cluster]
        majority = int(np.bincount(members).argmax()) if len(members) else -1
        print(f"  cluster {cluster}: {len(members):4d} flows, majority class {majority}")


if __name__ == "__main__":
    main()
