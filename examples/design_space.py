"""ASIC design-space exploration (Section 5.1.1).

Sweeps the CU configuration space (precision x lanes x stages), evaluates
the anomaly DNN on each point, and reports the area/latency frontier — the
process that led the paper to the 16-lane, 4-stage, fix8 CU.

Run:  python examples/design_space.py
"""


from repro.compiler import compile_graph
from repro.core import render_table
from repro.datasets import dnn_feature_matrix, generate_connections
from repro.fixpoint import quantize_model
from repro.hw import CUGeometry, cu_area_mm2, fu_area_um2
from repro.mapreduce import dnn_graph
from repro.ml import anomaly_detection_dnn


def main() -> None:
    print("training + quantizing the anomaly DNN once ...")
    dataset = generate_connections(4000, seed=0)
    model = anomaly_detection_dnn(seed=0)
    features = dnn_feature_matrix(dataset)
    model.fit(features, dataset.labels, epochs=15)
    qmodel = quantize_model(model, features[:256])
    graph = dnn_graph(qmodel)

    rows = []
    for precision in ("fix8", "fix16", "fix32"):
        for lanes in (8, 16, 32):
            for stages in (2, 4, 6):
                geom = CUGeometry(lanes, stages, precision)
                design = compile_graph(graph, geom)
                rows.append(
                    [precision, lanes, stages,
                     f"{fu_area_um2(geom):.0f}",
                     f"{cu_area_mm2(geom) * 1000:.1f}",
                     design.n_cu,
                     f"{design.area_mm2:.2f}",
                     f"{design.latency_ns:.0f}"]
                )
    print(render_table(
        "Anomaly DNN across the CU design space",
        ["precision", "lanes", "stages", "um^2/FU", "CU (mum^2 x1e3)",
         "CUs", "total mm^2", "latency ns"],
        rows,
    ))

    # Identify the paper's chosen point and its rationale.
    chosen = CUGeometry(16, 4, "fix8")
    design = compile_graph(graph, chosen)
    print(f"\nchosen configuration (paper): {chosen.lanes} lanes x "
          f"{chosen.stages} stages, {chosen.precision}")
    print(f"  -> {design.n_cu} CUs, {design.area_mm2:.2f} mm^2, "
          f"{design.latency_ns:.0f} ns at line rate")
    print("16 lanes fully unroll the DNN's widest (12-unit) dot product;")
    print("4 stages fit inner-product + ReLU without waste; fix8 costs 4x")
    print("less than fix32 with negligible accuracy loss (Table 3).")


if __name__ == "__main__":
    main()
