"""End-to-end anomaly detection: Taurus vs the control-plane baseline.

Reproduces the Table 8 experiment in miniature: a 5 Gbps NSL-KDD-style
packet workload is scored (a) per-packet on the Taurus data plane and
(b) by a sampled control-plane pipeline (XDP -> InfluxDB -> Keras-on-Xeon
-> ONOS rule install), sweeping the telemetry sampling rate.

Run:  python examples/anomaly_detection.py
"""

from repro.testbed import DEFAULT_SAMPLING_RATES, EndToEndExperiment, format_table8


def main() -> None:
    print("building workload + training the shared model ...")
    experiment = EndToEndExperiment.build(
        n_connections=4000, max_packets=100_000, epochs=20, seed=0
    )
    workload = experiment.workload
    print(
        f"workload: {workload.n_packets} packets, "
        f"{len(workload.trace.flows)} flows, "
        f"{workload.trace.duration:.1f} s (dilated), "
        f"{workload.anomalous_packets} anomalous packets"
    )
    print("verifying fabric/vectorized equivalence:",
          experiment.verify_dataplane())
    print("Taurus rows below exercise the full switch model: every packet "
          "transits the batched parse/MAT/register/MapReduce pipeline.")

    print("\nsweeping control-plane sampling rates ...")
    rows = experiment.run(DEFAULT_SAMPLING_RATES)
    print(format_table8(rows))

    best = max(rows, key=lambda r: r.baseline.detected_percent)
    print(
        f"\nbest baseline point: sampling {best.sampling_rate:.0e} detects "
        f"{best.baseline.detected_percent:.2f}% of anomalous packets;"
    )
    print(
        f"Taurus detects {best.taurus.detected_percent:.1f}% at every rate "
        f"({best.detection_advantage:.0f}x more events), adding only "
        f"{best.taurus.added_latency_ns:.0f} ns per packet."
    )


if __name__ == "__main__":
    main()
