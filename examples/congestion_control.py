"""Online congestion control: the Indigo LSTM on the fabric.

Trains an imitation LSTM (32 units + softmax over cwnd actions) on
oracle-labeled bottleneck traces, deploys it on the MapReduce block
(folded: it runs below line rate, deciding every ~805 ns instead of the
server's ~10 ms), and compares closed-loop behaviour at both decision
intervals under fast-varying cross traffic.

Run:  python examples/congestion_control.py
"""

from repro.apps import CongestionController, closed_loop_metrics


def main() -> None:
    print("training the Indigo-style LSTM on oracle traces ...")
    controller, accuracy = CongestionController.train(
        n_sequences=1200, epochs=10, seed=0
    )
    print(f"imitation accuracy: {accuracy:.3f}")

    design = controller.block.design
    print(f"\nfabric mapping: {design.n_cu} CUs (fold x{design.fold_factor})")
    print(f"  decision latency : {design.latency_ns:.0f} ns (paper: 805 ns)")
    print(f"  area             : {design.area_mm2:.2f} mm^2 (paper: 3.0 mm^2)")
    print(f"  line-rate fraction: {design.line_rate_fraction:.3f} "
          "(Indigo does not run per-packet)")

    print("\nclosed-loop comparison (bursty bottleneck, 0.2 s):")
    for label, interval in (("server @ 10 ms", 10e-3), ("Taurus @ ~1 us", 1e-6)):
        metrics = closed_loop_metrics(
            controller, decision_interval_s=interval, sim_time_s=0.2, seed=3
        )
        print(
            f"  {label:>15}: utilization {metrics['mean_utilization']:.3f}, "
            f"mean queue {metrics['mean_queue_fraction']:.3f}, "
            f"p99 queue {metrics['p99_queue_fraction']:.3f}, "
            f"losses {metrics['loss_events']:.0f}"
        )
    print("\nfaster decisions track bursts the 10 ms loop cannot see.")


if __name__ == "__main__":
    main()
