"""Quickstart: per-packet anomaly detection on a Taurus switch.

Trains the paper's anomaly-detection DNN (6 KDD features -> 12/6/3 hidden
-> sigmoid), quantizes it to the fix8 datapath, lowers it onto the
MapReduce fabric, and pushes packets through the full PISA pipeline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AnomalyDetector
from repro.datasets import expand_to_packets, generate_connections


def main() -> None:
    # 1. Train + quantize + lower + deploy, in one call.
    print("training the anomaly-detection DNN ...")
    detector = AnomalyDetector.from_dataset(n_connections=5000, epochs=20, seed=0)

    # 2. Offline model quality (the paper's F1 ~ 0.71).
    held_out = generate_connections(3000, seed=99)
    scores = detector.offline_scores(held_out)
    print(f"offline F1 (float32): {scores['f1_float']:.3f}")
    print(f"offline F1 (fix8)   : {scores['f1_fix8']:.3f}   <- what the fabric runs")
    print(f"detection rate      : {scores['detection_fix8']:.3f}")

    # 3. Hardware cost of the deployed model (a Table 5 row).
    design = detector.block.design
    print(f"\ncompiled design: {design.n_cu} CUs + {design.n_mu} MUs")
    print(f"  latency    : {design.latency_ns:.0f} ns  (paper: 221 ns)")
    print(f"  area       : {design.area_mm2:.2f} mm^2 (paper: 1.0 mm^2)")
    print(f"  throughput : {design.throughput_gpkt_s:.1f} GPkt/s (line rate)")

    # 3b. Static verification: the same graph the fabric runs, checked
    #     before deployment — widths, structure, fixed-point discipline,
    #     and CU/MU budgets (`python -m repro.analysis` runs this over
    #     everything the repo ships).  Info findings are known costs;
    #     warnings/errors would fail CI's lint gate.
    from repro.analysis import verify_graph, worst_severity
    from repro.core import TaurusConfig

    diags = verify_graph(detector.block.graph, config=TaurusConfig())
    worst = worst_severity(diags)
    print(f"static verification: {len(diags)} finding(s), worst: {worst}")
    for diag in diags:
        print(f"  {diag.format()}")

    # 3c. Abstract interpretation: proven per-node value intervals (the
    #     saturation/overflow gate CI runs) and the purity/effects pass
    #     whose FusionPlan the compiled-backend work will consume.
    from repro.analysis import analyze_effects, analyze_ranges

    graph = detector.block.graph
    report = analyze_ranges(graph)
    out_iv = report.intervals[graph.outputs()[0].node_id]
    print(f"range analysis: {report.passes} pass(es), "
          f"proven output interval {out_iv}")
    plan = analyze_effects(graph)
    print(f"fusion plan: {len(plan.chains)} fusable chain(s) "
          f"{plan.chain_names() or ''}")

    # 4. Push real packets through the switch pipeline — the whole trace
    #    transits the batched PISA path (vectorized parse, flow registers,
    #    MATs, chunked MapReduce scoring) in one call.
    trace = expand_to_packets(held_out, max_packets=2000, seed=7)
    print(f"\nprocessing {len(trace)} packets through the batched pipeline ...")
    outcome = detector.pipeline.process_trace_batch(trace)
    labels = trace.columns().labels[outcome.order]
    flagged_mask = outcome.decisions != 0
    flagged = int(np.count_nonzero(flagged_mask))
    correct = int(labels[flagged_mask].sum())
    print(f"flagged {flagged} packets ({correct} truly anomalous)")
    print(f"added latency per ML packet: {detector.added_latency_ns:.0f} ns")
    print("non-ML packets would take the bypass path at zero added latency")

    # 5. Scale out: the same trace, sharded flow-consistently across four
    #    parallel pipeline/block workers (bit-identical results; modeled
    #    drain shows four fabrics draining concurrently).
    from repro.testbed import TaurusDataPlane

    single = TaurusDataPlane(detector.quantized)
    sharded = TaurusDataPlane(detector.quantized, shards=4, overlap=True)
    print(f"\nsharded replay across {sharded.shards} pipeline workers ...")
    result_1 = single.run_switch(trace)
    result_4 = sharded.run_switch(trace)
    assert result_1 == result_4, "sharded replay must be bit-identical"
    print(f"detection {result_4.detected_percent:.1f}% (identical at 1 and 4 shards)")
    print(
        f"modeled trace drain: {single.last_modeled_drain_ns / 1e3:.1f} us -> "
        f"{sharded.last_modeled_drain_ns / 1e3:.1f} us with 4 parallel blocks"
    )

    # 6. Multi-app fabric: a second model (the Indigo congestion LSTM)
    #    shares the same switch.  Each app keeps its own pipelines and
    #    registers; only the MapReduce grid is time-multiplexed, with
    #    program swaps billed to the modeled issue clock.
    from repro.datasets import CongestionTraceConfig, congestion_packet_trace
    from repro.ml import indigo_lstm
    from repro.runtime import FabricApp

    cfg = CongestionTraceConfig()
    two_lane = TaurusDataPlane(detector.quantized, shards=2)
    apps = [
        two_lane.anomaly_app(),
        FabricApp.from_lstm(
            indigo_lstm(seed=0), window_steps=cfg.window_steps, name="congestion"
        ),
    ]
    congestion_trace = congestion_packet_trace(200, cfg, seed=1)
    print("\ntwo apps on one switch (anomaly DNN + congestion LSTM) ...")
    shared_grid = TaurusDataPlane(detector.quantized, shards=1)
    one = shared_grid.run_multi(apps, [trace, congestion_trace])
    two = two_lane.run_multi(apps, [trace, congestion_trace])
    assert all(
        (one.results[name].decisions == two.results[name].decisions).all()
        for name in one.results
    ), "per-app results are independent of the lane layout"
    print(
        f"one shared grid : {one.reconfigurations} program swaps, "
        f"drain {one.drain_ns / 1e3:.1f} us"
    )
    print(
        f"two affine lanes: {two.reconfigurations} program swaps, "
        f"drain {two.drain_ns / 1e3:.1f} us "
        f"({one.drain_ns / two.drain_ns:.2f}x the time-shared grid)"
    )
    print(
        f"anomaly flags {two.results['anomaly'].flagged} packets; congestion "
        f"issues {len(two.results['congestion'])} cwnd actions — same fabric"
    )

    # 7. Persistent shard pool: serving many (small) traces back to back,
    #    the fork-per-run setup dominates.  pool=True keeps pre-forked
    #    workers warm across runs and streams pipelined chunks to them;
    #    per-run rewind keeps every result identical to a cold run.
    import time

    small_traces = [
        expand_to_packets(held_out, max_packets=500, seed=s) for s in (31, 32, 33)
    ]
    per_run = TaurusDataPlane(detector.quantized, shards=2, executor="fork")
    print("\nreplaying 3 small traces, fork-per-run vs a warm pool ...")
    t0 = time.perf_counter()
    cold = [per_run.run_switch(t) for t in small_traces]
    cold_s = time.perf_counter() - t0
    with TaurusDataPlane(
        detector.quantized, shards=2, executor="fork", pool=True
    ) as pooled:
        pooled.run_switch(small_traces[0])  # spawn + warm the workers
        t0 = time.perf_counter()
        warm = [pooled.run_switch(t) for t in small_traces]
        warm_s = time.perf_counter() - t0
    assert cold == warm, "warm-pool runs must match fork-per-run exactly"
    print(
        f"fork-per-run {cold_s * 1e3:.0f} ms -> warm pool {warm_s * 1e3:.0f} ms "
        f"({cold_s / warm_s:.1f}x) for identical results"
    )

    # 8. Crash transparency: kill a worker mid-sequence and the pool
    #    recovers it — re-fork from parent state, replay the unacked
    #    chunks — with results still identical to the unfaulted runs.
    #    FaultPlan injects the crash deterministically (worker 0 is
    #    SIGKILLed at its first chunk of the first run).
    from repro.runtime import FaultPlan

    plan = FaultPlan().add(worker=0, ordinal=0, kind="kill")
    with TaurusDataPlane(
        detector.quantized, shards=2, executor="fork", pool=True,
        pool_options={"faults": plan},
    ) as survivor:
        crashed = [survivor.run_switch(t) for t in small_traces]
        health = survivor.pool_health
    assert crashed == cold, "recovery must be invisible in the results"
    print(
        f"worker killed mid-run: {health.crashes} crash, "
        f"{health.restarts} restart, {health.replayed_chunks} chunk(s) "
        "replayed — results identical"
    )

    # 9. Always-on serving: instead of handing the runtime one finished
    #    trace, producers submit chunk-sized requests through bounded
    #    per-tenant queues and every submit gets an explicit verdict —
    #    ACCEPTED, DEFERRED (rate-limited, retry later), or SHED (queue
    #    full).  A bursty two-tenant schedule over a started service
    #    shows the envelope: admitted chunks are scored by the warm
    #    shard pool while overload is shed, not buffered without bound.
    from repro.hw import MapReduceBlock
    from repro.mapreduce import dnn_graph
    from repro.runtime import ClientSpec, InferenceService, ShardedRuntime
    from repro.testbed import bursty_schedule, chunk_columns, replay_wall

    serve_trace = expand_to_packets(held_out, max_packets=2400, seed=34)
    chunks = chunk_columns(serve_trace, 64)
    tenants = {
        "prod": [c for i, c in enumerate(chunks) if i % 2 == 0],
        "scratch": [c for i, c in enumerate(chunks) if i % 2 == 1],
    }
    plane = TaurusDataPlane(detector.quantized)
    blocks = [MapReduceBlock(dnn_graph(detector.quantized)) for _ in range(2)]
    backend = ShardedRuntime(
        lambda s: plane.build_pipeline(block=blocks[s]),
        shards=2, executor="thread", pool="thread",
    )
    schedule = bursty_schedule(
        {name: len(t) for name, t in tenants.items()},
        seed=7, base_rate=1500.0, burst_factor=10.0,
    )
    print("\nserving a bursty two-tenant workload ...")
    with InferenceService(
        backend,
        [
            ClientSpec(name="prod", queue_depth=3, result_depth=len(chunks)),
            ClientSpec(name="scratch", queue_depth=2, rate=40.0, burst=4.0),
        ],
    ).start() as service:
        replay_wall(service, schedule, tenants)
        stats = service.drain()
    print(stats.summary())
    print(
        f"decision latency p50 {stats.p50_decision_s * 1e3:.1f} ms, "
        f"p99 {stats.p99_decision_s * 1e3:.1f} ms; "
        f"{stats.shed} shed + {stats.deferred} deferred of "
        f"{stats.submitted} submits — queues stayed bounded"
    )


if __name__ == "__main__":
    main()
