"""Beyond ML: sketching and core scheduling on MapReduce (Section 3.3.2).

Two non-ML applications the MapReduce abstraction supports directly:

* a Count-Min Sketch for flow-size estimation / heavy-hitter detection
  (map over hash rows + min-reduce), and
* Elastic RSS — consistent, weighted packet-to-core scheduling (map of
  per-core suitability scores + argmax reduce).

Run:  python examples/sketch_offload.py
"""

import numpy as np

from repro.apps import CountMinSketch, ElasticRSS


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # Count-Min Sketch: estimate flow sizes in 4 x 1024 counters (one MU
    # bank row each) instead of an exact per-flow table.
    # ------------------------------------------------------------------
    print("=== Count-Min Sketch (flow-size estimation) ===")
    cms = CountMinSketch(width=1024, depth=4, conservative=True)
    truth: dict[tuple, int] = {}
    # Zipf-ish traffic: a few elephants, many mice.
    flows = [(int(f),) for f in rng.zipf(1.3, size=20000) if f < 5000]
    for flow in flows:
        cms.update(flow)
        truth[flow] = truth.get(flow, 0) + 1
    errors = [cms.query(k) - v for k, v in truth.items()]
    print(f"flows: {len(truth)}, packets: {cms.total}")
    print(f"estimate error: mean {np.mean(errors):.2f}, max {max(errors)}")
    print(f"memory: {cms.memory_values} counters "
          f"(vs {len(truth)} exact-table entries)")

    top = sorted(truth, key=truth.get, reverse=True)[:5]
    hh = cms.heavy_hitters(list(truth), threshold_fraction=0.01)
    print(f"heavy hitters (>1% of traffic): {sorted(hh)}")
    print(f"true top-5 flows:               {sorted(top)}")

    # ------------------------------------------------------------------
    # Elastic RSS: map scores one per core, reduce picks the winner.
    # ------------------------------------------------------------------
    print("\n=== Elastic RSS (consistent core scheduling) ===")
    rss = ElasticRSS(n_cores=8)
    flow_keys = [tuple(int(v) for v in rng.integers(0, 2**32, 5)) for __ in range(4000)]
    counts = np.bincount([rss.select_core(f) for f in flow_keys], minlength=8)
    print(f"per-core flow counts: {counts.tolist()}")

    disruption = rss.disruption_on_change(flow_keys[:800], core=7, new_weight=0.0)
    print(f"flows remapped when core 7 drains: {disruption * 100:.1f}% "
          "(only its own share moves — consistent hashing)")

    rss.set_weight(0, 2.0)
    counts = np.bincount([rss.select_core(f) for f in flow_keys], minlength=8)
    print(f"after doubling core 0's weight: {counts.tolist()}")


if __name__ == "__main__":
    main()
