"""Taurus: a data plane architecture for per-packet ML (ASPLOS 2022).

A full-system Python reproduction: fixed-point datapath, from-scratch ML
library, MapReduce DSL + compiler, CGRA (CU/MU grid) simulator, PISA switch
pipeline, baselines (accelerators, MAT-only ML, control-plane caching), and
the end-to-end anomaly-detection testbed.

Quickstart::

    from repro import AnomalyDetector
    from repro.datasets import generate_connections

    detector = AnomalyDetector.from_dataset(n_connections=4000)
    print(detector.offline_scores(generate_connections(2000, seed=7)))
    print(detector.added_latency_ns, "ns added per ML packet")
"""

from .apps import AnomalyDetector, CongestionController, IoTClassifier
from .core import TaurusConfig, TaurusSwitch
from .fixpoint import FIX8, FIX16, FIX32, FixTensor, quantize_model
from .hw import MapReduceBlock, TaurusChip
from .mapreduce import (
    DataflowGraph,
    MapReduceControlBlock,
    dnn_graph,
    kmeans_graph,
    lstm_graph,
    svm_graph,
)
from .pisa import TaurusPipeline
from .runtime import ShardedRuntime

__version__ = "1.0.0"

__all__ = [
    "AnomalyDetector",
    "CongestionController",
    "IoTClassifier",
    "TaurusConfig",
    "TaurusSwitch",
    "FIX8",
    "FIX16",
    "FIX32",
    "FixTensor",
    "quantize_model",
    "MapReduceBlock",
    "TaurusChip",
    "DataflowGraph",
    "MapReduceControlBlock",
    "dnn_graph",
    "kmeans_graph",
    "lstm_graph",
    "svm_graph",
    "TaurusPipeline",
    "ShardedRuntime",
    "__version__",
]
