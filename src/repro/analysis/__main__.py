"""``python -m repro.analysis`` — the repo's static-analysis gate.

Verifies every shipped dataflow graph (structure, shapes, execution
probe, budgets against the default :class:`~repro.core.TaurusConfig`),
runs the abstract-interpretation range/saturation analysis and the
purity/effects pass over each (fusion plans + per-node waivers are
reported), the shipped multi-app fabric bundle, and the runtime-source
lints: fork-safety *and* the interprocedural lockset/protocol
concurrency analysis (``repro.analysis.concurrency``).  Exit status is
0 when no finding of warning severity or above remains, 1 otherwise —
which is exactly what CI's ``lint`` job checks.

Usage::

    python -m repro.analysis                  # the full shipped battery
    python -m repro.analysis --format=json    # machine-readable report
    python -m repro.analysis --format=sarif   # SARIF 2.1.0 (CI upload)
    python -m repro.analysis --list-checks    # the check catalog
    python -m repro.analysis -v               # also print info findings
    python -m repro.analysis --suppress ir-fixpoint-drift ...
    python -m repro.analysis path/to/file.py  # lint sources instead

The JSON document carries every finding (check id, severity, category,
message, graph/file provenance), the per-graph fusion plans and proven
output intervals, and a summary block with the exit code — CI uploads it
as an artifact so regressions diff as JSON, not log text.  The SARIF
document carries the same findings in SARIF 2.1.0 shape (one run, one
rule per catalog check, physical file/line locations) so
``github/codeql-action/upload-sarif`` annotates PRs inline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .concurrency import analyze_concurrency
from .diagnostics import CHECKS, Severity
from .effects import analyze_effects
from .fork_lint import lint_paths
from .ir_verify import verify_fabric, verify_graph
from .ranges import analyze_ranges


def _runtime_dir() -> Path:
    from .. import runtime

    return Path(runtime.__file__).resolve().parent


def _list_checks() -> None:
    by_category: dict[str, list] = {}
    for spec in CHECKS.values():
        by_category.setdefault(spec.category, []).append(spec)
    for category, specs in by_category.items():
        print(f"{category}:")
        for spec in specs:
            print(f"  {spec.check_id:26s} {spec.severity!s:8s} {spec.summary}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verification of shipped dataflow programs "
        "and fork-safety lint of runtime sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Python files/directories to fork-lint instead of the "
        "default shipped battery",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="CHECK-ID",
        help="drop findings with this check ID (repeatable)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print info-severity findings (never gate-relevant)",
    )
    parser.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the execution probe (structure/budget checks only)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format: human-readable text (default), one JSON "
        "document on stdout, or SARIF 2.1.0 for CI code-scanning upload "
        "(progress prints suppressed for both machine formats)",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print the check catalog"
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        _list_checks()
        return 0

    unknown = [c for c in args.suppress if c not in CHECKS]
    if unknown:
        parser.error(f"unknown check ID(s): {', '.join(unknown)}")
    suppress = set(args.suppress)
    machine = args.format in ("json", "sarif")

    def progress(message: str) -> None:
        if not machine:
            print(message, flush=True)

    diags = []
    fusion_plans: dict[str, list[list[str]]] = {}
    ranges: dict[str, dict[str, list[float]]] = {}
    if args.paths:
        diags += lint_paths(args.paths)
        diags += analyze_concurrency(args.paths)
        diags = [d for d in diags if d.check_id not in suppress]
    else:
        from ..core import TaurusConfig
        from .catalog import shipped_fabric, shipped_graphs

        config = TaurusConfig()
        progress("verifying shipped graphs ...")
        for graph in shipped_graphs():
            found = verify_graph(
                graph,
                config=config,
                probe=not args.no_probe,
                suppress=suppress,
            )
            report = analyze_ranges(graph, suppress=suppress)
            found += report.diagnostics
            plan = analyze_effects(graph)
            fusion_plans[graph.name] = [
                list(chain) for chain in plan.chain_names()
            ]
            ranges[graph.name] = {
                plan.effects[nid].name: [_finite(iv.lo), _finite(iv.hi)]
                for nid, iv in report.intervals.items()
                if plan.effects[nid].name
            }
            diags += found
            tally = _tally(found)
            if fusion_plans[graph.name]:
                tally += f", {len(fusion_plans[graph.name])} fusable chain(s)"
            progress(f"  {graph.name}: {tally}")
        progress("verifying fabric bundle ...")
        diags += verify_fabric(shipped_fabric(), config=config, suppress=suppress)
        runtime = _runtime_dir()
        progress(f"fork-safety lint over {runtime} ...")
        diags += [
            d
            for d in lint_paths([runtime])
            if d.check_id not in suppress
        ]
        progress(f"concurrency analysis over {runtime} ...")
        diags += [
            d
            for d in analyze_concurrency([runtime])
            if d.check_id not in suppress
        ]

    gating = [d for d in diags if d.severity >= Severity.WARNING]
    exit_code = 1 if gating else 0
    if args.format == "json":
        print(json.dumps(_json_report(diags, fusion_plans, ranges, exit_code)))
        return exit_code
    if args.format == "sarif":
        print(json.dumps(_sarif_report(diags)))
        return exit_code

    shown = diags if args.verbose else gating
    for d in shown:
        print(d.format())
    print(
        f"{len(diags)} finding(s): "
        f"{sum(d.severity == Severity.ERROR for d in diags)} error, "
        f"{sum(d.severity == Severity.WARNING for d in diags)} warning, "
        f"{sum(d.severity == Severity.INFO for d in diags)} info"
        + ("" if args.verbose or not diags else "  (use -v to see info)")
    )
    return exit_code


def _json_report(diags, fusion_plans, ranges, exit_code) -> dict:
    """The machine-readable report (uploaded as a CI artifact)."""
    return {
        "findings": [
            {
                "check_id": d.check_id,
                "severity": str(d.severity),
                "category": (
                    CHECKS[d.check_id].category if d.check_id in CHECKS else None
                ),
                "message": d.message,
                "source": d.source,
                "node": d.node,
                "node_name": d.node_name,
                "line": d.line,
            }
            for d in diags
        ],
        "summary": {
            "total": len(diags),
            "error": sum(d.severity == Severity.ERROR for d in diags),
            "warning": sum(d.severity == Severity.WARNING for d in diags),
            "info": sum(d.severity == Severity.INFO for d in diags),
            "exit_code": exit_code,
        },
        "fusion_plans": fusion_plans,
        "ranges": ranges,
    }


#: SARIF "level" per catalog severity (SARIF has no first-class info tier
#: for gate purposes; "note" keeps advisory findings out of PR blocking).
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _sarif_report(diags) -> dict:
    """One SARIF 2.1.0 run for ``github/codeql-action/upload-sarif``.

    Every catalog check ships as a rule (so suppressed/clean checks still
    appear in the code-scanning config); findings carry physical file/line
    locations when they anchor to source, and fall back to the logical
    graph name otherwise.
    """
    rules = [
        {
            "id": spec.check_id,
            "shortDescription": {"text": spec.summary},
            "properties": {"category": spec.category},
            "defaultConfiguration": {"level": _SARIF_LEVELS[spec.severity]},
        }
        for spec in CHECKS.values()
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = []
    for d in diags:
        result = {
            "ruleId": d.check_id,
            "level": _SARIF_LEVELS[d.severity],
            "message": {"text": d.message},
        }
        if d.check_id in rule_index:
            result["ruleIndex"] = rule_index[d.check_id]
        if d.source.endswith(".py"):
            region = {"startLine": d.line} if d.line else {}
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _relative_uri(d.source)},
                        **({"region": region} if region else {}),
                    }
                }
            ]
        else:
            result["locations"] = [
                {
                    "logicalLocations": [
                        {"fullyQualifiedName": d.source, "kind": "module"}
                    ]
                }
            ]
        results.append(result)
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": "https://github.com/",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def _relative_uri(source: str) -> str:
    """Repo-relative POSIX path when possible (SARIF wants URIs)."""
    path = Path(source)
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def _finite(value: float) -> float | None:
    """Unbounded interval ends serialize as null (JSON has no Infinity)."""
    import math

    return value if math.isfinite(value) else None


def _tally(diags) -> str:
    if not diags:
        return "clean"
    worst = max(d.severity for d in diags)
    return f"{len(diags)} finding(s), worst {worst}"


if __name__ == "__main__":
    sys.exit(main())
