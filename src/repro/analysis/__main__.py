"""``python -m repro.analysis`` — the repo's static-analysis gate.

Verifies every shipped dataflow graph (structure, shapes, execution
probe, budgets against the default :class:`~repro.core.TaurusConfig`),
runs the abstract-interpretation range/saturation analysis and the
purity/effects pass over each (fusion plans + per-node waivers are
reported), the shipped multi-app fabric bundle, and fork-safety of the
runtime sources.  Exit status is 0 when no finding of warning severity
or above remains, 1 otherwise — which is exactly what CI's ``lint`` job
checks.

Usage::

    python -m repro.analysis                  # the full shipped battery
    python -m repro.analysis --format=json    # machine-readable report
    python -m repro.analysis --list-checks    # the check catalog
    python -m repro.analysis -v               # also print info findings
    python -m repro.analysis --suppress ir-fixpoint-drift ...
    python -m repro.analysis path/to/file.py  # fork-lint sources instead

The JSON document carries every finding (check id, severity, category,
message, graph/file provenance), the per-graph fusion plans and proven
output intervals, and a summary block with the exit code — CI uploads it
as an artifact so regressions diff as JSON, not log text.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .diagnostics import CHECKS, Severity
from .effects import analyze_effects
from .fork_lint import lint_paths
from .ir_verify import verify_fabric, verify_graph
from .ranges import analyze_ranges


def _runtime_dir() -> Path:
    from .. import runtime

    return Path(runtime.__file__).resolve().parent


def _list_checks() -> None:
    by_category: dict[str, list] = {}
    for spec in CHECKS.values():
        by_category.setdefault(spec.category, []).append(spec)
    for category, specs in by_category.items():
        print(f"{category}:")
        for spec in specs:
            print(f"  {spec.check_id:26s} {spec.severity!s:8s} {spec.summary}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verification of shipped dataflow programs "
        "and fork-safety lint of runtime sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Python files/directories to fork-lint instead of the "
        "default shipped battery",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="CHECK-ID",
        help="drop findings with this check ID (repeatable)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print info-severity findings (never gate-relevant)",
    )
    parser.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the execution probe (structure/budget checks only)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or one JSON "
        "document on stdout (progress prints suppressed)",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print the check catalog"
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        _list_checks()
        return 0

    unknown = [c for c in args.suppress if c not in CHECKS]
    if unknown:
        parser.error(f"unknown check ID(s): {', '.join(unknown)}")
    suppress = set(args.suppress)
    as_json = args.format == "json"

    def progress(message: str) -> None:
        if not as_json:
            print(message, flush=True)

    diags = []
    fusion_plans: dict[str, list[list[str]]] = {}
    ranges: dict[str, dict[str, list[float]]] = {}
    if args.paths:
        diags += lint_paths(args.paths)
        diags = [d for d in diags if d.check_id not in suppress]
    else:
        from ..core import TaurusConfig
        from .catalog import shipped_fabric, shipped_graphs

        config = TaurusConfig()
        progress("verifying shipped graphs ...")
        for graph in shipped_graphs():
            found = verify_graph(
                graph,
                config=config,
                probe=not args.no_probe,
                suppress=suppress,
            )
            report = analyze_ranges(graph, suppress=suppress)
            found += report.diagnostics
            plan = analyze_effects(graph)
            fusion_plans[graph.name] = [
                list(chain) for chain in plan.chain_names()
            ]
            ranges[graph.name] = {
                plan.effects[nid].name: [_finite(iv.lo), _finite(iv.hi)]
                for nid, iv in report.intervals.items()
                if plan.effects[nid].name
            }
            diags += found
            tally = _tally(found)
            if fusion_plans[graph.name]:
                tally += f", {len(fusion_plans[graph.name])} fusable chain(s)"
            progress(f"  {graph.name}: {tally}")
        progress("verifying fabric bundle ...")
        diags += verify_fabric(shipped_fabric(), config=config, suppress=suppress)
        runtime = _runtime_dir()
        progress(f"fork-safety lint over {runtime} ...")
        diags += [
            d
            for d in lint_paths([runtime])
            if d.check_id not in suppress
        ]

    gating = [d for d in diags if d.severity >= Severity.WARNING]
    exit_code = 1 if gating else 0
    if as_json:
        print(json.dumps(_json_report(diags, fusion_plans, ranges, exit_code)))
        return exit_code

    shown = diags if args.verbose else gating
    for d in shown:
        print(d.format())
    print(
        f"{len(diags)} finding(s): "
        f"{sum(d.severity == Severity.ERROR for d in diags)} error, "
        f"{sum(d.severity == Severity.WARNING for d in diags)} warning, "
        f"{sum(d.severity == Severity.INFO for d in diags)} info"
        + ("" if args.verbose or not diags else "  (use -v to see info)")
    )
    return exit_code


def _json_report(diags, fusion_plans, ranges, exit_code) -> dict:
    """The machine-readable report (uploaded as a CI artifact)."""
    return {
        "findings": [
            {
                "check_id": d.check_id,
                "severity": str(d.severity),
                "category": (
                    CHECKS[d.check_id].category if d.check_id in CHECKS else None
                ),
                "message": d.message,
                "source": d.source,
                "node": d.node,
                "node_name": d.node_name,
                "line": d.line,
            }
            for d in diags
        ],
        "summary": {
            "total": len(diags),
            "error": sum(d.severity == Severity.ERROR for d in diags),
            "warning": sum(d.severity == Severity.WARNING for d in diags),
            "info": sum(d.severity == Severity.INFO for d in diags),
            "exit_code": exit_code,
        },
        "fusion_plans": fusion_plans,
        "ranges": ranges,
    }


def _finite(value: float) -> float | None:
    """Unbounded interval ends serialize as null (JSON has no Infinity)."""
    import math

    return value if math.isfinite(value) else None


def _tally(diags) -> str:
    if not diags:
        return "clean"
    worst = max(d.severity for d in diags)
    return f"{len(diags)} finding(s), worst {worst}"


if __name__ == "__main__":
    sys.exit(main())
