"""``python -m repro.analysis`` — the repo's static-analysis gate.

Verifies every shipped dataflow graph (structure, shapes, execution
probe, budgets against the default :class:`~repro.core.TaurusConfig`),
the shipped multi-app fabric bundle, and fork-safety of the runtime
sources.  Exit status is 0 when no finding of warning severity or above
remains, 1 otherwise — which is exactly what CI's ``lint`` job checks.

Usage::

    python -m repro.analysis                  # the full shipped battery
    python -m repro.analysis --list-checks    # the check catalog
    python -m repro.analysis -v               # also print info findings
    python -m repro.analysis --suppress ir-fixpoint-drift ...
    python -m repro.analysis path/to/file.py  # fork-lint sources instead
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .diagnostics import CHECKS, Severity
from .fork_lint import lint_paths
from .ir_verify import verify_fabric, verify_graph


def _runtime_dir() -> Path:
    from .. import runtime

    return Path(runtime.__file__).resolve().parent


def _list_checks() -> None:
    by_category: dict[str, list] = {}
    for spec in CHECKS.values():
        by_category.setdefault(spec.category, []).append(spec)
    for category, specs in by_category.items():
        print(f"{category}:")
        for spec in specs:
            print(f"  {spec.check_id:26s} {spec.severity!s:8s} {spec.summary}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verification of shipped dataflow programs "
        "and fork-safety lint of runtime sources.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Python files/directories to fork-lint instead of the "
        "default shipped battery",
    )
    parser.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="CHECK-ID",
        help="drop findings with this check ID (repeatable)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print info-severity findings (never gate-relevant)",
    )
    parser.add_argument(
        "--no-probe",
        action="store_true",
        help="skip the execution probe (structure/budget checks only)",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print the check catalog"
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        _list_checks()
        return 0

    unknown = [c for c in args.suppress if c not in CHECKS]
    if unknown:
        parser.error(f"unknown check ID(s): {', '.join(unknown)}")
    suppress = set(args.suppress)

    diags = []
    if args.paths:
        diags += lint_paths(args.paths)
        diags = [d for d in diags if d.check_id not in suppress]
    else:
        from ..core import TaurusConfig
        from .catalog import shipped_fabric, shipped_graphs

        config = TaurusConfig()
        print("verifying shipped graphs ...", flush=True)
        for graph in shipped_graphs():
            found = verify_graph(
                graph,
                config=config,
                probe=not args.no_probe,
                suppress=suppress,
            )
            diags += found
            print(f"  {graph.name}: {_tally(found)}")
        print("verifying fabric bundle ...", flush=True)
        diags += verify_fabric(shipped_fabric(), config=config, suppress=suppress)
        runtime = _runtime_dir()
        print(f"fork-safety lint over {runtime} ...", flush=True)
        diags += [
            d
            for d in lint_paths([runtime])
            if d.check_id not in suppress
        ]

    gating = [d for d in diags if d.severity >= Severity.WARNING]
    shown = diags if args.verbose else gating
    for d in shown:
        print(d.format())
    print(
        f"{len(diags)} finding(s): "
        f"{sum(d.severity == Severity.ERROR for d in diags)} error, "
        f"{sum(d.severity == Severity.WARNING for d in diags)} warning, "
        f"{sum(d.severity == Severity.INFO for d in diags)} info"
        + ("" if args.verbose or not diags else "  (use -v to see info)")
    )
    return 1 if gating else 0


def _tally(diags) -> str:
    if not diags:
        return "clean"
    worst = max(d.severity for d in diags)
    return f"{len(diags)} finding(s), worst {worst}"


if __name__ == "__main__":
    sys.exit(main())
