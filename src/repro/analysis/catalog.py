"""The shipped-program catalog the CLI / CI lint gate verifies.

``python -m repro.analysis`` needs concrete graphs to check, and "the
graphs this repo ships" is a fixed list: the four paper applications
(anomaly DNN, RBF-SVM, KMeans, Indigo LSTM), the Table 6/7
microbenchmarks, and the two-app fabric bundle the multi-app runtime
demos deploy.  This module builds them from small, seeded trainings —
sized for seconds, not fidelity; the verifier checks program structure
and execution contracts, which do not depend on model quality.

The range gate runs over this same list: every shipped graph must be
saturation-clean under :func:`~repro.analysis.ranges.analyze_ranges`, or
carry explicit per-node ``an-*`` waivers attached at lowering (which
downgrade to auditable info findings — the CLI prints them with ``-v``
and the JSON report always carries them).
"""

from __future__ import annotations

__all__ = ["shipped_graphs", "shipped_fabric"]

#: Seeded training sizes — small enough for a CI lint job.
_N_CONNECTIONS = 800
_N_CLUSTER = 400


def _trained_quantized_dnn():
    from ..datasets import dnn_feature_matrix, generate_connections
    from ..fixpoint import quantize_model
    from ..ml import anomaly_detection_dnn

    conns = generate_connections(_N_CONNECTIONS, seed=11)
    x = dnn_feature_matrix(conns)
    model = anomaly_detection_dnn(seed=3)
    model.fit(x, conns.labels, epochs=2, batch_size=64)
    return quantize_model(model, x[:128])


def shipped_graphs() -> list:
    """Every dataflow graph the repo ships, freshly lowered."""
    from ..datasets import (
        generate_connections,
        iot_cluster_dataset,
        svm_feature_matrix,
    )
    from ..mapreduce import (
        activation_graph,
        conv1d_graph,
        dnn_graph,
        inner_product_graph,
        kmeans_graph,
        lstm_graph,
        svm_graph,
    )
    from ..ml import KMeans, RBFKernelSVM, indigo_lstm

    graphs = [dnn_graph(_trained_quantized_dnn())]

    conns = generate_connections(_N_CONNECTIONS, seed=11)
    svm = RBFKernelSVM(budget=16, epochs=1, seed=3)
    svm.fit(svm_feature_matrix(conns)[:400], conns.labels[:400])
    graphs.append(svm_graph(svm))

    features, __ = iot_cluster_dataset(_N_CLUSTER, seed=7)
    graphs.append(kmeans_graph(KMeans(n_clusters=5, seed=7).fit(features)))

    # Structure is weight-independent; untrained seeded weights suffice.
    graphs.append(lstm_graph(indigo_lstm(seed=0)))

    graphs.append(inner_product_graph(16))
    graphs.extend(
        activation_graph(name)
        for name in (
            "relu",
            "leaky_relu",
            "tanh_exp",
            "sigmoid_exp",
            "tanh_pw",
            "sigmoid_pw",
            "act_lut",
        )
    )
    graphs.append(conv1d_graph(unroll=8))
    return graphs


def shipped_fabric() -> list:
    """The two-app bundle the multi-app runtime demos deploy."""
    from ..ml import indigo_lstm
    from ..runtime.fabric import FabricApp

    return [
        FabricApp.from_quantized_dnn(_trained_quantized_dnn()),
        FabricApp.from_lstm(indigo_lstm(seed=0)),
    ]
