"""Abstract-interpretation range/saturation analysis for the fixed-point IR.

The execution probe in :mod:`repro.analysis.ir_verify` samples three rows;
it can show a program *does* saturate, never that it *cannot*.  This pass
answers the second question: it propagates a per-node value interval (an
over-approximation of every value the node can produce, for any input
satisfying the declared preconditions) through the dataflow graph and
checks each quantization point statically.

Interval sources, in raw fixed-point terms where a format is known
(:attr:`~repro.fixpoint.formats.FixedPointFormat.raw_min` /
``raw_max`` / ``wide_dtype``):

* ``input`` nodes carry a declared ``value_range`` — the precondition the
  preprocessing MATs establish (threaded from the frontends' datasets and
  calibration formats).
* ``const`` nodes carry their resident bank in ``payload["values"]``;
  their interval is exact.
* Compute nodes name an abstract transfer (:data:`TRANSFERS`) via
  ``Node.transfer``, with parameters (weights, formats, clip bounds, LUT
  domains) in ``Node.payload``.  ``dot``/``mapreduce`` transfers do exact
  interval arithmetic over the weight bank and check the wide integer
  accumulator for overflow; ``lut`` transfers check domain coverage;
  roundtrip points check saturation.  A node with neither a transfer nor
  a declared ``value_range`` analyzes as unbounded (``TOP``) — sound,
  never wrong, just uninformative.
* Stateful nodes iterate: state-key intervals start at ``[0, 0]`` (the
  interpreters zero-initialize carried state) and are joined across
  abstract passes until a fixed point, with widening to ``TOP`` when a
  key is still growing after :data:`WIDEN_AFTER` passes.  Writes are
  bounded by ``payload["state_ranges"]`` declarations, by
  ``payload["state_writes"][key] == "output"`` (the node stores its own
  output), or by the node's ``value_range``.

Findings (all carried as :class:`~repro.analysis.diagnostics.Diagnostic`):

``an-may-saturate``
    A value interval entering a saturating format conversion exceeds the
    representable range; the hardware clips.  Lowerings waive this on
    calibrated dot nodes where clipping outliers is the design
    (TFLite-style calibration) — waived findings downgrade to info.
``an-acc-overflow``
    The wide integer accumulator bound exceeds ``wide_dtype``; integer
    MAC would wrap (silent corruption, unlike saturation).
``an-lut-oob``
    A LUT's index interval is not covered by its table domain.
``an-narrowable``
    A proven interval fits a strictly smaller standard format at the
    same binary point — the lead-in for automatic bit-width narrowing.

Soundness contract (property-tested): for any input batch inside the
declared input ranges, every value observed via
``execute_batch(observer=)`` lies inside the node's predicted interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..fixpoint import FIX8, FixedPointFormat
from ..mapreduce.ir import DataflowGraph, Node
from .diagnostics import CHECKS, Diagnostic, Severity
from .ir_verify import RESERVED_STATE_KEYS, _node_state_keys

__all__ = ["Interval", "TOP", "RangeReport", "analyze_ranges", "TRANSFERS"]

_INF = float("inf")

#: Abstract passes before unstable state keys are widened to ``TOP``.
WIDEN_AFTER = 8


@dataclass(frozen=True)
class Interval:
    """A closed real-valued interval ``[lo, hi]`` (``inf`` = unbounded)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise ValueError(f"interval lo must not exceed hi: [{self.lo}, {self.hi}]")

    def join(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (the lattice join)."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def shift(self, offset: float) -> "Interval":
        return Interval(self.lo + offset, self.hi + offset)

    def contains(self, value: float, slack: float = 0.0) -> bool:
        return self.lo - slack <= value <= self.hi + slack

    @property
    def bounded(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def max_abs(self) -> float:
        return max(abs(self.lo), abs(self.hi))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo:g}, {self.hi:g}]"


#: The unbounded interval (lattice top).
TOP = Interval(-_INF, _INF)

_ZERO = Interval(0.0, 0.0)


@dataclass
class RangeReport:
    """The analysis result for one graph.

    ``intervals`` maps node id to its proven output interval (sound for
    every temporal iteration); ``state`` holds the per-key fixed point;
    ``passes`` counts abstract iterations until convergence.
    """

    graph: str
    intervals: dict[int, Interval]
    state: dict[str, Interval]
    diagnostics: list[Diagnostic]
    passes: int

    def interval_of(self, name: str) -> Interval:
        """Proven interval of the (unique) node with this name."""
        matches = [
            iv for nid, iv in self.intervals.items() if self._name(nid) == name
        ]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} nodes named {name!r}")
        return matches[0]

    def _name(self, nid: int) -> str | None:
        return self._names.get(nid)

    _names: dict[int, str] = None  # populated by analyze_ranges


# ======================================================================
# Analysis context
# ======================================================================
class _Ctx:
    """Per-pass analysis state handed to transfer functions."""

    def __init__(
        self,
        graph: DataflowGraph,
        fmt: FixedPointFormat,
        state: dict[str, Interval],
        emit: bool,
    ) -> None:
        self.graph = graph
        self.fmt = fmt
        self.state = state
        self._emit = emit
        self.diagnostics: list[Diagnostic] = []
        self._seen: set[tuple[str, int]] = set()

    def report(self, check: str, message: str, node: Node) -> None:
        """Record a finding once per (check, node), honoring waivers."""
        if not self._emit or (check, node.node_id) in self._seen:
            return
        self._seen.add((check, node.node_id))
        severity = CHECKS[check].severity
        if check in node.waivers:
            severity = Severity.INFO
            message += " (waived at lowering)"
        self.diagnostics.append(Diagnostic(
            check, severity, message, self.graph.name,
            node=node.node_id, node_name=node.name or None,
        ))


def _payload(node: Node) -> dict:
    return node.payload if isinstance(node.payload, dict) else {}


def _rt_interval(iv: Interval, fmt: FixedPointFormat) -> Interval:
    """Image of an interval under ``fmt.roundtrip`` (monotone, so exact)."""
    return Interval(float(fmt.roundtrip(iv.lo)), float(fmt.roundtrip(iv.hi)))


def _saturation_check(ctx: _Ctx, node: Node, iv: Interval, fmt: FixedPointFormat) -> None:
    if fmt.covers(iv.lo, iv.hi):
        return
    raw_lo, raw_hi = (
        fmt.raw_interval(iv.lo, iv.hi) if iv.bounded else ("-inf", "+inf")
    )
    ctx.report(
        "an-may-saturate",
        f"value interval {iv} (raw [{raw_lo}, {raw_hi}]) exceeds "
        f"{fmt}'s representable raw range [{fmt.raw_min}, {fmt.raw_max}]; "
        "the hardware clips",
        node,
    )


# ======================================================================
# Transfer functions
# ======================================================================
TransferFn = Callable[[_Ctx, Node, list[Interval]], Interval]

TRANSFERS: dict[str, TransferFn] = {}


def _transfer(name: str) -> Callable[[TransferFn], TransferFn]:
    def register(fn: TransferFn) -> TransferFn:
        TRANSFERS[name] = fn
        return fn
    return register


def _arg(args: list[Interval]) -> Interval:
    return args[0] if args else TOP


@_transfer("identity")
@_transfer("slice")
def _t_identity(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    # A slice/permutation of lanes produces a subset of the input values.
    return _arg(args)


@_transfer("roundtrip")
def _t_roundtrip(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    fmt = _payload(node).get("fmt", ctx.fmt)
    iv = _arg(args)
    _saturation_check(ctx, node, iv, fmt)
    return _rt_interval(iv, fmt)


@_transfer("clip")
def _t_clip(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    # An explicit algorithmic clamp is intentional semantics, not
    # saturation — no finding.
    lo, hi = _payload(node)["clip"]
    iv = _arg(args)
    out = Interval(float(np.clip(iv.lo, lo, hi)), float(np.clip(iv.hi, lo, hi)))
    fmt = _payload(node).get("fmt")
    return _rt_interval(out, fmt) if fmt is not None else out


@_transfer("affine")
def _t_affine(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    payload = _payload(node)
    scale = float(payload.get("scale", 1.0))
    offset = float(payload.get("offset", 0.0))
    iv = _arg(args)
    ends = sorted([_mul(scale, iv.lo), _mul(scale, iv.hi)])
    out = Interval(ends[0] + offset, ends[1] + offset)
    if "clip" in payload:
        lo, hi = payload["clip"]
        out = Interval(float(np.clip(out.lo, lo, hi)), float(np.clip(out.hi, lo, hi)))
    fmt = payload.get("fmt")
    if fmt is not None:
        _saturation_check(ctx, node, out, fmt)
        out = _rt_interval(out, fmt)
    return out


def _mul(coeff: float, value: float) -> float:
    """Interval-endpoint product with the 0 * inf = 0 convention."""
    return 0.0 if coeff == 0.0 else coeff * value


@_transfer("state_read")
def _t_state_read(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    out: Interval | None = None
    for key in _payload(node)["keys"]:
        iv = ctx.state.get(key, _ZERO)
        out = iv if out is None else out.join(iv)
    return out if out is not None else TOP


@_transfer("state_accum")
def _t_state_accum(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    """Read a state key, add the input element-wise, store the result.

    The canonical recurrent accumulator — the shape the widening loop
    exists for.  Pair with ``payload["state_writes"] = {key: "output"}``.
    """
    payload = _payload(node)
    carried = ctx.state.get(payload["key"], _ZERO)
    iv = _arg(args)
    out = Interval(carried.lo + iv.lo, carried.hi + iv.hi)
    fmt = payload.get("fmt")
    if fmt is not None:
        _saturation_check(ctx, node, out, fmt)
        out = _rt_interval(out, fmt)
    return out


@_transfer("dot")
def _t_dot(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    """Matrix-vector multiply + bias against a resident weight bank.

    Exact interval arithmetic: per output row, the positive and negative
    weight mass bound the accumulator from the input interval.  With a
    saturating output format the pre-clip interval is checked
    (``an-may-saturate``) and the raw wide-accumulator bound is priced
    against ``wide_dtype`` (``an-acc-overflow``).
    """
    payload = _payload(node)
    weights = np.atleast_2d(np.asarray(payload["weights"], dtype=np.float64))
    bias = payload.get("bias")
    in_fmt: FixedPointFormat | None = payload.get("in_fmt")
    fmt: FixedPointFormat | None = payload.get("fmt")

    x = _arg(args)
    if in_fmt is not None:
        # The node quantizes on entry; roundtrip endpoints are exact.
        x = _rt_interval(x, in_fmt)

    pos = np.clip(weights, 0.0, None).sum(axis=-1)
    neg = np.clip(weights, None, 0.0).sum(axis=-1)
    lo_rows = np.array([_mul(p, x.lo) for p in pos]) + np.array(
        [_mul(n, x.hi) for n in neg]
    )
    hi_rows = np.array([_mul(p, x.hi) for p in pos]) + np.array(
        [_mul(n, x.lo) for n in neg]
    )
    if bias is not None:
        b = np.asarray(bias, dtype=np.float64).reshape(-1)
        lo_rows = lo_rows + b
        hi_rows = hi_rows + b
    acc = Interval(float(lo_rows.min()), float(hi_rows.max()))

    if fmt is not None:
        in_frac = in_fmt.frac_bits if in_fmt is not None else fmt.frac_bits
        w_frac = int(payload.get("w_frac_bits", fmt.frac_bits))
        raw_bound = (
            float(np.abs(weights).sum(axis=-1).max())
            * (1 << w_frac)
            * x.max_abs
            * (1 << in_frac)
        )
        if raw_bound > fmt.wide_max:
            ctx.report(
                "an-acc-overflow",
                f"wide accumulator bound {raw_bound:.3g} raw exceeds "
                f"{np.dtype(fmt.wide_dtype).name} range "
                f"[{fmt.wide_min}, {fmt.wide_max}]; integer MAC wraps",
                node,
            )
        _saturation_check(ctx, node, acc, fmt)
        if payload.get("requantize") == "shift":
            # Per-channel shift requantization rounds within half an
            # output LSB of the real value before saturating.
            pad = fmt.resolution / 2.0
            return Interval(
                float(np.clip(acc.lo - pad, fmt.min_value, fmt.max_value)),
                float(np.clip(acc.hi + pad, fmt.min_value, fmt.max_value)),
            )
        return _rt_interval(acc, fmt)
    return acc


@_transfer("sq_dist")
def _t_sq_dist(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    """Per-row squared distance to a resident bank, summed over lanes."""
    payload = _payload(node)
    bank = np.atleast_2d(np.asarray(payload["bank"], dtype=np.float64))
    in_fmt: FixedPointFormat = payload["in_fmt"]
    fmt: FixedPointFormat = payload["fmt"]

    x = _rt_interval(_arg(args), in_fmt)
    d_lo = np.minimum(np.abs(x.lo - bank), np.abs(x.hi - bank))
    d_lo = np.where((bank >= x.lo) & (bank <= x.hi), 0.0, d_lo)
    d_hi = np.maximum(np.abs(x.lo - bank), np.abs(x.hi - bank))
    acc = Interval(
        float((d_lo**2).sum(axis=-1).min()), float((d_hi**2).sum(axis=-1).max())
    )

    raw_bound = acc.hi * fmt.scale
    if raw_bound > fmt.wide_max:
        ctx.report(
            "an-acc-overflow",
            f"squared-distance accumulator bound {raw_bound:.3g} raw "
            f"exceeds {np.dtype(fmt.wide_dtype).name} range; integer MAC "
            "wraps",
            node,
        )
    _saturation_check(ctx, node, acc, fmt)
    return _rt_interval(acc, fmt)


@_transfer("lut")
def _t_lut(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    """MU table read: index interval must sit inside the table domain."""
    payload = _payload(node)
    lo, hi = payload["domain"]
    iv = _arg(args)
    if iv.lo < lo - 1e-9 or iv.hi > hi + 1e-9:
        entries = node.weight_values or "?"
        ctx.report(
            "an-lut-oob",
            f"index interval {iv} leaves the table domain [{lo:g}, {hi:g}] "
            f"({entries} entries); reads would alias the clamp rows",
            node,
        )
    fmt = payload.get("fmt")
    if "range" in payload:
        out = Interval(*payload["range"])
        return _rt_interval(out, fmt) if fmt is not None else out
    if fmt is not None:
        return Interval(fmt.min_value, fmt.max_value)
    return TOP


# -- activations -------------------------------------------------------
def _activation_transfer(
    name: str, fn: Callable, lo: float, hi: float, monotone: bool
) -> None:
    global_range = Interval(lo, hi)

    def apply(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
        iv = _arg(args)
        out = _fn_image(fn, iv, global_range, monotone)
        fmt = _payload(node).get("fmt")
        if fmt is not None:
            _saturation_check(ctx, node, out, fmt)
            out = _rt_interval(out, fmt)
        return out

    TRANSFERS[name] = apply


def _fn_image(
    fn: Callable, iv: Interval, global_range: Interval, monotone: bool
) -> Interval:
    """Sound image of an interval under a scalar activation.

    Monotone activations are exact via endpoint evaluation.  The
    Taylor-series variants are only approximately monotone (range
    reduction can wiggle at segment joins), so they are sampled on a
    dense grid with a Lipschitz pad; both are intersected with the
    activation's global output range, which bounds unbounded inputs too.
    """
    if not iv.bounded:
        return global_range
    if monotone:
        lo = float(np.min(fn(np.asarray([iv.lo]))))
        hi = float(np.max(fn(np.asarray([iv.hi]))))
    else:
        xs = np.linspace(iv.lo, iv.hi, 513)
        ys = np.asarray(fn(xs), dtype=np.float64)
        pad = 2.0 * (iv.hi - iv.lo) / 512 if iv.hi > iv.lo else 0.0
        lo, hi = float(ys.min()) - pad, float(ys.max()) + pad
    return Interval(
        float(np.clip(lo, global_range.lo, global_range.hi)),
        float(np.clip(hi, global_range.lo, global_range.hi)),
    )


def _register_activations() -> None:
    from ..ml.activations import (
        ACTIVATIONS,
        leaky_relu,
        relu,
        sigmoid,
        sigmoid_piecewise,
        sigmoid_taylor,
        tanh,
        tanh_piecewise,
        tanh_taylor,
    )

    _activation_transfer("relu", relu, 0.0, _INF, monotone=True)
    _activation_transfer("leaky_relu", leaky_relu, -_INF, _INF, monotone=True)
    _activation_transfer("sigmoid", sigmoid, 0.0, 1.0, monotone=True)
    _activation_transfer("tanh", tanh, -1.0, 1.0, monotone=True)
    _activation_transfer("sigmoid_pw", sigmoid_piecewise, 0.0, 1.0, monotone=True)
    _activation_transfer("tanh_pw", tanh_piecewise, -1.0, 1.0, monotone=True)
    _activation_transfer("sigmoid_exp", sigmoid_taylor, 0.0, 1.0, monotone=False)
    _activation_transfer("tanh_exp", tanh_taylor, -1.0, 1.0, monotone=False)
    _activation_transfer(
        "act_lut", ACTIVATIONS["act_lut"].fn, -1.0, 1.0, monotone=True
    )


_register_activations()


# ======================================================================
# Propagation
# ======================================================================
def _node_interval(ctx: _Ctx, node: Node, args: list[Interval]) -> Interval:
    if node.kind == "input":
        return Interval(*node.value_range) if node.value_range else TOP
    if node.kind == "const":
        values = _payload(node).get("values")
        if values is not None:
            arr = np.asarray(values, dtype=np.float64)
            return Interval(float(arr.min()), float(arr.max()))
        return TOP
    if node.kind == "gather":
        out: Interval | None = None
        for iv in args:
            out = iv if out is None else out.join(iv)
        return out if out is not None else TOP
    if node.kind == "output":
        return _arg(args)

    if node.transfer is not None:
        if node.transfer not in TRANSFERS:
            raise KeyError(
                f"node {node.name!r} names unknown transfer {node.transfer!r}"
            )
        out = TRANSFERS[node.transfer](ctx, node, args)
    elif node.kind == "reduce" and node.reduce_op is not None:
        out = _reduce_interval(ctx, node, _arg(args))
    else:
        out = TOP
    if node.value_range is not None:
        # A frontend certification tightens whatever the transfer proved
        # (the probe / property tests check declarations dynamically).
        declared = Interval(*node.value_range)
        out = Interval(
            min(max(out.lo, declared.lo), declared.hi),
            max(min(out.hi, declared.hi), declared.lo),
        )
    return out


def _reduce_interval(ctx: _Ctx, node: Node, iv: Interval) -> Interval:
    # Reductions collapse the *input* lanes; the fan-in width (not the
    # node's own output width) scales the sum and bounds the arg index.
    preds = [
        p for p in node.preds if ctx.graph.nodes[p].kind != "const"
    ]
    fan_in = max(
        sum(ctx.graph.nodes[p].width for p in preds), 1
    )
    if node.reduce_op == "sum":
        return Interval(_mul(float(fan_in), iv.lo), _mul(float(fan_in), iv.hi))
    if node.reduce_op in ("max", "min"):
        return iv
    if node.reduce_op in ("argmax", "argmin"):
        return Interval(0.0, float(fan_in - 1))
    return TOP


def _write_interval(
    node: Node, key: str, out: Interval
) -> Interval:
    payload = _payload(node)
    declared = payload.get("state_ranges", {})
    if key in declared:
        return Interval(*declared[key])
    if payload.get("state_writes", {}).get(key) == "output":
        return out
    if node.value_range is not None:
        return Interval(*node.value_range)
    return TOP


def _propagate(
    graph: DataflowGraph,
    order: list[Node],
    fmt: FixedPointFormat,
    state: dict[str, Interval],
    emit: bool,
) -> tuple[dict[int, Interval], dict[str, Interval], _Ctx]:
    """One abstract pass; returns node intervals + per-key write bounds."""
    ctx = _Ctx(graph, fmt, state, emit)
    intervals: dict[int, Interval] = {}
    writes: dict[str, Interval] = {}
    for node in order:
        args = [
            intervals[p]
            for p in node.preds
            if graph.nodes[p].kind != "const"
        ]
        out = _node_interval(ctx, node, args)
        intervals[node.node_id] = out
        for key in _node_state_keys(node) - RESERVED_STATE_KEYS:
            bound = _write_interval(node, key, out)
            writes[key] = writes[key].join(bound) if key in writes else bound
    return intervals, writes, ctx


def analyze_ranges(
    graph: DataflowGraph,
    fmt: FixedPointFormat = FIX8,
    suppress: Iterable[str] = (),
) -> RangeReport:
    """Run the abstract interpreter over one graph.

    ``fmt`` is the datapath format assumed at roundtrip points that do
    not name their own (``payload["fmt"]``).  ``suppress`` drops findings
    by check ID, mirroring :func:`~repro.analysis.ir_verify.verify_graph`.
    """
    order = graph.topo_order()
    state_keys = set()
    for node in order:
        state_keys |= _node_state_keys(node) - RESERVED_STATE_KEYS
    state: dict[str, Interval] = {key: _ZERO for key in state_keys}

    passes = 0
    limit = max(graph.temporal_iterations, 1)
    while True:
        passes += 1
        _, writes, _ = _propagate(graph, order, fmt, state, emit=False)
        merged = {
            key: state[key].join(writes.get(key, state[key]))
            for key in state
        }
        if merged == state or passes >= limit:
            state = merged
            break
        if passes >= WIDEN_AFTER:
            # Still growing with iterations to spare: widen unstable keys
            # to TOP; the next pass is then stable by absorption.
            state = {
                key: (state[key] if merged[key] == state[key] else TOP)
                for key in state
            }
            continue
        state = merged

    # The fixed-point state over-approximates every iteration's state and
    # all transfers are inclusion-monotone, so one final emitting pass
    # yields intervals sound for the whole temporal execution.
    intervals, __, ctx = _propagate(graph, order, fmt, state, emit=True)
    diagnostics = ctx.diagnostics
    diagnostics += _narrowable_findings(graph, order, intervals)

    suppress = set(suppress)
    report = RangeReport(
        graph=graph.name,
        intervals=intervals,
        state=state,
        diagnostics=[d for d in diagnostics if d.check_id not in suppress],
        passes=passes,
    )
    report._names = {n.node_id: n.name for n in order}
    return report


def _narrowable_findings(
    graph: DataflowGraph,
    order: list[Node],
    intervals: dict[int, Interval],
) -> list[Diagnostic]:
    """Edges whose proven interval fits a smaller storage format."""
    diags: list[Diagnostic] = []
    for node in order:
        fmt: FixedPointFormat | None = _payload(node).get("fmt")
        iv = intervals.get(node.node_id)
        if fmt is None or iv is None or not iv.bounded:
            continue
        needed = fmt.narrowest_total_bits(iv.lo, iv.hi)
        if needed is not None and needed < fmt.total_bits:
            raw = fmt.raw_interval(iv.lo, iv.hi)
            if "an-narrowable" in node.waivers:
                continue
            diags.append(Diagnostic(
                "an-narrowable", Severity.INFO,
                f"proven interval {iv} (raw [{raw[0]}, {raw[1]}]) fits "
                f"{needed} bits at Q{needed - 1 - fmt.frac_bits}."
                f"{fmt.frac_bits}, but the edge is stored as {fmt}; "
                "narrowing halves its MU/stream footprint",
                graph.name, node=node.node_id, node_name=node.name or None,
            ))
    return diags
