"""Diagnostic records and the check catalog.

Every analyzer finding is a :class:`Diagnostic`: a stable check ID (the
catalog key in :data:`CHECKS`), a severity, a human-readable message, and
provenance — the graph node or source line the finding anchors to.  IDs
are stable across releases so findings can be suppressed surgically
(``suppress={"ir-fixpoint-drift"}`` in code, ``--suppress`` on the CLI,
``# noqa: rt-pipe-ownership`` in linted sources).

Severity semantics
------------------
``error``
    The program will raise, diverge, or silently corrupt results at
    runtime (or ``compile_graph`` will refuse it).  Lowering-time
    verification raises on these.
``warning``
    Suspect by construction — legal today, but the kind of thing that has
    bitten us before.  The CI gate fails on warnings and errors.
``info``
    Advisory pricing/structure notes (fold factors, line-rate fractions,
    swap costs).  Hidden unless asked for; never fails a gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable

__all__ = [
    "CHECKS",
    "CheckSpec",
    "Diagnostic",
    "Severity",
    "worst_severity",
]


class Severity(IntEnum):
    """Ordered so ``max()`` over findings yields the gate-relevant one."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


@dataclass(frozen=True)
class CheckSpec:
    """One catalog entry: what a check ID means and how severe it is."""

    check_id: str
    severity: Severity
    category: str  # "shape" | "structure" | "budget" | "fabric" | "range" | "fork-safety" | "concurrency"
    summary: str


def _spec(check_id: str, severity: Severity, category: str, summary: str) -> CheckSpec:
    return CheckSpec(check_id, severity, category, summary)


#: The check catalog.  README's "Static analysis" section documents these;
#: tests assert every entry has a triggering and a clean fixture.
CHECKS: dict[str, CheckSpec] = {
    spec.check_id: spec
    for spec in [
        # -- shape / dtype -------------------------------------------------
        _spec("ir-width-mismatch", Severity.ERROR, "shape",
              "a node's fan-in width disagrees with what its predecessors produce"),
        _spec("ir-gather-width", Severity.ERROR, "shape",
              "a gather's declared width is not the sum of its inputs"),
        _spec("ir-no-semantics", Severity.ERROR, "shape",
              "a compute node has neither fn/batch_fn nor a named reduce op"),
        _spec("ir-non-2d", Severity.ERROR, "shape",
              "a probed node value leaks out of the (B, width) 2-D contract"),
        _spec("ir-probe-width", Severity.ERROR, "shape",
              "a probed node value's width disagrees with the inferred width"),
        _spec("ir-batch-divergence", Severity.ERROR, "shape",
              "execute_batch and execute disagree bit-for-bit on a probe row"),
        _spec("ir-fixpoint-drift", Severity.WARNING, "shape",
              "graph outputs leave the fixed-point grid (raw float leakage)"),
        _spec("ir-probe-failure", Severity.ERROR, "shape",
              "the execution probe raised; the graph cannot run as built"),
        # -- structure -----------------------------------------------------
        _spec("ir-cycle", Severity.ERROR, "structure",
              "the dataflow graph contains a cycle"),
        _spec("ir-malformed-io", Severity.ERROR, "structure",
              "input/const nodes with predecessors, or an output feeding onward"),
        _spec("ir-no-output", Severity.ERROR, "structure",
              "the graph has no output node; execute() would raise"),
        _spec("ir-multi-output", Severity.WARNING, "structure",
              "several output nodes; execute() returns only the last in topo order"),
        _spec("ir-orphan", Severity.ERROR, "structure",
              "a compute node has no predecessors to consume"),
        _spec("ir-unreachable", Severity.WARNING, "structure",
              "no input reaches this node; it computes from constants alone"),
        _spec("ir-dead-node", Severity.WARNING, "structure",
              "no path from this node to any output; its value is discarded"),
        _spec("ir-state-collision", Severity.ERROR, "structure",
              "two nodes write the same state key (or a reserved key)"),
        _spec("ir-epilogue-order", Severity.ERROR, "structure",
              "an epilogue node feeds a non-epilogue node"),
        _spec("ir-epilogue-io", Severity.WARNING, "structure",
              "an input/const node is marked epilogue"),
        _spec("ir-epilogue-inert", Severity.INFO, "structure",
              "epilogue markers with temporal_iterations == 1 are inert"),
        _spec("ir-temporal-no-state", Severity.WARNING, "structure",
              "temporal iterations without carried state recompute the same values"),
        # -- budgets -------------------------------------------------------
        _spec("budget-mu-overflow", Severity.ERROR, "budget",
              "weight/LUT demand exceeds the grid's MUs; compile_graph raises"),
        _spec("budget-cu-fold", Severity.INFO, "budget",
              "CU demand exceeds the grid; the compiler folds, multiplying II"),
        _spec("budget-line-rate", Severity.INFO, "budget",
              "the design sustains only a fraction of line rate"),
        _spec("budget-config-stream", Severity.INFO, "budget",
              "the program's configuration stream makes swaps expensive"),
        # -- multi-app fabric ----------------------------------------------
        _spec("fabric-duplicate-app", Severity.ERROR, "fabric",
              "two fabric apps share a name; results would alias"),
        _spec("fabric-state-overlap", Severity.INFO, "fabric",
              "two fabric apps persist the same state key (isolated per "
              "app, but merged state dumps become ambiguous)"),
        _spec("fabric-mu-residency", Severity.WARNING, "fabric",
              "apps cannot co-reside in MUs; every swap re-streams weights"),
        # -- range analysis (repro.analysis.ranges) -------------------------
        _spec("an-may-saturate", Severity.WARNING, "range",
              "a value interval entering a saturating format conversion "
              "exceeds the representable range; the hardware clips"),
        _spec("an-acc-overflow", Severity.WARNING, "range",
              "the wide integer accumulator bound exceeds wide_dtype; "
              "integer MAC wraps instead of saturating"),
        _spec("an-lut-oob", Severity.WARNING, "range",
              "a LUT's index interval is not covered by its table domain"),
        _spec("an-narrowable", Severity.INFO, "range",
              "an edge's proven interval fits a strictly smaller format; "
              "narrowing would halve its MU/stream footprint"),
        # -- runtime fork-safety -------------------------------------------
        _spec("rt-fork-flush", Severity.ERROR, "fork-safety",
              "os.fork() without flushing stdout/stderr first duplicates "
              "buffered output into the child"),
        _spec("rt-fork-child-exit", Severity.ERROR, "fork-safety",
              "a forked child branch lacks os._exit(); it would unwind into "
              "the parent's teardown (atexit, pytest)"),
        _spec("rt-pipe-ownership", Severity.ERROR, "fork-safety",
              "an os.pipe() fd is never closed or wrapped by os.fdopen in "
              "its function; error paths leak it"),
        _spec("rt-unbounded-close-join", Severity.WARNING, "fork-safety",
              "a close/shutdown path joins a thread without a timeout"),
        _spec("rt-fork-under-lock", Severity.ERROR, "fork-safety",
              "os.fork() while holding a lock; the child inherits it held "
              "forever"),
        _spec("rt-unbounded-recv", Severity.WARNING, "fork-safety",
              "recv() with no timeout (or join() with no timeout outside a "
              "close path) parks the caller forever if the worker dies"),
        _spec("rt-unbounded-queue", Severity.WARNING, "fork-safety",
              "queue.Queue() with no maxsize (or put() with no timeout) "
              "turns overload into unbounded memory growth or a parked "
              "producer"),
        _spec("rt-lock-order", Severity.ERROR, "fork-safety",
              "two module-level locks are acquired in inconsistent orders "
              "across functions; concurrent callers can deadlock"),
        # -- runtime concurrency (repro.analysis.concurrency) ---------------
        _spec("rt-racy-field", Severity.WARNING, "concurrency",
              "a shared field is written from one thread and touched from "
              "another with no lock held on at least one access"),
        _spec("rt-lockset-inconsistent", Severity.WARNING, "concurrency",
              "every access to a shared field holds some lock, but no "
              "single lock is common to all of them — the accesses do not "
              "actually exclude each other"),
        _spec("rt-cv-wait-no-predicate", Severity.WARNING, "concurrency",
              "Condition.wait() outside a while-predicate loop; spurious "
              "wakeups and missed notifies make the wait unsound"),
        _spec("rt-cv-notify-unheld", Severity.ERROR, "concurrency",
              "Condition.notify()/notify_all() without holding the "
              "condition's lock; CPython raises RuntimeError at runtime"),
        _spec("rt-frame-unconsumed", Severity.WARNING, "concurrency",
              "a framed-pipe message kind is produced on one side of the "
              "protocol with no matching consumer on the peer side (or "
              "consumed but never produced)"),
        _spec("rt-ack-window-order", Severity.ERROR, "concurrency",
              "an ack-window transition violates the append-before-send / "
              "pop-then-notify condition-variable ordering; replay after a "
              "crash would drop or duplicate chunks"),
    ]
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding with provenance.

    ``source`` is the graph name, fabric bundle name, or file path;
    ``node``/``node_name`` locate IR findings, ``line`` locates source
    findings.
    """

    check_id: str
    severity: Severity
    message: str
    source: str
    node: int | None = None
    node_name: str | None = None
    line: int | None = None

    def format(self) -> str:
        """``source[:line|:node]: severity: [check-id] message``."""
        where = self.source
        if self.line is not None:
            where += f":{self.line}"
        elif self.node is not None:
            label = self.node_name or str(self.node)
            where += f":{label}"
        return f"{where}: {self.severity}: [{self.check_id}] {self.message}"


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """The gate-relevant severity of a finding set (None when empty)."""
    severities = [d.severity for d in diagnostics]
    return max(severities) if severities else None
