"""Pass-based static verification of :class:`DataflowGraph` programs.

:func:`verify_graph` runs four pass families and returns the union of
their findings as :class:`~repro.analysis.diagnostics.Diagnostic` records:

structure
    Cycles, malformed input/const/output wiring, orphaned compute nodes,
    unreachable and dead nodes, state-key collisions, epilogue/temporal
    misuse.  Pure graph traversal; always runs.
shape
    Width inference propagated in topo order.  Each node kind has an
    output-width rule (``dot``/``mapreduce`` produce ``parallel`` values,
    ``gather`` the sum of its inputs, ``reduce`` one, ``map``/``lut``
    their declared width); consuming widths are checked where the kind
    pins them.  State-carrying nodes (``wants_state``) have *unknown*
    width — their semantics may slice or re-shape (the LSTM's
    ``cell_update`` consumes ``4H`` gate pre-activations and emits ``H``)
    — and unknown propagates rather than guessing.
probe (optional, ``probe=True``)
    A tiny concrete execution: a 3-row batch (zeros plus two seeded
    random rows on the fixed-point grid) through ``execute_batch`` with
    an observer, checking the 2-D ``(B, width)`` value contract, inferred
    vs. actual widths, batch/scalar bit-identity, and fixed-point grid
    drift on the outputs.  Seeded and O(nodes · iterations), so it is a
    static check in spirit: no trace data, no model dependence.
budgets (optional, ``config=`` given)
    Statically price the graph's CU/MU/config-word footprint against a
    :class:`~repro.core.TaurusConfig`-shaped object (anything with
    ``n_cus``/``n_mus``) *before* ``compile_graph``: MU overflow is an
    error (weights cannot fold), CU folding and sub-line-rate are
    advisory (the compiler handles them, at a cost worth knowing).

:func:`verify_fabric` adds the cross-app checks for a
:class:`~repro.runtime.fabric.MultiAppFabric` bundle: duplicate app
names, aggregate MU residency, and state-key overlap.
"""

from __future__ import annotations

import dis
import math
from typing import Callable, Iterable

import numpy as np

from ..fixpoint import FIX8, FixedPointFormat
from ..hw.params import CUGeometry, DEFAULT_CU_GEOMETRY
from ..mapreduce.ir import DataflowGraph, Node
from ..mapreduce.ops import REDUCE_OPS
from .diagnostics import Diagnostic, Severity

__all__ = ["verify_graph", "verify_fabric"]

#: State key the interpreter itself owns (the temporal loop counter).
RESERVED_STATE_KEYS = frozenset({"iteration"})

#: Node kinds that must consume at least one predecessor.
_CONSUMER_KINDS = frozenset(
    {"dot", "mapreduce", "map", "gather", "reduce", "lut", "output"}
)

#: Reconfiguration cost above which a program swap is called out
#: (cycles; ~4 µs at 1 GHz — comparable to draining a deep queue).
_CONFIG_STREAM_CYCLES = 4096

#: The probe's drift grid: outputs must sit on multiples of 2**-12,
#: which contains every shipped format's grid (frac_bits <= 12).
_DRIFT_GRID_BITS = 12


# ======================================================================
# Public API
# ======================================================================
def verify_graph(
    graph: DataflowGraph,
    config=None,
    geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
    fmt: FixedPointFormat = FIX8,
    probe: bool = True,
    suppress: Iterable[str] = (),
) -> list[Diagnostic]:
    """Statically verify one dataflow graph; returns all findings.

    ``config`` (anything exposing ``n_cus``/``n_mus``) enables the budget
    prechecks; ``probe`` enables the concrete 3-row execution probe
    (skipped automatically while structural errors make execution
    meaningless).  ``suppress`` drops findings by check ID.
    """
    diags: list[Diagnostic] = []
    diags += _check_structure(graph)
    had_errors = any(d.severity >= Severity.ERROR for d in diags)

    widths: dict[int, int | None] = {}
    if not _has_cycle(graph):
        if not _has_dangling_preds(graph):
            diags += _check_shapes(graph, widths)
            shape_errors = any(
                d.severity >= Severity.ERROR for d in diags
            )
            if probe and not had_errors and not shape_errors:
                diags += _probe(graph, widths, fmt)
        if config is not None:
            diags += _check_budgets(graph, config, geometry)

    suppress = set(suppress)
    return [d for d in diags if d.check_id not in suppress]


def verify_fabric(
    apps,
    config=None,
    suppress: Iterable[str] = (),
) -> list[Diagnostic]:
    """Cross-app checks for a multi-app bundle.

    ``apps`` is any iterable of objects with ``name`` and ``graph``
    attributes (e.g. :class:`~repro.runtime.fabric.FabricApp`).  Per-graph
    findings are *not* repeated here — run :func:`verify_graph` on each
    app's graph for those.
    """
    from ..compiler.allocate import graph_resources

    apps = list(apps)
    diags: list[Diagnostic] = []
    source = "fabric[" + ",".join(app.name for app in apps) + "]"

    seen: dict[str, int] = {}
    for i, app in enumerate(apps):
        if app.name in seen:
            diags.append(Diagnostic(
                "fabric-duplicate-app", Severity.ERROR,
                f"apps #{seen[app.name]} and #{i} are both named "
                f"{app.name!r}; per-app results and state would alias",
                source, node_name=app.name,
            ))
        else:
            seen[app.name] = i

    keys_by_app = [
        (app.name, _graph_state_keys(app.graph)) for app in apps
    ]
    for i, (name_a, keys_a) in enumerate(keys_by_app):
        for name_b, keys_b in keys_by_app[i + 1:]:
            shared = sorted(keys_a & keys_b)
            if shared:
                diags.append(Diagnostic(
                    "fabric-state-overlap", Severity.INFO,
                    f"apps {name_a!r} and {name_b!r} both persist state "
                    f"key(s) {shared}; state is isolated per app, but "
                    "merged dumps/deltas become ambiguous",
                    source, node_name=name_a,
                ))

    if config is not None:
        total_mu = sum(
            graph_resources(app.graph).n_mu for app in apps
        )
        if total_mu > config.n_mus:
            diags.append(Diagnostic(
                "fabric-mu-residency", Severity.WARNING,
                f"apps need {total_mu} MUs together but the grid has "
                f"{config.n_mus}; they cannot co-reside, so every swap "
                "re-streams weight banks",
                source,
            ))

    suppress = set(suppress)
    return [d for d in diags if d.check_id not in suppress]


# ======================================================================
# Structure passes
# ======================================================================
def _has_cycle(graph: DataflowGraph) -> bool:
    """Kahn's algorithm over the existing nodes.

    Self-contained rather than delegating to ``graph.topo_order()``: the
    verifier must stay diagnosable on exactly the malformed graphs (e.g.
    dangling predecessor ids) that make ``topo_order`` blow up.
    """
    indegree = {nid: 0 for nid in graph.nodes}
    succs: dict[int, list[int]] = {nid: [] for nid in graph.nodes}
    for node in graph.nodes.values():
        for pred in node.preds:
            if pred in succs:  # dangling preds are _check_structure's job
                indegree[node.node_id] += 1
                succs[pred].append(node.node_id)
    ready = [nid for nid, deg in indegree.items() if deg == 0]
    visited = 0
    while ready:
        nid = ready.pop()
        visited += 1
        for nxt in succs[nid]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    return visited != len(graph.nodes)


def _has_dangling_preds(graph: DataflowGraph) -> bool:
    return any(
        pred not in graph.nodes
        for node in graph.nodes.values()
        for pred in node.preds
    )


def _successors(graph: DataflowGraph) -> dict[int, list[int]]:
    succs: dict[int, list[int]] = {nid: [] for nid in graph.nodes}
    for node in graph.nodes.values():
        for pred in node.preds:
            if pred in succs:
                succs[pred].append(node.node_id)
    return succs


def _closure(start: Iterable[int], edges: dict[int, list[int]]) -> set[int]:
    seen = set(start)
    stack = list(seen)
    while stack:
        for nxt in edges.get(stack.pop(), ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


def _check_structure(graph: DataflowGraph) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    src = graph.name

    def report(check: str, severity: Severity, msg: str, node: Node | None = None):
        diags.append(Diagnostic(
            check, severity, msg, src,
            node=None if node is None else node.node_id,
            node_name=None if node is None else (node.name or None),
        ))

    if _has_cycle(graph):
        report("ir-cycle", Severity.ERROR,
               "the dataflow graph contains a cycle; execution and "
               "compilation both reject it")
        return diags  # everything below assumes a DAG

    succs = _successors(graph)
    outputs = graph.outputs()

    # -- input/const/output wiring -------------------------------------
    for node in graph.nodes.values():
        dangling = [p for p in node.preds if p not in graph.nodes]
        if dangling:
            report("ir-malformed-io", Severity.ERROR,
                   f"references missing predecessor id(s) {dangling}", node)
        if node.kind in ("input", "const") and node.preds:
            report("ir-malformed-io", Severity.ERROR,
                   f"{node.kind} nodes are sources and cannot have "
                   "predecessors", node)
        if node.kind == "output" and succs[node.node_id]:
            report("ir-malformed-io", Severity.ERROR,
                   "output nodes are sinks; feeding another node means "
                   "the consumer reads the PHV write-back", node)
        if node.kind in _CONSUMER_KINDS and not node.preds:
            report("ir-orphan", Severity.ERROR,
                   f"{node.kind} node has no predecessors to consume", node)

    if not outputs:
        report("ir-no-output", Severity.ERROR,
               "graph has no output node; execute() raises")
    elif len(outputs) > 1:
        report("ir-multi-output", Severity.WARNING,
               f"graph has {len(outputs)} output nodes; execute() "
               "returns only the last in topo order")

    # -- reachability ---------------------------------------------------
    forward = _closure((n.node_id for n in graph.inputs()), succs)
    preds_of = {nid: list(graph.nodes[nid].preds) for nid in graph.nodes}
    backward = _closure((n.node_id for n in outputs), preds_of)
    for node in graph.nodes.values():
        if node.kind not in ("input", "const") and node.node_id not in forward:
            report("ir-unreachable", Severity.WARNING,
                   "no input reaches this node; it recomputes a "
                   "constant for every packet", node)
        if node.kind != "output" and node.node_id not in backward:
            report("ir-dead-node", Severity.WARNING,
                   "no path from this node to any output; its value "
                   "is computed and discarded", node)

    # -- state keys ------------------------------------------------------
    writes: dict[str, Node] = {}
    for node in graph.nodes.values():
        for key in _node_state_keys(node):
            if key in RESERVED_STATE_KEYS:
                report("ir-state-collision", Severity.ERROR,
                       f"writes reserved state key {key!r} (owned by the "
                       "temporal loop)", node)
            elif key in writes and writes[key].node_id != node.node_id:
                report("ir-state-collision", Severity.ERROR,
                       f"state key {key!r} is also written by node "
                       f"{writes[key].name!r}; the last writer in topo "
                       "order silently wins", node)
            else:
                writes[key] = node

    # -- epilogue / temporal --------------------------------------------
    epilogue_nodes = [n for n in graph.nodes.values() if n.epilogue]
    for node in graph.nodes.values():
        if node.epilogue:
            continue
        for pred in node.preds:
            if pred in graph.nodes and graph.nodes[pred].epilogue:
                report("ir-epilogue-order", Severity.ERROR,
                       f"consumes epilogue node "
                       f"{graph.nodes[pred].name!r}, whose value does "
                       "not exist before the last iteration", node)
    for node in epilogue_nodes:
        if node.kind in ("input", "const"):
            report("ir-epilogue-io", Severity.WARNING,
                   f"{node.kind} nodes are iteration-invariant; the "
                   "epilogue marker only delays their consumers", node)
    if epilogue_nodes and graph.temporal_iterations == 1:
        report("ir-epilogue-inert", Severity.INFO,
               f"{len(epilogue_nodes)} epilogue node(s) with "
               "temporal_iterations == 1: the marker is inert")
    if graph.temporal_iterations > 1 and not _graph_wants_state(graph):
        report("ir-temporal-no-state", Severity.WARNING,
               f"{graph.temporal_iterations} temporal iterations but no "
               "node carries state; every iteration recomputes the same "
               "values")
    return diags


def _graph_wants_state(graph: DataflowGraph) -> bool:
    return any(
        getattr(fn, "wants_state", False)
        for node in graph.nodes.values()
        for fn in (node.fn, node.batch_fn)
        if fn is not None
    )


def _node_state_keys(node: Node) -> set[str]:
    """State keys this node's semantics assign (bytecode scan)."""
    keys: set[str] = set()
    for fn in (node.fn, node.batch_fn):
        if fn is not None and getattr(fn, "wants_state", False):
            keys |= _written_subscript_keys(fn)
    return keys


def _written_subscript_keys(fn: Callable) -> set[str]:
    """String keys stored by ``x[key] = ...`` anywhere in ``fn``.

    ``STORE_SUBSCR`` pops ``(value, container, key)``; when the key was
    pushed by the immediately preceding ``LOAD_CONST`` it is a literal
    string we can recover.  Non-Python callables scan as empty.
    """
    try:
        instructions = list(dis.get_instructions(fn))
    except TypeError:
        return set()
    keys: set[str] = set()
    prev = None
    for ins in instructions:
        if (
            ins.opname == "STORE_SUBSCR"
            and prev is not None
            and prev.opname == "LOAD_CONST"
            and isinstance(prev.argval, str)
        ):
            keys.add(prev.argval)
        prev = ins
    return keys


def _graph_state_keys(graph: DataflowGraph) -> set[str]:
    keys: set[str] = set()
    for node in graph.nodes.values():
        keys |= _node_state_keys(node)
    return keys


# ======================================================================
# Shape / width inference
# ======================================================================
def _node_is_stateful(node: Node) -> bool:
    return any(
        getattr(fn, "wants_state", False)
        for fn in (node.fn, node.batch_fn)
        if fn is not None
    )


def _check_shapes(
    graph: DataflowGraph, widths: dict[int, int | None]
) -> list[Diagnostic]:
    """Propagate output widths in topo order; fill ``widths`` in place.

    ``None`` means *unknown* (state-carrying semantics may reshape); an
    unknown input disables the consuming check rather than guessing.
    """
    diags: list[Diagnostic] = []
    src = graph.name

    def report(check: str, msg: str, node: Node):
        diags.append(Diagnostic(
            check, Severity.ERROR, msg, src,
            node=node.node_id, node_name=node.name or None,
        ))

    for node in graph.topo_order():
        data_preds = [
            p for p in node.preds
            if p in graph.nodes and graph.nodes[p].kind != "const"
        ]
        pred_widths = [widths.get(p) for p in data_preds]
        in_width = (
            sum(pred_widths) if pred_widths and None not in pred_widths
            else None
        )

        if node.kind == "input":
            widths[node.node_id] = node.width
            continue
        if node.kind == "const":
            widths[node.node_id] = 0
            continue

        if _has_no_semantics(node):
            report("ir-no-semantics",
                   f"{node.kind} node has neither fn/batch_fn nor a "
                   "known reduce_op; both interpreters raise on it", node)

        if _node_is_stateful(node):
            # Stateful semantics may slice/reshape (cell_update: 4H -> H).
            widths[node.node_id] = None
            continue

        if node.kind in ("dot", "mapreduce"):
            if in_width is not None and in_width != node.width:
                report("ir-width-mismatch",
                       f"consumes {in_width} values but declares "
                       f"width={node.width}; the lowered CU lanes would "
                       "read past (or waste) the gathered vector", node)
            widths[node.node_id] = node.parallel
        elif node.kind == "map":
            # Maps may slice their input (conv window extraction), so the
            # consuming width is unchecked; the output is the declared width.
            widths[node.node_id] = node.width
        elif node.kind == "lut":
            if in_width is not None and in_width != node.width:
                report("ir-width-mismatch",
                       f"consumes {in_width} values but declares "
                       f"width={node.width}; one table read per lane "
                       "needs matching widths", node)
            widths[node.node_id] = node.width
        elif node.kind == "gather":
            if in_width is not None and in_width != node.width:
                report("ir-gather-width",
                       f"declares width={node.width} but its inputs "
                       f"total {in_width} values", node)
            widths[node.node_id] = (
                in_width if in_width is not None else node.width
            )
        elif node.kind == "reduce":
            if in_width is not None and in_width != node.width:
                report("ir-width-mismatch",
                       f"reduces {in_width} values but declares "
                       f"width={node.width}", node)
            widths[node.node_id] = 1
        elif node.kind == "output":
            if in_width is not None and node.width != in_width:
                report("ir-width-mismatch",
                       f"declares width={node.width} but its "
                       f"predecessor produces {in_width} values", node)
            widths[node.node_id] = in_width
        else:  # pragma: no cover - NODE_KINDS is closed
            widths[node.node_id] = None
    return diags


def _has_no_semantics(node: Node) -> bool:
    if node.kind in ("input", "const", "gather", "output"):
        return False  # structural; the interpreter handles them inline
    if node.fn is not None or node.batch_fn is not None:
        return False
    return not (node.kind == "reduce" and node.reduce_op in REDUCE_OPS)


# ======================================================================
# Execution probe
# ======================================================================
_PROBE_ROWS = 3


def _probe(
    graph: DataflowGraph,
    widths: dict[int, int | None],
    fmt: FixedPointFormat,
) -> list[Diagnostic]:
    """Execute a seeded 3-row batch under an observer and cross-check."""
    diags: list[Diagnostic] = []
    src = graph.name
    inputs = graph.inputs()
    if not inputs:
        return diags
    dim = max(n.width for n in inputs)

    rng = np.random.default_rng(0)
    features = np.zeros((_PROBE_ROWS, dim))
    features[1:] = fmt.roundtrip(rng.uniform(-2.0, 2.0, size=(2, dim)))

    seen: set[tuple[str, int]] = set()

    def report_once(check: str, severity: Severity, msg: str, node: Node):
        if (check, node.node_id) in seen:
            return
        seen.add((check, node.node_id))
        diags.append(Diagnostic(
            check, severity, msg, src,
            node=node.node_id, node_name=node.name or None,
        ))

    def observer(node: Node, value: np.ndarray, iteration: int) -> None:
        value = np.asarray(value)
        if value.ndim != 2 or value.shape[0] != _PROBE_ROWS:
            report_once(
                "ir-non-2d", Severity.ERROR,
                f"batched value has shape {value.shape}, violating the "
                f"(B, width) contract (B={_PROBE_ROWS})", node)
            return
        inferred = widths.get(node.node_id)
        if inferred is not None and value.shape[1] != inferred:
            report_once(
                "ir-probe-width", Severity.ERROR,
                f"produces {value.shape[1]} values per row but the "
                f"declared/inferred width is {inferred}", node)

    try:
        batch_out = graph.execute_batch(features, state={}, observer=observer)
    except Exception as exc:  # noqa: BLE001 - any failure is the finding
        diags.append(Diagnostic(
            "ir-probe-failure", Severity.ERROR,
            f"execute_batch raised {type(exc).__name__}: {exc}", src,
        ))
        return diags

    # Batch/scalar bit-identity (the execute_batch contract).
    for b in range(_PROBE_ROWS):
        try:
            scalar_out = np.atleast_1d(graph.execute(features[b], state={}))
        except Exception as exc:  # noqa: BLE001
            diags.append(Diagnostic(
                "ir-probe-failure", Severity.ERROR,
                f"execute raised {type(exc).__name__}: {exc}", src,
            ))
            return diags
        if scalar_out.shape != batch_out[b].shape or not np.array_equal(
            scalar_out, batch_out[b], equal_nan=True
        ):
            diags.append(Diagnostic(
                "ir-batch-divergence", Severity.ERROR,
                f"probe row {b}: execute gives {scalar_out!r} but "
                f"execute_batch row gives {batch_out[b]!r}; the paths "
                "must be bit-identical", src,
            ))
            break

    # Fixed-point drift: outputs must sit on the 2**-12 grid, which
    # contains every format with frac_bits <= 12 (fix8/fix16 and all
    # calibrated variants).  Raw float leakage (un-roundtripped biases,
    # exact activations) lands off-grid.
    scaled = batch_out * float(1 << _DRIFT_GRID_BITS)
    off = float(np.max(np.abs(scaled - np.rint(scaled)), initial=0.0))
    if off > 1e-6:
        diags.append(Diagnostic(
            "ir-fixpoint-drift", Severity.WARNING,
            f"outputs are off the 2^-{_DRIFT_GRID_BITS} fixed-point grid "
            f"by up to {off / (1 << _DRIFT_GRID_BITS):.3g}; some value "
            "skipped its format roundtrip (raw float leakage)", src,
        ))
    return diags


# ======================================================================
# Budget prechecks
# ======================================================================
def _check_budgets(
    graph: DataflowGraph, config, geometry: CUGeometry
) -> list[Diagnostic]:
    from ..compiler.allocate import graph_resources
    from ..hw.grid import RECONFIG_BASE_CYCLES, RECONFIG_WORDS_PER_CYCLE

    diags: list[Diagnostic] = []
    src = graph.name
    res = graph_resources(graph, geometry)

    if res.n_mu > config.n_mus:
        diags.append(Diagnostic(
            "budget-mu-overflow", Severity.ERROR,
            f"needs {res.n_mu} MUs but the grid has {config.n_mus}; "
            "weights cannot time-multiplex, so compile_graph raises "
            "(Section 6: larger models need compression)", src,
        ))

    fold = 1
    if res.n_cu > config.n_cus:
        fold = math.ceil(res.n_cu / config.n_cus)
        diags.append(Diagnostic(
            "budget-cu-fold", Severity.INFO,
            f"needs {res.n_cu} CUs but the grid has {config.n_cus}; the "
            f"compiler will fold x{fold}, multiplying the initiation "
            "interval accordingly", src,
        ))

    ii = graph.initiation_interval * fold * graph.temporal_iterations
    if ii > 1:
        diags.append(Diagnostic(
            "budget-line-rate", Severity.INFO,
            f"sustains 1/{ii} of line rate on this grid "
            f"(II {graph.initiation_interval} x fold {fold} x "
            f"{graph.temporal_iterations} temporal iterations)", src,
        ))

    words = graph.config_words()
    cycles = RECONFIG_BASE_CYCLES + math.ceil(
        words / RECONFIG_WORDS_PER_CYCLE
    )
    if cycles > _CONFIG_STREAM_CYCLES:
        diags.append(Diagnostic(
            "budget-config-stream", Severity.INFO,
            f"configuration stream is {words} words (~{cycles} cycles "
            "per swap); time-multiplexing this program is expensive", src,
        ))
    return diags
