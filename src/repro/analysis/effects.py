"""Purity/effects classification and fusion planning for dataflow graphs.

ROADMAP item 2 (the ngraph-style fusing transformer) needs a certified
answer to "which node chains are pure and fusable" before any compiled
backend can rewrite a graph.  This pass computes that answer statically
and ships it as a :class:`FusionPlan` artifact the transformer consumes
verbatim.

Classification reuses :mod:`repro.analysis.ir_verify`'s bytecode scan of
node callables (``dis``-level, no execution) plus a mirrored scan for
*reads*:

``state-write``
    The node's semantics assign a non-reserved state key
    (``state[key] = ...``).
``state-read``
    No writes, but the semantics subscript or ``.get`` a non-reserved
    key — the node's value depends on carried state.
``temporal``
    No data-state coupling, but the node is iteration-coupled all the
    same: it reads the reserved ``iteration`` counter, opts into the
    state kwarg, or is an epilogue node (exists only after the last
    iteration).
``stateless``
    Pure: output depends only on the node's data inputs.

A node is *fusable* when it is stateless AND element-wise (``map`` or
``lut`` — one value in, one value out per lane, no width change by
construction).  A :class:`FusionPlan` chain is a maximal single-pred /
single-succ run of fusable nodes: composing the member callables is
semantics-preserving because no other node observes the intermediate
edges and no member touches state.  The certification test in
``tests/test_analysis.py`` checks exactly that, by composition against
``execute_batch(observer=)``.
"""

from __future__ import annotations

import dis
from dataclasses import dataclass, field
from typing import Callable

from ..mapreduce.ir import DataflowGraph, Node
from .ir_verify import (
    RESERVED_STATE_KEYS,
    _node_is_stateful,
    _node_state_keys,
)

__all__ = ["NodeEffects", "FusionPlan", "analyze_effects"]

#: Node kinds that are element-wise by construction (width in == width
#: out, value ``i`` of the output depends only on value ``i`` of the
#: input) and therefore fusion candidates when pure.
ELEMENTWISE_KINDS = frozenset({"map", "lut"})

EFFECTS = ("stateless", "state-read", "state-write", "temporal")


@dataclass(frozen=True)
class NodeEffects:
    """The effects classification of one node."""

    node_id: int
    name: str
    kind: str
    effect: str
    state_reads: tuple[str, ...] = ()
    state_writes: tuple[str, ...] = ()

    @property
    def fusable(self) -> bool:
        return self.effect == "stateless" and self.kind in ELEMENTWISE_KINDS


@dataclass
class FusionPlan:
    """Certified fusion input for the ROADMAP item 2 transformer.

    ``chains`` lists maximal runs (length >= 2, in dataflow order) of
    pure element-wise nodes where each member's only data predecessor is
    the previous member and each non-tail member's only consumer is the
    next.  Fusing a chain into one composed ``map`` is
    semantics-preserving by construction.
    """

    graph: str
    effects: dict[int, NodeEffects] = field(default_factory=dict)
    chains: list[tuple[int, ...]] = field(default_factory=list)

    def effect_of(self, name: str) -> NodeEffects:
        """Effects record of the (unique) node with this name."""
        matches = [e for e in self.effects.values() if e.name == name]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} nodes named {name!r}")
        return matches[0]

    def chain_names(self) -> list[tuple[str, ...]]:
        return [
            tuple(self.effects[nid].name for nid in chain)
            for chain in self.chains
        ]


def _read_subscript_keys(fn: Callable) -> set[str]:
    """String keys read via ``x[key]`` or ``x.get(key, ...)`` in ``fn``.

    Mirrors ``ir_verify._written_subscript_keys``: ``BINARY_SUBSCR``
    preceded by a string ``LOAD_CONST`` is a literal subscript read, and
    a string ``LOAD_CONST`` immediately after a ``get`` attribute/method
    load is a ``state.get("key")`` access.  Non-Python callables scan as
    empty (same graceful degradation as the write scan).
    """
    try:
        instructions = list(dis.get_instructions(fn))
    except TypeError:
        return set()
    keys: set[str] = set()
    prev = None
    for ins in instructions:
        if (
            ins.opname == "BINARY_SUBSCR"
            and prev is not None
            and prev.opname == "LOAD_CONST"
            and isinstance(prev.argval, str)
        ):
            keys.add(prev.argval)
        if (
            ins.opname == "LOAD_CONST"
            and isinstance(ins.argval, str)
            and prev is not None
            and prev.opname in ("LOAD_ATTR", "LOAD_METHOD")
            and prev.argval == "get"
        ):
            keys.add(ins.argval)
        prev = ins
    return keys


def _node_read_keys(node: Node) -> set[str]:
    keys: set[str] = set()
    for fn in (node.fn, node.batch_fn):
        if fn is not None and getattr(fn, "wants_state", False):
            keys |= _read_subscript_keys(fn)
    return keys


def _classify(node: Node) -> NodeEffects:
    writes = _node_state_keys(node) - RESERVED_STATE_KEYS
    reads = _node_read_keys(node) - RESERVED_STATE_KEYS
    reads_iteration = "iteration" in _node_read_keys(node)
    if writes:
        effect = "state-write"
    elif reads:
        effect = "state-read"
    elif node.epilogue or reads_iteration or _node_is_stateful(node):
        effect = "temporal"
    else:
        effect = "stateless"
    return NodeEffects(
        node_id=node.node_id,
        name=node.name,
        kind=node.kind,
        effect=effect,
        state_reads=tuple(sorted(reads)),
        state_writes=tuple(sorted(writes)),
    )


def analyze_effects(graph: DataflowGraph) -> FusionPlan:
    """Classify every node and extract maximal fusable chains."""
    order = graph.topo_order()
    plan = FusionPlan(graph=graph.name)
    for node in order:
        plan.effects[node.node_id] = _classify(node)

    # Data edges only: const predecessors are resident banks, not
    # streamed values, and the interpreter filters them out of compute
    # arguments — they do not break element-wise chains.
    data_preds: dict[int, list[int]] = {}
    consumers: dict[int, list[int]] = {}
    for node in order:
        preds = [p for p in node.preds if graph.nodes[p].kind != "const"]
        data_preds[node.node_id] = preds
        for pred in preds:
            consumers.setdefault(pred, []).append(node.node_id)

    def links_to(a: int, b: int) -> bool:
        """Whether fusable node ``b`` can absorb fusable node ``a``."""
        return (
            data_preds[b] == [a]
            and consumers.get(a, []) == [b]
        )

    in_chain: set[int] = set()
    for node in order:
        nid = node.node_id
        if nid in in_chain or not plan.effects[nid].fusable:
            continue
        preds = data_preds[nid]
        if (
            len(preds) == 1
            and plan.effects.get(preds[0]) is not None
            and plan.effects[preds[0]].fusable
            and links_to(preds[0], nid)
        ):
            continue  # extends an earlier chain head; handled there
        chain = [nid]
        while True:
            nexts = consumers.get(chain[-1], [])
            if (
                len(nexts) == 1
                and plan.effects[nexts[0]].fusable
                and links_to(chain[-1], nexts[0])
            ):
                chain.append(nexts[0])
            else:
                break
        if len(chain) >= 2:
            plan.chains.append(tuple(chain))
            in_chain.update(chain)
    return plan
