"""Static verification of dataflow programs and runtime sources.

Taurus programs historically had one late gate: ``compile_graph`` (and,
worse, runtime execution) was where shape mismatches, budget overflows and
structural defects surfaced.  Homunculus (PAPERS.md) argues the data-plane
ML pipeline should be checked against switch constraints *at compile
time*; this package is that layer for the reproduction:

* :func:`verify_graph` — a pass-based verifier over the
  :class:`~repro.mapreduce.ir.DataflowGraph` IR: shape/width inference in
  topo order, structural lints (cycles, dead nodes, state-key collisions,
  epilogue/temporal misuse), budget prechecks against a
  :class:`~repro.core.TaurusConfig` *before* ``compile_graph``, and an
  optional execution probe that checks batch/scalar bit-identity, 2-D
  value discipline, and fixed-point format drift.
* :func:`verify_fabric` — cross-app prechecks for
  :class:`~repro.runtime.fabric.MultiAppFabric` bundles (duplicate app
  names, state-key overlap, aggregate MU residency).
* :func:`lint_source` / :func:`lint_paths` — an AST-based fork-safety
  lint for runtime sources (fds/locks captured across ``fork``, missing
  ``os._exit`` in forked children, unbounded joins on close paths,
  inconsistent lock-acquisition orders across functions).
* :func:`analyze_ranges` — an abstract interpreter proving per-node
  value intervals (in raw fixed-point units) through every graph:
  saturation, wide-accumulator overflow, and LUT domain-coverage
  warnings, plus bit-width-narrowing opportunities, with per-node
  waivers for saturation that is the quantization scheme by design.
* :func:`analyze_effects` — a purity/effects pass (stateless /
  state-read / state-write / temporal) that certifies maximal chains of
  pure element-wise nodes as a :class:`FusionPlan` — the input the
  ROADMAP item 2 fusing transformer consumes verbatim.
* :func:`analyze_concurrency` — a CFG-based interprocedural lockset
  analysis over the runtime sources: thread entry-point discovery,
  per-statement must-locksets through helper calls and aliasing, a
  shared-field access map with race verdicts (``rt-racy-field``,
  ``rt-lockset-inconsistent``), condition-variable discipline
  (``rt-cv-wait-no-predicate``, ``rt-cv-notify-unheld``), and a message
  state machine over the framed pipe protocol (``rt-frame-unconsumed``,
  ``rt-ack-window-order``).

Everything surfaces as :class:`Diagnostic` records with stable check IDs
(see :data:`CHECKS`), severities, and node/line provenance.  The CLI —
``python -m repro.analysis`` — runs the whole battery over the shipped
app graphs and the runtime sources and is wired into CI as a lint gate
(``--format=json`` for the machine-readable artifact).
"""

from .concurrency import analyze_concurrency, analyze_concurrency_sources
from .diagnostics import CHECKS, CheckSpec, Diagnostic, Severity, worst_severity
from .effects import FusionPlan, NodeEffects, analyze_effects
from .fork_lint import lint_paths, lint_source
from .ir_verify import verify_fabric, verify_graph
from .ranges import TOP, Interval, RangeReport, analyze_ranges

__all__ = [
    "CHECKS",
    "CheckSpec",
    "Diagnostic",
    "FusionPlan",
    "Interval",
    "NodeEffects",
    "RangeReport",
    "Severity",
    "TOP",
    "analyze_concurrency",
    "analyze_concurrency_sources",
    "analyze_effects",
    "analyze_ranges",
    "lint_paths",
    "lint_source",
    "verify_fabric",
    "verify_graph",
    "worst_severity",
]
