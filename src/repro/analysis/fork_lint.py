"""AST-based fork-safety lint for the runtime sources.

The sharded runtime forks workers, wires pipe pairs, and joins collector
threads — each a pattern this repo has been bitten by before the current
discipline was adopted.  This lint encodes that discipline so regressions
are caught in CI rather than as hangs and leaked fds:

``rt-fork-flush``
    ``os.fork()`` duplicates the process *including* stdio buffers; any
    buffered output is then written twice.  Every function that forks
    must flush stdout/stderr first.
``rt-fork-child-exit``
    A forked child that falls off the end of its branch unwinds into the
    parent's teardown (atexit handlers, pytest finalizers) — the child
    must leave via ``os._exit``.
``rt-pipe-ownership``
    Every fd from ``os.pipe()`` must be closed (``os.close``) or have
    its ownership transferred (``os.fdopen``) within the same function,
    so error paths cannot leak it.
``rt-unbounded-close-join``
    ``Thread.join()`` without a timeout on a close/shutdown path turns a
    stuck worker into a stuck interpreter exit.
``rt-fork-under-lock``
    Forking while holding a lock snapshots the lock *held* into the
    child, which then deadlocks on first acquire.
``rt-unbounded-recv``
    A ``recv()`` call with no timeout argument parks the caller on a
    pipe forever if the worker dies without closing its end — the exact
    hang the pool's watchdog exists to prevent.  The same applies to a
    ``join()`` with no timeout *outside* a close/shutdown path: worker
    supervision loops must stay interruptible, so joins there must be
    bounded (loop on ``join(t)`` + ``is_alive()`` to wait indefinitely
    but interruptibly).
``rt-unbounded-queue``
    The serving loop's boundedness discipline, machine-enforced: a
    ``queue.Queue()`` constructed without a ``maxsize`` grows with
    offered load until the process dies, and a ``put()`` with no timeout
    (and not ``block=False``) parks its caller forever once a bounded
    queue fills against a dead consumer.  Every queue in the runtime
    must carry a cap and every blocking put a deadline
    (``queue.SimpleQueue`` cannot be bounded at all, so it is always
    flagged).
``rt-lock-order``
    Two lock-ish names (anything whose terminal name contains "lock")
    acquired in nested ``with`` blocks in one order in one function and
    the opposite order in another is the classic AB/BA deadlock: two
    concurrent callers each hold one lock and wait on the other forever.
    The admission-vs-scoring lock split in ``runtime/service.py`` is the
    motivating pattern — every function must acquire that pair in the
    same order.

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` records with
file/line provenance.  Suppress a finding by appending ``# noqa`` (all
checks) or ``# noqa: rt-pipe-ownership`` (listed checks) to its line.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from .cfg import Aliases, function_body_nodes, suppressed, terminal_name
from .diagnostics import Diagnostic, Severity

__all__ = ["lint_source", "lint_paths"]

#: Function names considered teardown paths for the bounded-join check.
CLOSE_PATH_NAMES = frozenset(
    {"close", "stop", "shutdown", "terminate", "reap", "__exit__", "__del__"}
)


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one Python source text; returns fork-safety findings."""
    tree = ast.parse(source, filename=path)
    aliases = Aliases(tree)
    lines = source.splitlines()
    diags: list[Diagnostic] = []

    def report(check: str, severity: Severity, msg: str, line: int) -> None:
        if not suppressed(lines, line, check):
            diags.append(Diagnostic(check, severity, msg, path, line=line))

    for fn in (
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ):
        body = function_body_nodes(fn)
        calls = [n for n in body if isinstance(n, ast.Call)]
        resolved = [(c, aliases.resolve(c.func)) for c in calls]

        fork_calls = [c for c, name in resolved if name == "os.fork"]
        if fork_calls:
            _lint_fork(fn, body, calls, resolved, fork_calls, report)
        _lint_pipes(body, resolved, report)
        if fn.name in CLOSE_PATH_NAMES:
            _lint_close_joins(fn, calls, report)
        _lint_unbounded_recv(fn, calls, report)
        _lint_unbounded_queue(fn, calls, resolved, report)
    _lint_lock_order(tree, report)
    return diags


def _lint_fork(fn, body, calls, resolved, fork_calls, report) -> None:
    first_fork = min(c.lineno for c in fork_calls)
    flush_lines = [
        c.lineno
        for c in calls
        if isinstance(c.func, ast.Attribute) and c.func.attr == "flush"
    ]
    if not any(line < first_fork for line in flush_lines):
        report(
            "rt-fork-flush", Severity.ERROR,
            f"{fn.name}() calls os.fork() without flushing stdout/stderr "
            "first; buffered output is duplicated into the child",
            first_fork,
        )
    if not any(name == "os._exit" for __, name in resolved):
        report(
            "rt-fork-child-exit", Severity.ERROR,
            f"{fn.name}() forks but never calls os._exit(); a child that "
            "returns unwinds into the parent's teardown (atexit, pytest)",
            first_fork,
        )
    held_lock_lines = [
        c.lineno
        for c in calls
        if isinstance(c.func, ast.Attribute) and c.func.attr == "acquire"
    ] + [
        item.context_expr.lineno
        for node in body
        if isinstance(node, ast.With)
        for item in node.items
        if "lock" in (terminal_name(item.context_expr) or "").lower()
    ]
    if held_lock_lines:
        report(
            "rt-fork-under-lock", Severity.ERROR,
            f"{fn.name}() forks in a function that acquires a lock "
            f"(line {min(held_lock_lines)}); the child inherits the lock "
            "held forever",
            first_fork,
        )


def _lint_pipes(body, resolved, report) -> None:
    owned: set[str] = set()
    for call, name in resolved:
        if name in ("os.close", "os.fdopen"):
            for arg in call.args:
                if isinstance(arg, ast.Name):
                    owned.add(arg.id)
    for node in body:
        if not (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
        ):
            continue
        if next(
            (n for c, n in resolved if c is node.value), None
        ) != "os.pipe":
            continue
        target = node.targets[0]
        fd_names = (
            [e.id for e in target.elts if isinstance(e, ast.Name)]
            if isinstance(target, (ast.Tuple, ast.List))
            else []
        )
        leaked = [fd for fd in fd_names if fd not in owned]
        if leaked:
            report(
                "rt-pipe-ownership", Severity.ERROR,
                f"pipe fd(s) {leaked} never reach os.close/os.fdopen in "
                "this function; an error path leaks them",
                node.lineno,
            )


def _lint_close_joins(fn, calls, report) -> None:
    for call in calls:
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "join"
            and not call.args
            and not call.keywords
        ):
            report(
                "rt-unbounded-close-join", Severity.WARNING,
                f"{fn.name}() joins a thread without a timeout on a "
                "teardown path; a stuck worker hangs interpreter exit",
                call.lineno,
            )


def _lint_unbounded_recv(fn, calls, report) -> None:
    """Flag blocking waits that a dead peer can never satisfy.

    ``recv()`` with no timeout is flagged everywhere: the runtime's
    receive APIs accept a ``hang_timeout`` precisely so a crashed worker
    surfaces as :class:`WorkerCrash` instead of a parked parent.
    ``join()`` with no timeout is flagged outside close paths (close
    paths have their own stricter check); supervision code must use
    bounded joins in a loop to stay interruptible.
    """
    on_close_path = fn.name in CLOSE_PATH_NAMES
    for call in calls:
        if not isinstance(call.func, ast.Attribute):
            continue
        if call.args or call.keywords:
            continue
        if call.func.attr == "recv":
            report(
                "rt-unbounded-recv", Severity.WARNING,
                f"{fn.name}() calls recv() with no timeout; a dead worker "
                "parks this caller on the pipe forever — pass a bounded "
                "hang_timeout",
                call.lineno,
            )
        elif call.func.attr == "join" and not on_close_path:
            report(
                "rt-unbounded-recv", Severity.WARNING,
                f"{fn.name}() joins a thread without a timeout outside a "
                "close path; loop on join(t)/is_alive() so the wait stays "
                "interruptible",
                call.lineno,
            )


#: Queue factories that accept a ``maxsize`` bound.
_BOUNDABLE_QUEUES = frozenset(
    {
        "queue.Queue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "multiprocessing.Queue",
        "multiprocessing.JoinableQueue",
    }
)


def _lint_unbounded_queue(fn, calls, resolved, report) -> None:
    """Flag queues without a size bound and puts without a deadline.

    Bounded queues are the serving loop's backpressure primitive; an
    unbounded one silently converts overload into memory growth.  A
    blocking ``put()`` with no timeout is the dual failure: once the
    queue *is* bounded, a dead consumer parks the producer forever.
    ``put_nowait`` / ``put(..., block=False)`` / ``put(..., timeout=t)``
    are all fine.
    """
    for call, name in resolved:
        if name in _BOUNDABLE_QUEUES:
            bounded = bool(call.args) or any(
                kw.arg == "maxsize" for kw in call.keywords
            )
            if not bounded:
                report(
                    "rt-unbounded-queue", Severity.WARNING,
                    f"{fn.name}() builds {name.rsplit('.', 1)[-1]}() with no "
                    "maxsize; offered load grows it without bound — cap it",
                    call.lineno,
                )
        elif name in ("queue.SimpleQueue", "multiprocessing.SimpleQueue"):
            report(
                "rt-unbounded-queue", Severity.WARNING,
                f"{fn.name}() builds SimpleQueue(), which cannot be "
                "bounded; use Queue(maxsize=...) instead",
                call.lineno,
            )
    for call in calls:
        if not (
            isinstance(call.func, ast.Attribute) and call.func.attr == "put"
        ):
            continue
        # put(item, block=True, timeout=None): bounded iff a timeout is
        # given (positionally or by keyword) or block is False.
        has_timeout = len(call.args) >= 3 or any(
            kw.arg == "timeout" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            )
            for kw in call.keywords
        )
        nonblocking = (
            len(call.args) >= 2
            and isinstance(call.args[1], ast.Constant)
            and call.args[1].value is False
        ) or any(
            kw.arg == "block"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in call.keywords
        )
        if not (has_timeout or nonblocking):
            report(
                "rt-unbounded-queue", Severity.WARNING,
                f"{fn.name}() calls put() with no timeout; a dead consumer "
                "parks this producer on a full queue forever — pass "
                "timeout= or block=False",
                call.lineno,
            )


def _lock_name(expr: ast.expr) -> str | None:
    """The lock-ish name a ``with`` item acquires, if any."""
    target = expr.func if isinstance(expr, ast.Call) else expr
    name = terminal_name(target)
    if name is not None and "lock" in name.lower():
        return name
    return None


def _lock_pairs(fn: ast.AST) -> list[tuple[str, str, int]]:
    """Ordered ``(outer, inner, line)`` lock acquisitions nested in ``fn``.

    Tracks the stack of lock-ish names held through nested ``with``
    statements (multi-item ``with a, b:`` acquires left to right);
    nested function/class scopes are skipped — they are visited as their
    own functions.
    """
    pairs: list[tuple[str, str, int]] = []

    def visit(node: ast.AST, held: list[str]) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_held = list(held)
            for item in node.items:
                name = _lock_name(item.context_expr)
                if name is not None:
                    for outer in inner_held:
                        pairs.append((outer, name, item.context_expr.lineno))
                    inner_held.append(name)
            for child in node.body:
                visit(child, inner_held)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in ast.iter_child_nodes(fn):
        visit(stmt, [])
    return pairs


def _lint_lock_order(tree: ast.AST, report) -> None:
    """Flag lock pairs acquired in opposite orders across functions.

    Module-scoped (unlike the per-function checks above): the AB/BA
    deadlock needs two functions to materialize.  Each unordered pair is
    reported once, at the later (inverting) acquisition, naming both
    functions.
    """
    orders: dict[frozenset, tuple[str, str, str, int]] = {}
    flagged: set[frozenset] = set()
    for fn in (
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ):
        for outer, inner, line in _lock_pairs(fn):
            if outer == inner:
                continue
            key = frozenset((outer, inner))
            prev = orders.get(key)
            if prev is None:
                orders[key] = (outer, inner, fn.name, line)
            elif (prev[0], prev[1]) != (outer, inner) and key not in flagged:
                flagged.add(key)
                report(
                    "rt-lock-order", Severity.ERROR,
                    f"{fn.name}() acquires {outer!r} then {inner!r}, but "
                    f"{prev[2]}() (line {prev[3]}) acquires them in the "
                    "opposite order; concurrent callers deadlock holding "
                    "one each",
                    line,
                )


def lint_paths(paths: Iterable[str | Path]) -> list[Diagnostic]:
    """Lint files and/or directories (recursing into ``*.py``)."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    diags: list[Diagnostic] = []
    for file in files:
        diags.extend(
            lint_source(file.read_text(encoding="utf-8"), str(file))
        )
    return diags
