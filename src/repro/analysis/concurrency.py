"""Lockset race detection + IPC protocol conformance for the runtime.

The runtime is genuinely concurrent: per-shard supervisor threads gated
on pending-window condition variables (``pool.py``), a child heartbeat
thread sharing a tx lock with the request loop (``executors.py``), and a
service whose admission and scoring paths deliberately take separate
locks (``service.py``).  The fork-safety lint catches *patterns*; this
module is a real interprocedural analysis over the same sources:

1. **Thread discovery.**  Every ``threading.Thread(target=...)`` call is
   resolved to its target function (methods, nested functions, module
   functions).  Each spawned target roots an analysis context with role
   ``thread:<name>``; the public surface of each class roots a shared
   ``api:<Class>`` role (any caller thread), and helpers reached from
   neither become their own roots.

2. **Locksets.**  A statement-level CFG per function (``repro.analysis
   .cfg``) carries a *must*-lockset — the set of lock regions held on
   every path — through ``with self._lock:`` acquisitions, condition
   variables (acquiring a ``threading.Condition(self._lock)`` also
   acquires its underlying lock), helper calls (context-sensitive on
   the entry lockset), and aliasing (``run.cv`` and ``self.cv`` resolve
   to the same ``(_ShardRun, cv)`` region via annotations and
   constructor-call type inference).

3. **Shared-field race verdicts.**  Every ``obj.attr`` access on a
   resolvable class is recorded as ``(region, read/write, lockset,
   role)``; closure variables shared with spawned nested functions are
   tracked the same way.  A field written at all and touched from ≥2
   roles must have a *common* lock across every access: if some access
   holds nothing → ``rt-racy-field``; if every access holds *a* lock
   but no lock is common → ``rt-lockset-inconsistent``.  ``__init__``
   runs happen-before every spawn and are excluded.

4. **Condition-variable discipline.**  ``rt-cv-wait-no-predicate``
   (a ``wait()`` not re-checked in an enclosing ``while``) and
   ``rt-cv-notify-unheld`` (``notify`` without the condition's lock in
   the dataflow lockset — CPython raises RuntimeError at runtime).

5. **Framed-pipe protocol conformance.**  Message kinds are extracted
   direction-aware — request producers (yielded/returned/comprehension
   ``(kind, payload)`` tuples, ``send``/``broadcast``/``handle`` calls
   with constant kinds), request consumers (``kind == ...``
   comparisons), response producers (tuples passed to ``_send``/
   ``_post``), response consumers (``status == ...``) — and every kind
   must appear on both sides of its direction
   (``rt-frame-unconsumed``).  The ack-window invariant from the
   crash-recovery protocol (append under the condition *before* the
   bytes hit the pipe; pop the head + notify under the same condition)
   is checked structurally (``rt-ack-window-order``).

Findings are :class:`~repro.analysis.diagnostics.Diagnostic` records;
the ``# noqa: <check-id> - justification`` waiver discipline from the
fork lint applies, anchored at one deterministic line per finding (the
first unlocked write, else the first unlocked access) so a single
per-line waiver retires exactly one verdict.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from .cfg import (
    Aliases,
    build_cfg,
    function_body_nodes,
    must_fixpoint,
    suppressed,
    terminal_name,
)
from .diagnostics import Diagnostic, Severity

__all__ = ["analyze_concurrency", "analyze_concurrency_sources"]


# ----------------------------------------------------------------------
# Type vocabulary
# ----------------------------------------------------------------------
#: Canonical constructor names whose instances synchronize internally —
#: method calls on them are not shared-state accesses.
_LOCK_CTORS = {"threading.Lock", "threading.RLock"}
_CONDITION_CTORS = {"threading.Condition"}
_THREADSAFE_CTORS = {
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Barrier",
    "queue.Queue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "queue.SimpleQueue",
    "multiprocessing.Queue",
    "multiprocessing.SimpleQueue",
}
_DEQUE_CTORS = {"collections.deque"}

#: Method calls that mutate their receiver (container/file mutators).
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "remove", "clear", "add", "discard", "update",
    "setdefault", "sort", "reverse", "rotate", "write", "flush",
    "truncate", "writelines",
})

#: Attribute kinds whose accesses are never recorded as shared state.
_SYNC_KINDS = frozenset({"lock", "condition", "threadsafe"})


@dataclass
class _TypeInfo:
    """What we know about an attribute's or local's value."""

    kind: str            # "lock" | "condition" | "threadsafe" | "class" | "plain"
    cls: str | None = None     # class name when kind == "class"
    assoc: str | None = None   # condition: the lock attr it wraps (same class)


_PLAIN = _TypeInfo("plain")


@dataclass
class _ClassModel:
    name: str
    file: "_FileModel"
    node: ast.ClassDef
    attrs: dict[str, _TypeInfo] = field(default_factory=dict)
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname

    def condition_attrs(self) -> list[tuple[str, str | None]]:
        return [
            (attr, info.assoc)
            for attr, info in self.attrs.items()
            if info.kind == "condition"
        ]


@dataclass
class _FuncModel:
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    file: "_FileModel"
    cls: str | None            # owning class name, if a method
    encloser: str | None       # qualname of the enclosing function, if nested
    locals_: dict[str, _TypeInfo] = field(default_factory=dict)
    bound: set[str] = field(default_factory=set)   # params + assigned names
    nested: dict[str, str] = field(default_factory=dict)  # name -> qualname
    spawns: bool = False       # a threading.Thread(...) appears in its body

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class _FileModel:
    path: str
    tree: ast.Module
    lines: list[str]
    aliases: Aliases
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    constants: dict[str, str] = field(default_factory=dict)  # NAME -> str value
    classes: dict[str, _ClassModel] = field(default_factory=dict)
    module_funcs: dict[str, str] = field(default_factory=dict)  # name -> qualname


@dataclass(frozen=True)
class _Access:
    region: tuple[str, str]
    write: bool
    subscript: bool
    lockset: frozenset
    role: str
    path: str
    line: int


class _Program:
    """The whole analyzed file set: classes, functions, constants."""

    def __init__(self) -> None:
        self.files: list[_FileModel] = []
        self.classes: dict[str, _ClassModel] = {}
        self.functions: dict[str, _FuncModel] = {}
        self.constants: dict[str, str] = {}


# ----------------------------------------------------------------------
# Program construction
# ----------------------------------------------------------------------
def _build_program(sources: list[tuple[str, str]]) -> _Program:
    program = _Program()
    for path, text in sources:
        tree = ast.parse(text, filename=path)
        model = _FileModel(
            path=path,
            tree=tree,
            lines=text.splitlines(),
            aliases=Aliases(tree),
        )
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                model.parents[child] = node
        _collect_constants(model)
        _collect_defs(model, program)
        program.files.append(model)
    for model in program.files:
        for cls in model.classes.values():
            _infer_attr_types(cls, program)
    for func in program.functions.values():
        _infer_local_types(func, program)
    for func in program.functions.values():
        func.spawns = any(
            _is_thread_ctor(node, func.file.aliases)
            for node in function_body_nodes(func.node)
            if isinstance(node, ast.Call)
        )
    return program


def _collect_constants(model: _FileModel) -> None:
    for stmt in model.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id.isupper()
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            model.constants[stmt.targets[0].id] = stmt.value.value


def _collect_defs(model: _FileModel, program: _Program) -> None:
    def add_func(node, cls_name, encloser, qualname) -> _FuncModel:
        func = _FuncModel(qualname, node, model, cls_name, encloser)
        program.functions[qualname] = func
        for child in function_body_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = add_func(child, cls_name, qualname, f"{qualname}.{child.name}")
                func.nested[child.name] = inner.qualname
        return func

    for stmt in model.tree.body:
        if isinstance(stmt, ast.ClassDef):
            cls = _ClassModel(stmt.name, model, stmt)
            model.classes[stmt.name] = cls
            program.classes[stmt.name] = cls
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{stmt.name}.{item.name}"
                    cls.methods[item.name] = qualname
                    add_func(item, stmt.name, None, qualname)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            model.module_funcs[stmt.name] = stmt.name
            add_func(stmt, None, None, stmt.name)
    program.constants.update(model.constants)


def _annotation_class(annotation: ast.expr | None, program: _Program) -> str | None:
    """The class a parameter/return annotation names, if we model it."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.strip().strip("'\"")
    else:
        name = terminal_name(annotation)
    if name is not None and name in program.classes:
        return name
    return None


def _value_type(
    value: ast.expr, func: _FuncModel | None, program: _Program,
    aliases: Aliases,
) -> _TypeInfo | None:
    """Infer the type of an assigned expression, or None if unknown."""
    if isinstance(value, ast.Call):
        canonical = aliases.resolve(value.func)
        if canonical in _LOCK_CTORS:
            return _TypeInfo("lock")
        if canonical in _CONDITION_CTORS:
            assoc = None
            if value.args:
                arg = value.args[0]
                if (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "self"
                ):
                    assoc = arg.attr
            return _TypeInfo("condition", assoc=assoc)
        if canonical in _THREADSAFE_CTORS:
            return _TypeInfo("threadsafe")
        if canonical in _DEQUE_CTORS:
            return _TypeInfo("plain")
        ctor = terminal_name(value.func)
        if isinstance(value.func, ast.Name):
            if value.func.id == "deque":
                return _TypeInfo("plain")
            if value.func.id in program.classes:
                return _TypeInfo("class", cls=value.func.id)
        # ClassName.classmethod(...) / typed_expr.method(...) with a
        # return annotation naming a modeled class.
        if isinstance(value.func, ast.Attribute) and ctor is not None:
            owner = None
            base = value.func.value
            if isinstance(base, ast.Name) and base.id in program.classes:
                owner = base.id
            elif func is not None:
                owner = _expr_class(base, func, program)
            if owner is not None:
                method = program.classes[owner].methods.get(ctor)
                if method is not None:
                    returns = program.functions[method].node.returns
                    cls = _annotation_class(returns, program)
                    if cls is not None:
                        return _TypeInfo("class", cls=cls)
        return None
    if func is not None:
        cls = _expr_class(value, func, program)
        if cls is not None:
            return _TypeInfo("class", cls=cls)
        info = _expr_info(value, func, program)
        if info is not None and info.kind in _SYNC_KINDS:
            return info
    return None


def _infer_attr_types(cls: _ClassModel, program: _Program) -> None:
    """Attribute types from ``self.x = ...`` across every method."""
    aliases = cls.file.aliases
    for method_name, qualname in cls.methods.items():
        func = program.functions[qualname]
        params = {
            arg.arg: _annotation_class(arg.annotation, program)
            for arg in func.node.args.args + func.node.args.kwonlyargs
        }
        for node in function_body_nodes(func.node):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            info = _value_type(value, None, program, aliases)
            if info is None and isinstance(value, ast.Name):
                cls_name = params.get(value.id)
                if cls_name is not None:
                    info = _TypeInfo("class", cls=cls_name)
            existing = cls.attrs.get(target.attr)
            if existing is None or (
                existing.kind == "plain" and info is not None
            ):
                cls.attrs[target.attr] = info or _PLAIN


def _infer_local_types(func: _FuncModel, program: _Program) -> None:
    """Local variable types: annotations, constructor calls, typed attrs."""
    args = func.node.args
    for arg in args.args + args.posonlyargs + args.kwonlyargs:
        func.bound.add(arg.arg)
        cls = _annotation_class(arg.annotation, program)
        if cls is not None:
            func.locals_[arg.arg] = _TypeInfo("class", cls=cls)
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            func.bound.add(extra.arg)
    # Two passes so `b = a.method()` sees `a = Ctor()` regardless of
    # textual order inside loops.
    for _ in range(2):
        for node in function_body_nodes(func.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                func.bound.add(node.id)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func.bound.add(node.name)
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name):
                continue
            info = _value_type(value, func, program, func.file.aliases)
            if info is not None and target.id not in func.locals_:
                func.locals_[target.id] = info


def _is_thread_ctor(call: ast.Call, aliases: Aliases) -> bool:
    return aliases.resolve(call.func) == "threading.Thread"


# ----------------------------------------------------------------------
# Expression → type / region resolution
# ----------------------------------------------------------------------
def _lookup_var(func: _FuncModel, name: str, program: _Program):
    """Resolve a name through the lexical function chain.

    Returns ``(defining_func, info)`` — ``info`` may be None for a bound
    but untyped variable — or None if the name is unbound in the chain.
    """
    current: _FuncModel | None = func
    while current is not None:
        if name in current.bound:
            return current, current.locals_.get(name)
        current = (
            program.functions.get(current.encloser)
            if current.encloser
            else None
        )
    return None


def _expr_info(
    expr: ast.expr, func: _FuncModel, program: _Program
) -> _TypeInfo | None:
    """The :class:`_TypeInfo` of an expression, if resolvable."""
    if isinstance(expr, ast.Name):
        if expr.id == "self" and func.cls is not None:
            return _TypeInfo("class", cls=func.cls)
        hit = _lookup_var(func, expr.id, program)
        return hit[1] if hit else None
    if isinstance(expr, ast.Attribute):
        base_cls = _expr_class(expr.value, func, program)
        if base_cls is not None:
            return program.classes[base_cls].attrs.get(expr.attr)
        return None
    if isinstance(expr, ast.Call):
        return _value_type(expr, func, program, func.file.aliases)
    return None


def _expr_class(expr: ast.expr, func: _FuncModel, program: _Program) -> str | None:
    info = _expr_info(expr, func, program)
    if info is not None and info.kind == "class":
        return info.cls
    return None


def _region_of(
    expr: ast.expr, func: _FuncModel, program: _Program
) -> tuple[tuple[str, str], _TypeInfo] | None:
    """The abstract memory region an lvalue-ish expression names.

    ``self.attr`` / ``typed.attr`` → ``(Class, attr)``; a closure
    variable of a thread-spawning encloser → ``(func:<qualname>, var)``.
    """
    if isinstance(expr, ast.Attribute):
        base_cls = _expr_class(expr.value, func, program)
        if base_cls is not None:
            info = program.classes[base_cls].attrs.get(expr.attr, _PLAIN)
            return (base_cls, expr.attr), info
        return None
    if isinstance(expr, ast.Name) and expr.id != "self":
        hit = _lookup_var(func, expr.id, program)
        if hit is None:
            return None
        definer, info = hit
        if definer.spawns:
            return (f"func:{definer.qualname}", expr.id), (info or _PLAIN)
        return None
    return None


def _lock_regions(
    expr: ast.expr, func: _FuncModel, program: _Program
) -> frozenset:
    """The lock regions acquiring ``expr`` (a ``with`` item) holds.

    A condition also holds its associated lock.  Unresolvable
    expressions whose terminal name looks lock-ish fall back to a
    name-keyed region so untyped test fixtures still participate.
    """
    target = expr.func if isinstance(expr, ast.Call) else expr
    resolved = _region_of(target, func, program)
    if resolved is not None:
        region, info = resolved
        if info.kind == "lock":
            return frozenset({region})
        if info.kind == "condition":
            regions = {region}
            if info.assoc is not None:
                regions.add((region[0], info.assoc))
            return frozenset(regions)
        return frozenset()
    name = terminal_name(target)
    if name is not None and any(
        marker in name.lower() for marker in ("lock", "cv", "cond", "mutex")
    ):
        return frozenset({("<untyped>", name)})
    return frozenset()


def _condition_region(
    expr: ast.expr, func: _FuncModel, program: _Program
) -> tuple[tuple[str, str], str | None] | None:
    """``(region, assoc-lock-attr)`` if ``expr`` is condition-typed."""
    resolved = _region_of(expr, func, program)
    if resolved is None:
        return None
    region, info = resolved
    if info.kind != "condition":
        return None
    return region, info.assoc


# ----------------------------------------------------------------------
# Thread-root discovery
# ----------------------------------------------------------------------
def _resolve_callable(
    expr: ast.expr, func: _FuncModel, program: _Program
) -> str | None:
    """The qualname a callable expression refers to, if resolvable."""
    if isinstance(expr, ast.Name):
        current: _FuncModel | None = func
        while current is not None:
            if expr.id in current.nested:
                return current.nested[expr.id]
            current = (
                program.functions.get(current.encloser)
                if current.encloser
                else None
            )
        return func.file.module_funcs.get(expr.id)
    if isinstance(expr, ast.Attribute):
        base_cls = _expr_class(expr.value, func, program)
        if base_cls is not None:
            return program.classes[base_cls].methods.get(expr.attr)
    return None


def _discover_thread_roots(program: _Program) -> dict[str, str]:
    """qualname → role for every resolvable ``Thread(target=...)``."""
    roots: dict[str, str] = {}
    for func in program.functions.values():
        for node in function_body_nodes(func.node):
            if not (isinstance(node, ast.Call) and _is_thread_ctor(node, func.file.aliases)):
                continue
            target = next(
                (kw.value for kw in node.keywords if kw.arg == "target"), None
            )
            if target is None and node.args:
                target = node.args[0]
            if target is None:
                continue
            qualname = _resolve_callable(target, func, program)
            if qualname is not None:
                short = qualname.rsplit(".", 1)[-1]
                roots[qualname] = f"thread:{short}"
    return roots


# ----------------------------------------------------------------------
# The context-sensitive lockset analysis
# ----------------------------------------------------------------------
class _Analysis:
    def __init__(self, program: _Program):
        self.program = program
        self.accesses: list[_Access] = []
        self.point_diags: dict[tuple, Diagnostic] = {}
        #: (qualname, role) → entry locksets already queued/processed.
        self.seen: dict[tuple[str, str], set[frozenset]] = {}
        self.work: list[tuple[str, str, frozenset]] = []
        self.cfg_cache: dict[str, object] = {}

    # -- worklist ------------------------------------------------------
    def enqueue(self, qualname: str, role: str, lockset: frozenset) -> None:
        func = self.program.functions.get(qualname)
        if func is None or func.name in ("__init__", "__post_init__"):
            return
        key = (qualname, role)
        locksets = self.seen.setdefault(key, set())
        if lockset in locksets:
            return
        if len(locksets) >= 6:
            # Context cap: merge every entry state into its intersection
            # (the conservative lockset) instead of exploding.
            merged = frozenset.intersection(lockset, *locksets)
            if merged in locksets:
                return
            lockset = merged
        locksets.add(lockset)
        self.work.append((qualname, role, lockset))

    def run(self, roots: Iterable[tuple[str, str]]) -> None:
        for qualname, role in roots:
            self.enqueue(qualname, role, frozenset())
        while self.work:
            qualname, role, lockset = self.work.pop()
            self._process(qualname, role, lockset)
        # Helpers reached from no root (private, called only from
        # __init__, or spawned in unresolvable ways) self-root so their
        # accesses still participate in verdicts.
        pending = [
            q for q in sorted(self.program.functions)
            if q not in {k for (k, _r) in self.seen}
        ]
        while pending:
            qualname = pending.pop(0)
            if any(k == qualname for (k, _r) in self.seen):
                continue
            func = self.program.functions[qualname]
            if func.name in ("__init__", "__post_init__"):
                continue
            owner = func.cls or Path(func.file.path).stem
            self.enqueue(qualname, f"api:{owner}", frozenset())
            while self.work:
                q, role, lockset = self.work.pop()
                self._process(q, role, lockset)

    # -- one context ---------------------------------------------------
    def _process(self, qualname: str, role: str, entry: frozenset) -> None:
        func = self.program.functions[qualname]
        cfg = self.cfg_cache.get(qualname)
        if cfg is None:
            cfg = build_cfg(func.node)
            self.cfg_cache[qualname] = cfg

        def transfer(node, state):
            if node.kind == "acquire":
                return state | _lock_regions(node.stmt, func, self.program)
            if node.kind == "release":
                return state - _lock_regions(node.stmt, func, self.program)
            return state

        in_states = must_fixpoint(cfg, entry, transfer)
        for node, state in in_states.items():
            if node.kind != "stmt" or node.stmt is None:
                continue
            self._scan_statement(node.stmt, state, func, role)

    def _scan_statement(
        self, stmt: ast.AST, lockset: frozenset, func: _FuncModel, role: str
    ) -> None:
        program = self.program
        parents: dict[ast.AST, ast.AST] = {}
        stack: list[ast.AST] = [stmt]
        nodes: list[ast.AST] = []
        while stack:
            node = stack.pop()
            nodes.append(node)
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ) and node is not stmt:
                continue  # nested scopes are their own contexts
            # Compound statements own nested statement lists that the CFG
            # visits separately; only scan this statement's headline
            # expressions.
            children = (
                _headline_children(node) if node is stmt else ast.iter_child_nodes(node)
            )
            for child in children:
                parents[child] = node
                stack.append(child)

        for node in nodes:
            if isinstance(node, ast.Call):
                self._scan_call(node, lockset, func, role)
            target = None
            if isinstance(node, ast.Attribute):
                target = node
            elif (
                isinstance(node, ast.Name)
                and node.id != "self"
                and not isinstance(parents.get(node), ast.Attribute)
            ):
                target = node
            if target is None:
                continue
            resolved = _region_of(target, func, program)
            if resolved is None:
                continue
            region, info = resolved
            if info.kind in _SYNC_KINDS:
                continue
            write, subscript = _classify_access(target, parents, func, program)
            if write is None:
                continue
            self.accesses.append(
                _Access(
                    region=region,
                    write=write,
                    subscript=subscript,
                    lockset=lockset,
                    role=role,
                    path=func.file.path,
                    line=getattr(target, "lineno", func.node.lineno),
                )
            )
            self._check_window_access(
                region, info, write, subscript, lockset, func,
                getattr(target, "lineno", func.node.lineno),
            )

    def _scan_call(
        self, call: ast.Call, lockset: frozenset, func: _FuncModel, role: str
    ) -> None:
        program = self.program
        # Condition-variable discipline.
        if isinstance(call.func, ast.Attribute):
            cond = _condition_region(call.func.value, func, program)
            if cond is not None:
                region, assoc = cond
                if call.func.attr in ("wait", "wait_for"):
                    if not _inside_while(call, func):
                        self._point(
                            "rt-cv-wait-no-predicate", Severity.WARNING,
                            f"{_region_name(region)}.wait() is not re-checked in "
                            "an enclosing while-predicate loop; spurious wakeups "
                            "and missed notifies make this wait unsound",
                            func.file, call.lineno,
                        )
                elif call.func.attr in ("notify", "notify_all"):
                    held = region in lockset or (
                        assoc is not None and (region[0], assoc) in lockset
                    )
                    if not held:
                        self._point(
                            "rt-cv-notify-unheld", Severity.ERROR,
                            f"{_region_name(region)}.{call.func.attr}() without "
                            "holding the condition's lock; CPython raises "
                            "RuntimeError('cannot notify on un-acquired lock')",
                            func.file, call.lineno,
                        )
        if _is_thread_ctor(call, func.file.aliases):
            return  # spawned targets root their own thread contexts
        callee = _resolve_call_target(call, func, program)
        if callee is not None:
            self.enqueue(callee, role, lockset)

    def _check_window_access(
        self, region, info, write, subscript, lockset, func, line
    ) -> None:
        """Ack-window rule (a): window deques only move under their CV."""
        cls = self.program.classes.get(region[0])
        if cls is None or info.kind != "plain":
            return
        if not _is_window_attr(cls, region[1]):
            return
        if not (write or subscript):
            return
        for cond_attr, assoc in cls.condition_attrs():
            if (cls.name, cond_attr) in lockset:
                return
            if assoc is not None and (cls.name, assoc) in lockset:
                return
        self._point(
            "rt-ack-window-order", Severity.ERROR,
            f"ack window {_region_name(region)} is touched without holding "
            f"{cls.name}'s condition variable; a racing ack can pop or "
            "observe the window mid-transition",
            func.file, line,
        )

    def _point(
        self, check: str, severity: Severity, message: str,
        file: _FileModel, line: int,
    ) -> None:
        key = (check, file.path, line)
        if key in self.point_diags:
            return
        if suppressed(file.lines, line, check):
            return
        self.point_diags[key] = Diagnostic(
            check, severity, message, file.path, line=line
        )


def _headline_children(stmt: ast.AST) -> list[ast.AST]:
    """A compound statement's own expressions, not its nested suites."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return []  # withitems are acquire/release pseudo-nodes
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return []
    return list(ast.iter_child_nodes(stmt))


def _classify_access(
    node: ast.AST, parents: dict, func: _FuncModel, program: _Program
) -> tuple[bool | None, bool]:
    """``(is_write, is_subscript)`` for an attribute/name occurrence.

    Returns ``(None, False)`` for occurrences that should not be
    recorded (initialization bindings, the base of a deeper attribute
    that resolves on its own, ...).
    """
    ctx = getattr(node, "ctx", None)
    parent = parents.get(node)
    if isinstance(ctx, (ast.Store, ast.Del)):
        if isinstance(node, ast.Name):
            # A plain rebind in the defining function is initialization
            # (pre-spawn); a Store in a *nested* function is a nonlocal
            # write worth recording.  _region_of only yields closure
            # regions, so distinguish by definer.
            hit = _lookup_var(func, node.id, program)
            if hit is not None and hit[0] is func:
                return None, False
        if isinstance(parent, (ast.With, ast.AsyncWith, ast.withitem)):
            return None, False
        return True, False
    # Subscript store / load on the object: self.x[i] = v / self.x[i].
    # Both are "window touches" for the ack-window rule; only the store
    # is a write for race verdicts.
    if isinstance(parent, ast.Subscript) and parent.value is node:
        return isinstance(parent.ctx, (ast.Store, ast.Del)), True
    # Mutator method call: self.x.append(...)
    if (
        isinstance(parent, ast.Attribute)
        and parent.value is node
        and parent.attr in _MUTATORS
    ):
        grand = parents.get(parent)
        if isinstance(grand, ast.Call) and grand.func is parent:
            # Method calls on class-typed values are handled by
            # propagation into the method, not as raw mutations.
            info = _expr_info(node, func, program)
            if info is None or info.kind != "class":
                return True, False
    return False, False


def _inside_while(node: ast.AST, func: _FuncModel) -> bool:
    """Is ``node`` lexically inside a ``while`` loop of this function?"""
    parents = func.file.parents
    current = parents.get(node)
    while current is not None and current is not func.node:
        if isinstance(current, ast.While):
            return True
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        current = parents.get(current)
    return False


def _resolve_call_target(
    call: ast.Call, func: _FuncModel, program: _Program
) -> str | None:
    if isinstance(call.func, ast.Name):
        qualname = _resolve_callable(call.func, func, program)
        if qualname is not None and qualname in program.functions:
            return qualname
        return None
    if isinstance(call.func, ast.Attribute):
        return _resolve_callable(call.func, func, program)
    return None


def _is_window_attr(cls: _ClassModel, attr: str) -> bool:
    """A deque-ish attr in a condition-bearing class is an ack window."""
    if not cls.condition_attrs():
        return False
    info = cls.attrs.get(attr)
    if info is None or info.kind != "plain":
        return False
    return _constructed_as_deque(cls, attr)


def _constructed_as_deque(cls: _ClassModel, attr: str) -> bool:
    for node in ast.walk(cls.node):
        target = None
        value = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr == attr
        ):
            continue
        if isinstance(value, ast.Call):
            name = terminal_name(value.func)
            if name == "deque":
                return True
    return False


def _region_name(region: tuple[str, str]) -> str:
    return f"{region[0]}.{region[1]}"


# ----------------------------------------------------------------------
# Race verdicts
# ----------------------------------------------------------------------
def _race_verdicts(
    accesses: list[_Access], files: dict[str, _FileModel]
) -> list[Diagnostic]:
    by_region: dict[tuple[str, str], list[_Access]] = {}
    for access in accesses:
        by_region.setdefault(access.region, []).append(access)
    diags: list[Diagnostic] = []
    for region in sorted(by_region):
        group = by_region[region]
        roles = {a.role for a in group}
        if len(roles) < 2 or not any(a.write for a in group):
            continue
        if region[0].startswith("func:") and not any(
            role.startswith("thread:") for role in roles
        ):
            # A closure cell is per-invocation: different API entry
            # points reaching the defining function get *different*
            # cells, so only a thread spawned by the invocation itself
            # can race on one.
            continue
        common = frozenset.intersection(*(a.lockset for a in group))
        if common:
            continue
        unlocked = sorted(
            (a for a in group if not a.lockset),
            key=lambda a: (not a.write, a.path, a.line),
        )
        if unlocked:
            anchor = unlocked[0]
            check = "rt-racy-field"
            detail = (
                "with no lock held at "
                f"{Path(anchor.path).name}:{anchor.line}"
            )
        else:
            anchor = sorted(
                group, key=lambda a: (not a.write, a.path, a.line)
            )[0]
            check = "rt-lockset-inconsistent"
            locks = sorted(
                {_region_name(r) for a in group for r in a.lockset}
            )
            detail = (
                "under locks with no common member "
                f"({', '.join(locks)})"
            )
        writers = sorted({a.role for a in group if a.write})
        readers = sorted(roles - set(writers)) or writers
        message = (
            f"shared field {_region_name(region)} is written from "
            f"{', '.join(writers)} and accessed from {', '.join(readers)} "
            f"{detail}"
        )
        model = files.get(anchor.path)
        if model is not None and suppressed(model.lines, anchor.line, check):
            continue
        diags.append(
            Diagnostic(
                check, Severity.WARNING, message, anchor.path, line=anchor.line
            )
        )
    return diags


# ----------------------------------------------------------------------
# Protocol conformance (framed pipe message state machine)
# ----------------------------------------------------------------------
#: Calls whose constant string argument produces a *request* kind.
_REQUEST_CALLS = frozenset({"send", "broadcast", "submit", "handle"})
#: Calls whose tuple argument produces a *response*.
_RESPONSE_CALLS = frozenset({"_send", "_post"})
#: Variable names whose comparisons consume request / response kinds.
_REQUEST_VARS = frozenset({"kind"})
_RESPONSE_VARS = frozenset({"status"})


def _const_str(expr: ast.expr, program: _Program) -> str | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Name):
        return program.constants.get(expr.id)
    if isinstance(expr, ast.Attribute):
        return program.constants.get(expr.attr)
    return None


class _ProtocolModel:
    def __init__(self) -> None:
        #: kind -> first (path, line) per table
        self.produced_req: dict[str, tuple[str, int]] = {}
        self.consumed_req: dict[str, tuple[str, int]] = {}
        self.produced_resp: dict[str, tuple[str, int]] = {}
        self.consumed_resp: dict[str, tuple[str, int]] = {}

    @staticmethod
    def _note(table: dict, kind: str, path: str, line: int) -> None:
        if kind not in table or (path, line) < table[kind]:
            table[kind] = (path, line)


def _extract_protocol(program: _Program) -> _ProtocolModel:
    proto = _ProtocolModel()
    for model in program.files:
        parents = model.parents
        for node in ast.walk(model.tree):
            # -- producers: (kind, payload) tuples in streaming position
            if (
                isinstance(node, ast.Tuple)
                and len(node.elts) == 2
                and _const_str(node.elts[0], program) is not None
            ):
                kind = _const_str(node.elts[0], program)
                parent = parents.get(node)
                direction = None
                if isinstance(parent, (ast.Yield, ast.Return)):
                    direction = "request"
                elif isinstance(
                    parent, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                ) and getattr(parent, "elt", None) is node:
                    direction = "request"
                elif isinstance(parent, ast.Call) and node in parent.args:
                    callee = terminal_name(parent.func)
                    if callee in _RESPONSE_CALLS:
                        direction = "response"
                if direction == "request":
                    proto._note(proto.produced_req, kind, model.path, node.lineno)
                elif direction == "response":
                    proto._note(proto.produced_resp, kind, model.path, node.lineno)
            # -- producers: send/broadcast/submit/handle with const kind
            if isinstance(node, ast.Call):
                callee = terminal_name(node.func)
                if callee in _REQUEST_CALLS:
                    for arg in node.args:
                        kind = _const_str(arg, program)
                        if kind is not None:
                            proto._note(
                                proto.produced_req, kind, model.path, node.lineno
                            )
                            break
            # -- consumers: kind == "..." / status == "...".  Only bare
            # names count: frame dispatch always unpacks the tuple into
            # locals, while `self.status`-style attribute compares are
            # unrelated state machines (admission verdicts, fault kinds).
            if isinstance(node, ast.Compare) and len(node.comparators) == 1:
                if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                    continue
                left_name = (
                    node.left.id if isinstance(node.left, ast.Name) else None
                )
                kind = _const_str(node.comparators[0], program)
                if kind is None or left_name is None:
                    # symmetric: "..." == kind
                    right = node.comparators[0]
                    if (
                        isinstance(right, ast.Name)
                        and right.id in (_REQUEST_VARS | _RESPONSE_VARS)
                    ):
                        left_name = right.id
                        kind = _const_str(node.left, program)
                if kind is None or left_name is None:
                    continue
                if left_name in _REQUEST_VARS:
                    proto._note(proto.consumed_req, kind, model.path, node.lineno)
                elif left_name in _RESPONSE_VARS:
                    proto._note(proto.consumed_resp, kind, model.path, node.lineno)
    return proto


def _protocol_verdicts(
    program: _Program, files: dict[str, _FileModel]
) -> list[Diagnostic]:
    proto = _extract_protocol(program)
    # Only meaningful when the file set actually speaks the protocol.
    if not (
        proto.produced_req or proto.consumed_req
        or proto.produced_resp or proto.consumed_resp
    ):
        return []
    diags: list[Diagnostic] = []

    def report(kind: str, site: tuple[str, int], message: str) -> None:
        path, line = site
        model = files.get(path)
        if model is not None and suppressed(
            model.lines, line, "rt-frame-unconsumed"
        ):
            return
        diags.append(
            Diagnostic(
                "rt-frame-unconsumed", Severity.WARNING, message, path, line=line
            )
        )

    for kind in sorted(set(proto.produced_req) - set(proto.consumed_req)):
        report(
            kind, proto.produced_req[kind],
            f"request kind {kind!r} is produced but no peer-side consumer "
            "matches it (no `kind == ...` dispatch); the worker would "
            "raise on it",
        )
    for kind in sorted(set(proto.consumed_req) - set(proto.produced_req)):
        report(
            kind, proto.consumed_req[kind],
            f"request kind {kind!r} has a consumer but no producer in the "
            "analyzed sources; dead protocol arm or a producer outside "
            "the audited set",
        )
    for kind in sorted(set(proto.produced_resp) - set(proto.consumed_resp)):
        report(
            kind, proto.produced_resp[kind],
            f"response kind {kind!r} is produced but never consumed "
            "(no `status == ...` match); the collector would misparse it",
        )
    for kind in sorted(set(proto.consumed_resp) - set(proto.produced_resp)):
        report(
            kind, proto.consumed_resp[kind],
            f"response kind {kind!r} has a consumer but no producer in "
            "the analyzed sources",
        )
    return diags


# ----------------------------------------------------------------------
# Ack-window lexical rules (b) and (c)
# ----------------------------------------------------------------------
def _window_regions(program: _Program) -> set[tuple[str, str]]:
    regions: set[tuple[str, str]] = set()
    for cls in program.classes.values():
        if not cls.condition_attrs():
            continue
        for attr, info in cls.attrs.items():
            if info.kind == "plain" and _constructed_as_deque(cls, attr):
                regions.add((cls.name, attr))
    return regions


def _ack_window_lexical(
    program: _Program, files: dict[str, _FileModel]
) -> list[Diagnostic]:
    windows = _window_regions(program)
    if not windows:
        return []
    diags: list[Diagnostic] = []
    seen: set[tuple[str, int]] = set()

    def report(path: str, line: int, message: str) -> None:
        if (path, line) in seen:
            return
        seen.add((path, line))
        model = files.get(path)
        if model is not None and suppressed(
            model.lines, line, "rt-ack-window-order"
        ):
            return
        diags.append(
            Diagnostic(
                "rt-ack-window-order", Severity.ERROR, message, path, line=line
            )
        )

    for func in program.functions.values():
        suites = _statement_suites(func.node)
        for suite in suites:
            send_line: int | None = None
            for stmt in suite:
                stmt_nodes = [
                    n for n in ast.walk(stmt)
                    if not isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
                ]
                has_send = any(
                    isinstance(n, ast.Call)
                    and isinstance(n.func, ast.Attribute)
                    and n.func.attr == "send"
                    for n in stmt_nodes
                )
                append_node = next(
                    (
                        n for n in stmt_nodes
                        if isinstance(n, ast.Call)
                        and isinstance(n.func, ast.Attribute)
                        and n.func.attr in ("append", "appendleft")
                        and _window_base(n.func.value, func, program, windows)
                    ),
                    None,
                )
                if append_node is not None and send_line is not None:
                    region = _window_base(
                        append_node.func.value, func, program, windows
                    )
                    report(
                        func.file.path, append_node.lineno,
                        f"ack window {_region_name(region)} is appended to "
                        f"*after* a send on line {send_line}; once the bytes "
                        "are on the pipe the ack can race back and pop a "
                        "head that was never appended — append before "
                        "sending",
                    )
                if has_send and send_line is None:
                    send_line = stmt.lineno
        # Rule (c): a window popleft must notify the condition in the
        # same function (the ack transition wakes the gated producer).
        pops = [
            n for n in function_body_nodes(func.node)
            if isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr == "popleft"
            and _window_base(n.func.value, func, program, windows)
        ]
        if pops:
            notifies = any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in ("notify", "notify_all")
                for n in function_body_nodes(func.node)
            )
            if not notifies:
                region = _window_base(
                    pops[0].func.value, func, program, windows
                )
                report(
                    func.file.path, pops[0].lineno,
                    f"ack window {_region_name(region)} pops its head "
                    "without notifying the gating condition variable; the "
                    "windowed producer stays parked until its poll timeout",
                )
    return diags


def _window_base(
    expr: ast.expr, func: _FuncModel, program: _Program,
    windows: set[tuple[str, str]],
) -> tuple[str, str] | None:
    resolved = _region_of(expr, func, program)
    if resolved is None:
        return None
    region, __ = resolved
    return region if region in windows else None


def _statement_suites(fn: ast.AST) -> list[list[ast.stmt]]:
    """Every statement list (suite) in a function, nested scopes included."""
    suites: list[list[ast.stmt]] = []
    stack: list[ast.AST] = [fn]
    while stack:
        node = stack.pop()
        for fname in ("body", "orelse", "finalbody"):
            suite = getattr(node, fname, None)
            if isinstance(suite, list) and suite and isinstance(suite[0], ast.stmt):
                suites.append(suite)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                continue
            stack.append(child)
    return suites


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_concurrency_sources(
    sources: list[tuple[str, str]]
) -> list[Diagnostic]:
    """Run the full concurrency battery over ``(path, text)`` pairs."""
    program = _build_program(sources)
    files = {model.path: model for model in program.files}

    roots: list[tuple[str, str]] = []
    thread_roots = _discover_thread_roots(program)
    for qualname, role in sorted(thread_roots.items()):
        roots.append((qualname, role))
    for qualname in sorted(program.functions):
        func = program.functions[qualname]
        if qualname in thread_roots:
            continue
        name = func.name
        if name in ("__init__", "__post_init__"):
            continue
        public = not name.startswith("_") or (
            name.startswith("__") and name.endswith("__")
        )
        if public and func.encloser is None:
            owner = func.cls or Path(func.file.path).stem
            roots.append((qualname, f"api:{owner}"))

    analysis = _Analysis(program)
    analysis.run(roots)

    diags = list(analysis.point_diags.values())
    diags += _race_verdicts(analysis.accesses, files)
    diags += _protocol_verdicts(program, files)
    diags += _ack_window_lexical(program, files)
    diags.sort(key=lambda d: (d.source, d.line or 0, d.check_id))
    return diags


def analyze_concurrency(paths: Iterable[str | Path]) -> list[Diagnostic]:
    """Analyze files and/or directories (recursing into ``*.py``)."""
    files: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    sources = [
        (str(file), file.read_text(encoding="utf-8")) for file in files
    ]
    return analyze_concurrency_sources(sources)
