"""Shared AST infrastructure for source-level analyses: aliases, noqa,
and a statement-level control-flow graph with a must-dataflow solver.

Two analyses walk the runtime sources — :mod:`repro.analysis.fork_lint`
(pattern lints) and :mod:`repro.analysis.concurrency` (interprocedural
locksets) — and both need the same groundwork: import-alias resolution
(``os.fork`` vs ``from os import fork as f``), per-line ``# noqa``
suppression, and scope-respecting AST walks.  This module is that
groundwork, plus the piece the lockset analysis is built on: a
:class:`CFG` per function and :func:`must_fixpoint`, a forward dataflow
solver whose join is set **intersection** — the meet of the lockset
lattice (a lock is held at a program point iff it is held on *every*
path reaching it).

The lattice contract matters enough to be tested on its own: ``TOP_SET``
(the "every lock" top element, represented as ``None``) is the identity
of :func:`join_must`, the meet is commutative/associative/idempotent,
and the fixpoint is independent of worklist order — the hypothesis
property tests drive :func:`solve_must` over randomly generated
branch/merge graphs and check the solution equals the brute-force
intersection over all paths.
"""

from __future__ import annotations

import ast
from typing import Callable, Hashable, Iterable, Mapping, Sequence

__all__ = [
    "Aliases",
    "CFG",
    "CFGNode",
    "TOP_SET",
    "build_cfg",
    "function_body_nodes",
    "join_must",
    "must_fixpoint",
    "solve_must",
    "suppressed",
    "terminal_name",
]


# ----------------------------------------------------------------------
# Alias / name helpers (shared with fork_lint)
# ----------------------------------------------------------------------
class Aliases:
    """Best-effort import resolution: local name -> canonical dotted name."""

    def __init__(self, tree: ast.AST) -> None:
        self.modules: dict[str, str] = {}
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        self.modules[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, func: ast.expr) -> str | None:
        """Canonical name of a call target (``os.fork``), or None."""
        if isinstance(func, ast.Name):
            return self.names.get(func.id)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            module = self.modules.get(func.value.id)
            if module is not None:
                return f"{module}.{func.attr}"
        return None


def terminal_name(expr: ast.expr) -> str | None:
    """The rightmost simple name of an expression (``a.b.c`` -> ``c``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def function_body_nodes(fn: ast.AST) -> list[ast.AST]:
    """Every AST node in ``fn``'s own body, excluding nested scopes."""
    nodes: list[ast.AST] = []
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        nodes.append(node)
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue  # nested scopes are analyzed as their own functions
        stack.extend(ast.iter_child_nodes(node))
    return nodes


def suppressed(lines: Sequence[str], lineno: int, check: str) -> bool:
    """``# noqa`` (all) or ``# noqa: id1, id2`` (listed) on the line.

    A listed waiver may carry an inline justification after the check ID
    (``# noqa: rt-racy-field - bool flag, GIL-atomic``) — everything
    after the first whitespace in each comma-separated item is the
    human-readable reason, not part of the ID.
    """
    if not 1 <= lineno <= len(lines):
        return False
    line = lines[lineno - 1]
    marker = line.find("# noqa")
    if marker < 0:
        return False
    rest = line[marker + len("# noqa"):].strip()
    if not rest.startswith(":"):
        return True
    listed = {
        item.strip().split()[0]
        for item in rest[1:].split(",")
        if item.strip()
    }
    return check in listed


# ----------------------------------------------------------------------
# Statement-level CFG
# ----------------------------------------------------------------------
class CFGNode:
    """One CFG node: a statement, or a synthetic acquire/release/join.

    ``kind`` is ``"stmt"`` for real statements (``stmt`` holds the AST
    node), ``"acquire"``/``"release"`` for the lock effects a ``with``
    block desugars into (``stmt`` holds the ``withitem``'s context
    expression), or ``"entry"``/``"exit"``/``"join"`` for the synthetic
    skeleton.
    """

    __slots__ = ("kind", "stmt", "succs", "index")

    def __init__(self, kind: str, stmt: ast.AST | None = None):
        self.kind = kind
        self.stmt = stmt
        self.succs: list[CFGNode] = []
        self.index = -1  # assigned by CFG for stable iteration order

    def link(self, succ: "CFGNode") -> None:
        if succ not in self.succs:
            self.succs.append(succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line = getattr(self.stmt, "lineno", "?")
        return f"<CFGNode {self.kind}@{line}>"


class CFG:
    """Control-flow graph of one function body.

    ``entry``/``exit`` bracket the body; ``nodes`` is every node in a
    deterministic order (used by the dataflow worklist so results do not
    depend on set iteration order).
    """

    def __init__(self, entry: CFGNode, exit_node: CFGNode, nodes: list[CFGNode]):
        self.entry = entry
        self.exit = exit_node
        self.nodes = nodes
        for index, node in enumerate(nodes):
            node.index = index


class _Builder:
    """Recursive CFG construction over a statement list."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.exit = self._new("exit")
        self._loop_stack: list[tuple[CFGNode, CFGNode]] = []  # (head, after)

    def _new(self, kind: str, stmt: ast.AST | None = None) -> CFGNode:
        node = CFGNode(kind, stmt)
        self.nodes.append(node)
        return node

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        entry = self._new("entry")
        tails = self._suite(body, [entry])
        for tail in tails:
            tail.link(self.exit)
        # Keep exit last for readability of dumps.
        self.nodes.remove(self.exit)
        self.nodes.append(self.exit)
        return CFG(entry, self.exit, self.nodes)

    def _suite(self, body: Sequence[ast.stmt], preds: list[CFGNode]) -> list[CFGNode]:
        """Wire a statement list after ``preds``; returns the live tails."""
        current = preds
        for stmt in body:
            if not current:
                break  # unreachable after return/raise/break/continue
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, preds: list[CFGNode]) -> list[CFGNode]:
        if isinstance(stmt, ast.If):
            cond = self._new("stmt", stmt)
            for p in preds:
                p.link(cond)
            then_tails = self._suite(stmt.body, [cond])
            else_tails = self._suite(stmt.orelse, [cond]) if stmt.orelse else [cond]
            return then_tails + else_tails
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._new("stmt", stmt)
            for p in preds:
                p.link(head)
            after = self._new("join", stmt)
            self._loop_stack.append((head, after))
            body_tails = self._suite(stmt.body, [head])
            self._loop_stack.pop()
            for tail in body_tails:
                tail.link(head)  # back edge
            head.link(after)  # loop may not run (or condition fails)
            else_tails = self._suite(stmt.orelse, [after]) if stmt.orelse else [after]
            return else_tails
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquires: list[CFGNode] = []
            current = preds
            for item in stmt.items:
                acq = self._new("acquire", item.context_expr)
                for p in current:
                    p.link(acq)
                acquires.append(acq)
                current = [acq]
            body_tails = self._suite(stmt.body, current)
            # Release in reverse acquisition order on normal exit.  Paths
            # that leave via return/raise keep the lock held up to the
            # statement itself, which is what lockset queries care about.
            for item in reversed(stmt.items):
                rel = self._new("release", item.context_expr)
                for tail in body_tails:
                    tail.link(rel)
                body_tails = [rel]
            return body_tails
        if isinstance(stmt, ast.Try):
            head = self._new("stmt", stmt)
            for p in preds:
                p.link(head)
            body_tails = self._suite(stmt.body, [head])
            handler_tails: list[CFGNode] = []
            for handler in stmt.handlers:
                hnode = self._new("join", handler)
                # An exception may surface at any point in the body, so
                # the handler's in-state must join the try head (the most
                # conservative predecessor for a must-analysis).
                head.link(hnode)
                handler_tails += self._suite(handler.body, [hnode])
            else_tails = (
                self._suite(stmt.orelse, body_tails) if stmt.orelse else body_tails
            )
            tails = else_tails + handler_tails
            if stmt.finalbody:
                fin = self._new("join", stmt)
                for tail in tails:
                    tail.link(fin)
                head.link(fin)  # an unhandled exception also runs finally
                return self._suite(stmt.finalbody, [fin])
            return tails
        if isinstance(stmt, (ast.Return, ast.Raise)):
            node = self._new("stmt", stmt)
            for p in preds:
                p.link(node)
            node.link(self.exit)
            return []
        if isinstance(stmt, ast.Break):
            node = self._new("stmt", stmt)
            for p in preds:
                p.link(node)
            if self._loop_stack:
                node.link(self._loop_stack[-1][1])
            else:
                node.link(self.exit)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._new("stmt", stmt)
            for p in preds:
                p.link(node)
            if self._loop_stack:
                node.link(self._loop_stack[-1][0])
            else:
                node.link(self.exit)
            return []
        node = self._new("stmt", stmt)
        for p in preds:
            p.link(node)
        return [node]


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """The statement-level CFG of one function's own body."""
    return _Builder().build(fn.body)


# ----------------------------------------------------------------------
# Must-dataflow (intersection join) over a CFG
# ----------------------------------------------------------------------
#: Top of the must lattice: "every fact holds" (the state of unvisited
#: nodes).  Represented as None so real (finite) sets never alias it.
TOP_SET = None


def join_must(a: frozenset | None, b: frozenset | None) -> frozenset | None:
    """Lattice meet: set intersection, with :data:`TOP_SET` as identity."""
    if a is TOP_SET:
        return b
    if b is TOP_SET:
        return a
    return a & b


def must_fixpoint(
    cfg: CFG,
    init: frozenset,
    transfer: Callable[[CFGNode, frozenset], frozenset],
) -> dict[CFGNode, frozenset]:
    """Forward must-analysis: IN[n] for every node, join = intersection.

    ``init`` seeds the entry node (the caller's lockset at the callsite
    for interprocedural propagation).  ``transfer(node, in_state)``
    returns the node's OUT state.  Returns the IN map; unreachable nodes
    stay at :data:`TOP_SET` and are omitted.
    """
    in_state: dict[CFGNode, frozenset | None] = {cfg.entry: init}
    work = [cfg.entry]
    while work:
        node = work.pop()
        state = in_state.get(node, TOP_SET)
        if state is TOP_SET:  # pragma: no cover - entry is always seeded
            continue
        out = transfer(node, state)
        for succ in node.succs:
            merged = join_must(in_state.get(succ, TOP_SET), out)
            if merged != in_state.get(succ, TOP_SET):
                in_state[succ] = merged
                work.append(succ)
    return {n: s for n, s in in_state.items() if s is not TOP_SET}


def solve_must(
    succs: Mapping[Hashable, Iterable[Hashable]],
    effects: Mapping[Hashable, tuple[frozenset, frozenset]],
    entry: Hashable,
    init: frozenset = frozenset(),
    order: Sequence[Hashable] | None = None,
) -> dict[Hashable, frozenset]:
    """:func:`must_fixpoint` over an explicit graph (no AST needed).

    ``effects[n] = (acquires, releases)`` is n's transfer;
    ``order`` optionally biases worklist processing — the result must
    not depend on it (the property the lattice tests pin).
    Returns IN states for reachable nodes.
    """
    rank = {n: i for i, n in enumerate(order)} if order is not None else {}
    in_state: dict[Hashable, frozenset | None] = {entry: frozenset(init)}
    work = [entry]
    while work:
        if rank:
            work.sort(key=lambda n: rank.get(n, 0), reverse=True)
        node = work.pop()
        state = in_state[node]
        acquires, releases = effects.get(node, (frozenset(), frozenset()))
        out = (state | acquires) - releases
        for succ in succs.get(node, ()):
            merged = join_must(in_state.get(succ, TOP_SET), out)
            if merged != in_state.get(succ, TOP_SET):
                in_state[succ] = merged
                work.append(succ)
    return {n: s for n, s in in_state.items() if s is not TOP_SET}
