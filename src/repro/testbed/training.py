"""Online training (Section 5.2.3, Figs. 13-14).

The control plane ingests sampled telemetry, trains the anomaly DNN in
batches, and pushes weight updates to the data plane (update delay
estimated by flow-rule installation time, as the paper does).  We record
the data plane's F1 on a held-out set after every update, producing the
F1-vs-time convergence curves:

* Fig. 13 sweeps the sampling rate (higher rates fill batches sooner);
* Fig. 14 sweeps epochs x batch size at a fixed sampling rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets import ConnectionDataset, dnn_feature_matrix
from ..ml import SGD, f1_score
from ..ml.dnn import DNN, anomaly_detection_dnn

__all__ = ["TrainingCostModel", "ConvergencePoint", "OnlineTrainer"]


@dataclass(frozen=True)
class TrainingCostModel:
    """Wall-clock cost of one update cycle.

    ``collect`` time comes from the telemetry arrival rate; training costs
    are per sample per epoch on the control-plane server; the weight-update
    push is estimated by flow-rule installation time (~3 ms), per the paper.
    """

    train_ms_per_sample_epoch: float = 0.03
    train_overhead_ms: float = 5.0
    install_ms: float = 3.0

    def update_ms(self, batch_size: int, epochs: int) -> float:
        return (
            self.train_overhead_ms
            + self.train_ms_per_sample_epoch * batch_size * epochs
            + self.install_ms
        )


@dataclass(frozen=True)
class ConvergencePoint:
    """One (time, F1) sample of a convergence curve."""

    time_s: float
    f1_percent: float
    samples_seen: int
    updates: int


@dataclass
class OnlineTrainer:
    """Simulates the telemetry -> train -> weight-push loop.

    Parameters
    ----------
    packet_rate_pps:
        Live traffic rate; telemetry arrives at ``rate * sampling``.
    train_pool / test_pool:
        Connection datasets; telemetry samples are drawn from the train
        pool (with the live label mix), F1 is evaluated on the test pool.
    """

    train_pool: ConnectionDataset
    test_pool: ConnectionDataset
    packet_rate_pps: float = 800_000.0
    cost: TrainingCostModel = field(default_factory=TrainingCostModel)
    lr: float = 0.05
    seed: int = 0

    def run(
        self,
        sampling_rate: float,
        batch_size: int = 64,
        epochs: int = 1,
        horizon_s: float = 10.0,
        max_updates: int = 400,
    ) -> list[ConvergencePoint]:
        """Run the loop until ``horizon_s``; returns the convergence curve."""
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError("sampling_rate must be in (0, 1]")
        if batch_size <= 0 or epochs <= 0:
            raise ValueError("batch_size and epochs must be positive")
        rng = np.random.default_rng(self.seed)
        telemetry_rate = self.packet_rate_pps * sampling_rate
        if telemetry_rate <= 0:
            raise ValueError("sampling rate too low for any telemetry")

        x_train = dnn_feature_matrix(self.train_pool)
        y_train = self.train_pool.labels
        x_test = dnn_feature_matrix(self.test_pool)
        y_test = self.test_pool.labels

        model: DNN = anomaly_detection_dnn(seed=self.seed)
        optimizer = SGD(lr=self.lr, momentum=0.9)
        now = 0.0
        seen = 0
        curve = [self._point(model, x_test, y_test, now, seen, 0)]
        for update in range(1, max_updates + 1):
            # Collect a batch of telemetry.
            collect_s = batch_size / telemetry_rate
            now += collect_s
            if now > horizon_s:
                break
            idx = rng.integers(0, len(x_train), size=batch_size)
            for __ in range(epochs):
                model.train_batch(x_train[idx], y_train[idx], optimizer)
            seen += batch_size
            now += self.cost.update_ms(batch_size, epochs) / 1e3
            curve.append(self._point(model, x_test, y_test, now, seen, update))
        return curve

    @staticmethod
    def _point(
        model: DNN, x_test: np.ndarray, y_test: np.ndarray, now: float, seen: int, updates: int
    ) -> ConvergencePoint:
        preds = model.predict(x_test)
        return ConvergencePoint(
            time_s=now,
            f1_percent=100.0 * f1_score(y_test, preds),
            samples_seen=seen,
            updates=updates,
        )

    @staticmethod
    def time_to_reach(curve: list[ConvergencePoint], f1_percent: float) -> float | None:
        """First time the curve crosses an F1 level (None if never)."""
        for point in curve:
            if point.f1_percent >= f1_percent:
                return point.time_s
        return None
