"""Traffic generation for the testbed (the MoonGen role).

Builds the labeled 5 Gbps packet workload of Section 5.2.2: NSL-KDD-style
connections are split into a training set (for the control plane / offline
model) and a live set, and the live set is expanded into an interleaved
packet trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import (
    ConnectionDataset,
    PacketTrace,
    dnn_feature_matrix,
    expand_to_packets,
    generate_connections,
)

__all__ = ["Workload", "build_workload"]


@dataclass
class Workload:
    """Everything one end-to-end run needs."""

    train: ConnectionDataset
    live: ConnectionDataset
    trace: PacketTrace
    offered_gbps: float

    @property
    def n_packets(self) -> int:
        return len(self.trace)

    @property
    def packet_rate_pps(self) -> float:
        if self.trace.duration <= 0:
            return 0.0
        return len(self.trace) / self.trace.duration

    @property
    def anomalous_packets(self) -> int:
        return sum(p.label for p in self.trace.packets)


def build_workload(
    n_connections: int = 6000,
    offered_gbps: float = 5.0,
    train_fraction: float = 0.5,
    mean_flow_packets: float = 24.0,
    max_packets: int | None = 150_000,
    time_dilation: float = 35.0,
    seed: int = 0,
) -> Workload:
    """Generate connections, split, and expand the live half into packets.

    ``time_dilation`` stretches the materialized trace over seconds so that
    millisecond-scale control-plane dynamics are observable (each
    materialized packet represents ``time_dilation`` real packets of the
    5 Gbps stream; see :class:`~repro.datasets.packets.PacketTrace`).
    """
    rng = np.random.default_rng(seed)
    dataset = generate_connections(n_connections, seed=seed)
    train, live = dataset.split(train_fraction, rng)
    trace = expand_to_packets(
        live,
        feature_matrix=dnn_feature_matrix(live),
        offered_gbps=offered_gbps,
        mean_flow_packets=mean_flow_packets,
        seed=seed + 1,
        max_packets=max_packets,
        time_dilation=time_dilation,
    )
    return Workload(train=train, live=live, trace=trace, offered_gbps=offered_gbps)
