"""The control-plane ML baseline (Table 8's left columns).

Models the paper's software pipeline: the switch samples telemetry packets
over a 10 GbE link into an XDP-enabled NIC; batches flow through InfluxDB
into a Keras model on a Xeon; ONOS installs flagged IPs as flow rules.

The server runs a batch loop: each iteration picks up every telemetry
packet that arrived since the last pickup (so batch size grows with load
and with its own processing time), then pays

    XDP pickup + DB write/read + ML inference + rule installation

with per-stage costs calibrated to the paper's batch-1 row (3 / 14 / 16 /
2 ms).  A packet of an anomalous flow counts as *detected* only if it
arrives after its flow's rule was installed — the gap Taurus closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.accelerators import AcceleratorModel, CPU_XEON
from ..datasets import PacketTrace

__all__ = ["StageLatencies", "BaselineResult", "ControlPlaneBaseline"]


@dataclass(frozen=True)
class StageLatencies:
    """Per-stage cost model (ms).

    The DB stage is superlinear for small batches (per-point inserts) and
    amortizes past ``db_knee`` points (bulk writes) — the behaviour behind
    the paper's 92 ms DB latency at batch 17 versus 141 ms at batch 2935.
    That knee is what destabilizes the 1e-3 sampling row: per-sample
    service time exceeds the inter-arrival time, so the backlog grows
    without bound.
    """

    xdp_base_ms: float = 3.0
    xdp_per_pkt_ms: float = 0.068
    db_base_ms: float = 14.0
    db_per_pkt_ms: float = 4.5
    db_knee: int = 60
    db_bulk_ms: float = 0.04
    ml_base_ms: float = 15.0
    install_per_rule_ms: float = 2.0
    install_growth_ms_per_krule: float = 2.0

    def db_ms(self, batch: int) -> float:
        small = min(batch, self.db_knee)
        bulk = max(0, batch - self.db_knee)
        return self.db_base_ms + self.db_per_pkt_ms * small + self.db_bulk_ms * bulk


@dataclass
class BaselineResult:
    """One sampling-rate row of Table 8."""

    sampling_rate: float
    mean_batch: float
    mean_backlog: float
    xdp_ms: float
    db_ms: float
    ml_ms: float
    install_ms: float
    total_ms: float
    detected_percent: float
    f1_percent: float
    n_batches: int
    rules_installed: int


@dataclass
class ControlPlaneBaseline:
    """Simulates the sampled control-plane loop over a packet trace."""

    model: object  # anything with .predict(features) -> {0,1}
    stages: StageLatencies = field(default_factory=StageLatencies)
    accelerator: AcceleratorModel = CPU_XEON
    ring_capacity: int = 4096
    seed: int = 0

    def run(self, trace: PacketTrace, sampling_rate: float) -> BaselineResult:
        """Replay the trace with the given telemetry sampling probability.

        Dilated traces scale the per-materialized-packet sampling
        probability by the dilation factor, preserving the *real* telemetry
        arrival rate (samples/second) of the 5 Gbps stream.
        """
        if not 0.0 < sampling_rate <= 1.0:
            raise ValueError("sampling_rate must be in (0, 1]")
        rng = np.random.default_rng(self.seed)
        packets = trace.packets
        n = len(packets)
        effective_rate = min(1.0, sampling_rate * trace.time_dilation)
        sampled_mask = rng.random(n) < effective_rate
        sampled_idx = np.flatnonzero(sampled_mask)
        times = np.array([p.time for p in packets])

        # --- server batch loop -------------------------------------------
        rule_time: dict[int, float] = {}  # flow_id -> install completion
        flagged_flows: set[int] = set()
        batch_sizes: list[int] = []
        backlogs: list[int] = []
        lat_xdp: list[float] = []
        lat_db: list[float] = []
        lat_ml: list[float] = []
        lat_install: list[float] = []
        lat_total: list[float] = []

        cursor = 0          # next sampled packet index not yet picked up
        now = 0.0
        n_rules = 0
        while cursor < len(sampled_idx):
            # Wait for at least one sample to be present.
            first_time = times[sampled_idx[cursor]]
            now = max(now, first_time)
            # Pick up everything that has arrived (bounded by the NIC ring).
            arrived = np.searchsorted(times[sampled_idx], now, side="right")
            batch_end = min(arrived, cursor + self.ring_capacity)
            batch = sampled_idx[cursor:batch_end]
            backlog = arrived - batch_end
            cursor = batch_end
            b = len(batch)
            if b == 0:
                continue

            xdp = self.stages.xdp_base_ms + self.stages.xdp_per_pkt_ms * b
            db = self.stages.db_ms(b)
            ml = self.stages.ml_base_ms + self.accelerator.compute_ms_per_item * b

            feats = np.stack([packets[i].features for i in batch])
            preds = np.asarray(self.model.predict(feats)).reshape(-1)
            new_flows = {
                packets[i].flow_id
                for i, p in zip(batch, preds)
                if p == 1 and packets[i].flow_id not in flagged_flows
            }
            install = 0.0
            for flow in sorted(new_flows):
                install += (
                    self.stages.install_per_rule_ms
                    + self.stages.install_growth_ms_per_krule * (n_rules / 1000.0)
                )
                n_rules += 1
            total = xdp + db + ml + install
            now += total / 1e3
            for flow in new_flows:
                flagged_flows.add(flow)
                rule_time[flow] = now

            batch_sizes.append(b)
            backlogs.append(int(backlog))
            lat_xdp.append(xdp)
            lat_db.append(db)
            lat_ml.append(ml)
            lat_install.append(install)
            lat_total.append(total)

        # --- score every packet against installed rules -------------------
        tp = fp = fn = tn = 0
        for packet in packets:
            marked = (
                packet.flow_id in rule_time and packet.time >= rule_time[packet.flow_id]
            )
            if packet.label and marked:
                tp += 1
            elif packet.label:
                fn += 1
            elif marked:
                fp += 1
            else:
                tn += 1
        detected = 100.0 * tp / max(tp + fn, 1)
        precision = tp / max(tp + fp, 1)
        recall = tp / max(tp + fn, 1)
        f1 = (
            100.0 * 2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return BaselineResult(
            sampling_rate=sampling_rate,
            mean_batch=float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            mean_backlog=float(np.mean(backlogs)) if backlogs else 0.0,
            xdp_ms=float(np.mean(lat_xdp)) if lat_xdp else 0.0,
            db_ms=float(np.mean(lat_db)) if lat_db else 0.0,
            ml_ms=float(np.mean(lat_ml)) if lat_ml else 0.0,
            install_ms=float(np.mean(lat_install)) if lat_install else 0.0,
            total_ms=float(np.mean(lat_total)) if lat_total else 0.0,
            detected_percent=detected,
            f1_percent=f1,
            n_batches=len(batch_sizes),
            rules_installed=n_rules,
        )
