"""The Taurus data-plane path for end-to-end runs.

Every packet is inferred *in the pipeline* at line rate, so detection needs
no rule installation and no controller round trip.  Multi-hundred-thousand-
packet traces stream through the dataflow graph's batched interpreter
(:meth:`DataflowGraph.execute_batch`) in configurable chunks: scoring runs
on the *graph path* — the same IR the fabric executes — not a shortcut
through the quantized model.  The exact-activation lowering makes the graph
bit-identical to :class:`~repro.fixpoint.quantize.QuantizedModel`, and
:meth:`TaurusDataPlane.verify_equivalence` now re-checks that over the
**full trace** per run (the old behaviour was a 32-sample spot check).

Two trace-scale entry points:

* :meth:`TaurusDataPlane.run` — the scoring shortcut: features go straight
  from the trace's cached columns into the graph interpreter.
* :meth:`TaurusDataPlane.run_switch` — the full switch model: the trace
  transits a complete :class:`~repro.pisa.TaurusPipeline` (vectorized
  parser, flow registers, MAT stages, bypass split, batched MapReduce
  scoring, decisions) via
  :meth:`~repro.pisa.TaurusPipeline.process_trace_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import PacketTrace
from ..datasets.nslkdd import DNN_FEATURES
from ..fixpoint import QuantizedModel
from ..hw.grid import MapReduceBlock
from ..mapreduce import dnn_graph
from ..pisa import DECISION_FLAG, TaurusPipeline, threshold_postprocess

__all__ = ["DataPlaneResult", "TaurusDataPlane", "DEFAULT_CHUNK_SIZE"]

#: Packets per batched pass through the graph interpreter.  Large enough to
#: amortize per-node dispatch, small enough to keep intermediate arrays in
#: cache-friendly territory.
DEFAULT_CHUNK_SIZE = 8192


@dataclass
class DataPlaneResult:
    """Per-packet scoring of a trace through the Taurus path."""

    detected_percent: float
    f1_percent: float
    added_latency_ns: float
    n_packets: int
    flagged_packets: int


def _detection_result(
    preds: np.ndarray, labels: np.ndarray, added_latency_ns: float
) -> DataPlaneResult:
    """Detection / F1 accounting shared by the scoring and switch paths."""
    tp = int(np.sum((preds == 1) & (labels == 1)))
    fp = int(np.sum((preds == 1) & (labels == 0)))
    fn = int(np.sum((preds == 0) & (labels == 1)))
    precision = tp / max(tp + fp, 1)
    recall = tp / max(tp + fn, 1)
    f1 = (
        100.0 * 2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return DataPlaneResult(
        detected_percent=100.0 * tp / max(tp + fn, 1),
        f1_percent=f1,
        added_latency_ns=added_latency_ns,
        n_packets=len(preds),
        flagged_packets=int(preds.sum()),
    )


class TaurusDataPlane:
    """The switch + MapReduce block as the testbed sees them."""

    def __init__(self, quantized: QuantizedModel, threshold: float = 0.5):
        self.quantized = quantized
        self.threshold = threshold
        self.block = MapReduceBlock(dnn_graph(quantized, name="anomaly_dnn"))
        # Exact-activation lowering: bit-identical to the quantized model,
        # used for trace-scale scoring and the equivalence check.
        self.exact_block = MapReduceBlock(
            dnn_graph(quantized, name="anomaly_dnn_exact", exact_activations=True)
        )

    def _stream_scores(
        self, feats: np.ndarray, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> np.ndarray:
        """Score features in chunks through the batched graph path."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        # Values only: go straight to the graph interpreter rather than
        # MapReduceBlock.run_batch, whose timing accounting would advance
        # the block's issue clock for what is a read-only scoring pass.
        graph = self.exact_block.graph
        scores = np.empty(len(feats), dtype=np.float64)
        for start in range(0, len(feats), chunk_size):
            chunk = feats[start : start + chunk_size]
            scores[start : start + len(chunk)] = graph.execute_batch(chunk)[:, 0]
        return scores

    def run(
        self, trace: PacketTrace, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> DataPlaneResult:
        """Score every packet through the graph path, streamed in chunks."""
        columns = trace.columns()
        scores = self._stream_scores(columns.features, chunk_size)
        preds = (scores >= self.threshold).astype(np.int64)
        return _detection_result(preds, columns.labels, self.block.latency_ns)

    # ------------------------------------------------------------------
    # Full switch model
    # ------------------------------------------------------------------
    def build_pipeline(
        self, feature_names: tuple[str, ...] = DNN_FEATURES
    ) -> TaurusPipeline:
        """A complete PISA pipeline around the exact-activation block.

        Postprocess thresholds the fabric score at this data plane's
        ``threshold`` (scalar hook + vectorized twin, so both execution
        paths stay fast and identical).
        """
        scalar_post, batch_post = threshold_postprocess(self.threshold)
        return TaurusPipeline(
            block=self.exact_block,
            feature_names=feature_names,
            postprocess=scalar_post,
            postprocess_batch=batch_post,
        )

    def run_switch(
        self, trace: PacketTrace, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> DataPlaneResult:
        """The trace through the *entire* switch model, batched.

        Unlike :meth:`run` (which shortcuts features into the graph
        interpreter), every packet transits parse -> flow registers ->
        preprocessing -> MapReduce -> postprocessing, and detection is
        scored from the pipeline's *decisions*.  A fresh pipeline is built
        per call so repeated runs see identical register state.
        """
        pipeline = self.build_pipeline()
        outcome = pipeline.process_trace_batch(trace, chunk_size=chunk_size)
        labels = trace.columns().labels[outcome.order]
        preds = (outcome.decisions == DECISION_FLAG).astype(np.int64)
        return _detection_result(preds, labels, self.block.latency_ns)

    def verify_equivalence(
        self,
        trace: PacketTrace,
        n_samples: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> bool:
        """Check fabric execution matches the vectorized path bit-for-bit.

        Uses the graph with exact activations (the quantized model's own),
        as the fast path does.  By default the **entire trace** streams
        through the batched graph interpreter and is compared against the
        quantized model; pass ``n_samples`` to restrict the check to an
        evenly spaced subsample (the legacy spot-check).
        """
        feats = trace.columns().features
        if n_samples is not None:
            step = max(1, len(feats) // n_samples)
            feats = feats[::step][:n_samples]
        via_graph = self._stream_scores(feats, chunk_size)
        via_model = self.quantized(feats).reshape(-1)
        return bool(np.array_equal(via_graph, via_model))
