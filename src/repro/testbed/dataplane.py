"""The Taurus data-plane path for end-to-end runs.

Every packet is inferred *in the pipeline* at line rate, so detection needs
no rule installation and no controller round trip.  For multi-hundred-
thousand-packet traces we score with the vectorized quantized model —
bit-identical to the dataflow graph (an equivalence the integration tests
check, and which :meth:`TaurusDataPlane.verify_equivalence` re-checks on a
subsample per run).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import PacketTrace
from ..fixpoint import QuantizedModel
from ..hw.grid import MapReduceBlock
from ..mapreduce import dnn_graph

__all__ = ["DataPlaneResult", "TaurusDataPlane"]


@dataclass
class DataPlaneResult:
    """Per-packet scoring of a trace through the Taurus path."""

    detected_percent: float
    f1_percent: float
    added_latency_ns: float
    n_packets: int
    flagged_packets: int


class TaurusDataPlane:
    """The switch + MapReduce block as the testbed sees them."""

    def __init__(self, quantized: QuantizedModel, threshold: float = 0.5):
        self.quantized = quantized
        self.threshold = threshold
        self.block = MapReduceBlock(dnn_graph(quantized, name="anomaly_dnn"))

    def run(self, trace: PacketTrace) -> DataPlaneResult:
        """Score every packet per-packet (vectorized fast path)."""
        feats = np.stack([p.features for p in trace.packets])
        labels = np.array([p.label for p in trace.packets])
        scores = self.quantized(feats).reshape(-1)
        preds = (scores >= self.threshold).astype(np.int64)
        tp = int(np.sum((preds == 1) & (labels == 1)))
        fp = int(np.sum((preds == 1) & (labels == 0)))
        fn = int(np.sum((preds == 0) & (labels == 1)))
        precision = tp / max(tp + fp, 1)
        recall = tp / max(tp + fn, 1)
        f1 = (
            100.0 * 2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        return DataPlaneResult(
            detected_percent=100.0 * tp / max(tp + fn, 1),
            f1_percent=f1,
            added_latency_ns=self.block.latency_ns,
            n_packets=len(trace.packets),
            flagged_packets=int(preds.sum()),
        )

    def verify_equivalence(self, trace: PacketTrace, n_samples: int = 32) -> bool:
        """Check fabric execution matches the vectorized path bit-for-bit.

        Uses the graph with exact activations (the quantized model's own),
        as the fast path does.
        """
        exact_block = MapReduceBlock(
            dnn_graph(self.quantized, name="anomaly_dnn_exact", exact_activations=True)
        )
        step = max(1, len(trace.packets) // n_samples)
        for packet in trace.packets[::step][:n_samples]:
            via_graph = float(
                np.atleast_1d(exact_block.graph.execute(packet.features))[0]
            )
            via_model = float(self.quantized(packet.features).reshape(-1)[0])
            if via_graph != via_model:
                return False
        return True
