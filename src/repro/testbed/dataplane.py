"""The Taurus data-plane path for end-to-end runs.

Every packet is inferred *in the pipeline* at line rate, so detection needs
no rule installation and no controller round trip.  Multi-hundred-thousand-
packet traces stream through the dataflow graph's batched interpreter
(:meth:`DataflowGraph.execute_batch`) in configurable chunks: scoring runs
on the *graph path* — the same IR the fabric executes — not a shortcut
through the quantized model.  The exact-activation lowering makes the graph
bit-identical to :class:`~repro.fixpoint.quantize.QuantizedModel`, and
:meth:`TaurusDataPlane.verify_equivalence` now re-checks that over the
**full trace** per run (the old behaviour was a 32-sample spot check).

Two trace-scale entry points:

* :meth:`TaurusDataPlane.run` — the scoring shortcut: features go straight
  from the trace's cached columns into the graph interpreter.
* :meth:`TaurusDataPlane.run_switch` — the full switch model: the trace
  transits a complete :class:`~repro.pisa.TaurusPipeline` (vectorized
  parser, flow registers, MAT stages, bypass split, batched MapReduce
  scoring, decisions) via
  :meth:`~repro.pisa.TaurusPipeline.process_trace_batch`.

Both scale out: ``TaurusDataPlane(..., shards=N)`` partitions the trace
across ``N`` parallel pipeline/block workers (flow-consistent for the
switch path, so results stay bit-identical — see
:class:`~repro.runtime.ShardedRuntime`), and ``overlap=True``
double-buffers the scoring chunk loop so chunk ``k+1`` is staged while
chunk ``k`` scores.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from ..datasets import PacketTrace
from ..datasets.nslkdd import DNN_FEATURES
from ..fixpoint import QuantizedModel
from ..hw.grid import MapReduceBlock
from ..mapreduce import dnn_graph
from ..pisa import DECISION_FLAG, TaurusPipeline, threshold_postprocess
from ..runtime import (
    FabricApp,
    MultiAppFabric,
    MultiAppResult,
    ShardedRuntime,
    prefetch,
    run_tasks,
)

__all__ = ["DataPlaneResult", "TaurusDataPlane", "DEFAULT_CHUNK_SIZE"]

#: Packets per batched pass through the graph interpreter.  Large enough to
#: amortize per-node dispatch, small enough to keep intermediate arrays in
#: cache-friendly territory.
DEFAULT_CHUNK_SIZE = 8192


@dataclass
class DataPlaneResult:
    """Per-packet scoring of a trace through the Taurus path."""

    detected_percent: float
    f1_percent: float
    added_latency_ns: float
    n_packets: int
    flagged_packets: int


def _detection_result(
    preds: np.ndarray, labels: np.ndarray, added_latency_ns: float
) -> DataPlaneResult:
    """Detection / F1 accounting shared by the scoring and switch paths."""
    tp = int(np.sum((preds == 1) & (labels == 1)))
    fp = int(np.sum((preds == 1) & (labels == 0)))
    fn = int(np.sum((preds == 0) & (labels == 1)))
    precision = tp / max(tp + fp, 1)
    recall = tp / max(tp + fn, 1)
    f1 = (
        100.0 * 2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return DataPlaneResult(
        detected_percent=100.0 * tp / max(tp + fn, 1),
        f1_percent=f1,
        added_latency_ns=added_latency_ns,
        n_packets=len(preds),
        flagged_packets=int(preds.sum()),
    )


class TaurusDataPlane:
    """The switch + MapReduce block as the testbed sees them.

    Parameters
    ----------
    quantized:
        The deployed (fix8) model; both graph lowerings derive from it.
    threshold:
        Decision threshold for the anomaly postprocess hook.
    shards:
        Parallel workers for trace-scale runs.  ``run_switch`` partitions
        by flow (register-slot-consistent, bit-identical results);
        ``run``/``verify_equivalence`` split the stateless scoring pass
        into contiguous row blocks.  ``1`` keeps the PR-2 single-pipeline
        path untouched.
    overlap:
        Double-buffer the scoring chunk loop (stage chunk ``k+1`` on a
        producer thread while chunk ``k`` scores).  Semantically a no-op.
    executor:
        Worker strategy for ``shards > 1``:
        ``auto`` | ``serial`` | ``thread`` | ``fork``.
    pool:
        Keep a **persistent worker pool** warm across calls
        (:class:`~repro.runtime.ShardPool`).  ``run``, ``run_switch``,
        ``run_multi``, and ``verify_equivalence`` then reuse long-lived
        pre-forked workers with pipelined chunk dispatch instead of
        forking-and-tearing-down per call; per-run state restore keeps
        every result bit/stat-identical to the fork-per-run path.  Use
        the data plane as a context manager (or call :meth:`close`) to
        shut pools down deterministically.
    pool_options:
        Extra keyword arguments forwarded to every
        :class:`~repro.runtime.ShardPool` this data plane builds
        (``hang_timeout``, ``max_chunk_retries``, ``faults``, ...).
        Requires ``pool=True``.
    """

    def __init__(
        self,
        quantized: QuantizedModel,
        threshold: float = 0.5,
        shards: int = 1,
        overlap: bool = True,
        executor: str = "auto",
        pool: bool = False,
        pool_options: dict | None = None,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if pool_options and not pool:
            raise ValueError("pool_options requires pool=True")
        self.quantized = quantized
        self.threshold = threshold
        self.shards = shards
        self.overlap = overlap
        self.executor = executor
        self.pool = bool(pool)
        self.pool_options = pool_options
        self._pool_runtime: ShardedRuntime | None = None
        self._pool_fabrics: dict[tuple, MultiAppFabric] = {}
        self.block = MapReduceBlock(dnn_graph(quantized, name="anomaly_dnn"))
        # Exact-activation lowering: bit-identical to the quantized model,
        # used for trace-scale scoring and the equivalence check.
        self.exact_block = MapReduceBlock(
            dnn_graph(quantized, name="anomaly_dnn_exact", exact_activations=True)
        )
        self._shard_blocks: list[MapReduceBlock] | None = None
        #: Modeled parallel-fabric drain time of the last ``run_switch``
        #: (slowest shard's II-limited block drain; the hardware-scaling
        #: twin of wall-clock throughput).
        self.last_modeled_drain_ns = 0.0
        #: The :class:`~repro.runtime.MultiAppFabric` behind the last
        #: :meth:`run_multi` call (state inspection / repeated runs).
        self.last_fabric: MultiAppFabric | None = None

    def _exact_shard_blocks(self) -> list[MapReduceBlock]:
        """One exact-activation block per shard (compiled once, cached).

        Shard 0 reuses :attr:`exact_block`, so single-shard behaviour —
        including the block's issue clock — is unchanged from PR 2.
        """
        if self._shard_blocks is None:
            self._shard_blocks = [self.exact_block] + [
                MapReduceBlock(
                    dnn_graph(
                        self.quantized,
                        name=f"anomaly_dnn_exact_shard{i}",
                        exact_activations=True,
                    )
                )
                for i in range(1, self.shards)
            ]
        return self._shard_blocks

    # ------------------------------------------------------------------
    # Persistent pool plumbing
    # ------------------------------------------------------------------
    def _pooled_runtime(self) -> ShardedRuntime:
        """The warm sharded runtime behind ``pool=True`` (built once).

        The pristine post-build pipeline state is marked inside every
        worker at spawn and rewound before each run, so warm-pool runs
        keep :meth:`run_switch`'s fresh-pipelines-per-call semantics
        without shipping register files down the pipes.
        """
        if self._pool_runtime is None:
            blocks = self._exact_shard_blocks()
            self._pool_runtime = ShardedRuntime(
                lambda shard: self.build_pipeline(block=blocks[shard]),
                shards=self.shards,
                executor=self.executor,
                pool=True,
                pool_options=self.pool_options,
            )
        return self._pool_runtime

    @property
    def pool_health(self):
        """Crash/recovery counters of the warm pools (``None`` until built).

        Returns the :class:`~repro.runtime.PoolHealth` of the sharded
        runtime behind ``run``/``run_switch``/``verify_equivalence``.
        Fabric pools built by :meth:`run_multi` report their own health
        via ``last_fabric.pool_health``.
        """
        if self._pool_runtime is None:
            return None
        return self._pool_runtime.pool_health

    def close(self) -> None:
        """Shut down every persistent pool this data plane spawned."""
        if self._pool_runtime is not None:
            self._pool_runtime.close()
            self._pool_runtime = None
        for fabric in self._pool_fabrics.values():
            fabric.close()
        self._pool_fabrics.clear()

    def __enter__(self) -> "TaurusDataPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _stream_scores(
        self, feats: np.ndarray, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> np.ndarray:
        """Score features through the batched graph path, sharded/overlapped.

        Scoring is stateless per row, so ``shards > 1`` splits the matrix
        into contiguous row blocks — one per shard block — and evaluates
        them on the executor; results concatenate back in order,
        bit-identical to the serial pass.  With ``pool=True`` the row
        blocks stream chunk-by-chunk to the warm workers instead (scoring
        is read-only, so no state restore is needed).
        """
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.pool and len(feats) > chunk_size:
            return self._stream_scores_pooled(feats, chunk_size)
        if self.shards > 1 and len(feats) > chunk_size:
            blocks = self._exact_shard_blocks()
            bounds = np.linspace(0, len(feats), num=len(blocks) + 1, dtype=np.int64)
            tasks = [
                (
                    lambda graph=block.graph, lo=int(lo), hi=int(hi): (
                        self._score_chunks(graph, feats[lo:hi], chunk_size)
                    )
                )
                for block, lo, hi in zip(blocks, bounds[:-1], bounds[1:])
            ]
            return np.concatenate(run_tasks(tasks, self.executor))
        return self._score_chunks(self.exact_block.graph, feats, chunk_size)

    def _stream_scores_pooled(
        self, feats: np.ndarray, chunk_size: int
    ) -> np.ndarray:
        """The scoring pass through the warm pool, chunk-pipelined.

        Same contiguous row-block split per worker as the task path (so
        scores concatenate back bit-identically), but each block ships as
        a stream of ``score`` requests: chunk ``k+1`` crosses the pipe
        while the worker's graph interpreter runs chunk ``k``.
        """
        runtime = self._pooled_runtime()
        bounds = np.linspace(
            0, len(feats), num=runtime.shards + 1, dtype=np.int64
        )

        def score_requests(lo: int, hi: int):
            for start in range(lo, hi, chunk_size):
                yield ("score", feats[start : min(start + chunk_size, hi)])

        streams = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            lo, hi = int(lo), int(hi)
            n_chunks = -(-(hi - lo) // chunk_size) if hi > lo else 0
            streams.append((score_requests(lo, hi), n_chunks))
        responses = runtime.pool.map_streams(streams)
        return np.concatenate(
            [np.concatenate(parts) for parts in responses if parts]
        )

    def _score_chunks(
        self, graph, feats: np.ndarray, chunk_size: int
    ) -> np.ndarray:
        """One worker's chunk loop (optionally double-buffered)."""
        # Values only: go straight to the graph interpreter rather than
        # MapReduceBlock.run_batch, whose timing accounting would advance
        # the block's issue clock for what is a read-only scoring pass.
        scores = np.empty(len(feats), dtype=np.float64)
        chunks = (
            (start, feats[start : start + chunk_size])
            for start in range(0, len(feats), chunk_size)
        )
        if self.overlap and len(feats) > chunk_size:
            # The producer side is the seam for staging work (slicing now;
            # trace generation / replay I/O in the async-replay follow-on).
            # prefetch() is a context manager: if scoring raises, the
            # producer thread is stopped deterministically rather than
            # waiting for GC to collect an abandoned iterator.
            staged = prefetch(chunks, depth=2)
        else:
            staged = contextlib.nullcontext(chunks)
        with staged as stream:
            for start, chunk in stream:
                scores[start : start + len(chunk)] = graph.execute_batch(
                    chunk
                )[:, 0]
        return scores

    def run(
        self, trace: PacketTrace, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> DataPlaneResult:
        """Score every packet through the graph path, streamed in chunks."""
        columns = trace.columns()
        scores = self._stream_scores(columns.features, chunk_size)
        preds = (scores >= self.threshold).astype(np.int64)
        return _detection_result(preds, columns.labels, self.block.latency_ns)

    # ------------------------------------------------------------------
    # Full switch model
    # ------------------------------------------------------------------
    def build_pipeline(
        self,
        feature_names: tuple[str, ...] = DNN_FEATURES,
        block: MapReduceBlock | None = None,
    ) -> TaurusPipeline:
        """A complete PISA pipeline around the exact-activation block.

        Postprocess thresholds the fabric score at this data plane's
        ``threshold`` (scalar hook + vectorized twin, so both execution
        paths stay fast and identical).  ``block`` overrides the default
        :attr:`exact_block` (the sharded runtime hands each worker its
        own block).
        """
        scalar_post, batch_post = threshold_postprocess(self.threshold)
        return TaurusPipeline(
            block=self.exact_block if block is None else block,
            feature_names=feature_names,
            postprocess=scalar_post,
            postprocess_batch=batch_post,
        )

    def build_runtime(
        self, feature_names: tuple[str, ...] = DNN_FEATURES
    ) -> ShardedRuntime:
        """A sharded runtime over fresh pipelines (one per shard block)."""
        blocks = self._exact_shard_blocks()
        return ShardedRuntime(
            lambda shard: self.build_pipeline(feature_names, block=blocks[shard]),
            shards=self.shards,
            executor=self.executor,
        )

    def run_switch(
        self, trace: PacketTrace, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> DataPlaneResult:
        """The trace through the *entire* switch model, batched.

        Unlike :meth:`run` (which shortcuts features into the graph
        interpreter), every packet transits parse -> flow registers ->
        preprocessing -> MapReduce -> postprocessing, and detection is
        scored from the pipeline's *decisions*.  Fresh pipelines are built
        per call so repeated runs see identical register state.  With
        ``shards > 1`` the trace is partitioned flow-consistently across
        the shard workers and merged bit-identically (the modeled
        parallel drain of the run lands in
        :attr:`last_modeled_drain_ns`).  With ``pool=True`` the warm
        worker pool serves the run instead: workers are restored to the
        pristine baseline first, so repeated calls still see identical
        register state — without paying a fork-and-teardown per call.
        """
        if self.pool:
            runtime = self._pooled_runtime()
            runtime.rewind_state()
        else:
            runtime = self.build_runtime()
        outcome = runtime.process_trace(trace, chunk_size=chunk_size)
        self.last_modeled_drain_ns = runtime.last_drain_ns
        return self.detection_from_outcome(trace, outcome)

    def detection_from_outcome(self, trace, outcome) -> DataPlaneResult:
        """Score a pipeline outcome's FLAG decisions against ground truth.

        The shared decisions-to-detection conversion for every surface
        that replays a labeled trace through the switch model
        (:meth:`run_switch`, the multi-app scenario, ...).
        """
        labels = trace.columns().labels[outcome.order]
        preds = (outcome.decisions == DECISION_FLAG).astype(np.int64)
        return _detection_result(preds, labels, self.block.latency_ns)

    # ------------------------------------------------------------------
    # Multi-app fabric
    # ------------------------------------------------------------------
    def anomaly_app(self, name: str = "anomaly", weight: float = 1.0) -> FabricApp:
        """This data plane's anomaly detector as a registrable fabric app."""
        return FabricApp.from_quantized_dnn(
            self.quantized, name=name, threshold=self.threshold, weight=weight
        )

    def run_multi(
        self,
        apps,
        traces,
        policy: str = "round_robin",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> MultiAppResult:
        """Several compiled apps time-multiplexed over this switch's grid.

        ``apps`` is a sequence of :class:`~repro.runtime.FabricApp` and
        ``traces`` maps app name to its trace (or is a sequence aligned
        with ``apps``).  The fabric inherits this data plane's ``shards``
        and ``executor``: with one shard, every app shares one grid and
        pays a modeled reconfiguration per program switch; with
        ``shards >= len(apps)``, each app gets affine lanes and the apps
        drain concurrently.  Per-app merged results are bit/stat-identical
        to running each app alone on its own trace slice; the modeled
        drain (including reconfiguration + interleave costs) lands in
        :attr:`last_modeled_drain_ns`.  With ``pool=True`` the fabric
        (lanes, compiled programs, *and* its lane workers) is cached per
        app set and reset to pristine state per call, so repeated
        multi-app runs skip both recompilation and per-run forking.
        """
        if self.pool:
            # Cache per app-name set so a serving loop that rebuilds its
            # FabricApp objects each call cannot accumulate one worker
            # pool per call; a name set served by *different* app objects
            # evicts (and closes) the stale fabric rather than silently
            # reusing the old programs.
            key = tuple(app.name for app in apps)
            fabric = self._pool_fabrics.get(key)
            if fabric is not None and any(
                cached is not app for cached, app in zip(fabric.apps, apps)
            ):
                fabric.close()
                fabric = None
            if fabric is None:
                fabric = MultiAppFabric(
                    apps,
                    shards=self.shards,
                    executor=self.executor,
                    chunk_size=chunk_size,
                    policy=policy,
                    pool=True,
                    pool_options=self.pool_options,
                )
                self._pool_fabrics[key] = fabric
            else:
                fabric.reset_state()
            outcome = fabric.run(traces, policy=policy, chunk_size=chunk_size)
        else:
            fabric = MultiAppFabric(
                apps,
                shards=self.shards,
                executor=self.executor,
                chunk_size=chunk_size,
                policy=policy,
            )
            outcome = fabric.run(traces)
        self.last_modeled_drain_ns = outcome.drain_ns
        self.last_fabric = fabric
        return outcome

    def verify_equivalence(
        self,
        trace: PacketTrace,
        n_samples: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> bool:
        """Check fabric execution matches the vectorized path bit-for-bit.

        Uses the graph with exact activations (the quantized model's own),
        as the fast path does.  By default the **entire trace** streams
        through the batched graph interpreter and is compared against the
        quantized model; pass ``n_samples`` to restrict the check to an
        evenly spaced subsample (the legacy spot-check).
        """
        feats = trace.columns().features
        if n_samples is not None:
            step = max(1, len(feats) // n_samples)
            feats = feats[::step][:n_samples]
        via_graph = self._stream_scores(feats, chunk_size)
        via_model = self.quantized(feats).reshape(-1)
        return bool(np.array_equal(via_graph, via_model))
