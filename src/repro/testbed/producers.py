"""Workload producers feeding the always-on inference service.

Trace replay and synthetic arrival generation become *producers*: they
slice a packet trace into chunks and submit them to an
:class:`~repro.runtime.InferenceService` on an arrival schedule, so
packet generation overlaps scoring end-to-end.  Two drive modes:

* :func:`replay_virtual` — arrivals advance a
  :class:`~repro.runtime.VirtualClock`; combined with manual
  :meth:`~repro.runtime.InferenceService.pump` cadence this is fully
  deterministic, which is what the exact-accounting property tests need.
* :func:`replay_wall` — arrivals sleep on the wall clock against a
  started (threaded) service; this is what the serving benchmark drives.

:func:`bursty_schedule` builds the seeded heavy-tailed arrival process:
Poisson background traffic with periodic burst episodes where gaps shrink
by ``burst_factor``, interleaving clients in a seeded shuffle — bounded
queues and shed/defer policies only show their worth under bursts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..datasets.packets import TraceColumns
from ..runtime import Admission, InferenceService
from ..runtime.sharded import as_trace_columns

__all__ = [
    "Arrival",
    "bursty_schedule",
    "chunk_columns",
    "replay_virtual",
    "replay_wall",
]


@dataclass(frozen=True)
class Arrival:
    """One scheduled submit: client ``client`` offers its ``chunk``-th chunk."""

    time_s: float
    client: str
    chunk: int


def chunk_columns(trace, chunk_size: int) -> list[TraceColumns]:
    """A trace as a list of request-sized columnar chunks (arrival order)."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    columns = as_trace_columns(trace)
    order = np.argsort(columns.times, kind="stable")
    if not np.array_equal(order, np.arange(columns.n)):
        columns = columns.take(order)
    return [
        columns.slice(slice(start, min(start + chunk_size, columns.n)))
        for start in range(0, columns.n, chunk_size)
    ]


def bursty_schedule(
    counts: dict[str, int],
    *,
    seed: int = 0,
    base_rate: float = 200.0,
    burst_factor: float = 10.0,
    burst_every: int = 24,
    burst_len: int = 8,
) -> list[Arrival]:
    """A seeded bursty multi-tenant arrival schedule.

    ``counts`` maps client name to how many chunks it will offer.  Gaps
    are exponential at ``base_rate`` requests/s; every ``burst_every``
    arrivals a burst episode of ``burst_len`` arrivals runs at
    ``burst_factor`` times the base rate.  Client order is a seeded
    shuffle, so the same seed replays the identical schedule.
    """
    if base_rate <= 0:
        raise ValueError("base_rate must be positive")
    if burst_factor < 1:
        raise ValueError("burst_factor must be >= 1")
    rng = np.random.default_rng(seed)
    names = [name for name, count in counts.items() for __ in range(count)]
    order = rng.permutation(len(names))
    n = len(names)
    gaps = rng.exponential(1.0 / base_rate, size=n)
    if burst_every > 0 and burst_len > 0:
        position = np.arange(n) % (burst_every + burst_len)
        gaps[position >= burst_every] /= burst_factor
    times = np.cumsum(gaps)
    next_chunk = dict.fromkeys(counts, 0)
    schedule = []
    for i in range(n):
        client = names[order[i]]
        schedule.append(Arrival(float(times[i]), client, next_chunk[client]))
        next_chunk[client] += 1
    return schedule


def replay_virtual(
    service: InferenceService,
    schedule: list[Arrival],
    chunks: dict[str, list[TraceColumns]],
    clock,
    *,
    pump_every: int | None = None,
    deadline_s: float | None = None,
) -> list[Admission]:
    """Replay ``schedule`` in virtual time; returns one verdict per arrival.

    ``clock`` is the service's :class:`~repro.runtime.VirtualClock`; it is
    advanced to each arrival's timestamp before submitting.  With
    ``pump_every=k`` the service pumps one request after every ``k``-th
    arrival (else the caller pumps); either way the run is deterministic.
    """
    admissions: list[Admission] = []
    for i, arrival in enumerate(schedule):
        clock.advance_to(arrival.time_s)
        admissions.append(
            service.submit(
                arrival.client,
                chunks[arrival.client][arrival.chunk],
                deadline_s=deadline_s,
            )
        )
        if pump_every and (i + 1) % pump_every == 0:
            service.pump(max_requests=1)
    return admissions


def replay_wall(
    service: InferenceService,
    schedule: list[Arrival],
    chunks: dict[str, list[TraceColumns]],
    *,
    deadline_s: float | None = None,
) -> list[Admission]:
    """Replay ``schedule`` against the wall clock (service must be started).

    Sleeps until each arrival's offset from the replay start, then
    submits; the service's dispatcher thread drains concurrently, so this
    measures real producer/consumer overlap.
    """
    admissions: list[Admission] = []
    start = time.monotonic()
    for arrival in schedule:
        delay = arrival.time_s - (time.monotonic() - start)
        if delay > 0:
            time.sleep(delay)
        admissions.append(
            service.submit(
                arrival.client,
                chunks[arrival.client][arrival.chunk],
                deadline_s=deadline_s,
            )
        )
    return admissions
