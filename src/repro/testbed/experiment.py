"""End-to-end experiment harness (Table 8).

Ties together the workload generator, the trained/quantized anomaly model,
the control-plane baseline, and the Taurus data plane, producing the
paper's comparison rows for each sampling rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datasets import dnn_feature_matrix
from ..fixpoint import quantize_model
from ..ml.dnn import DNN
from .control import BaselineResult, ControlPlaneBaseline, StageLatencies
from .dataplane import DataPlaneResult, TaurusDataPlane
from .traffic import Workload, build_workload

__all__ = [
    "EndToEndRow",
    "EndToEndExperiment",
    "MultiAppRow",
    "DEFAULT_SAMPLING_RATES",
]

DEFAULT_SAMPLING_RATES = (1e-5, 1e-4, 1e-3, 1e-2)


@dataclass(frozen=True)
class EndToEndRow:
    """One Table 8 row: baseline vs Taurus at a sampling rate."""

    sampling_rate: float
    baseline: BaselineResult
    taurus: DataPlaneResult

    @property
    def detection_advantage(self) -> float:
        """How many times more anomalous packets Taurus catches."""
        return self.taurus.detected_percent / max(self.baseline.detected_percent, 1e-6)


@dataclass
class EndToEndExperiment:
    """Builds the testbed once, then sweeps sampling rates.

    The Taurus data plane scores every packet regardless of the baseline's
    sampling rate, so its result is sampling-rate-independent: one streamed
    pass is computed lazily and reused for every row of the sweep (see
    :meth:`taurus_result`).  With ``full_switch`` (the default) that pass
    runs the **entire** batched PISA pipeline — vectorized parse, flow
    registers, MAT stages, bypass split, batched MapReduce scoring,
    decisions — rather than the feature-to-graph scoring shortcut.
    """

    workload: Workload
    model: DNN
    dataplane: TaurusDataPlane
    stages: StageLatencies = field(default_factory=StageLatencies)
    seed: int = 0
    full_switch: bool = True
    _taurus: DataPlaneResult | None = field(default=None, repr=False)

    @classmethod
    def build(
        cls,
        n_connections: int = 6000,
        max_packets: int | None = 150_000,
        epochs: int = 25,
        seed: int = 0,
    ) -> "EndToEndExperiment":
        """Generate the workload and train/quantize the shared model."""
        from ..apps.anomaly import train_anomaly_dnn

        workload = build_workload(
            n_connections=n_connections, max_packets=max_packets, seed=seed
        )
        model = train_anomaly_dnn(workload.train, epochs=epochs, seed=seed)
        calibration = dnn_feature_matrix(workload.train)[:512]
        quantized = quantize_model(model, calibration)
        return cls(
            workload=workload,
            model=model,
            dataplane=TaurusDataPlane(quantized),
            seed=seed,
        )

    def taurus_result(self) -> DataPlaneResult:
        """The (sampling-rate-independent) Taurus pass, computed once."""
        if self._taurus is None:
            run = self.dataplane.run_switch if self.full_switch else self.dataplane.run
            self._taurus = run(self.workload.trace)
        return self._taurus

    def run_row(self, sampling_rate: float) -> EndToEndRow:
        baseline = ControlPlaneBaseline(
            model=self.model, stages=self.stages, seed=self.seed
        ).run(self.workload.trace, sampling_rate)
        return EndToEndRow(
            sampling_rate=sampling_rate,
            baseline=baseline,
            taurus=self.taurus_result(),
        )

    def run(self, sampling_rates=DEFAULT_SAMPLING_RATES) -> list[EndToEndRow]:
        return [self.run_row(rate) for rate in sampling_rates]

    def verify_dataplane(self) -> bool:
        """Full-trace fabric-vs-vectorized equivalence on this workload."""
        return self.dataplane.verify_equivalence(self.workload.trace)

    # ------------------------------------------------------------------
    # Multi-app scenario: two models sharing one switch
    # ------------------------------------------------------------------
    def run_multi_app(
        self,
        policy: str = "round_robin",
        n_congestion_packets: int = 2000,
        lstm_sequences: int = 300,
        lstm_epochs: int = 3,
    ) -> "MultiAppRow":
        """Anomaly DNN + congestion LSTM time-multiplexed on one switch.

        The realistic deployment shape (Homunculus / Pegasus serve several
        models per device): the experiment's anomaly detector keeps
        scoring its workload trace while an Indigo-style congestion
        controller decides cwnd actions for its own packet stream, both
        from the same MapReduce grid.  Returns per-app quality plus the
        fabric's modeled drain and reconfiguration bill.
        """
        from ..datasets import CongestionTraceConfig, congestion_packet_trace
        from ..ml import indigo_lstm
        from ..datasets.congestion import generate_congestion_traces

        cfg = CongestionTraceConfig()
        sequences, actions = generate_congestion_traces(
            lstm_sequences, cfg, seed=self.seed
        )
        lstm = indigo_lstm(input_size=sequences.shape[-1], seed=self.seed)
        lstm.fit(sequences, actions, epochs=lstm_epochs)
        # Distinct seed stream: the eval windows must not replay the
        # training sequences (generate_congestion_traces is deterministic
        # per seed), or the agreement metric scores on training data.
        congestion_trace = congestion_packet_trace(
            n_congestion_packets, cfg, seed=self.seed + 7919
        )

        from ..runtime import FabricApp

        apps = [
            self.dataplane.anomaly_app(),
            FabricApp.from_lstm(
                lstm, window_steps=cfg.window_steps, name="congestion"
            ),
        ]
        outcome = self.dataplane.run_multi(
            apps,
            {
                "anomaly": self.workload.trace,
                "congestion": congestion_trace,
            },
            policy=policy,
        )
        detection = self.dataplane.detection_from_outcome(
            self.workload.trace, outcome.results["anomaly"]
        )
        congestion = outcome.results["congestion"]
        oracle = congestion_trace.columns().labels[congestion.order]
        agreement = float(np.mean(congestion.decisions == oracle))
        return MultiAppRow(
            policy=policy,
            anomaly=detection,
            congestion_action_agreement=agreement,
            drain_ns=outcome.drain_ns,
            reconfigurations=outcome.reconfigurations,
            reconfig_ns=outcome.reconfig_ns,
            n_packets=outcome.n_packets,
        )


@dataclass(frozen=True)
class MultiAppRow:
    """Two apps sharing one switch: per-app quality + fabric accounting."""

    policy: str
    anomaly: DataPlaneResult
    congestion_action_agreement: float
    drain_ns: float
    reconfigurations: int
    reconfig_ns: float
    n_packets: int


def format_table8(rows: list[EndToEndRow]) -> str:
    """Render rows in the paper's Table 8 layout."""
    lines = [
        "sampling  batch  backlog  | xdp_ms db_ms ml_ms inst_ms all_ms "
        "| det_base%% det_taurus%% | f1_base f1_taurus"
    ]
    for row in rows:
        b = row.baseline
        t = row.taurus
        lines.append(
            f"{row.sampling_rate:8.0e}  {b.mean_batch:5.0f}  {b.mean_backlog:7.0f} | "
            f"{b.xdp_ms:6.1f} {b.db_ms:5.1f} {b.ml_ms:5.1f} {b.install_ms:7.1f} "
            f"{b.total_ms:6.1f} | {b.detected_percent:9.3f} {t.detected_percent:11.1f} | "
            f"{b.f1_percent:7.3f} {t.f1_percent:9.1f}"
        )
    return "\n".join(lines)
