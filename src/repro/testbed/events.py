"""A minimal discrete-event simulation core.

The end-to-end testbed (Section 5.2) interleaves traffic arrival, server
batch processing, and rule installation; this event queue keeps their
clocks consistent.  Events fire in (time, priority, insertion) order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventQueue"]


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventQueue:
    """Time-ordered callback scheduler."""

    def __init__(self):
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self.now = 0.0
        self.events_run = 0

    def schedule(self, time: float, callback: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, _Event(time, priority, next(self._seq), callback))

    def schedule_in(self, delay: float, callback: Callable[[], None], priority: int = 0) -> None:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.now + delay, callback, priority)

    def run(self, until: float | None = None) -> float:
        """Run events until the queue drains or ``until`` is reached."""
        while self._heap:
            if until is not None and self._heap[0].time > until:
                self.now = until
                return self.now
            event = heapq.heappop(self._heap)
            self.now = event.time
            self.events_run += 1
            event.callback()
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def __len__(self) -> int:
        return len(self._heap)
