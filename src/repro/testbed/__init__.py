"""End-to-end testbed: traffic, control-plane baseline, Taurus data plane,
online training, and the Table 8 harness."""

from .control import BaselineResult, ControlPlaneBaseline, StageLatencies
from .dataplane import DataPlaneResult, TaurusDataPlane
from .events import EventQueue
from .experiment import (
    DEFAULT_SAMPLING_RATES,
    EndToEndExperiment,
    EndToEndRow,
    MultiAppRow,
    format_table8,
)
from .traffic import Workload, build_workload
from .training import ConvergencePoint, OnlineTrainer, TrainingCostModel

__all__ = [
    "BaselineResult",
    "ControlPlaneBaseline",
    "StageLatencies",
    "DataPlaneResult",
    "TaurusDataPlane",
    "EventQueue",
    "DEFAULT_SAMPLING_RATES",
    "EndToEndExperiment",
    "EndToEndRow",
    "MultiAppRow",
    "format_table8",
    "Workload",
    "build_workload",
    "ConvergencePoint",
    "OnlineTrainer",
    "TrainingCostModel",
]
