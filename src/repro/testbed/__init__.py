"""End-to-end testbed: traffic, control-plane baseline, Taurus data plane,
online training, and the Table 8 harness."""

from .control import BaselineResult, ControlPlaneBaseline, StageLatencies
from .dataplane import DataPlaneResult, TaurusDataPlane
from .events import EventQueue
from .experiment import (
    DEFAULT_SAMPLING_RATES,
    EndToEndExperiment,
    EndToEndRow,
    MultiAppRow,
    format_table8,
)
from .producers import (
    Arrival,
    bursty_schedule,
    chunk_columns,
    replay_virtual,
    replay_wall,
)
from .traffic import Workload, build_workload
from .training import ConvergencePoint, OnlineTrainer, TrainingCostModel

__all__ = [
    "BaselineResult",
    "ControlPlaneBaseline",
    "StageLatencies",
    "DataPlaneResult",
    "TaurusDataPlane",
    "EventQueue",
    "DEFAULT_SAMPLING_RATES",
    "EndToEndExperiment",
    "EndToEndRow",
    "MultiAppRow",
    "format_table8",
    "Arrival",
    "bursty_schedule",
    "chunk_columns",
    "replay_virtual",
    "replay_wall",
    "Workload",
    "build_workload",
    "ConvergencePoint",
    "OnlineTrainer",
    "TrainingCostModel",
]
