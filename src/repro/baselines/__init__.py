"""Baselines: control-plane accelerators, MAT-only ML, inference caching."""

from .accelerators import ACCELERATORS, CPU_XEON, GPU_T4, TPU_V2, AcceleratorModel
from .controlplane import InferenceCache, RuleInstallModel, weights_vs_rules_bytes
from .mat_ml import (
    BinarizedDNN,
    MatCost,
    iisy_mat_cost,
    n2net_mat_cost,
    taurus_iso_area_mats,
)

__all__ = [
    "ACCELERATORS",
    "CPU_XEON",
    "GPU_T4",
    "TPU_V2",
    "AcceleratorModel",
    "InferenceCache",
    "RuleInstallModel",
    "weights_vs_rules_bytes",
    "BinarizedDNN",
    "MatCost",
    "iisy_mat_cost",
    "n2net_mat_cost",
    "taurus_iso_area_mats",
]
