"""MAT-only in-network ML baselines (Section 5.1.4).

Two published schemes map ML onto match-action tables:

* **N2Net** (Siracusano & Bifulco) runs binary neural networks: each layer
  needs ~12 MATs for the XNOR / popcount / sign pipeline, so the 4-layer
  anomaly DNN costs ~48 MATs — against Taurus's iso-area ~3.
* **IIsy** (Xiong & Zilberman) maps classical models: an SVM consumes 8
  MATs (one per pairwise hyperplane vote) and KMeans 2.

We provide both the *cost model* the paper quotes and a *functional* BNN
that actually runs on our MAT pipeline primitives, demonstrating the
approach works but is imprecise (binary weights) and expensive (tables per
layer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.params import SwitchChipParams
from ..hw.area import grid_area_mm2

__all__ = [
    "MatCost",
    "n2net_mat_cost",
    "iisy_mat_cost",
    "taurus_iso_area_mats",
    "BinarizedDNN",
]


@dataclass(frozen=True)
class MatCost:
    """MAT-stage consumption of one in-network ML mapping."""

    scheme: str
    model: str
    n_mats: int

    def area_mm2(self, chip: SwitchChipParams | None = None) -> float:
        chip = chip or SwitchChipParams()
        return self.n_mats * chip.mat_area_mm2


def n2net_mat_cost(n_layers: int, mats_per_layer: int = 12) -> MatCost:
    """N2Net: "requires at least 12 MATs per layer"."""
    if n_layers <= 0:
        raise ValueError("n_layers must be positive")
    return MatCost("N2Net", f"BNN-{n_layers}L", n_layers * mats_per_layer)


def iisy_mat_cost(model: str) -> MatCost:
    """IIsy: published table budgets for non-NN models."""
    budgets = {"svm": 8, "kmeans": 2, "decision_tree": 4, "naive_bayes": 5}
    if model not in budgets:
        raise ValueError(f"IIsy model must be one of {sorted(budgets)}")
    return MatCost("IIsy", model, budgets[model])


def taurus_iso_area_mats(chip: SwitchChipParams | None = None) -> float:
    """MAT-equivalents of one MapReduce block ("3 MATs per pipeline")."""
    chip = chip or SwitchChipParams()
    return grid_area_mm2() / chip.mat_area_mm2


class BinarizedDNN:
    """A functional BNN: binarize a trained float DNN, N2Net-style.

    Weights become {-1, +1}; each layer is XNOR + popcount + sign, which is
    what a MAT pipeline can express with exact-match tables.  Accuracy drops
    versus the float/fix8 model — the imprecision the paper cites.
    """

    def __init__(self, dnn):
        self.signs = [np.sign(layer.weights) + (layer.weights == 0) for layer in dnn.layers]
        self.thresholds = [-layer.bias for layer in dnn.layers]
        self.output = dnn.output
        self.decision_threshold = 0.0

    def calibrate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Pick the output threshold maximizing training F1.

        Binarization destroys the float model's score scale, so the
        decision threshold must be re-fit (N2Net does the same when
        quantizing the output layer).
        """
        scores = self.forward(x).reshape(-1)
        y = np.asarray(y)
        best_f1, best_thr = 0.0, 0.0
        for thr in np.quantile(scores, np.linspace(0.02, 0.98, 49)):
            pred = (scores >= thr).astype(np.int64)
            tp = int(np.sum((pred == 1) & (y == 1)))
            fp = int(np.sum((pred == 1) & (y == 0)))
            fn = int(np.sum((pred == 0) & (y == 1)))
            if tp == 0:
                continue
            f1 = 2 * tp / (2 * tp + fp + fn)
            if f1 > best_f1:
                best_f1, best_thr = f1, float(thr)
        self.decision_threshold = best_thr
        return best_f1

    @property
    def n_layers(self) -> int:
        return len(self.signs)

    def mat_cost(self) -> MatCost:
        return n2net_mat_cost(self.n_layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Binary forward pass: inputs binarized by sign at each layer."""
        out = np.sign(np.atleast_2d(np.asarray(x, dtype=np.float64)))
        out[out == 0] = 1.0
        for i, (signs, thresh) in enumerate(zip(self.signs, self.thresholds)):
            acc = out @ signs.T  # XNOR-popcount == dot of {-1,+1} vectors
            last = i == len(self.signs) - 1
            if last:
                return acc - thresh
            out = np.sign(acc - thresh)
            out[out == 0] = 1.0
        raise AssertionError("unreachable")  # pragma: no cover

    def predict(self, x: np.ndarray, threshold: float | None = None) -> np.ndarray:
        scores = self.forward(x)
        if self.output == "sigmoid":
            thr = self.decision_threshold if threshold is None else threshold
            return (scores.reshape(-1) >= thr).astype(np.int64)
        return scores.argmax(axis=-1)
