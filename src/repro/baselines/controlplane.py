"""Control-plane ML baselines: result caching and rule installation.

Section 2.2: instead of per-packet inference, MATs "could cache inference
results computed in the control plane", with previously-unseen feature
combinations punted to the controller and the answers installed as flow
rules.  This module models that scheme's two failure modes:

* **cache misses** on dynamic inputs (every new flow pays a controller RTT
  plus inference plus installation), and
* **memory blow-up**: caching decisions for the whole input space costs
  vastly more switch memory than the model's weights (Section 3's
  12 MB-vs-5.6 KB, a ~2135x ratio).

Rule-installation latency starts at ~3 ms and grows with occupancy
(Section 2.2's TCAM measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .accelerators import AcceleratorModel, CPU_XEON

__all__ = ["RuleInstallModel", "InferenceCache", "weights_vs_rules_bytes"]


@dataclass(frozen=True)
class RuleInstallModel:
    """Flow-rule installation latency as a function of table occupancy.

    ``latency_ms = base + slope * occupancy`` — "rule installation time
    (3 ms for TCAMs) would limit caching, especially because it increases
    with flow-table size".
    """

    base_ms: float = 3.0
    slope_ms_per_kentry: float = 0.8

    def latency_ms(self, table_occupancy: int) -> float:
        if table_occupancy < 0:
            raise ValueError("occupancy must be non-negative")
        return self.base_ms + self.slope_ms_per_kentry * (table_occupancy / 1000.0)


@dataclass
class InferenceCache:
    """An MAT-backed cache of control-plane inference results.

    Keys are the (quantized) feature tuples; a miss simulates the full
    controller round trip: RTT + accelerator inference + rule install.
    """

    accelerator: AcceleratorModel = CPU_XEON
    install: RuleInstallModel = field(default_factory=RuleInstallModel)
    controller_rtt_ms: float = 0.05  # >= 10 us each way, Section 1
    capacity: int = 100_000
    rules: dict[tuple, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def _key(self, features: np.ndarray, decimals: int = 2) -> tuple:
        return tuple(np.round(np.asarray(features, dtype=np.float64), decimals))

    def lookup(self, features: np.ndarray) -> tuple[int | None, float]:
        """Data-plane lookup: (cached decision | None, latency_ms)."""
        key = self._key(features)
        if key in self.rules:
            self.hits += 1
            return self.rules[key], 0.0  # line-rate MAT hit
        self.misses += 1
        return None, 0.0

    def miss_penalty_ms(self) -> float:
        """Latency of resolving one miss through the controller."""
        return (
            self.controller_rtt_ms
            + self.accelerator.latency_ms(1)
            + self.install.latency_ms(len(self.rules))
        )

    def fill(self, features: np.ndarray, decision: int) -> float:
        """Install the controller's answer; returns the install delay (ms)."""
        penalty = self.miss_penalty_ms()
        if len(self.rules) >= self.capacity:
            self.rules.pop(next(iter(self.rules)))
            self.evictions += 1
        self.rules[self._key(features)] = int(decision)
        return penalty

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def weights_vs_rules_bytes(
    model_weight_bytes: int,
    n_distinct_inputs: int,
    rule_bytes: int = 64,
) -> tuple[int, int, float]:
    """The Section 3 memory comparison.

    Matching a model's behaviour with flow rules needs one rule per
    distinct input (the full dataset); weights need only the parameters.
    Returns (weight_bytes, rule_bytes_total, ratio).  The paper's example:
    12 MB of rules vs 5.6 KB of weights, a 2135x reduction.
    """
    if model_weight_bytes <= 0 or n_distinct_inputs <= 0:
        raise ValueError("sizes must be positive")
    total_rules = n_distinct_inputs * rule_bytes
    return model_weight_bytes, total_rules, total_rules / model_weight_bytes
