"""Control-plane inference accelerators (Table 2).

The paper benchmarks unbatched anomaly-DNN inference on a vectorized Xeon,
a Tesla T4, and a Cloud TPU v2-8, finding 0.67 / 1.15 / 3.51 ms — dominated
by framework and transfer setup, not math.  We model each accelerator with
the standard decomposition

    latency(batch) = framework_overhead + transfer(batch) + compute(batch)

with constants calibrated so batch-1 latency reproduces Table 2.  The
model also exposes the batching trade-off Table 8's baseline depends on:
bigger batches amortize setup but delay the first packet.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AcceleratorModel", "CPU_XEON", "GPU_T4", "TPU_V2", "ACCELERATORS"]


@dataclass(frozen=True)
class AcceleratorModel:
    """Latency model for one inference backend.

    Parameters (all milliseconds unless noted):

    framework_overhead_ms:
        Per-invocation software cost (TensorFlow session dispatch, kernel
        launch/queueing) — the dominant term for tiny models.
    transfer_ms_per_item:
        Per-sample host<->device movement (0 for the CPU).
    compute_ms_per_item:
        Per-sample math once the batch is resident; matrix-matrix
        efficiency makes this tiny for the anomaly DNN.
    """

    name: str
    framework_overhead_ms: float
    transfer_ms_per_item: float
    compute_ms_per_item: float

    def latency_ms(self, batch_size: int = 1) -> float:
        """End-to-end latency for one batch."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        return (
            self.framework_overhead_ms
            + self.transfer_ms_per_item * batch_size
            + self.compute_ms_per_item * batch_size
        )

    def per_item_ms(self, batch_size: int) -> float:
        """Amortized per-sample latency (the batching win)."""
        return self.latency_ms(batch_size) / batch_size

    def first_item_latency_ms(self, batch_size: int) -> float:
        """Latency seen by the batch's first element — it "must wait for
        the entire batch to finish" (Section 5.2.2)."""
        return self.latency_ms(batch_size)


#: Calibrated so latency_ms(1) matches Table 2.
CPU_XEON = AcceleratorModel(
    name="Broadwell Xeon",
    framework_overhead_ms=0.655,
    transfer_ms_per_item=0.0,
    compute_ms_per_item=0.015,
)
GPU_T4 = AcceleratorModel(
    name="Tesla T4 GPU",
    framework_overhead_ms=1.10,
    transfer_ms_per_item=0.045,
    compute_ms_per_item=0.005,
)
TPU_V2 = AcceleratorModel(
    name="Cloud TPU v2-8",
    framework_overhead_ms=3.40,
    transfer_ms_per_item=0.105,
    compute_ms_per_item=0.005,
)

ACCELERATORS = {model.name: model for model in (CPU_XEON, GPU_T4, TPU_V2)}
