"""Chip-level accounting: Taurus blocks grafted onto a commercial switch.

Reproduces the Table 5 overhead columns: each of the switch's four
reconfigurable pipelines gains one MapReduce block; overheads are reported
against the per-pipeline share of a 500 mm^2 / 270 W die.  Also provides the
iso-area view (how many MATs one block displaces) used by the Section 5.1.4
comparison against MAT-only ML.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.pipeline import CompiledDesign
from .area import grid_area_mm2
from .params import SwitchChipParams
from .power import grid_power_mw

__all__ = ["TaurusChip", "OverheadReport"]


@dataclass(frozen=True)
class OverheadReport:
    """Area/power overhead of a design relative to the host switch."""

    name: str
    area_mm2: float
    area_percent: float
    power_mw: float
    power_percent: float
    latency_ns: float | None = None
    throughput_gpkt_s: float | None = None


@dataclass
class TaurusChip:
    """A PISA switch ASIC with one MapReduce block per pipeline."""

    switch: SwitchChipParams = field(default_factory=SwitchChipParams)

    # ------------------------------------------------------------------
    # Whole-grid overheads (the "12x10 Grid" row of Table 5)
    # ------------------------------------------------------------------
    def grid_overheads(self) -> OverheadReport:
        area = grid_area_mm2()
        power = grid_power_mw()
        return OverheadReport(
            name="12x10 Grid",
            area_mm2=area,
            area_percent=100.0 * area / self.switch.pipeline_area_mm2,
            power_mw=power,
            power_percent=100.0 * power / (self.switch.pipeline_power_w * 1e3),
        )

    # ------------------------------------------------------------------
    # Per-application overheads (the model rows of Table 5)
    # ------------------------------------------------------------------
    def design_overheads(self, design: CompiledDesign) -> OverheadReport:
        """Overheads counting "only the number of CUs and MUs performing
        useful work", with unused CUs disabled."""
        return OverheadReport(
            name=design.name,
            area_mm2=design.area_mm2,
            area_percent=100.0 * design.area_mm2 / self.switch.pipeline_area_mm2,
            power_mw=design.power_mw,
            power_percent=100.0 * design.power_mw / (self.switch.pipeline_power_w * 1e3),
            latency_ns=design.latency_ns,
            throughput_gpkt_s=design.throughput_gpkt_s,
        )

    # ------------------------------------------------------------------
    # Iso-area trade-off (Sections 5.1.1 and 5.1.4)
    # ------------------------------------------------------------------
    def iso_area_mats(self, area_mm2: float | None = None) -> float:
        """MAT stages displaced by the given area (default: one grid).

        The paper: "an iso-area design would lose 3 MATs per pipeline."
        """
        area = grid_area_mm2() if area_mm2 is None else area_mm2
        return area / self.switch.mat_area_mm2

    def added_die_area_percent(self, blocks: int | None = None) -> float:
        """Total die growth with one block per pipeline (paper: 3.8%)."""
        blocks = self.switch.n_pipelines if blocks is None else blocks
        return 100.0 * blocks * grid_area_mm2() / self.switch.die_area_mm2

    def switch_latency_overhead_percent(
        self, design: CompiledDesign, switch_latency_ns: float = 1000.0
    ) -> float:
        """Added latency vs a typical 1 us datacenter switch (Section 5.1.2:
        KMeans/SVM/DNN add 6.1% / 8.3% / 22.1%)."""
        return 100.0 * design.latency_ns / switch_latency_ns
