"""Hardware models: CU/MU/grid simulators and the area/power/ASIC model."""

from .area import cu_area_mm2, fu_area_um2, grid_area_mm2, grid_composition, mu_area_mm2
from .asic import OverheadReport, TaurusChip
from .cu import ComputeUnit, CUResult
from .grid import BatchInferenceResult, InferenceResult, MapReduceBlock
from .mu import BankConflictError, MemoryUnit
from .params import (
    CLOCK_GHZ,
    CUGeometry,
    DEFAULT_CU_GEOMETRY,
    GRID_COLS,
    GRID_CU_TO_MU_RATIO,
    GRID_ROWS,
    HOP_CYCLES,
    LINE_RATE_GPKT_S,
    MU_ACCESS_CYCLES,
    PHV_INTERFACE_CYCLES,
    SwitchChipParams,
)
from .power import cu_power_mw, fu_power_uw, grid_power_mw, mu_power_mw

__all__ = [
    "cu_area_mm2",
    "fu_area_um2",
    "grid_area_mm2",
    "grid_composition",
    "mu_area_mm2",
    "OverheadReport",
    "TaurusChip",
    "ComputeUnit",
    "CUResult",
    "BatchInferenceResult",
    "InferenceResult",
    "MapReduceBlock",
    "BankConflictError",
    "MemoryUnit",
    "CLOCK_GHZ",
    "CUGeometry",
    "DEFAULT_CU_GEOMETRY",
    "GRID_COLS",
    "GRID_CU_TO_MU_RATIO",
    "GRID_ROWS",
    "HOP_CYCLES",
    "LINE_RATE_GPKT_S",
    "MU_ACCESS_CYCLES",
    "PHV_INTERFACE_CYCLES",
    "SwitchChipParams",
    "cu_power_mw",
    "fu_power_uw",
    "grid_power_mw",
    "mu_power_mw",
]
