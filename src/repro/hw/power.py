"""Power model for CUs, MUs, and the MapReduce grid.

Reproduces Table 4 (per-FU power by precision at 10% switching), Fig. 9b
(per-FU power vs lanes/stages), and Table 5's app/grid power overheads.
"""

from __future__ import annotations

from .params import (
    CU_CONTROL_POWER_UW,
    CUGeometry,
    DEFAULT_CU_GEOMETRY,
    FU_CORE_POWER_UW,
    GRID_AVG_ACTIVITY,
    GRID_COLS,
    GRID_CU_TO_MU_RATIO,
    GRID_ROWS,
    MU_ACCESS_POWER_UW,
)
from .area import grid_composition

__all__ = ["fu_power_uw", "cu_power_mw", "mu_power_mw", "grid_power_mw"]


def fu_power_uw(geometry: CUGeometry) -> float:
    """Per-FU power (uW) at 10% switching activity, control amortized
    across the full lanes x stages FU array."""
    core = FU_CORE_POWER_UW[geometry.precision]
    control = CU_CONTROL_POWER_UW[geometry.precision]
    return core + control / geometry.n_fus


def cu_power_mw(geometry: CUGeometry = DEFAULT_CU_GEOMETRY, activity: float = 1.0) -> float:
    """Power of one fully-mapped CU (mW); ``activity`` scales the datapath.

    Table 5's per-application rows count every mapped FU as active
    (activity=1.0 relative to the 10%-switching baseline of Table 4).
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError("activity must be in [0, 1]")
    return fu_power_uw(geometry) * geometry.n_fus * activity / 1e3


def mu_power_mw(active: bool = True) -> float:
    """Power of one MU (mW); idle banks are clock-gated to ~0."""
    return MU_ACCESS_POWER_UW / 1e3 if active else 0.0


def grid_power_mw(
    rows: int = GRID_ROWS,
    cols: int = GRID_COLS,
    cu_to_mu_ratio: int = GRID_CU_TO_MU_RATIO,
    geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
    activity: float = GRID_AVG_ACTIVITY,
) -> float:
    """Whole-block power (mW) at the fabric's average activity factor.

    The paper's 2.8% chip-power overhead corresponds to ~1.9 W per block,
    i.e. the fabric's FUs average ~72% of their fully-mapped activity
    across the benchmark suite (unused CUs are disabled).
    """
    n_cus, n_mus = grid_composition(rows, cols, cu_to_mu_ratio)
    return n_cus * cu_power_mw(geometry, activity) + n_mus * mu_power_mw()
