"""Area model for CUs, MUs, and the MapReduce grid.

Reproduces Table 4 (per-FU area by precision), Fig. 9a (per-FU area vs
lanes/stages), and the Section 5.1.1 block-level figures (0.044 mm^2 CU,
0.029 mm^2 MU, 4.8 mm^2 12x10 grid).
"""

from __future__ import annotations

from .params import (
    CU_CONTROL_AREA_UM2,
    CU_ROUTING_AREA_PER_LANE_UM2,
    CUGeometry,
    DEFAULT_CU_GEOMETRY,
    DEFAULT_MU_BANKS,
    DEFAULT_MU_ENTRIES,
    FU_CORE_AREA_UM2,
    GRID_COLS,
    GRID_CU_TO_MU_RATIO,
    GRID_ROWS,
    MU_ROUTING_AREA_UM2,
    SRAM_BANK_PERIPHERY_UM2,
    SRAM_BIT_CELL_UM2,
)

__all__ = [
    "fu_area_um2",
    "cu_area_mm2",
    "mu_area_mm2",
    "grid_area_mm2",
    "grid_composition",
]

_UM2_PER_MM2 = 1e6


def fu_area_um2(geometry: CUGeometry) -> float:
    """Synthesized area of one functional unit (um^2), control amortized.

    Per-FU cost falls with lane and stage count because the CU's single
    control path is shared by every FU in the lanes x stages array (the
    SIMD-vs-VLIW argument of Section 2.1.1).
    """
    core = FU_CORE_AREA_UM2[geometry.precision]
    control = CU_CONTROL_AREA_UM2[geometry.precision]
    return core + control / geometry.n_fus


def cu_area_mm2(geometry: CUGeometry = DEFAULT_CU_GEOMETRY) -> float:
    """Full CU area (mm^2) including its interconnect share."""
    datapath = fu_area_um2(geometry) * geometry.n_fus
    routing = CU_ROUTING_AREA_PER_LANE_UM2 * geometry.lanes
    return (datapath + routing) / _UM2_PER_MM2


def mu_area_mm2(
    banks: int = DEFAULT_MU_BANKS,
    entries: int = DEFAULT_MU_ENTRIES,
    width_bits: int = 8,
) -> float:
    """Banked-SRAM MU area (mm^2) including its interconnect share."""
    if banks <= 0 or entries <= 0 or width_bits <= 0:
        raise ValueError("MU dimensions must be positive")
    bits = banks * entries * width_bits
    cells = bits * SRAM_BIT_CELL_UM2
    periphery = banks * SRAM_BANK_PERIPHERY_UM2
    return (cells + periphery + MU_ROUTING_AREA_UM2) / _UM2_PER_MM2


def grid_composition(
    rows: int = GRID_ROWS,
    cols: int = GRID_COLS,
    cu_to_mu_ratio: int = GRID_CU_TO_MU_RATIO,
) -> tuple[int, int]:
    """(n_cus, n_mus) for a checkerboard grid with the given CU:MU ratio."""
    if rows <= 0 or cols <= 0 or cu_to_mu_ratio <= 0:
        raise ValueError("grid parameters must be positive")
    total = rows * cols
    n_mus = total // (cu_to_mu_ratio + 1)
    return total - n_mus, n_mus


def grid_area_mm2(
    rows: int = GRID_ROWS,
    cols: int = GRID_COLS,
    cu_to_mu_ratio: int = GRID_CU_TO_MU_RATIO,
    geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
) -> float:
    """Area of a full MapReduce block (paper: 4.8 mm^2 for 12x10, 3:1)."""
    n_cus, n_mus = grid_composition(rows, cols, cu_to_mu_ratio)
    return n_cus * cu_area_mm2(geometry) + n_mus * mu_area_mm2()
