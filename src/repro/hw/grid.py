"""The MapReduce block: a configured grid executing packets.

:class:`MapReduceBlock` is the piece of hardware Fig. 7 shows — the
checkerboard CU/MU fabric behind a PHV FIFO interface.  It is configured
once with a compiled dataflow graph (the CGRA analogy of loading a bitstream)
and then processes one feature vector per packet, returning both the
numeric result and the cycle-accounted latency.  Throughput honours the
design's initiation interval: a partially-unrolled or folded program accepts
a packet only every ``II`` cycles.

For trace-scale runs, :meth:`MapReduceBlock.run_batch` pushes a ``(B, D)``
block of packets through the graph's vectorized interpreter in one pass and
accounts the batch the way the pipelined fabric would drain it: the first
result appears after the design latency, and each subsequent packet
completes one initiation interval later.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compiler.pipeline import CompiledDesign, compile_graph
from ..mapreduce.ir import DataflowGraph
from .params import CLOCK_GHZ, CUGeometry, DEFAULT_CU_GEOMETRY

__all__ = [
    "MapReduceBlock",
    "InferenceResult",
    "BatchInferenceResult",
    "RECONFIG_WORDS_PER_CYCLE",
    "RECONFIG_BASE_CYCLES",
]

#: Configuration words the control path streams into the grid per cycle
#: when swapping programs (the CGRA analogue of partial-bitstream load
#: bandwidth).
RECONFIG_WORDS_PER_CYCLE = 16

#: Fixed handshake cost of a program swap: quiesce the PHV FIFO, drain
#: in-flight packets, and flip the double-buffered configuration plane.
RECONFIG_BASE_CYCLES = 64

#: Compiled designs cached per block.  Sized for a realistic multi-app
#: working set; beyond it the oldest non-resident entry is evicted, so a
#: control loop that re-lowers a fresh graph per weight update cannot
#: grow the cache (and the graphs it pins) without bound.
DESIGN_CACHE_LIMIT = 16


@dataclass(frozen=True)
class InferenceResult:
    """One packet's trip through the fabric."""

    value: np.ndarray
    latency_ns: float
    accepted_at_cycle: int


@dataclass(frozen=True)
class BatchInferenceResult:
    """A batch of packets drained through the pipelined fabric.

    ``duration_ns`` covers first-packet issue to last-packet completion
    (``latency + (B - 1) * II`` cycles), so ``throughput_pkt_s`` converges
    to the design's II-limited steady-state rate as the batch grows.
    ``accepted_at_cycle`` anchors the batch on the block's issue clock
    (a fabric still draining earlier work accepts the batch later), so
    callers can recover absolute completion times across interleaved
    :meth:`MapReduceBlock.process`/:meth:`MapReduceBlock.run_batch` calls.
    """

    values: np.ndarray          # (B, out_width)
    batch_size: int
    latency_ns: float           # first result (design latency + any stall)
    duration_ns: float          # first issue -> last completion
    initiation_interval: int
    accepted_at_cycle: int      # issue cycle of the batch's first packet

    @property
    def throughput_pkt_s(self) -> float:
        """II-accounted modelled drain rate for this batch."""
        if self.duration_ns <= 0:
            return 0.0
        return self.batch_size / (self.duration_ns * 1e-9)


class MapReduceBlock:
    """A MapReduce block configured with one compiled program.

    Parameters
    ----------
    graph:
        The dataflow program (from a :mod:`repro.mapreduce.frontend`
        lowering).
    geometry:
        CU shape; defaults to the paper's 16x4 fix8 configuration.
    cu_budget / mu_budget:
        Grid capacity; defaults to the 12x10, 3:1 block (90 CUs, 30 MUs).
    """

    def __init__(
        self,
        graph: DataflowGraph,
        geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
        cu_budget: int = 90,
        mu_budget: int = 30,
    ):
        self.graph = graph
        self.geometry = geometry
        self.cu_budget = cu_budget
        self.mu_budget = mu_budget
        self.design: CompiledDesign = compile_graph(
            graph, geometry, cu_budget=cu_budget, mu_budget=mu_budget
        )
        # Compiled designs per program, so time-multiplexed swaps between
        # a working set of apps do not recompile on every switch.  Values
        # keep a strong reference to their graph: cache keys are object
        # identities, and a dead graph's id could be recycled.
        self._design_cache: dict[int, tuple[DataflowGraph, CompiledDesign]] = {
            id(graph): (graph, self.design)
        }
        self._next_issue_cycle = 0
        self.packets_processed = 0
        #: Program swaps performed by :meth:`reconfigure`.
        self.reconfigurations = 0
        #: Issue-clock cycles spent on accounted swaps (``account=True``).
        self.reconfig_cycles = 0

    # ------------------------------------------------------------------
    # Per-packet execution
    # ------------------------------------------------------------------
    def process(self, features: np.ndarray, at_cycle: int | None = None) -> InferenceResult:
        """Run one packet through the fabric.

        ``at_cycle`` is the arrival cycle; issue honours the initiation
        interval (arrivals during a busy interval stall in the PHV FIFO).
        """
        arrival = self._next_issue_cycle if at_cycle is None else at_cycle
        issue = max(arrival, self._next_issue_cycle)
        self._next_issue_cycle = issue + self.design.initiation_interval
        self.packets_processed += 1
        value = self.graph.execute(np.asarray(features, dtype=np.float64))
        stall_ns = (issue - arrival) / CLOCK_GHZ
        return InferenceResult(
            value=value,
            latency_ns=self.design.latency_ns + stall_ns,
            accepted_at_cycle=issue,
        )

    def process_batch(self, features: np.ndarray) -> np.ndarray:
        """Vector-of-packets convenience (results only, no timing)."""
        return self.graph.execute_batch(np.atleast_2d(features))

    def run_batch(
        self, features: np.ndarray, at_cycle: int | None = None
    ) -> BatchInferenceResult:
        """Stream a ``(B, D)`` block of packets through the fabric.

        Results come from the vectorized graph interpreter (bit-identical
        to per-packet :meth:`process`); timing models the pipelined drain:
        the batch issues at the block's next free issue slot (or stalls
        behind earlier work, as :meth:`process` does), the first packet
        completes one design latency later, and every subsequent packet
        one initiation interval after its predecessor.
        """
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        values = self.graph.execute_batch(features)
        batch = features.shape[0]
        ii = self.design.initiation_interval
        arrival = self._next_issue_cycle if at_cycle is None else at_cycle
        issue = max(arrival, self._next_issue_cycle)
        self._next_issue_cycle = issue + batch * ii
        self.packets_processed += batch
        # Same convention as process(): a stalled arrival pays the wait in
        # latency_ns, so arrival + latency_ns is time-to-first-result for
        # both APIs.
        stall_ns = (issue - arrival) / CLOCK_GHZ
        duration_cycles = self.design.latency_cycles + (batch - 1) * ii
        return BatchInferenceResult(
            values=values,
            batch_size=batch,
            latency_ns=self.design.latency_ns + stall_ns,
            duration_ns=duration_cycles / CLOCK_GHZ,
            initiation_interval=ii,
            accepted_at_cycle=issue,
        )

    # ------------------------------------------------------------------
    # Reconfiguration (program swaps without a new bitstream)
    # ------------------------------------------------------------------
    def reconfig_cycles_for(self, graph: DataflowGraph) -> int:
        """Issue-clock cost of swapping ``graph`` onto this grid.

        A swap quiesces the block (:data:`RECONFIG_BASE_CYCLES`) and
        streams the program's configuration words in at
        :data:`RECONFIG_WORDS_PER_CYCLE` per cycle.
        """
        words = graph.config_words()
        return RECONFIG_BASE_CYCLES + -(-words // RECONFIG_WORDS_PER_CYCLE)

    def reconfigure(self, graph: DataflowGraph, account: bool = False) -> None:
        """Install a new program (or the same program with new weights).

        Weight updates from the control plane re-lower the model and swap
        the graph atomically between packets — the data plane never stalls
        (Section 5.2.3 measures the end-to-end update delay separately).

        With ``account=True`` the swap is charged to the block's issue
        clock (:meth:`reconfig_cycles_for`): this is how the multi-app
        fabric's time-multiplexed program switches show up in modeled
        drain.  Compiled designs are cached per program object and always
        honour the budgets the block was built with, so a block folded
        onto the 12x10 grid stays folded after a swap.
        """
        cached = self._design_cache.get(id(graph))
        if cached is None or cached[0] is not graph:
            design = compile_graph(
                graph,
                self.geometry,
                cu_budget=self.cu_budget,
                mu_budget=self.mu_budget,
            )
            while len(self._design_cache) >= DESIGN_CACHE_LIMIT:
                oldest = next(
                    key
                    for key, (g, __) in self._design_cache.items()
                    if g is not self.graph
                )
                del self._design_cache[oldest]
            self._design_cache[id(graph)] = (graph, design)
        else:
            design = cached[1]
        if account:
            cycles = self.reconfig_cycles_for(graph)
            self._next_issue_cycle += cycles
            self.reconfig_cycles += cycles
        self.reconfigurations += 1
        self.graph = graph
        self.design = design

    @property
    def latency_ns(self) -> float:
        return self.design.latency_ns

    @property
    def throughput_gpkt_s(self) -> float:
        return self.design.throughput_gpkt_s
