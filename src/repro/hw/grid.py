"""The MapReduce block: a configured grid executing packets.

:class:`MapReduceBlock` is the piece of hardware Fig. 7 shows — the
checkerboard CU/MU fabric behind a PHV FIFO interface.  It is configured
once with a compiled dataflow graph (the CGRA analogy of loading a bitstream)
and then processes one feature vector per packet, returning both the
numeric result and the cycle-accounted latency.  Throughput honours the
design's initiation interval: a partially-unrolled or folded program accepts
a packet only every ``II`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compiler.pipeline import CompiledDesign, compile_graph
from ..mapreduce.ir import DataflowGraph
from .params import CLOCK_GHZ, CUGeometry, DEFAULT_CU_GEOMETRY

__all__ = ["MapReduceBlock", "InferenceResult"]


@dataclass(frozen=True)
class InferenceResult:
    """One packet's trip through the fabric."""

    value: np.ndarray
    latency_ns: float
    accepted_at_cycle: int


class MapReduceBlock:
    """A MapReduce block configured with one compiled program.

    Parameters
    ----------
    graph:
        The dataflow program (from a :mod:`repro.mapreduce.frontend`
        lowering).
    geometry:
        CU shape; defaults to the paper's 16x4 fix8 configuration.
    cu_budget / mu_budget:
        Grid capacity; defaults to the 12x10, 3:1 block (90 CUs, 30 MUs).
    """

    def __init__(
        self,
        graph: DataflowGraph,
        geometry: CUGeometry = DEFAULT_CU_GEOMETRY,
        cu_budget: int = 90,
        mu_budget: int = 30,
    ):
        self.graph = graph
        self.geometry = geometry
        self.design: CompiledDesign = compile_graph(
            graph, geometry, cu_budget=cu_budget, mu_budget=mu_budget
        )
        self._next_issue_cycle = 0
        self.packets_processed = 0

    # ------------------------------------------------------------------
    # Per-packet execution
    # ------------------------------------------------------------------
    def process(self, features: np.ndarray, at_cycle: int | None = None) -> InferenceResult:
        """Run one packet through the fabric.

        ``at_cycle`` is the arrival cycle; issue honours the initiation
        interval (arrivals during a busy interval stall in the PHV FIFO).
        """
        arrival = self._next_issue_cycle if at_cycle is None else at_cycle
        issue = max(arrival, self._next_issue_cycle)
        self._next_issue_cycle = issue + self.design.initiation_interval
        self.packets_processed += 1
        value = self.graph.execute(np.asarray(features, dtype=np.float64))
        stall_ns = (issue - arrival) / CLOCK_GHZ
        return InferenceResult(
            value=value,
            latency_ns=self.design.latency_ns + stall_ns,
            accepted_at_cycle=issue,
        )

    def process_batch(self, features: np.ndarray) -> np.ndarray:
        """Vector-of-packets convenience (results only, no timing)."""
        return np.asarray(
            [self.graph.execute(row) for row in np.atleast_2d(features)]
        )

    # ------------------------------------------------------------------
    # Reconfiguration (weight updates without a new bitstream)
    # ------------------------------------------------------------------
    def reconfigure(self, graph: DataflowGraph) -> None:
        """Install a new program (or the same program with new weights).

        Weight updates from the control plane re-lower the model and swap
        the graph atomically between packets — the data plane never stalls
        (Section 5.2.3 measures the end-to-end update delay separately).
        """
        design = compile_graph(
            graph,
            self.geometry,
            cu_budget=90 if self.design.fold_factor else None,
        )
        self.graph = graph
        self.design = design

    @property
    def latency_ns(self) -> float:
        return self.design.latency_ns

    @property
    def throughput_gpkt_s(self) -> float:
        return self.design.throughput_gpkt_s
