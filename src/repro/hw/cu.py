"""Cycle-level functional model of one Compute Unit.

A CU is a grid of functional units organized in ``lanes`` x ``stages``
(Fig. 8): within a stage all lanes execute the same instruction (SIMD), and
pipeline registers sit between stages so every FU is busy every cycle.  The
final stage doubles as a tree-reduction network ("one cycle for map and four
cycles for reduce" for 16 lanes).

This model executes map chains and reductions on
:class:`~repro.fixpoint.tensor.FixTensor` values with per-cycle accounting,
and is the ground truth the analytical compiler's cost model is tested
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fixpoint import FIX8, FixTensor
from ..mapreduce.ops import MAP_OPS, REDUCE_OPS, reduce_tree_depth
from .params import CUGeometry, DEFAULT_CU_GEOMETRY

__all__ = ["ComputeUnit", "CUResult"]


@dataclass(frozen=True)
class CUResult:
    """Output of one CU invocation plus its cycle cost."""

    value: FixTensor
    cycles: int
    stages_used: int


@dataclass
class ComputeUnit:
    """One CU instance executing a configured map chain and/or reduction.

    The configuration is static (a CGRA reconfigures between programs, not
    between packets): ``map_chain`` is a list of (op_name, operand) pairs
    where ``operand`` is a broadcast constant, a per-lane constant vector,
    or ``None`` for unary ops; ``reduce_op`` optionally follows the chain.
    """

    geometry: CUGeometry = DEFAULT_CU_GEOMETRY
    map_chain: list[tuple[str, np.ndarray | float | None]] = field(default_factory=list)
    reduce_op: str | None = None
    invocations: int = 0
    busy_cycles: int = 0

    def __post_init__(self) -> None:
        if len(self.map_chain) > self.geometry.stages:
            raise ValueError(
                f"map chain of {len(self.map_chain)} ops exceeds "
                f"{self.geometry.stages} stages; split the pattern first"
            )
        for op_name, __ in self.map_chain:
            if op_name not in MAP_OPS:
                raise ValueError(f"unknown map op {op_name!r}")
        if self.reduce_op is not None and self.reduce_op not in REDUCE_OPS:
            raise ValueError(f"unknown reduce op {self.reduce_op!r}")

    def execute(self, vector: FixTensor) -> CUResult:
        """Run one input vector through the configured pipeline."""
        if vector.size > self.geometry.lanes:
            raise ValueError(
                f"vector of width {vector.size} exceeds {self.geometry.lanes} lanes"
            )
        value = vector
        stages_used = 0
        for op_name, operand in self.map_chain:
            op = MAP_OPS[op_name]
            stages_used += 1
            if op.arity == 1:
                value = FixTensor.from_float(
                    value.fmt.roundtrip(op.fn(value.to_float())), value.fmt
                )
            else:
                rhs = (
                    operand.to_float()
                    if isinstance(operand, FixTensor)
                    else np.asarray(operand, dtype=np.float64)
                )
                value = FixTensor.from_float(
                    value.fmt.roundtrip(op.fn(value.to_float(), rhs)), value.fmt
                )
        cycles = max(stages_used, 1)
        if self.reduce_op is not None:
            reducer = REDUCE_OPS[self.reduce_op]
            reduced = reducer.fn(value.to_float())
            value = FixTensor.from_float(np.atleast_1d(reduced), value.fmt)
            cycles = stages_used + 1 + reduce_tree_depth(vector.size, self.geometry.lanes)
        self.invocations += 1
        self.busy_cycles += cycles
        return CUResult(value=value, cycles=cycles, stages_used=stages_used)

    def dot(self, vector: FixTensor, weights: FixTensor) -> CUResult:
        """The perceptron primitive: map multiply + tree-reduce add.

        "When evaluating a 16-input perceptron, the CU uses the first stage
        to map 16 parallel multiplications; then ... reduce[s] the
        multiplied values into a single unit."
        """
        if vector.size != weights.size:
            raise ValueError("weight/vector width mismatch")
        if vector.size > self.geometry.lanes:
            raise ValueError("dot wider than lanes; split into partials")
        result = vector.dot(weights)
        cycles = 1 + reduce_tree_depth(vector.size, self.geometry.lanes)
        self.invocations += 1
        self.busy_cycles += cycles
        return CUResult(
            value=FixTensor.from_raw(np.atleast_1d(result.raw), vector.fmt),
            cycles=cycles,
            stages_used=1,
        )

    @property
    def utilization(self) -> float:
        """Busy fraction assuming one invocation per packet at line rate."""
        if self.invocations == 0:
            return 0.0
        return min(1.0, self.busy_cycles / max(self.invocations, 1) / self.geometry.stages)


def _default_fmt():  # pragma: no cover - convenience for interactive use
    return FIX8
