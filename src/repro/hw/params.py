"""Technology and microarchitecture parameters for the Taurus ASIC model.

The paper synthesizes the MapReduce block with FreePDK15 (a predictive 15 nm
standard-cell library) and CACTI 7.0 for SRAM estimates.  We cannot run
synthesis here, so this module encodes an analytical model *calibrated to
every anchor the paper publishes*:

====================  =======================================  ============
Anchor                Paper value                              Section
====================  =======================================  ============
per-FU area (16x4)    fix8 670 / fix16 1338 / fix32 2949 um^2  Table 4
per-FU power (16x4)   fix8 456 / fix16 887 / fix32 2341 uW     Table 4
CU (16x4, routed)     0.044 mm^2 (~680 um^2/FU avg)            5.1.1
MU (16x1024, routed)  0.029 mm^2                               5.1.1
Grid (12x10, 3:1)     4.8 mm^2                                 5.1.1
Switch chip           500 mm^2, 4 pipelines x 32 MATs, 270 W   Table 5
Block overhead        +3.8% area, +2.8% power                  Table 5
Clock                 1 GHz (1 GPkt/s line rate)               Section 4
Latency costs         map 1 cyc, 16-lane reduce 4 cyc,         5.1.3
                      ~5 cyc per data movement
====================  =======================================  ============

The lane/stage scaling curves (Fig. 9) follow a standard
core-plus-amortized-control decomposition: per-FU cost = FU datapath core +
CU control overhead shared across ``lanes * stages`` FUs.  Constants are fit
so the (16, 4) point reproduces Table 4 exactly and the 4..32-lane trend
matches Fig. 9's range.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CLOCK_GHZ",
    "LINE_RATE_GPKT_S",
    "FU_CORE_AREA_UM2",
    "CU_CONTROL_AREA_UM2",
    "FU_CORE_POWER_UW",
    "CU_CONTROL_POWER_UW",
    "CU_ROUTING_AREA_PER_LANE_UM2",
    "SRAM_BIT_CELL_UM2",
    "SRAM_BANK_PERIPHERY_UM2",
    "MU_ROUTING_AREA_UM2",
    "MU_ACCESS_POWER_UW",
    "HOP_CYCLES",
    "PHV_INTERFACE_CYCLES",
    "MU_ACCESS_CYCLES",
    "SwitchChipParams",
    "CUGeometry",
    "DEFAULT_CU_GEOMETRY",
    "DEFAULT_MU_BANKS",
    "DEFAULT_MU_ENTRIES",
    "GRID_ROWS",
    "GRID_COLS",
    "GRID_CU_TO_MU_RATIO",
    "GRID_AVG_ACTIVITY",
]

# ----------------------------------------------------------------------
# Clocking (Section 4: pipelining guarantees a 1 GHz clock)
# ----------------------------------------------------------------------
CLOCK_GHZ = 1.0
LINE_RATE_GPKT_S = 1.0

# ----------------------------------------------------------------------
# FU datapath + CU control area model (um^2), keyed by precision name.
#
#   per_fu_area(prec, lanes, stages) =
#       FU_CORE_AREA[prec] + CU_CONTROL_AREA[prec] / (lanes * stages)
#
# The CU has ONE control path shared by all lanes x stages FUs — the
# SIMD-vs-VLIW argument of Section 2.1.1 and why "theoretically, more
# stages are more efficient" (Section 5.1.1).  Fit: fix8 at 16x4 =
# 390 + 17920/64 = 670 (Table 4); the 4-lane point lands at ~1510 um^2,
# matching Fig. 9a's ~1.5k ceiling, and 32 lanes at ~530, matching its
# floor.  fix16/fix32 scale the multiplier-dominated core quadratically-
# ish: x2.0 and x4.4 overall (Table 4 ratios).
# ----------------------------------------------------------------------
FU_CORE_AREA_UM2 = {"fix8": 390.0, "fix16": 779.0, "fix32": 1716.0}
CU_CONTROL_AREA_UM2 = {"fix8": 17920.0, "fix16": 35776.0, "fix32": 78912.0}

# Power model (uW per FU at 10% switching activity), same decomposition.
# fix8 at 16x4 = 330 + 8064/64 = 456 (Table 4).
FU_CORE_POWER_UW = {"fix8": 330.0, "fix16": 642.0, "fix32": 1694.0}
CU_CONTROL_POWER_UW = {"fix8": 8064.0, "fix16": 15680.0, "fix32": 41408.0}

# Static interconnect share attached to each CU: the difference between the
# paper's routed CU (0.044 mm^2) and 64 synthesized FUs (64 x 670 um^2).
CU_ROUTING_AREA_PER_LANE_UM2 = 70.0

# ----------------------------------------------------------------------
# MU (banked SRAM) model.  16 banks x 1024 x 8 bits = 16 KB; the routed MU
# is 0.029 mm^2.  CACTI-style decomposition: bit cells + per-bank periphery
# + routing.  131072 bits x 0.15 + 16 x 500 + 1120 = 28.8k um^2.
# ----------------------------------------------------------------------
SRAM_BIT_CELL_UM2 = 0.15
SRAM_BANK_PERIPHERY_UM2 = 500.0
MU_ROUTING_AREA_UM2 = 1120.0
MU_ACCESS_POWER_UW = 2000.0  # per active MU

# ----------------------------------------------------------------------
# Latency costs (cycles), Section 5.1.3.
# ----------------------------------------------------------------------
HOP_CYCLES = 5            # "roughly five cycles for each data movement"
PHV_INTERFACE_CYCLES = 4  # PHV <-> fabric FIFO boundary, each direction
MU_ACCESS_CYCLES = 1      # "SRAM-based operations ... single-cycle accesses"


@dataclass(frozen=True)
class CUGeometry:
    """A CU configuration point in the design space."""

    lanes: int
    stages: int
    precision: str = "fix8"

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.stages <= 0:
            raise ValueError("lanes and stages must be positive")
        if self.precision not in FU_CORE_AREA_UM2:
            raise ValueError(f"unknown precision {self.precision!r}")

    @property
    def n_fus(self) -> int:
        return self.lanes * self.stages


#: The paper's final configuration: 16 lanes, 4 stages, fix8.
DEFAULT_CU_GEOMETRY = CUGeometry(lanes=16, stages=4, precision="fix8")

DEFAULT_MU_BANKS = 16
DEFAULT_MU_ENTRIES = 1024

#: Final grid: 12 x 10 with a 3:1 CU:MU ratio -> 90 CUs + 30 MUs.
GRID_ROWS = 12
GRID_COLS = 10
GRID_CU_TO_MU_RATIO = 3

#: Average datapath activity used for the whole-grid power figure.  App rows
#: in Table 5 count fully-active FUs (456 uW each); the grid row's 2.8%
#: implies ~1.89 W per block, i.e. ~72% average activity across the fabric.
GRID_AVG_ACTIVITY = 0.72


@dataclass(frozen=True)
class SwitchChipParams:
    """The commercial switch Taurus is grafted onto (Table 5 footnote)."""

    die_area_mm2: float = 500.0
    n_pipelines: int = 4
    mats_per_pipeline: int = 32
    mat_area_fraction: float = 0.50  # "50% of the chip area is ... MATs"
    chip_power_w: float = 270.0
    line_rate_gpkt_s: float = 1.0

    @property
    def pipeline_area_mm2(self) -> float:
        """Per-pipeline share of the die."""
        return self.die_area_mm2 / self.n_pipelines

    @property
    def pipeline_power_w(self) -> float:
        """Per-pipeline share of chip power."""
        return self.chip_power_w / self.n_pipelines

    @property
    def mat_area_mm2(self) -> float:
        """Area of a single MAT stage."""
        total_mats = self.n_pipelines * self.mats_per_pipeline
        return self.die_area_mm2 * self.mat_area_fraction / total_mats
