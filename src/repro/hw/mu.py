"""Functional model of one Memory Unit (banked SRAM).

MUs hold model weights and lookup tables: "We use banked SRAMs as memory
units (MUs), which are interspersed with CUs in a checkerboard pattern for
locality ... SRAM-based operations can be done with single-cycle accesses"
(Section 4).  The model enforces capacity, tracks per-bank accesses, and
flags same-cycle bank conflicts (which a correct compiler avoids by
spreading vectors across banks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fixpoint import FIX8, FixedPointFormat, FixTensor
from .params import DEFAULT_MU_BANKS, DEFAULT_MU_ENTRIES, MU_ACCESS_CYCLES

__all__ = ["MemoryUnit", "BankConflictError"]


class BankConflictError(RuntimeError):
    """Two same-cycle accesses hit one bank (a compiler bug, not a runtime
    condition — banking is static)."""


@dataclass
class MemoryUnit:
    """A ``banks`` x ``entries`` scratchpad of datapath-width words."""

    banks: int = DEFAULT_MU_BANKS
    entries: int = DEFAULT_MU_ENTRIES
    fmt: FixedPointFormat = FIX8
    reads: int = 0
    writes: int = 0
    _data: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.banks <= 0 or self.entries <= 0:
            raise ValueError("banks and entries must be positive")
        self._data = np.zeros((self.banks, self.entries), dtype=self.fmt.storage_dtype)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    @property
    def capacity_values(self) -> int:
        return self.banks * self.entries

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_values * self.fmt.total_bits // 8

    # ------------------------------------------------------------------
    # Weight loading (control-plane weight updates, Fig. 1)
    # ------------------------------------------------------------------
    def load(self, values: np.ndarray, base: int = 0) -> None:
        """Install a flat weight array starting at logical address ``base``.

        Values are striped across banks so that a 16-wide vector read hits
        16 distinct banks (conflict-free SIMD fetch).
        """
        flat = self.fmt.quantize(np.asarray(values, dtype=np.float64).ravel())
        if base < 0 or base + flat.size > self.capacity_values:
            raise ValueError(
                f"{flat.size} values at base {base} exceed capacity "
                f"{self.capacity_values}"
            )
        for offset, value in enumerate(flat):
            addr = base + offset
            self._data[addr % self.banks, addr // self.banks] = value
        self.writes += flat.size

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read_vector(self, base: int, width: int) -> tuple[FixTensor, int]:
        """Read ``width`` consecutive values; returns (tensor, cycles).

        Consecutive addresses live in distinct banks, so a vector up to
        ``banks`` wide reads in a single cycle.
        """
        if width <= 0:
            raise ValueError("width must be positive")
        if base < 0 or base + width > self.capacity_values:
            raise ValueError("read beyond capacity")
        addrs = np.arange(base, base + width)
        bank_ids = addrs % self.banks
        if len(np.unique(bank_ids)) != len(bank_ids):
            raise BankConflictError(
                f"vector read of width {width} at base {base} collides in a bank"
            )
        raw = self._data[bank_ids, addrs // self.banks]
        self.reads += width
        return FixTensor(raw, self.fmt), MU_ACCESS_CYCLES

    def read_scalar(self, address: int) -> tuple[FixTensor, int]:
        """Single-value read (LUT lookups)."""
        tensor, cycles = self.read_vector(address, 1)
        return tensor, cycles

    def lookup(self, table_base: int, table_size: int, index: int) -> tuple[FixTensor, int]:
        """LUT access with clamped index (activation tables, Section 5.1.3)."""
        clamped = int(np.clip(index, 0, table_size - 1))
        return self.read_scalar(table_base + clamped)
