"""Primitive operations of the MapReduce abstraction.

Map operations are element-wise vector ops; reduce operations combine a
vector to a scalar with an associative operator (Section 3.3.1).  Each op
carries its fixed-point execution semantics so the functional CGRA
simulator and the analytical compiler agree on exactly what a CU stage does.

Batch semantics: every op accepts a leading batch axis.  Map ops broadcast
element-wise, so ``(B, width)`` in gives ``(B, width)`` out; reduce ops
contract the **last** axis only (``axis=-1``), so ``(B, width)`` in gives
``(B,)`` out — one reduced value per packet.  This is the contract the
batched dataflow interpreter (:meth:`DataflowGraph.execute_batch`) and the
scalar one share: a row of a batched result is bit-identical to the same
op on that row alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["MapOp", "ReduceOp", "MAP_OPS", "REDUCE_OPS", "reduce_tree_depth"]


@dataclass(frozen=True)
class MapOp:
    """An element-wise operation occupying one CU stage slot."""

    name: str
    arity: int
    fn: Callable[..., np.ndarray]


@dataclass(frozen=True)
class ReduceOp:
    """An associative vector-to-scalar operation (tree-reduced in a CU).

    ``fn`` contracts the last axis, so it is batch-transparent:
    ``(width,) -> ()`` and ``(B, width) -> (B,)``.
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    identity: float

    def batched(self, values: np.ndarray) -> np.ndarray:
        """Reduce per packet, keeping the lane axis: ``(B, w) -> (B, 1)``.

        This is the batched interpreter's default semantics for ``reduce``
        nodes lowered without an explicit ``fn``/``batch_fn``.
        """
        return np.asarray(self.fn(values))[..., None]


MAP_OPS: dict[str, MapOp] = {
    "add": MapOp("add", 2, lambda a, b: a + b),
    "sub": MapOp("sub", 2, lambda a, b: a - b),
    "mul": MapOp("mul", 2, lambda a, b: a * b),
    "max": MapOp("max", 2, np.maximum),
    "min": MapOp("min", 2, np.minimum),
    "neg": MapOp("neg", 1, np.negative),
    "abs": MapOp("abs", 1, np.abs),
    "shift": MapOp("shift", 1, lambda a: a),  # power-of-two scaling
    "select": MapOp("select", 2, lambda a, b: np.where(a >= 0, a, b)),
}

REDUCE_OPS: dict[str, ReduceOp] = {
    "sum": ReduceOp("sum", lambda v: np.sum(v, axis=-1), 0.0),
    "max": ReduceOp("max", lambda v: np.max(v, axis=-1), -np.inf),
    "min": ReduceOp("min", lambda v: np.min(v, axis=-1), np.inf),
    "argmax": ReduceOp("argmax", lambda v: np.argmax(v, axis=-1), 0.0),
    "argmin": ReduceOp("argmin", lambda v: np.argmin(v, axis=-1), 0.0),
}


def reduce_tree_depth(width: int, lanes: int = 16) -> int:
    """Cycles for a tree reduction of ``width`` elements inside one CU.

    The paper's 16-lane CU reduces 16 elements in four cycles, "using
    different fractions of a single stage for each reduction cycle".
    """
    if width <= 1:
        return 0
    effective = min(width, lanes)
    return int(np.ceil(np.log2(effective)))
