"""Streaming-dataflow IR for MapReduce programs.

Section 4: "Programs are compiled to a streaming dataflow graph: from this
hierarchy, innermost loops become SIMD operations within a CU, and outer
loops are mapped over multiple CUs."  A :class:`DataflowGraph` is that
intermediate form: a DAG of typed nodes, each of which lowers to one or more
CUs/MUs.  The graph is *executable* (the functional CGRA simulation runs
it node by node) and *analyzable* (the compiler derives area, latency, and
throughput from its structure).

Node kinds
----------
``input``      packet features arriving from the PHV
``const``      a weight bank resident in MUs
``dot``        matrix-vector multiply + bias (map of multiplies + tree
               reduce) — the perceptron primitive of Fig. 3
``mapreduce``  an op-chain map followed by a tree reduce per instance
               (e.g. squared distances)
``map``        an element-wise op chain (activations, scaling, updates)
``gather``     merge scalars from parallel CUs into one dense vector
``reduce``     a vector-to-scalar reduction (sum/max/argmax/...)
``lut``        an MU-resident lookup table
``output``     result written back into the PHV
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

__all__ = ["Node", "DataflowGraph", "NODE_KINDS"]

NODE_KINDS = (
    "input",
    "const",
    "dot",
    "mapreduce",
    "map",
    "gather",
    "reduce",
    "lut",
    "output",
)


@dataclass
class Node:
    """One dataflow node.

    Attributes
    ----------
    parallel:
        Independent instances mapped side by side (the outer-map factor;
        e.g. one instance per neuron in a Dense layer).
    width:
        Vector width consumed by each instance (the inner SIMD factor).
    chain_ops:
        Length of the dependent element-wise op chain (``map``/``mapreduce``
        nodes); determines how many CU stage slots the chain needs.
    reduce_op:
        Reduction operator name for ``dot``/``mapreduce``/``reduce`` nodes.
    fn:
        Functional semantics: called with the (already gathered) input
        float array, returns the node's output array.
    weight_values:
        Number of constant values this node keeps in MUs (``const``/``lut``).
    """

    node_id: int
    kind: str
    name: str = ""
    preds: list[int] = field(default_factory=list)
    parallel: int = 1
    width: int = 1
    chain_ops: int = 0
    reduce_op: str | None = None
    fn: Callable[..., np.ndarray] | None = None
    weight_values: int = 0
    payload: Any = None
    #: Epilogue nodes run once after the last temporal iteration (e.g. the
    #: LSTM's action head) rather than inside the recurrent step.
    epilogue: bool = False

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise ValueError(f"unknown node kind {self.kind!r}")
        if self.parallel <= 0 or self.width <= 0:
            raise ValueError("parallel and width must be positive")


@dataclass
class DataflowGraph:
    """A DAG of :class:`Node` objects plus temporal metadata.

    ``temporal_iterations`` models recurrences (the LSTM executes its step
    subgraph once per history element, reusing the same hardware), and
    ``initiation_interval`` is the packet-issue interval in cycles (1 =
    line rate; the compiler raises it when a kernel is only partially
    unrolled, Table 7).
    """

    name: str
    nodes: dict[int, Node] = field(default_factory=dict)
    temporal_iterations: int = 1
    initiation_interval: int = 1
    _next_id: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, kind: str, preds: list[Node] | None = None, **kwargs) -> Node:
        """Append a node; ``preds`` are upstream nodes."""
        node = Node(
            node_id=self._next_id,
            kind=kind,
            preds=[p.node_id for p in (preds or [])],
            **kwargs,
        )
        self.nodes[node.node_id] = node
        self._next_id += 1
        return node

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topo_order(self) -> list[Node]:
        """Nodes in dependency order (raises on cycles)."""
        indegree = {nid: 0 for nid in self.nodes}
        succs: dict[int, list[int]] = {nid: [] for nid in self.nodes}
        for node in self.nodes.values():
            for pred in node.preds:
                indegree[node.node_id] += 1
                succs[pred].append(node.node_id)
        ready = [nid for nid, deg in indegree.items() if deg == 0]
        order: list[Node] = []
        while ready:
            nid = ready.pop()
            order.append(self.nodes[nid])
            for succ in succs[nid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            raise ValueError("dataflow graph contains a cycle")
        return order

    def inputs(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.kind == "input"]

    def outputs(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.kind == "output"]

    # ------------------------------------------------------------------
    # Functional execution (one packet / one feature vector)
    # ------------------------------------------------------------------
    def execute(self, features: np.ndarray, state: dict | None = None) -> np.ndarray:
        """Run the graph functionally on one feature vector.

        ``state`` carries values across :attr:`temporal_iterations` for
        recurrent graphs; node ``fn`` callables may read/write it via their
        second argument when they declare one (the LSTM step does).
        """
        features = np.asarray(features, dtype=np.float64)
        state = state if state is not None else {}
        values: dict[int, np.ndarray] = {}
        result: np.ndarray | None = None
        order = self.topo_order()
        for iteration in range(self.temporal_iterations):
            state["iteration"] = iteration
            for node in order:
                if node.kind == "input":
                    values[node.node_id] = features
                    continue
                if node.kind == "const":
                    values[node.node_id] = np.empty(0)
                    continue
                args = [
                    values[p]
                    for p in node.preds
                    if self.nodes[p].kind != "const"
                ]
                if node.kind == "gather":
                    merged = np.concatenate([np.atleast_1d(a) for a in args])
                    values[node.node_id] = merged
                    continue
                if node.kind == "output":
                    out = args[0] if args else np.empty(0)
                    values[node.node_id] = out
                    result = out
                    continue
                if node.fn is None:
                    raise ValueError(f"node {node.name!r} has no semantics")
                values[node.node_id] = node.fn(*args, **_state_kwarg(node, state))
        if result is None:
            raise ValueError("graph has no output node")
        return result

    def __len__(self) -> int:
        return len(self.nodes)


def _state_kwarg(node: Node, state: dict) -> dict:
    """Pass mutable state only to nodes that want it."""
    fn = node.fn
    if fn is not None and getattr(fn, "wants_state", False):
        return {"state": state}
    return {}
