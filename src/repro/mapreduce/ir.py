"""Streaming-dataflow IR for MapReduce programs.

Section 4: "Programs are compiled to a streaming dataflow graph: from this
hierarchy, innermost loops become SIMD operations within a CU, and outer
loops are mapped over multiple CUs."  A :class:`DataflowGraph` is that
intermediate form: a DAG of typed nodes, each of which lowers to one or more
CUs/MUs.  The graph is *executable* (the functional CGRA simulation runs
it node by node) and *analyzable* (the compiler derives area, latency, and
throughput from its structure).

Node kinds
----------
``input``      packet features arriving from the PHV
``const``      a weight bank resident in MUs
``dot``        matrix-vector multiply + bias (map of multiplies + tree
               reduce) — the perceptron primitive of Fig. 3
``mapreduce``  an op-chain map followed by a tree reduce per instance
               (e.g. squared distances)
``map``        an element-wise op chain (activations, scaling, updates)
``gather``     merge scalars from parallel CUs into one dense vector
``reduce``     a vector-to-scalar reduction (sum/max/argmax/...)
``lut``        an MU-resident lookup table
``output``     result written back into the PHV

Execution semantics
-------------------
The graph is executable two ways:

* :meth:`DataflowGraph.execute` interprets one feature vector (one packet)
  at a time — the cycle-faithful view the hardware models wrap.
* :meth:`DataflowGraph.execute_batch` interprets a ``(B, D)`` block of
  feature vectors in one pass, using each node's vectorized ``batch_fn``
  (falling back to a per-row loop over ``fn`` when a node has none).  This
  is how multi-hundred-thousand-packet traces stream through the functional
  CGRA path at scale; results are bit-identical to the scalar interpreter.

Epilogue contract
-----------------
For recurrent graphs (``temporal_iterations > 1``) nodes marked
``epilogue=True`` run exactly **once**, after the last temporal iteration —
e.g. the LSTM's action head, which reads the final hidden state.  Epilogue
nodes may only feed other epilogue nodes (their values do not exist during
earlier iterations); :meth:`DataflowGraph.add` rejects wiring that
violates this at build time.
The compiler's latency model prices the epilogue the same way: once, after
``body * temporal_iterations`` cycles (see ``compiler/pipeline.py``).

Input contract
--------------
Input-node values are handed to node ``fn``/``batch_fn`` callables as
**read-only** views (``arr.flags.writeable = False``): every ``input`` node
shares the same features array, so a mutating callable would silently
corrupt sibling consumers.  Node callables must treat all arguments as
immutable and allocate fresh arrays for their outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .ops import REDUCE_OPS

__all__ = ["Node", "DataflowGraph", "NODE_KINDS", "NODE_DESCRIPTOR_WORDS"]

#: Configuration words per node descriptor (opcode, routing, lane masks)
#: streamed into the grid when a program is loaded.  Weight banks add their
#: resident values on top — see :meth:`DataflowGraph.config_words`.
NODE_DESCRIPTOR_WORDS = 4

NODE_KINDS = (
    "input",
    "const",
    "dot",
    "mapreduce",
    "map",
    "gather",
    "reduce",
    "lut",
    "output",
)


@dataclass
class Node:
    """One dataflow node.

    Attributes
    ----------
    parallel:
        Independent instances mapped side by side (the outer-map factor;
        e.g. one instance per neuron in a Dense layer).
    width:
        Vector width consumed by each instance (the inner SIMD factor).
    chain_ops:
        Length of the dependent element-wise op chain (``map``/``mapreduce``
        nodes); determines how many CU stage slots the chain needs.
    reduce_op:
        Reduction operator name for ``dot``/``mapreduce``/``reduce`` nodes.
    fn:
        Functional semantics: called with the (already gathered) input
        float array, returns the node's output array.  Arguments are
        read-only; implementations must not mutate them.  ``reduce``
        nodes may omit ``fn`` entirely, in which case the interpreter
        applies the named :data:`~repro.mapreduce.ops.REDUCE_OPS` entry.
    batch_fn:
        Vectorized semantics: called with ``(B, width)`` arrays (one row
        per packet), returns a ``(B, out_width)`` array.  Optional — the
        batched interpreter falls back to looping ``fn`` per row — but
        required for state-carrying nodes and for batched execution to be
        fast.
    weight_values:
        Number of constant values this node keeps in MUs (``const``/``lut``).
    value_range:
        Declared real-valued output range ``(lo, hi)``.  On ``input`` nodes
        it is a *precondition* on arriving data (what the preprocessing
        MATs deliver); on compute nodes it is a frontend certification of
        the node's output bound.  ``repro.analysis.ranges`` trusts these
        declarations (and the execution-probe / property tests check them
        dynamically); ``None`` means unbounded.
    transfer:
        Name of a registered abstract transfer function in
        :data:`repro.analysis.ranges.TRANSFERS` describing this node's
        interval semantics (e.g. ``"roundtrip"``, ``"dot"``, ``"relu"``).
        Nodes without one (and without ``value_range``) analyze as
        unbounded.
    payload:
        Structured analysis facts the transfer reads: weight/bias arrays,
        the saturating output format, LUT domains, declared state-key
        ranges.  Opaque to the interpreter.
    waivers:
        Check IDs (e.g. ``"an-may-saturate"``) the lowering explicitly
        waives on this node; the analysis downgrades matching findings to
        info severity so by-design saturation does not fail the CI gate.
    """

    node_id: int
    kind: str
    name: str = ""
    preds: list[int] = field(default_factory=list)
    parallel: int = 1
    width: int = 1
    chain_ops: int = 0
    reduce_op: str | None = None
    fn: Callable[..., np.ndarray] | None = None
    batch_fn: Callable[..., np.ndarray] | None = None
    weight_values: int = 0
    payload: Any = None
    value_range: tuple[float, float] | None = None
    transfer: str | None = None
    waivers: tuple[str, ...] = ()
    #: Epilogue nodes run once after the last temporal iteration (e.g. the
    #: LSTM's action head) rather than inside the recurrent step.
    epilogue: bool = False

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise ValueError(f"unknown node kind {self.kind!r}")
        if self.parallel <= 0 or self.width <= 0:
            raise ValueError("parallel and width must be positive")
        if self.value_range is not None:
            lo, hi = self.value_range
            if not lo <= hi:
                raise ValueError(
                    f"value_range lo must not exceed hi, got ({lo}, {hi})"
                )


@dataclass
class DataflowGraph:
    """A DAG of :class:`Node` objects plus temporal metadata.

    ``temporal_iterations`` models recurrences (the LSTM executes its step
    subgraph once per history element, reusing the same hardware), and
    ``initiation_interval`` is the packet-issue interval in cycles (1 =
    line rate; the compiler raises it when a kernel is only partially
    unrolled, Table 7).
    """

    name: str
    nodes: dict[int, Node] = field(default_factory=dict)
    temporal_iterations: int = 1
    initiation_interval: int = 1
    _next_id: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, kind: str, preds: list[Node] | None = None, **kwargs) -> Node:
        """Append a node; ``preds`` are upstream nodes.

        Rejects a non-epilogue node consuming an epilogue predecessor at
        build time: epilogue values only exist after the last temporal
        iteration, so such a consumer would read a value that is not
        there yet.
        """
        node = Node(
            node_id=self._next_id,
            kind=kind,
            preds=[p.node_id for p in (preds or [])],
            **kwargs,
        )
        if not node.epilogue:
            for pred in preds or []:
                if pred.epilogue:
                    raise ValueError(
                        f"epilogue node {pred.name!r} feeds "
                        f"non-epilogue node {node.name!r}"
                    )
        self.nodes[node.node_id] = node
        self._next_id += 1
        return node

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topo_order(self) -> list[Node]:
        """Nodes in dependency order (raises on cycles)."""
        indegree = {nid: 0 for nid in self.nodes}
        succs: dict[int, list[int]] = {nid: [] for nid in self.nodes}
        for node in self.nodes.values():
            for pred in node.preds:
                indegree[node.node_id] += 1
                succs[pred].append(node.node_id)
        ready = [nid for nid, deg in indegree.items() if deg == 0]
        order: list[Node] = []
        while ready:
            nid = ready.pop()
            order.append(self.nodes[nid])
            for succ in succs[nid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            raise ValueError("dataflow graph contains a cycle")
        return order

    def inputs(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.kind == "input"]

    def outputs(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.kind == "output"]

    def config_words(self) -> int:
        """Size of this program's configuration stream, in words.

        Reconfiguring the grid (a CGRA loads a new program between
        packets, not a new bitstream) streams one fixed-size descriptor
        per node plus every MU-resident constant (weight banks, LUT
        tables).  The multi-app fabric prices time-multiplexed program
        swaps from this: a bigger model takes proportionally longer to
        swap in (see :meth:`repro.hw.grid.MapReduceBlock.reconfigure`).
        """
        return sum(
            NODE_DESCRIPTOR_WORDS + node.weight_values
            for node in self.nodes.values()
        )

    # ------------------------------------------------------------------
    # Functional execution (one packet / one feature vector)
    # ------------------------------------------------------------------
    def execute(self, features: np.ndarray, state: dict | None = None) -> np.ndarray:
        """Run the graph functionally on one feature vector.

        ``state`` carries values across :attr:`temporal_iterations` for
        recurrent graphs; node ``fn`` callables may read/write it via their
        second argument when they declare one (the LSTM step does).

        Nodes marked ``epilogue`` run once, after the last iteration; the
        features array is handed to nodes as a read-only view (see the
        module docstring for both contracts).
        """
        features = np.array(features, dtype=np.float64)  # private copy
        features.flags.writeable = False
        return self._interpret(features, state, batch=None)

    # ------------------------------------------------------------------
    # Batched execution (a block of packets per pass)
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        features: np.ndarray,
        state: dict | None = None,
        observer: Callable[[Node, np.ndarray, int], None] | None = None,
    ) -> np.ndarray:
        """Run the graph on a ``(B, D)`` block of feature vectors at once.

        Semantics match ``B`` independent calls to :meth:`execute`
        bit-for-bit: every node value is a ``(B, width)`` array whose row
        ``b`` is what the scalar interpreter would have computed for packet
        ``b``.  Recurrent state is batched the same way (``state["h"]`` is
        ``(B, hidden)`` for the LSTM), and epilogue nodes run once after
        the final temporal iteration.

        Nodes without a ``batch_fn`` fall back to looping ``fn`` over rows
        (correct but slow); state-carrying nodes must provide ``batch_fn``.

        ``observer(node, value, iteration)`` is called with every node's
        stored value as it is computed — the hook ``repro.analysis``'s
        execution probe uses to check the 2-D value contract and inferred
        widths.  Observers must treat ``value`` as read-only.
        """
        features = np.array(features, dtype=np.float64)  # private copy
        if features.ndim != 2:
            raise ValueError(
                f"execute_batch expects (B, D) features, got shape "
                f"{features.shape}"
            )
        features.flags.writeable = False
        return self._interpret(
            features, state, batch=features.shape[0], observer=observer
        )

    def _interpret(
        self,
        features: np.ndarray,
        state: dict | None,
        batch: int | None,
        observer: Callable[[Node, np.ndarray, int], None] | None = None,
    ) -> np.ndarray:
        """The shared interpreter core for both execution modes.

        ``batch`` is ``None`` for the scalar path.  Keeping the temporal
        loop, epilogue skipping, and structural node dispatch in one place
        is deliberate: the epilogue bug this module once carried came from
        semantics drifting between duplicated loops.
        """
        batched = batch is not None
        empty = np.empty((batch, 0)) if batched else np.empty(0)
        state = state if state is not None else {}
        values: dict[int, np.ndarray] = {}
        result: np.ndarray | None = None
        order = self.topo_order()
        for iteration in range(self.temporal_iterations):
            state["iteration"] = iteration
            last = iteration == self.temporal_iterations - 1
            for node in order:
                if node.epilogue and not last:
                    continue
                if node.kind == "input":
                    value = features
                elif node.kind == "const":
                    value = empty
                else:
                    args = [
                        values[p]
                        for p in node.preds
                        if self.nodes[p].kind != "const"
                    ]
                    if node.kind == "gather":
                        value = (
                            np.concatenate(
                                [_as_batch_2d(a) for a in args], axis=1
                            )
                            if batched
                            else np.concatenate([np.atleast_1d(a) for a in args])
                        )
                    elif node.kind == "output":
                        value = args[0] if args else empty
                        result = value
                    else:
                        value = (
                            _as_batch_2d(
                                _run_node_batched(node, args, state, batch)
                            )
                            if batched
                            else _run_node_scalar(node, args, state)
                        )
                values[node.node_id] = value
                if observer is not None:
                    observer(node, value, iteration)
        if result is None:
            raise ValueError("graph has no output node")
        return _as_batch_2d(result) if batched else result

    def __len__(self) -> int:
        return len(self.nodes)


def _as_batch_2d(value: np.ndarray) -> np.ndarray:
    """Normalize a batched node value to ``(B, width)``."""
    value = np.asarray(value)
    if value.ndim == 1:
        return value[:, None]
    return value


def _run_node_scalar(node: Node, args: list[np.ndarray], state: dict) -> np.ndarray:
    """One node on a single vector via its scalar semantics."""
    if node.fn is None:
        if node.kind == "reduce" and node.reduce_op in REDUCE_OPS:
            return np.atleast_1d(REDUCE_OPS[node.reduce_op].fn(args[0]))
        raise ValueError(f"node {node.name!r} has no semantics")
    return node.fn(*args, **_state_kwarg(node.fn, state))


def _run_node_batched(
    node: Node, args: list[np.ndarray], state: dict, batch: int
) -> np.ndarray:
    """One node on a batch: vectorized ``batch_fn``, or a row loop."""
    if node.batch_fn is not None:
        return node.batch_fn(*args, **_state_kwarg(node.batch_fn, state))
    if node.fn is None:
        if node.kind == "reduce" and node.reduce_op in REDUCE_OPS:
            return REDUCE_OPS[node.reduce_op].batched(args[0])
        raise ValueError(f"node {node.name!r} has no semantics")
    if getattr(node.fn, "wants_state", False):
        raise ValueError(
            f"node {node.name!r} carries state and needs a batch_fn for "
            "batched execution (per-row state would diverge)"
        )
    return np.stack(
        [np.atleast_1d(node.fn(*[a[b] for a in args])) for b in range(batch)]
    )


def _state_kwarg(fn: Callable, state: dict) -> dict:
    """Pass mutable state only to callables that want it."""
    if getattr(fn, "wants_state", False):
        return {"state": state}
    return {}
