"""The MapReduce control-block DSL (the paper's Fig. 4 in Python).

Taurus extends P4 with a ``MapReduce`` control-block type whose body is
written with ``Map`` and ``Reduce`` constructs (plus arrays and out-of-band
weight updates).  This module provides the Python analogue: users subclass
:class:`MapReduceControlBlock` and express their model with
:meth:`~MapReduceControlBlock.map` / :meth:`~MapReduceControlBlock.reduce`.
Execution is functional, and every invocation is traced so the compiler can
count patterns, as the Spatial compiler does before unrolling.

Example (a DNN layer, mirroring Fig. 4)::

    class Layer(MapReduceControlBlock):
        def build(self, features):
            w = self.weights["w"]          # (out, in)
            linear = self.map(range(len(w)), lambda i:
                self.reduce(self.map(range(w.shape[1]),
                                     lambda j: w[i, j] * features[j]),
                            lambda x, y: x + y))
            return self.map(linear, lambda v: max(v, 0.0))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["MapReduceControlBlock", "PatternTrace"]


@dataclass
class PatternTrace:
    """Counts of parallel patterns executed by a control block."""

    maps: int = 0
    reduces: int = 0
    map_elements: int = 0
    reduce_elements: int = 0

    def reset(self) -> None:
        self.maps = 0
        self.reduces = 0
        self.map_elements = 0
        self.reduce_elements = 0


class MapReduceControlBlock:
    """Base class for MapReduce control blocks.

    Subclasses implement :meth:`build`, which receives the packet's feature
    vector and returns the block's output.  Weights are installed
    out-of-band via :meth:`load_weights` (the control plane's weight-update
    path, Fig. 1) and read through :attr:`weights`.
    """

    def __init__(self, name: str | None = None):
        self.name = name or type(self).__name__
        self.weights: dict[str, np.ndarray] = {}
        self.trace = PatternTrace()

    # ------------------------------------------------------------------
    # Out-of-band weight updates
    # ------------------------------------------------------------------
    def load_weights(self, **arrays: np.ndarray) -> None:
        """Install named weight arrays (e.g. from a trained model)."""
        for key, value in arrays.items():
            self.weights[key] = np.asarray(value, dtype=np.float64)

    # ------------------------------------------------------------------
    # Parallel patterns
    # ------------------------------------------------------------------
    def map(self, domain: Iterable | int, body: Callable) -> np.ndarray:
        """Element-wise map: apply ``body`` to each element of ``domain``.

        ``domain`` may be an int (``Map(n) { i => ... }``), a range, or an
        array whose elements are passed to ``body``.
        """
        if isinstance(domain, (int, np.integer)):
            items: Sequence = range(int(domain))
        else:
            items = list(domain)
        out = np.asarray([body(item) for item in items], dtype=np.float64)
        self.trace.maps += 1
        self.trace.map_elements += len(items)
        return out

    def reduce(self, vector: Iterable, body: Callable[[float, float], float]) -> float:
        """Tree reduction with an associative binary ``body``."""
        values = [float(v) for v in vector]
        if not values:
            raise ValueError("cannot reduce an empty vector")
        self.trace.reduces += 1
        self.trace.reduce_elements += len(values)
        # Tree order (matches the CU's reduction network, not a left fold).
        while len(values) > 1:
            paired = []
            for i in range(0, len(values) - 1, 2):
                paired.append(body(values[i], values[i + 1]))
            if len(values) % 2:
                paired.append(values[-1])
            values = paired
        return values[0]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def build(self, features: np.ndarray):  # pragma: no cover - abstract
        """Subclass hook: express the computation with map/reduce."""
        raise NotImplementedError

    def __call__(self, features: np.ndarray):
        """Run the block on one packet's features (trace is refreshed)."""
        self.trace.reset()
        return self.build(np.asarray(features, dtype=np.float64))
