"""Model frontends: lower trained ML models to dataflow graphs.

Each function builds the :class:`~repro.mapreduce.ir.DataflowGraph` a
Spatial-style compiler would produce for the paper's benchmarks
(Section 5.1.2-5.1.3): innermost loops become SIMD operations within CUs,
outer loops map over parallel CUs, and recurrences become temporal
iterations over the same hardware.

Every node's semantics are written batch-first — a ``batch_fn`` over
``(B, width)`` arrays — and the scalar ``fn`` is the same callable adapted
through :func:`_single` (or the identical function when the operation is
element-wise / reduces along ``axis=-1``).  That construction is what makes
``DataflowGraph.execute_batch`` bit-identical to per-packet ``execute``:
both paths run the very same numpy expressions, only the leading batch
axis differs.  Batched reductions deliberately avoid BLAS matmuls
(``sum(a * w, axis=-1)`` instead of ``a @ w``) so results do not drift
with batch size.
"""

from __future__ import annotations

import numpy as np

from ..fixpoint import FIX8, FixedPointFormat, QuantizedModel
from ..ml.activations import ACTIVATIONS
from .ir import DataflowGraph

__all__ = [
    "HW_ACTIVATION_FOR",
    "dnn_graph",
    "svm_graph",
    "kmeans_graph",
    "lstm_graph",
    "inner_product_graph",
    "activation_graph",
    "conv1d_graph",
]

def _verified(graph: DataflowGraph) -> DataflowGraph:
    """Gate every lowering on the structural verifier before returning it.

    Runs :func:`repro.analysis.verify_graph` in structural mode (no
    execution probe, no budget pricing — both belong to the CLI/CI gate;
    training loops re-lower after every weight update, so this must stay
    O(nodes)) and raises on any error-severity finding.  Lazy import:
    ``repro.analysis`` imports this module for its shipped-graph catalog.
    """
    from ..analysis import Severity, verify_graph

    errors = [
        d for d in verify_graph(graph, probe=False)
        if d.severity >= Severity.ERROR
    ]
    if errors:
        raise ValueError(
            f"lowering produced an invalid graph:\n"
            + "\n".join(d.format() for d in errors)
        )
    return graph


#: Which line-rate implementation serves each model-level activation.
#: ReLUs map exactly; smooth activations use the piecewise variants, the
#: cheapest implementation with acceptable error (Table 6 discussion).
HW_ACTIVATION_FOR = {
    "relu": "relu",
    "leaky_relu": "leaky_relu",
    "sigmoid": "sigmoid_pw",
    "tanh": "tanh_pw",
}


#: Activation spec names with a registered range transfer of the same
#: name in :data:`repro.analysis.ranges.TRANSFERS`.
_ACT_TRANSFER_NAMES = frozenset({
    "relu", "leaky_relu", "sigmoid", "tanh",
    "sigmoid_pw", "tanh_pw", "sigmoid_exp", "tanh_exp", "act_lut",
})


def _hw_activation_fn(model_act: str, fmt: FixedPointFormat):
    """Fixed-point hardware activation: approximate fn + output roundtrip."""
    spec = ACTIVATIONS[HW_ACTIVATION_FOR[model_act]]

    def apply(z: np.ndarray) -> np.ndarray:
        return fmt.roundtrip(spec.fn(z))

    return apply, spec


# ----------------------------------------------------------------------
# DNN (the anomaly-detection running example and the IoT classifiers)
# ----------------------------------------------------------------------
def dnn_graph(
    qmodel: QuantizedModel, name: str = "dnn", exact_activations: bool = False
) -> DataflowGraph:
    """Lower a quantized DNN to a dataflow graph.

    With ``exact_activations=True`` the graph's map nodes reuse the
    quantized model's exact activations, making graph execution bit-exact
    with :class:`~repro.fixpoint.quantize.QuantizedModel` — the equivalence
    the integration tests check.  The default uses the line-rate hardware
    approximations (piecewise sigmoid/tanh).

    Softmax heads are lowered to an argmax reduce: the switch only needs the
    class decision, and argmax over logits equals argmax over softmax.
    """
    graph = DataflowGraph(name=name)
    in_fmt0 = qmodel.layers[0].in_fmt
    cursor = graph.add(
        "input",
        name="features",
        width=qmodel.layers[0].weights.shape[1],
        # Precondition: preprocessing MATs format features as fixed point
        # before the fabric sees them (the PHV boundary in linear()).
        value_range=(in_fmt0.min_value, in_fmt0.max_value),
    )
    for i, layer in enumerate(qmodel.layers):
        out_units, in_units = layer.weights.shape
        # Per-channel dequantized weights: row i stores w_raw[i] * 2^-w_frac[i].
        w_real = layer.w_raw.astype(np.float64) * (
            2.0 ** -layer.w_frac.astype(np.float64)
        )[:, None]
        b_real = layer.bias.to_float()
        bank = graph.add(
            "const",
            name=f"w{i}",
            weight_values=layer.weights.size + layer.bias.size,
            payload={"values": np.concatenate([w_real.ravel(), b_real.ravel()])},
        )
        dot = graph.add(
            "dot",
            preds=[cursor, bank],
            name=f"dot{i}",
            parallel=out_units,
            width=in_units,
            chain_ops=1,
            reduce_op="sum",
            fn=_single(layer.linear),
            batch_fn=layer.linear,
            transfer="dot",
            payload={
                "weights": w_real,
                "bias": b_real,
                "in_fmt": layer.in_fmt,
                "fmt": layer.act_fmt,
                "w_frac_bits": int(layer.w_frac.max()),
                "requantize": "shift",
            },
            # TFLite-style calibration clips pre-activation outliers into
            # act_fmt by design; saturation here is the quantization
            # scheme, not a bug.
            waivers=("an-may-saturate",),
        )
        cursor = dot
        if out_units > 1:
            cursor = graph.add(
                "gather", preds=[cursor], name=f"gather{i}", width=out_units
            )
        if layer.activation == "linear":
            continue
        if exact_activations or layer.activation == "relu":
            # Element-wise on any shape: one callable serves both paths.
            act_fn = batch_act_fn = layer.activate
            spec = ACTIVATIONS[HW_ACTIVATION_FOR.get(layer.activation, "relu")]
            # The exact model activations are registered transfers too.
            act_transfer = (
                layer.activation
                if layer.activation in ("relu", "leaky_relu", "sigmoid", "tanh")
                else None
            )
        else:
            act_fn, spec = _hw_activation_fn(layer.activation, layer.act_fmt)
            batch_act_fn = act_fn
            act_transfer = spec.name
        cursor = graph.add(
            "map",
            preds=[cursor],
            name=f"{spec.name}{i}",
            width=out_units,
            chain_ops=spec.chain_ops,
            fn=act_fn,
            batch_fn=batch_act_fn,
            weight_values=spec.lut_tables * 1024,
            transfer=act_transfer,
            payload={"fmt": layer.act_fmt},
        )
    graph.add("output", preds=[cursor], name="score", width=cursor.width)
    return _verified(graph)


def _single(batch_fn):
    """Adapt a batch (n, d) function to single-vector graph semantics.

    The wrapper runs the *same* batched computation with ``B == 1`` and
    peels the row off, so scalar and batched execution share bits.  State
    flows through untouched (state arrays then carry a leading batch axis
    of 1, consistently for every node in the pass).
    """

    def apply(x: np.ndarray, **kwargs) -> np.ndarray:
        return np.asarray(batch_fn(np.atleast_2d(x), **kwargs))[0]

    apply.wants_state = getattr(batch_fn, "wants_state", False)
    return apply


def _sq_dist_fn(bank: np.ndarray, in_fmt: FixedPointFormat, acc_fmt: FixedPointFormat):
    """Batched squared distances to each row of a resident ``bank``.

    Shared by the SVM (support vectors) and KMeans (centroids) lowerings —
    the quantize/clip/square/reduce sequence must stay identical in both
    for the batch==scalar bit-identity contract.
    """

    def sq_dist(x: np.ndarray) -> np.ndarray:
        xq = in_fmt.roundtrip(np.clip(x, in_fmt.min_value, in_fmt.max_value))
        return acc_fmt.roundtrip(
            np.sum((xq[:, None, :] - bank[None, :, :]) ** 2, axis=-1)
        )

    return sq_dist


# ----------------------------------------------------------------------
# RBF-kernel SVM (anomaly detection)
# ----------------------------------------------------------------------
def svm_graph(svm, fmt: FixedPointFormat = FIX8, name: str = "svm") -> DataflowGraph:
    """Lower a trained :class:`~repro.ml.svm.RBFKernelSVM`.

    Structure: per-SV squared distance (map sub/square + tree reduce),
    scale by -gamma, exponential via an MU lookup table, weighted sum over
    SV coefficients, and a bias add.  All values are roundtripped through
    the datapath format.
    """
    if svm.support_vectors is None:
        raise ValueError("SVM must be fitted before lowering")
    from ..fixpoint import format_for_range

    in_fmt = format_for_range(svm.support_vectors, fmt.total_bits)
    sv = in_fmt.roundtrip(svm.support_vectors)
    alphas = fmt.roundtrip(svm.alphas)
    gamma = svm.gamma
    bias = float(fmt.roundtrip(svm.bias))
    n_sv, dim = sv.shape
    # Squared distances live in the CU's wide accumulator (16-bit view).
    acc_fmt = format_for_range(np.array([(2 * np.abs(sv).max()) ** 2 * dim]), 16)

    sq_dist = _sq_dist_fn(sv, in_fmt, acc_fmt)

    def scale_gamma(d: np.ndarray) -> np.ndarray:
        return np.clip(-gamma * d, -8.0, 0.0)

    def exp_lut(z: np.ndarray) -> np.ndarray:
        return fmt.roundtrip(np.exp(z))

    def weighted_sum(k: np.ndarray) -> np.ndarray:
        return fmt.roundtrip(np.sum(k * alphas, axis=-1, keepdims=True))

    def bias_threshold(s: np.ndarray) -> np.ndarray:
        return np.atleast_1d(s + bias)

    graph = DataflowGraph(name=name)
    features = graph.add(
        "input",
        name="features",
        width=dim,
        value_range=(in_fmt.min_value, in_fmt.max_value),
    )
    bank = graph.add(
        "const",
        name="sv_bank",
        weight_values=sv.size + alphas.size,
        payload={"values": np.concatenate([sv.ravel(), alphas.ravel()])},
    )
    dist = graph.add(
        "mapreduce",
        preds=[features, bank],
        name="sq_dist",
        parallel=n_sv,
        width=dim,
        chain_ops=2,  # subtract, square
        reduce_op="sum",
        fn=_single(sq_dist),
        batch_fn=sq_dist,
        transfer="sq_dist",
        payload={"bank": sv, "in_fmt": in_fmt, "fmt": acc_fmt},
        # acc_fmt is calibrated to the max SV-to-SV distance; a feature
        # vector at the far corner of in_fmt's range can exceed it, and
        # a clipped distance only pushes the kernel further toward 0 —
        # the decision is unaffected for exactly the points that are
        # already far from every support vector.
        waivers=("an-may-saturate",),
    )
    gathered = graph.add("gather", preds=[dist], name="gather_dist", width=n_sv)
    scaled = graph.add(
        "map",
        preds=[gathered],
        name="scale_gamma",
        width=n_sv,
        chain_ops=1,
        fn=scale_gamma,
        batch_fn=scale_gamma,
        transfer="affine",
        payload={"scale": -gamma, "clip": (-8.0, 0.0)},
    )
    kernel = graph.add(
        "lut",
        preds=[scaled],
        name="exp_lut",
        width=n_sv,
        weight_values=1024,
        fn=exp_lut,
        batch_fn=exp_lut,
        transfer="lut",
        payload={
            "domain": (-8.0, 0.0),
            "range": (0.0, 1.0),  # exp over [-8, 0]
            "fmt": fmt,
        },
    )
    score = graph.add(
        "dot",
        preds=[kernel],
        name="weighted_sum",
        parallel=1,
        width=n_sv,
        chain_ops=1,
        reduce_op="sum",
        fn=weighted_sum,
        batch_fn=weighted_sum,
        transfer="dot",
        payload={"weights": alphas.reshape(1, -1), "fmt": fmt},
        # Sum(alpha_i) can exceed the datapath range in the worst case
        # (every kernel value 1 at once); clipping the margin preserves
        # its sign, which is all the decision threshold reads.
        waivers=("an-may-saturate",),
    )
    decision = graph.add(
        "map",
        preds=[score],
        name="bias_threshold",
        width=1,
        chain_ops=2,  # add bias, compare
        fn=bias_threshold,
        batch_fn=bias_threshold,
        transfer="affine",
        payload={"offset": bias},
    )
    graph.add("output", preds=[decision], name="score", width=1)
    return _verified(graph)


# ----------------------------------------------------------------------
# KMeans (IoT traffic classification)
# ----------------------------------------------------------------------
def kmeans_graph(kmeans, fmt: FixedPointFormat = FIX8, name: str = "kmeans") -> DataflowGraph:
    """Lower a fitted :class:`~repro.ml.kmeans.KMeans` to nearest-centroid.

    Inputs and centroids are quantized in a format calibrated to the
    centroid range; squared distances stay in the CU's wide accumulator
    (16-bit view) so the arg-min reduce sees unsaturated values.
    """
    if kmeans.centroids is None:
        raise ValueError("KMeans must be fitted before lowering")
    from ..fixpoint import format_for_range

    in_fmt = format_for_range(kmeans.centroids, fmt.total_bits)
    centroids = in_fmt.roundtrip(kmeans.centroids)
    k, dim = centroids.shape
    max_dist = float(((2 * np.abs(centroids).max()) ** 2) * dim)
    acc_fmt = format_for_range(np.array([max_dist]), 16)

    sq_dist = _sq_dist_fn(centroids, in_fmt, acc_fmt)

    def argmin(d: np.ndarray) -> np.ndarray:
        return np.argmin(d, axis=-1, keepdims=True)

    graph = DataflowGraph(name=name)
    features = graph.add(
        "input",
        name="features",
        width=dim,
        value_range=(in_fmt.min_value, in_fmt.max_value),
    )
    bank = graph.add(
        "const",
        name="centroids",
        weight_values=centroids.size,
        payload={"values": centroids.ravel()},
    )
    dist = graph.add(
        "mapreduce",
        preds=[features, bank],
        name="sq_dist",
        parallel=k,
        width=dim,
        chain_ops=2,
        reduce_op="sum",
        fn=_single(sq_dist),
        batch_fn=sq_dist,
        transfer="sq_dist",
        payload={"bank": centroids, "in_fmt": in_fmt, "fmt": acc_fmt},
        # acc_fmt covers the max centroid-to-centroid distance; corner
        # inputs can exceed it, and a clipped distance ties only between
        # centroids that are all far away — argmin still picks a sane
        # cluster for outliers.
        waivers=("an-may-saturate",),
    )
    gathered = graph.add("gather", preds=[dist], name="gather_dist", width=k)
    nearest = graph.add(
        "reduce",
        preds=[gathered],
        name="argmin",
        width=k,
        reduce_op="argmin",
        fn=argmin,
        batch_fn=argmin,
    )
    graph.add("output", preds=[nearest], name="cluster", width=1)
    return _verified(graph)


# ----------------------------------------------------------------------
# LSTM (Indigo congestion control)
# ----------------------------------------------------------------------
def lstm_graph(
    lstm,
    window_steps: int = 8,
    fmt: FixedPointFormat = FIX8,
    name: str = "lstm",
) -> DataflowGraph:
    """Lower a trained :class:`~repro.ml.lstm.LSTM`.

    The recurrence forces sequential execution: the step subgraph runs once
    per history element (``temporal_iterations``), reusing the same CUs with
    hidden state parked in MUs — this is why the paper's Indigo latency
    (805 ns) is ~10x a feed-forward model's.  The packet's feature payload
    is the flattened (T, D) observation window.
    """
    hidden = lstm.hidden_size
    dim = lstm.input_size
    w_gates = fmt.roundtrip(np.clip(lstm.w_gates, fmt.min_value, fmt.max_value))
    b_gates = fmt.roundtrip(np.clip(lstm.b_gates, fmt.min_value, fmt.max_value))
    w_out = fmt.roundtrip(np.clip(lstm.w_out, fmt.min_value, fmt.max_value))
    b_out = fmt.roundtrip(np.clip(lstm.b_out, fmt.min_value, fmt.max_value))

    from ..ml.activations import sigmoid_piecewise, tanh_piecewise

    graph = DataflowGraph(name=name, temporal_iterations=window_steps)
    window = graph.add(
        "input",
        name="window",
        width=window_steps * dim,
        # Congestion-control observations are normalized into the
        # datapath format before lowering onto the fabric.
        value_range=(fmt.min_value, fmt.max_value),
    )

    # State arrays ("h", "c") carry a leading batch axis — (B, hidden) —
    # in both paths (the scalar interpreter runs the same fns with B = 1).
    def select_step(flat: np.ndarray, state: dict) -> np.ndarray:
        t = state.get("iteration", 0)
        return flat.reshape(-1, window_steps, dim)[:, t, :]

    select_step.wants_state = True
    x_t = graph.add(
        "map", preds=[window], name="select_step", width=dim, chain_ops=1,
        fn=_single(select_step), batch_fn=select_step,
        transfer="slice",
    )

    def read_hidden(x: np.ndarray, state: dict) -> np.ndarray:
        return state.get("h", np.zeros((x.shape[0], hidden)))

    read_hidden.wants_state = True
    h_prev = graph.add(
        "map", preds=[window], name="read_h", width=hidden, chain_ops=1,
        fn=_single(read_hidden), batch_fn=read_hidden,
        transfer="state_read",
        payload={"keys": ("h",)},
    )
    concat = graph.add(
        "gather", preds=[x_t, h_prev], name="concat", width=dim + hidden
    )
    bank = graph.add(
        "const", name="w_gates", weight_values=w_gates.size + b_gates.size,
        payload={"values": np.concatenate([w_gates.ravel(), b_gates.ravel()])},
    )

    def gate_matvec(z: np.ndarray) -> np.ndarray:
        zq = fmt.roundtrip(z)
        return fmt.roundtrip(
            np.sum(zq[:, None, :] * w_gates[None, :, :], axis=-1) + b_gates
        )

    gates = graph.add(
        "dot",
        preds=[concat, bank],
        name="gate_matvec",
        parallel=4 * hidden,
        width=dim + hidden,
        chain_ops=1,
        reduce_op="sum",
        fn=_single(gate_matvec),
        batch_fn=gate_matvec,
        transfer="dot",
        payload={
            "weights": w_gates,
            "bias": b_gates,
            "in_fmt": fmt,
            "fmt": fmt,
        },
        # Gate pre-activations feed squashing nonlinearities; clipping a
        # large pre-activation only drives its sigmoid/tanh deeper into
        # the flat tail it was already in.
        waivers=("an-may-saturate",),
    )

    def cell_update(gate_pre: np.ndarray, state: dict) -> np.ndarray:
        i = fmt.roundtrip(sigmoid_piecewise(gate_pre[:, 0 * hidden : 1 * hidden]))
        f = fmt.roundtrip(sigmoid_piecewise(gate_pre[:, 1 * hidden : 2 * hidden]))
        g = fmt.roundtrip(tanh_piecewise(gate_pre[:, 2 * hidden : 3 * hidden]))
        o = fmt.roundtrip(sigmoid_piecewise(gate_pre[:, 3 * hidden : 4 * hidden]))
        c_prev = state.get("c", np.zeros((gate_pre.shape[0], hidden)))
        c = fmt.roundtrip(f * c_prev + i * g)
        h = fmt.roundtrip(o * tanh_piecewise(c))
        state["c"] = c
        state["h"] = h
        return h

    cell_update.wants_state = True
    # Gate nonlinearities run element-wise in the lanes right after the
    # matvec (no global gather is needed): 3 piecewise sigmoids + 1
    # piecewise tanh over 4H values in parallel, then the cell/hidden
    # updates (2 muls + add; tanh; mul) fused into the tail of the chain.
    sig_spec = ACTIVATIONS["sigmoid_pw"]
    updated_h = graph.add(
        "map",
        preds=[gates],
        name="cell_update",
        width=4 * hidden,
        chain_ops=sig_spec.chain_ops + 6,
        fn=_single(cell_update),
        batch_fn=cell_update,
        # h = o * tanh(c) with o in [0, 1]: certified by construction,
        # independent of how far the carried cell state wanders.
        value_range=(-1.0, 1.0),
        payload={
            "state_ranges": {
                "h": (-1.0, 1.0),
                "c": (fmt.min_value, fmt.max_value),
            },
        },
    )

    # The action head runs once, after the final history element.
    def action_head(h: np.ndarray) -> np.ndarray:
        return fmt.roundtrip(
            np.sum(h[:, None, :] * w_out[None, :, :], axis=-1) + b_out
        )

    def argmax(logits: np.ndarray) -> np.ndarray:
        return np.argmax(logits, axis=-1, keepdims=True)

    head_bank = graph.add(
        "const", name="w_out", weight_values=w_out.size + b_out.size,
        payload={"values": np.concatenate([w_out.ravel(), b_out.ravel()])},
    )
    head = graph.add(
        "dot",
        preds=[updated_h, head_bank],
        name="action_head",
        parallel=lstm.n_actions,
        width=hidden,
        chain_ops=1,
        reduce_op="sum",
        fn=_single(action_head),
        batch_fn=action_head,
        epilogue=True,
        transfer="dot",
        payload={
            "weights": w_out,
            "bias": b_out,
            "in_fmt": fmt,
            "fmt": fmt,
        },
    )
    head_vec = graph.add(
        "gather", preds=[head], name="gather_head", width=lstm.n_actions, epilogue=True
    )
    action = graph.add(
        "reduce",
        preds=[head_vec],
        name="argmax",
        width=lstm.n_actions,
        reduce_op="argmax",
        fn=argmax,
        batch_fn=argmax,
        epilogue=True,
    )
    graph.add("output", preds=[action], name="action", width=1, epilogue=True)
    return _verified(graph)


# ----------------------------------------------------------------------
# Microbenchmarks (Table 6 / Table 7)
# ----------------------------------------------------------------------
def inner_product_graph(width: int = 16, fmt: FixedPointFormat = FIX8) -> DataflowGraph:
    """A 16-element inner product — the perceptron core (Table 6)."""
    rng = np.random.default_rng(width)
    weights = fmt.roundtrip(rng.uniform(-1, 1, size=width))

    def dot_fn(x: np.ndarray) -> np.ndarray:
        return fmt.roundtrip(
            np.sum(fmt.roundtrip(x) * weights, axis=-1, keepdims=True)
        )

    graph = DataflowGraph(name=f"inner_product_{width}")
    features = graph.add(
        "input",
        name="x",
        width=width,
        # Table 6 microbenchmarks drive unit-range stimulus.
        value_range=(-1.0, 1.0),
    )
    bank = graph.add(
        "const", name="w", weight_values=width, payload={"values": weights}
    )
    dot = graph.add(
        "dot",
        preds=[features, bank],
        name="dot",
        parallel=1,
        width=width,
        chain_ops=1,
        reduce_op="sum",
        fn=dot_fn,
        batch_fn=dot_fn,
        transfer="dot",
        payload={"weights": weights.reshape(1, -1), "in_fmt": fmt, "fmt": fmt},
        # Sum(|w|) over 16 unit-range lanes can exceed the Q3.4 range;
        # the perceptron microbenchmark measures latency, and a clipped
        # score keeps its sign.
        waivers=("an-may-saturate",),
    )
    graph.add("output", preds=[dot], name="y", width=1)
    return _verified(graph)


def activation_graph(
    spec_name: str, width: int = 16, fmt: FixedPointFormat = FIX8
) -> DataflowGraph:
    """A standalone line-rate activation (Table 6 / Fig. 10)."""
    spec = ACTIVATIONS[spec_name]

    # Sound output range for the table contents: sample the reference
    # implementation over the clipped domain and pad by a Lipschitz step
    # (one-time lowering cost; the range transfer treats it as certified).
    _xs = np.linspace(-8.0, 8.0, 1025)
    _ys = np.asarray(spec.fn(_xs), dtype=np.float64)
    _pad = 2 * 16.0 / 1024
    lut_range = (float(_ys.min()) - _pad, float(_ys.max()) + _pad)

    # All three stages are element-wise: the same callables serve the
    # scalar and the (B, width) batched path.
    def clip_addr(x: np.ndarray) -> np.ndarray:
        return np.clip(x, -8.0, 8.0)

    def table_read(x: np.ndarray) -> np.ndarray:
        return fmt.roundtrip(spec.fn(x))

    def identity(y: np.ndarray) -> np.ndarray:
        return y

    graph = DataflowGraph(name=spec_name)
    features = graph.add(
        "input",
        name="x",
        width=width,
        # Activation sweeps drive the datapath format's full range.
        value_range=(fmt.min_value, fmt.max_value),
    )
    cursor = features
    if spec.lut_tables:
        # Address computation, MU table read, rescale.
        addr = graph.add(
            "map", preds=[cursor], name="lut_addr", width=width, chain_ops=3,
            fn=clip_addr, batch_fn=clip_addr,
            transfer="clip",
            payload={"clip": (-8.0, 8.0)},
        )
        table = graph.add(
            "lut", preds=[addr], name="table", width=width, weight_values=1024,
            fn=table_read, batch_fn=table_read,
            transfer="lut",
            payload={
                "domain": (-8.0, 8.0),
                "range": lut_range,
                "fmt": fmt,
            },
        )
        cursor = graph.add(
            "map", preds=[table], name="rescale", width=width, chain_ops=3,
            fn=identity, batch_fn=identity,
            transfer="identity",
        )
    else:
        cursor = graph.add(
            "map",
            preds=[cursor],
            name=spec.name,
            width=width,
            chain_ops=spec.chain_ops,
            fn=table_read,
            batch_fn=table_read,
            transfer=spec.name if spec.name in _ACT_TRANSFER_NAMES else None,
            payload={"fmt": fmt},
        )
    graph.add("output", preds=[cursor], name="y", width=width)
    return _verified(graph)


def conv1d_graph(
    n_outputs: int = 8,
    kernel: int = 2,
    unroll: int = 8,
    fmt: FixedPointFormat = FIX8,
) -> DataflowGraph:
    """A 1-D convolution, unrolled ``unroll``-way (Tables 6-7).

    Convolution "does not map well to vectorized MapReduce (there are
    multiple small inner reductions)": each output needs window extraction
    (lane shifts), a tiny ``kernel``-wide dot, and an accumulate/realign
    step.  ``unroll`` output slices execute in space; the remaining
    ``n_outputs / unroll`` iterations share them in time, dividing line
    rate accordingly.
    """
    if n_outputs % unroll:
        raise ValueError("unroll must divide n_outputs")
    rng = np.random.default_rng(kernel)
    taps = fmt.roundtrip(rng.uniform(-1, 1, size=kernel))
    width_in = n_outputs + kernel - 1

    # Slicing the last axis and reducing along it keeps one callable valid
    # for both the scalar (width,) and batched (B, width) layouts.
    def window_fn(s: int):
        return lambda x: x[..., s : s + kernel]

    def identity(w: np.ndarray) -> np.ndarray:
        return w

    def tap_dot(w: np.ndarray) -> np.ndarray:
        return fmt.roundtrip(np.sum(w * taps, axis=-1, keepdims=True))

    graph = DataflowGraph(name=f"conv1d_u{unroll}")
    graph.initiation_interval = n_outputs // unroll
    features = graph.add(
        "input",
        name="x",
        width=width_in,
        # Table 6 microbenchmarks drive unit-range stimulus.
        value_range=(-1.0, 1.0),
    )
    bank = graph.add(
        "const", name="taps", weight_values=kernel, payload={"values": taps}
    )
    slices = []
    for s in range(unroll):
        slice_fn = window_fn(s)
        window = graph.add(
            "map", preds=[features], name=f"window{s}", width=kernel, chain_ops=2,
            fn=slice_fn, batch_fn=slice_fn,
            transfer="slice",
        )
        align = graph.add(
            "map", preds=[window], name=f"align{s}", width=kernel, chain_ops=2,
            fn=identity, batch_fn=identity,
            transfer="identity",
        )
        dot = graph.add(
            "mapreduce",
            preds=[align, bank],
            name=f"tap_dot{s}",
            parallel=1,
            width=kernel,
            chain_ops=1,
            reduce_op="sum",
            fn=tap_dot,
            batch_fn=tap_dot,
            transfer="dot",
            payload={"weights": taps.reshape(1, -1), "fmt": fmt},
        )
        accum = graph.add(
            "map", preds=[dot], name=f"accum{s}", width=1, chain_ops=1,
            fn=identity, batch_fn=identity,
            transfer="identity",
        )
        slices.append(accum)
    gathered = graph.add("gather", preds=slices, name="gather_out", width=unroll)
    graph.add("output", preds=[gathered], name="y", width=unroll)
    return _verified(graph)
