"""MapReduce abstraction: DSL, dataflow IR, and model frontends."""

from .dsl import MapReduceControlBlock, PatternTrace
from .frontend import (
    HW_ACTIVATION_FOR,
    activation_graph,
    conv1d_graph,
    dnn_graph,
    inner_product_graph,
    kmeans_graph,
    lstm_graph,
    svm_graph,
)
from .ir import NODE_KINDS, DataflowGraph, Node
from .ops import MAP_OPS, REDUCE_OPS, MapOp, ReduceOp, reduce_tree_depth

__all__ = [
    "MapReduceControlBlock",
    "PatternTrace",
    "HW_ACTIVATION_FOR",
    "activation_graph",
    "conv1d_graph",
    "dnn_graph",
    "inner_product_graph",
    "kmeans_graph",
    "lstm_graph",
    "svm_graph",
    "NODE_KINDS",
    "DataflowGraph",
    "Node",
    "MAP_OPS",
    "REDUCE_OPS",
    "MapOp",
    "ReduceOp",
    "reduce_tree_depth",
]
