"""In-band network telemetry (INT).

Section 3.1: "in-band network telemetry (INT) — measurements embedded into
packets — provides switches with a view of global network state ... models
can examine the packet's entire history."  Each hop pushes a metadata frame
onto the packet's INT stack; a Taurus switch pops the stack into model
features (queue depths, hop latencies, link utilization along the path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IntFrame", "IntStack", "int_features"]


@dataclass(frozen=True)
class IntFrame:
    """One hop's telemetry record."""

    switch_id: int
    queue_depth: int
    hop_latency_ns: float
    link_utilization: float  # [0, 1]
    timestamp_ns: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.link_utilization <= 1.0:
            raise ValueError("link_utilization must be in [0, 1]")
        if self.queue_depth < 0 or self.hop_latency_ns < 0:
            raise ValueError("telemetry values must be non-negative")


@dataclass
class IntStack:
    """The per-packet INT header stack (bounded, as real INT is)."""

    max_hops: int = 8
    frames: list[IntFrame] = field(default_factory=list)

    def push(self, frame: IntFrame) -> bool:
        """Add this hop's frame; returns False when the stack is full
        (further hops stop appending, matching the INT spec)."""
        if len(self.frames) >= self.max_hops:
            return False
        self.frames.append(frame)
        return True

    @property
    def path_latency_ns(self) -> float:
        return sum(f.hop_latency_ns for f in self.frames)

    @property
    def max_queue_depth(self) -> int:
        return max((f.queue_depth for f in self.frames), default=0)

    @property
    def bottleneck_utilization(self) -> float:
        return max((f.link_utilization for f in self.frames), default=0.0)

    def __len__(self) -> int:
        return len(self.frames)


def int_features(stack: IntStack) -> np.ndarray:
    """Summarize an INT stack into a fixed-width model feature vector.

    Returns (hops, total path latency us, max queue depth (log2), bottleneck
    utilization) — global-state features the paper argues enable per-packet
    predictions beyond local switch state.
    """
    depth = stack.max_queue_depth
    return np.array(
        [
            float(len(stack)),
            stack.path_latency_ns / 1e3,
            float(np.log2(depth + 1)),
            stack.bottleneck_utilization,
        ]
    )
