"""In-band network telemetry support."""

from .int_headers import IntFrame, IntStack, int_features

__all__ = ["IntFrame", "IntStack", "int_features"]
