"""KMeans clustering for IoT traffic classification.

The paper's first application benchmark "implements KMeans clustering using
11 features and five categories" (Section 5.1.2).  Training is Lloyd's
algorithm with k-means++ seeding; data-plane inference is a
nearest-centroid computation — per centroid a (subtract, square, reduce-add)
MapReduce followed by an arg-min reduce, which is exactly how the frontend
lowers it onto CUs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's k-means with k-means++ initialization and restarts.

    ``n_init`` independent runs are performed and the one with the lowest
    inertia kept (Lloyd's algorithm is sensitive to initialization).
    """

    def __init__(
        self,
        n_clusters: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        n_init: int = 5,
        seed: int = 0,
    ):
        if n_clusters <= 0:
            raise ValueError("n_clusters must be positive")
        if n_init <= 0:
            raise ValueError("n_init must be positive")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.tol = tol
        self.n_init = n_init
        self.rng = np.random.default_rng(seed)
        self.centroids: np.ndarray | None = None
        self.n_iter_: int = 0

    def _init_centroids(self, x: np.ndarray) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by D^2 sampling."""
        n = len(x)
        first = int(self.rng.integers(n))
        centroids = [x[first]]
        for __ in range(1, self.n_clusters):
            d2 = np.min(
                [np.sum((x - c) ** 2, axis=1) for c in centroids], axis=0
            )
            total = d2.sum()
            if total <= 0:
                centroids.append(x[int(self.rng.integers(n))])
                continue
            probs = d2 / total
            centroids.append(x[int(self.rng.choice(n, p=probs))])
        return np.array(centroids)

    def fit(self, x: np.ndarray) -> "KMeans":
        """Cluster ``x`` of shape (n, d); keeps the best of ``n_init`` runs."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if len(x) < self.n_clusters:
            raise ValueError("fewer samples than clusters")
        best_inertia = np.inf
        best_centroids: np.ndarray | None = None
        best_iters = 0
        for __ in range(self.n_init):
            centroids, iters = self._lloyd(x)
            labels = self._nearest(x, centroids)
            inertia = float(np.sum((x - centroids[labels]) ** 2))
            if inertia < best_inertia:
                best_inertia = inertia
                best_centroids = centroids
                best_iters = iters
        self.centroids = best_centroids
        self.n_iter_ = best_iters
        return self

    def _lloyd(self, x: np.ndarray) -> tuple[np.ndarray, int]:
        centroids = self._init_centroids(x)
        iters = 0
        for iteration in range(self.max_iter):
            labels = self._nearest(x, centroids)
            new_centroids = centroids.copy()
            for k in range(self.n_clusters):
                members = x[labels == k]
                if len(members):
                    new_centroids[k] = members.mean(axis=0)
            shift = float(np.max(np.abs(new_centroids - centroids)))
            centroids = new_centroids
            iters = iteration + 1
            if shift < self.tol:
                break
        return centroids, iters

    @staticmethod
    def _nearest(x: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        d2 = (
            np.sum(x * x, axis=1)[:, None]
            - 2.0 * x @ centroids.T
            + np.sum(centroids * centroids, axis=1)[None, :]
        )
        return d2.argmin(axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Assign each sample to its nearest centroid."""
        if self.centroids is None:
            raise RuntimeError("model is not fitted")
        return self._nearest(np.atleast_2d(np.asarray(x, dtype=np.float64)), self.centroids)

    def inertia(self, x: np.ndarray) -> float:
        """Sum of squared distances to assigned centroids."""
        if self.centroids is None:
            raise RuntimeError("model is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        labels = self.predict(x)
        return float(np.sum((x - self.centroids[labels]) ** 2))

    def weight_bytes(self, bits: int = 8) -> int:
        """Centroid table size at the given precision."""
        if self.centroids is None:
            return 0
        return self.centroids.size * bits // 8
