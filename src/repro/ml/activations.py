"""Activation functions and their hardware lowerings.

The paper evaluates seven line-rate activation implementations (Table 6,
Fig. 10): exact-by-construction ReLU/LeakyReLU, Taylor-series tanh/sigmoid
("TanhExp"/"SigmoidExp"), piecewise-linear approximations ("TanhPW"/
"SigmoidPW"), and a 1024-entry lookup table ("ActLUT").  Each variant is an
:class:`ActivationSpec` carrying

* a float reference implementation (for training),
* the hardware approximation (what the fabric actually computes),
* its *op-chain length* — the number of dependent element-wise map
  operations in the longest basic block, which determines how many CU stages
  (and therefore CUs) the compiler must allocate (Fig. 10), and
* whether it needs an MU-resident lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "ActivationSpec",
    "ACTIVATIONS",
    "activation",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "softmax",
    "sigmoid_taylor",
    "tanh_taylor",
    "sigmoid_piecewise",
    "tanh_piecewise",
    "build_lut",
    "lut_activation",
]


# ----------------------------------------------------------------------
# Exact float implementations (used for training and as references)
# ----------------------------------------------------------------------
def relu(x: np.ndarray) -> np.ndarray:
    """max(x, 0)."""
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, slope: float = 0.125) -> np.ndarray:
    """x for x >= 0, slope*x otherwise (slope is a power of two for HW)."""
    return np.where(x >= 0, x, slope * x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def softmax(x: np.ndarray) -> np.ndarray:
    """Softmax along the last axis (shift-stabilized)."""
    x = np.asarray(x, dtype=np.float64)
    e = np.exp(x - x.max(axis=-1, keepdims=True))
    return e / e.sum(axis=-1, keepdims=True)


# ----------------------------------------------------------------------
# Taylor-series variants ("Exp" in the paper): range-reduced exponential
# ----------------------------------------------------------------------
def _exp_taylor(x: np.ndarray, terms: int = 6) -> np.ndarray:
    """exp(x) via range reduction (x = k*ln2 + r) and a Taylor polynomial.

    This is the scheme a fixed-function pipeline uses: the polynomial is a
    straight-line chain of multiply-adds (Horner form) plus a shift by k.
    """
    x = np.asarray(x, dtype=np.float64)
    k = np.floor(x / np.log(2.0) + 0.5)
    r = x - k * np.log(2.0)
    # Horner evaluation of sum r^i / i!
    poly = np.ones_like(r)
    for i in range(terms, 0, -1):
        poly = poly * r / i + 1.0
    return poly * np.exp2(k)


def sigmoid_taylor(x: np.ndarray) -> np.ndarray:
    """Sigmoid built from the Taylor-series exponential (SigmoidExp)."""
    x = np.clip(np.asarray(x, dtype=np.float64), -8.0, 8.0)
    return 1.0 / (1.0 + _exp_taylor(-x))


def tanh_taylor(x: np.ndarray) -> np.ndarray:
    """tanh built from the Taylor-series exponential (TanhExp)."""
    x = np.clip(np.asarray(x, dtype=np.float64), -4.0, 4.0)
    e2 = _exp_taylor(2.0 * x)
    return (e2 - 1.0) / (e2 + 1.0)


# ----------------------------------------------------------------------
# Piecewise-linear variants ("PW"): segments with power-of-two slopes
# ----------------------------------------------------------------------
_SIGMOID_SEGMENTS = (
    # (x_low, slope, intercept) for x in [x_low, next x_low); slopes are
    # powers of two so the hardware lowers each segment to shift+add.
    (-np.inf, 0.0, 0.0),
    (-4.0, 0.03125, 0.145),
    (-2.0, 0.125, 0.35),
    (-1.0, 0.25, 0.5),
    (1.0, 0.125, 0.65),
    (2.0, 0.03125, 0.855),
    (4.0, 0.0, 1.0),
)


def sigmoid_piecewise(x: np.ndarray) -> np.ndarray:
    """7-segment piecewise-linear sigmoid (SigmoidPW)."""
    x = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x)
    for x_low, slope, intercept in _SIGMOID_SEGMENTS:
        mask = x >= x_low
        out = np.where(mask, slope * x + intercept, out)
    return np.clip(out, 0.0, 1.0)


def tanh_piecewise(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear tanh via the sigmoid identity (TanhPW)."""
    return 2.0 * sigmoid_piecewise(2.0 * np.asarray(x, dtype=np.float64)) - 1.0


# ----------------------------------------------------------------------
# LUT variant (ActLUT): 1024 x 8-bit entries in an MU
# ----------------------------------------------------------------------
def build_lut(
    fn: Callable[[np.ndarray], np.ndarray],
    x_min: float = -8.0,
    x_max: float = 8.0,
    entries: int = 1024,
    value_bits: int = 8,
) -> np.ndarray:
    """Precompute a lookup table for ``fn`` (paper: 1024 8-bit entries)."""
    xs = np.linspace(x_min, x_max, entries)
    ys = fn(xs)
    levels = (1 << value_bits) - 1
    lo, hi = float(ys.min()), float(ys.max())
    span = (hi - lo) or 1.0
    codes = np.rint((ys - lo) / span * levels)
    return lo + codes / levels * span


def lut_activation(
    fn: Callable[[np.ndarray], np.ndarray],
    x_min: float = -8.0,
    x_max: float = 8.0,
    entries: int = 1024,
) -> Callable[[np.ndarray], np.ndarray]:
    """Return a callable that evaluates ``fn`` through a quantized LUT."""
    table = build_lut(fn, x_min, x_max, entries)

    def apply(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        idx = np.rint((x - x_min) / (x_max - x_min) * (entries - 1))
        idx = np.clip(idx, 0, entries - 1).astype(np.int64)
        return table[idx]

    return apply


# ----------------------------------------------------------------------
# Hardware activation registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ActivationSpec:
    """A line-rate activation implementation.

    ``chain_ops`` is the length of the dependent element-wise op chain the
    compiler must schedule: CUs provide ``stages`` map slots each, so the
    block uses ``ceil(chain_ops / stages)`` CUs (Fig. 10).  ``lut_tables``
    counts MU-resident lookup tables (ActLUT only).
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    reference: Callable[[np.ndarray], np.ndarray]
    chain_ops: int
    lut_tables: int = 0

    def error_vs_reference(self, xs: np.ndarray) -> float:
        """Max absolute approximation error over a probe grid."""
        return float(np.max(np.abs(self.fn(xs) - self.reference(xs))))


ACTIVATIONS: dict[str, ActivationSpec] = {
    # max(x,0): a single select op.
    "relu": ActivationSpec("relu", relu, relu, chain_ops=1),
    # mul by power-of-two slope + select.
    "leaky_relu": ActivationSpec("leaky_relu", leaky_relu, leaky_relu, chain_ops=2),
    # Range reduction (3 ops) + 6-term Horner (12 ops) + reconstruction +
    # tanh algebra (divide via iteration): longest basic block ~22 ops.
    "tanh_exp": ActivationSpec("tanh_exp", tanh_taylor, tanh, chain_ops=22),
    # Sigmoid needs an extra negate/offset + reciprocal refinement: ~26 ops.
    "sigmoid_exp": ActivationSpec("sigmoid_exp", sigmoid_taylor, sigmoid, chain_ops=26),
    # Segment compare/select ladder (7 segments -> ~11 dependent ops after
    # the 2x input/output scaling of the tanh identity).
    "tanh_pw": ActivationSpec("tanh_pw", tanh_piecewise, tanh, chain_ops=11),
    "sigmoid_pw": ActivationSpec(
        "sigmoid_pw", sigmoid_piecewise, sigmoid, chain_ops=14
    ),
    # Address computation (scale, clamp, round) + table read + rescale: ~6
    # ops across two CUs plus one MU table.
    "act_lut": ActivationSpec(
        "act_lut", lut_activation(tanh), tanh, chain_ops=6, lut_tables=1
    ),
}


def activation(name: str) -> Callable[[np.ndarray], np.ndarray]:
    """Look up an exact activation by the name used in model configs."""
    table: dict[str, Callable[[np.ndarray], np.ndarray]] = {
        "relu": relu,
        "leaky_relu": leaky_relu,
        "sigmoid": sigmoid,
        "tanh": tanh,
        "linear": lambda x: x,
        "softmax": softmax,
    }
    if name not in table:
        raise ValueError(f"unknown activation: {name!r}")
    return table[name]
