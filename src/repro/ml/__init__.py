"""From-scratch numpy ML library (DNN, SVM, KMeans, LSTM + training)."""

from .activations import (
    ACTIVATIONS,
    ActivationSpec,
    activation,
    build_lut,
    leaky_relu,
    lut_activation,
    relu,
    sigmoid,
    sigmoid_piecewise,
    sigmoid_taylor,
    softmax,
    tanh,
    tanh_piecewise,
    tanh_taylor,
)
from .dnn import DNN, anomaly_detection_dnn, iot_classifier_dnn
from .kmeans import KMeans
from .layers import Dense
from .lstm import LSTM, indigo_lstm
from .metrics import (
    accuracy,
    confusion_matrix,
    detection_rate,
    f1_score,
    macro_f1,
    precision_recall,
)
from .svm import RBFKernelSVM
from .training import (
    SGD,
    Adam,
    TrainLog,
    binary_cross_entropy,
    iterate_minibatches,
    mse_loss,
    softmax_cross_entropy,
)

__all__ = [
    "ACTIVATIONS",
    "ActivationSpec",
    "activation",
    "build_lut",
    "leaky_relu",
    "lut_activation",
    "relu",
    "sigmoid",
    "sigmoid_piecewise",
    "sigmoid_taylor",
    "softmax",
    "tanh",
    "tanh_piecewise",
    "tanh_taylor",
    "DNN",
    "anomaly_detection_dnn",
    "iot_classifier_dnn",
    "KMeans",
    "Dense",
    "LSTM",
    "indigo_lstm",
    "accuracy",
    "confusion_matrix",
    "detection_rate",
    "f1_score",
    "macro_f1",
    "precision_recall",
    "RBFKernelSVM",
    "SGD",
    "Adam",
    "TrainLog",
    "binary_cross_entropy",
    "iterate_minibatches",
    "mse_loss",
    "softmax_cross_entropy",
]
