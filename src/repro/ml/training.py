"""Optimizers, losses, and the minibatch training loop.

The control plane trains models offline and pushes weight updates to the
data plane (Fig. 1); the online-training study (Figs. 13-14) sweeps batch
size and epoch count.  This module provides the from-scratch training
machinery both paths share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SGD",
    "Adam",
    "softmax_cross_entropy",
    "binary_cross_entropy",
    "mse_loss",
    "iterate_minibatches",
    "TrainLog",
]


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.05, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, param: np.ndarray, grad: np.ndarray, key: int) -> None:
        """Update ``param`` in place using ``grad``; ``key`` identifies it."""
        if self.momentum:
            vel = self._velocity.get(key)
            if vel is None:
                vel = np.zeros_like(param)
            vel = self.momentum * vel - self.lr * grad
            self._velocity[key] = vel
            param += vel
        else:
            param -= self.lr * grad


class Adam:
    """Adam optimizer (Kingma & Ba) — used for the LSTM, which SGD trains
    poorly at small batch sizes."""

    def __init__(
        self, lr: float = 0.01, beta1: float = 0.9, beta2: float = 0.999, eps: float = 1e-8
    ):
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def begin_step(self) -> None:
        """Advance the shared timestep (call once per batch)."""
        self._t += 1

    def step(self, param: np.ndarray, grad: np.ndarray, key: int) -> None:
        if self._t == 0:
            self._t = 1
        m = self._m.get(key, np.zeros_like(param))
        v = self._v.get(key, np.zeros_like(param))
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        self._m[key], self._v[key] = m, v
        m_hat = m / (1 - self.beta1**self._t)
        v_hat = v / (1 - self.beta2**self._t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy over integer labels; returns (loss, dL/dlogits)."""
    logits = np.atleast_2d(logits)
    labels = np.asarray(labels, dtype=np.int64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    nll = -np.log(np.clip(probs[np.arange(n), labels], 1e-12, None))
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return float(nll.mean()), grad / n


def binary_cross_entropy(
    probs: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """BCE for sigmoid outputs; returns (loss, dL/dlogit) fused through the
    sigmoid (grad w.r.t. the pre-activation)."""
    probs = np.asarray(probs, dtype=np.float64).reshape(-1)
    labels = np.asarray(labels, dtype=np.float64).reshape(-1)
    clipped = np.clip(probs, 1e-9, 1 - 1e-9)
    loss = -np.mean(labels * np.log(clipped) + (1 - labels) * np.log(1 - clipped))
    grad = (probs - labels).reshape(-1, 1) / probs.shape[0]
    return float(loss), grad


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean squared error; returns (loss, dL/dpred)."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    diff = pred - target
    return float(np.mean(diff * diff)), 2.0 * diff / diff.size


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
):
    """Yield (x_batch, y_batch) pairs covering the dataset once."""
    n = len(x)
    order = rng.permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        yield x[idx], y[idx]


@dataclass
class TrainLog:
    """Per-epoch training history."""

    losses: list[float] = field(default_factory=list)
    metrics: list[float] = field(default_factory=list)

    def record(self, loss: float, metric: float | None = None) -> None:
        self.losses.append(loss)
        if metric is not None:
            self.metrics.append(metric)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")
