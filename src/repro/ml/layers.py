"""Dense layers with manual backpropagation.

These are the building blocks of the paper's DNN benchmarks (the
anomaly-detection DNN of Tang et al. and the TMC IoT classifiers of
Table 3).  Implemented from scratch on numpy: forward pass, gradient pass,
and Glorot initialization.
"""

from __future__ import annotations

import numpy as np

from .activations import activation as _activation_fn

__all__ = ["Dense"]


class Dense:
    """A fully-connected layer ``act(W x + b)``.

    ``weights`` has shape (out_features, in_features) — the matrix-vector
    orientation Taurus's MapReduce block executes (one neuron per outer-map
    iteration, Fig. 4).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        limit = np.sqrt(6.0 / (in_features + out_features))
        self.weights = rng.uniform(-limit, limit, size=(out_features, in_features))
        self.bias = np.zeros(out_features)
        self.activation = activation
        self._act = _activation_fn(activation)
        # Cached forward values for the backward pass.
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weights.shape[1]

    @property
    def out_features(self) -> int:
        return self.weights.shape[0]

    @property
    def n_params(self) -> int:
        return self.weights.size + self.bias.size

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Compute ``act(x @ W.T + b)`` for a batch ``x`` of shape (n, in)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        z = x @ self.weights.T + self.bias
        if train:
            self._x, self._z = x, z
        return self._act(z)

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop through the layer.

        ``grad_out`` is dL/d(act output).  Returns (grad_x, grad_w, grad_b).
        Must follow a ``forward(..., train=True)`` call.
        """
        if self._x is None or self._z is None:
            raise RuntimeError("backward() called before forward(train=True)")
        grad_z = grad_out * self._activation_grad(self._z)
        grad_w = grad_z.T @ self._x
        grad_b = grad_z.sum(axis=0)
        grad_x = grad_z @ self.weights
        return grad_x, grad_w, grad_b

    def backward_from_logits(
        self, grad_z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop when the caller already differentiated through the
        activation (softmax/sigmoid + cross-entropy fuse into grad_z)."""
        if self._x is None:
            raise RuntimeError("backward called before forward(train=True)")
        grad_w = grad_z.T @ self._x
        grad_b = grad_z.sum(axis=0)
        grad_x = grad_z @ self.weights
        return grad_x, grad_w, grad_b

    def _activation_grad(self, z: np.ndarray) -> np.ndarray:
        if self.activation == "relu":
            return (z > 0).astype(np.float64)
        if self.activation == "leaky_relu":
            return np.where(z > 0, 1.0, 0.125)
        if self.activation == "linear":
            return np.ones_like(z)
        if self.activation == "sigmoid":
            s = self._act(z)
            return s * (1.0 - s)
        if self.activation == "tanh":
            t = np.tanh(z)
            return 1.0 - t * t
        raise ValueError(
            f"cannot differentiate through activation {self.activation!r}; "
            "use backward_from_logits for softmax outputs"
        )
