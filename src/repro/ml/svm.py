"""Kernel SVM for anomaly detection.

The paper's first anomaly-detection model is "an SVM with eight input
features selected from the KDD dataset and a radial-basis function to model
nonlinear relationships" (Section 5.1.2).  We implement a kernelized SVM
trained with the Pegasos stochastic sub-gradient algorithm
(Shalev-Shwartz et al.), with an optional support-vector budget: hardware
inference needs a fixed, small SV set resident in MUs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RBFKernelSVM"]


def _rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """K[i, j] = exp(-gamma * ||a_i - b_j||^2)."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    sq = (
        np.sum(a * a, axis=1)[:, None]
        + np.sum(b * b, axis=1)[None, :]
        - 2.0 * a @ b.T
    )
    return np.exp(-gamma * np.maximum(sq, 0.0))


class RBFKernelSVM:
    """Binary RBF-kernel SVM with budgeted support vectors.

    Labels are {0, 1} externally and mapped to {-1, +1} internally.  The
    decision function is ``f(x) = sum_i alpha_i K(sv_i, x) + b``; predictions
    are ``f(x) >= 0``.
    """

    def __init__(
        self,
        gamma: float = 0.5,
        reg: float = 1e-4,
        epochs: int = 5,
        budget: int = 64,
        seed: int = 0,
    ):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        if budget <= 0:
            raise ValueError("budget must be positive")
        self.gamma = gamma
        self.reg = reg
        self.epochs = epochs
        self.budget = budget
        self.rng = np.random.default_rng(seed)
        self.support_vectors: np.ndarray | None = None
        self.alphas: np.ndarray | None = None
        self.bias: float = 0.0

    # ------------------------------------------------------------------
    # Training (kernel Pegasos with budget maintenance)
    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "RBFKernelSVM":
        """Train on features ``x`` (n, d) and labels ``y`` in {0, 1}."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        signs = np.where(np.asarray(y) > 0, 1.0, -1.0)
        n = len(x)
        if n == 0:
            raise ValueError("empty training set")
        sv_x = np.empty((0, x.shape[1]))
        sv_a = np.empty(0)
        t = 0
        for __ in range(self.epochs):
            for i in self.rng.permutation(n):
                t += 1
                eta = 1.0 / (self.reg * t)
                # Decay existing coefficients (the (1 - eta*reg) step).
                sv_a *= max(0.0, 1.0 - eta * self.reg)
                margin = 0.0
                if len(sv_x):
                    k = _rbf_kernel(x[i : i + 1], sv_x, self.gamma)[0]
                    margin = float(k @ sv_a)
                if signs[i] * margin < 1.0:
                    sv_x = np.vstack([sv_x, x[i : i + 1]])
                    sv_a = np.append(sv_a, eta * signs[i])
                    if len(sv_x) > self.budget:
                        drop = int(np.argmin(np.abs(sv_a)))
                        sv_x = np.delete(sv_x, drop, axis=0)
                        sv_a = np.delete(sv_a, drop)
        self.support_vectors = sv_x
        self.alphas = sv_a
        self._fit_bias(x, signs)
        return self

    def _fit_bias(self, x: np.ndarray, signs: np.ndarray) -> None:
        """Pick the intercept that maximizes training accuracy."""
        scores = self._raw_scores(x)
        order = np.argsort(scores)
        sorted_scores = scores[order]
        sorted_signs = signs[order]
        # Candidate thresholds between consecutive scores.
        best_acc, best_b = -1.0, 0.0
        neg_below = 0
        pos_total = int(np.sum(sorted_signs > 0))
        neg_total = len(signs) - pos_total
        pos_above = pos_total
        for i in range(len(signs) + 1):
            acc = (neg_below + pos_above) / len(signs)
            if acc > best_acc:
                best_acc = acc
                if i == 0:
                    thr = sorted_scores[0] - 1.0
                elif i == len(signs):
                    thr = sorted_scores[-1] + 1.0
                else:
                    thr = 0.5 * (sorted_scores[i - 1] + sorted_scores[i])
                best_b = -thr
            if i < len(signs):
                if sorted_signs[i] > 0:
                    pos_above -= 1
                else:
                    neg_below += 1
        self.bias = float(best_b)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _raw_scores(self, x: np.ndarray) -> np.ndarray:
        if self.support_vectors is None or self.alphas is None:
            raise RuntimeError("model is not fitted")
        if len(self.support_vectors) == 0:
            return np.zeros(len(np.atleast_2d(x)))
        k = _rbf_kernel(np.atleast_2d(x), self.support_vectors, self.gamma)
        return k @ self.alphas

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed distance-like score; >= 0 means the positive class."""
        return self._raw_scores(x) + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard {0, 1} labels."""
        return (self.decision_function(x) >= 0.0).astype(np.int64)

    @property
    def n_support(self) -> int:
        return 0 if self.support_vectors is None else len(self.support_vectors)

    def weight_bytes(self, bits: int = 8) -> int:
        """Size of the SV set + coefficients at the given precision."""
        if self.support_vectors is None:
            return 0
        values = self.support_vectors.size + self.alphas.size + 1
        return values * bits // 8
