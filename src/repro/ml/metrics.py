"""Evaluation metrics used throughout the paper's evaluation.

The end-to-end study (Table 8, Figs. 13-14) scores anomaly detection with an
F1 score "which takes into account the number of identified anomalies, missed
anomalies, and benign packets incorrectly marked as anomalous"; Table 3 uses
plain accuracy.  All metrics are implemented from scratch on numpy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "precision_recall",
    "f1_score",
    "macro_f1",
    "detection_rate",
]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly-matching labels."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = samples with true class i predicted as j."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    mat = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(mat, (y_true, y_pred), 1)
    return mat


def precision_recall(
    y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1
) -> tuple[float, float]:
    """Binary precision and recall for the ``positive`` class."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = int(np.sum((y_pred == positive) & (y_true == positive)))
    fp = int(np.sum((y_pred == positive) & (y_true != positive)))
    fn = int(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return precision, recall


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Binary F1 (harmonic mean of precision and recall), in [0, 1]."""
    precision, recall = precision_recall(y_true, y_pred, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> float:
    """Unweighted mean of per-class F1 scores."""
    scores = [f1_score(y_true, y_pred, positive=c) for c in range(n_classes)]
    return float(np.mean(scores))


def detection_rate(y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1) -> float:
    """Fraction of true positives that were flagged (recall, as a percent
    this is the paper's "Detected (%)" column)."""
    _, recall = precision_recall(y_true, y_pred, positive)
    return recall
