"""LSTM for online congestion control (the Indigo benchmark).

"The online congestion-control algorithm (Indigo) is an LSTM.  Indigo uses
32 LSTM units followed by a softmax layer" (Section 5.1.2).  The network
maps a window of network observations (delay, delivery rate, cwnd, ...) to
one of a discrete set of congestion-window actions.

We implement a single-layer LSTM with a softmax head, trained by truncated
backpropagation through time — entirely in numpy.
"""

from __future__ import annotations

import numpy as np

from .activations import sigmoid, softmax
from .training import Adam, softmax_cross_entropy

__all__ = ["LSTM", "indigo_lstm"]


class LSTM:
    """Single-layer LSTM + softmax classifier over the final hidden state.

    Gate layout follows the standard (i, f, g, o) stacking: a single
    (4H, D + H) weight matrix computes all four gates per step — the same
    matrix-vector shape the Taurus frontend maps onto the fabric.
    """

    def __init__(self, input_size: int, hidden_size: int, n_actions: int, seed: int = 0):
        if min(input_size, hidden_size, n_actions) <= 0:
            raise ValueError("all dimensions must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.n_actions = n_actions
        self.rng = np.random.default_rng(seed)
        h, d = hidden_size, input_size
        scale = 1.0 / np.sqrt(d + h)
        self.w_gates = self.rng.uniform(-scale, scale, size=(4 * h, d + h))
        self.b_gates = np.zeros(4 * h)
        # Forget-gate bias starts at 1.0 (standard trick for gradient flow).
        self.b_gates[h : 2 * h] = 1.0
        out_scale = 1.0 / np.sqrt(h)
        self.w_out = self.rng.uniform(-out_scale, out_scale, size=(n_actions, h))
        self.b_out = np.zeros(n_actions)

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def step(
        self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """One LSTM timestep for a batch; returns (h, c, cache)."""
        concat = np.concatenate([x, h_prev], axis=-1)
        gates = concat @ self.w_gates.T + self.b_gates
        hs = self.hidden_size
        i = sigmoid(gates[..., 0 * hs : 1 * hs])
        f = sigmoid(gates[..., 1 * hs : 2 * hs])
        g = np.tanh(gates[..., 2 * hs : 3 * hs])
        o = sigmoid(gates[..., 3 * hs : 4 * hs])
        c = f * c_prev + i * g
        h = o * np.tanh(c)
        cache = {"concat": concat, "i": i, "f": f, "g": g, "o": o, "c": c, "c_prev": c_prev}
        return h, c, cache

    def forward(self, sequences: np.ndarray) -> np.ndarray:
        """Action probabilities for a batch of sequences (n, T, D)."""
        logits, __ = self._forward_with_caches(sequences)
        return softmax(logits)

    def _forward_with_caches(
        self, sequences: np.ndarray
    ) -> tuple[np.ndarray, list[dict]]:
        seq = np.asarray(sequences, dtype=np.float64)
        if seq.ndim == 2:
            seq = seq[None, :, :]
        n, steps, __ = seq.shape
        h = np.zeros((n, self.hidden_size))
        c = np.zeros((n, self.hidden_size))
        caches: list[dict] = []
        for t in range(steps):
            h, c, cache = self.step(seq[:, t, :], h, c)
            cache["h"] = h
            caches.append(cache)
        logits = h @ self.w_out.T + self.b_out
        return logits, caches

    def predict(self, sequences: np.ndarray) -> np.ndarray:
        """Most likely action index per sequence."""
        return self.forward(sequences).argmax(axis=-1)

    # ------------------------------------------------------------------
    # Training (BPTT)
    # ------------------------------------------------------------------
    def train_batch(
        self, sequences: np.ndarray, actions: np.ndarray, optimizer: Adam
    ) -> float:
        """One BPTT gradient step; returns the batch loss."""
        seq = np.asarray(sequences, dtype=np.float64)
        if seq.ndim == 2:
            seq = seq[None, :, :]
        logits, caches = self._forward_with_caches(seq)
        loss, grad_logits = softmax_cross_entropy(logits, actions)

        h_final = caches[-1]["h"]
        grad_w_out = grad_logits.T @ h_final
        grad_b_out = grad_logits.sum(axis=0)
        grad_h = grad_logits @ self.w_out

        hs = self.hidden_size
        grad_w_gates = np.zeros_like(self.w_gates)
        grad_b_gates = np.zeros_like(self.b_gates)
        grad_c = np.zeros_like(grad_h)
        for t in reversed(range(len(caches))):
            cache = caches[t]
            i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
            c, c_prev = cache["c"], cache["c_prev"]
            tanh_c = np.tanh(c)
            grad_o = grad_h * tanh_c
            grad_c = grad_c + grad_h * o * (1.0 - tanh_c * tanh_c)
            grad_i = grad_c * g
            grad_g = grad_c * i
            grad_f = grad_c * c_prev
            grad_c = grad_c * f
            # Through the gate nonlinearities.
            d_gates = np.concatenate(
                [
                    grad_i * i * (1 - i),
                    grad_f * f * (1 - f),
                    grad_g * (1 - g * g),
                    grad_o * o * (1 - o),
                ],
                axis=-1,
            )
            grad_w_gates += d_gates.T @ cache["concat"]
            grad_b_gates += d_gates.sum(axis=0)
            grad_concat = d_gates @ self.w_gates
            grad_h = grad_concat[..., self.input_size :]

        for grad in (grad_w_gates, grad_b_gates, grad_w_out, grad_b_out):
            np.clip(grad, -5.0, 5.0, out=grad)
        optimizer.begin_step()
        optimizer.step(self.w_gates, grad_w_gates, key=0)
        optimizer.step(self.b_gates, grad_b_gates, key=1)
        optimizer.step(self.w_out, grad_w_out, key=2)
        optimizer.step(self.b_out, grad_b_out, key=3)
        return loss

    def fit(
        self,
        sequences: np.ndarray,
        actions: np.ndarray,
        epochs: int = 20,
        batch_size: int = 32,
        lr: float = 0.01,
    ) -> list[float]:
        """Train on (n, T, D) sequences with integer action labels."""
        seq = np.asarray(sequences, dtype=np.float64)
        acts = np.asarray(actions, dtype=np.int64)
        optimizer = Adam(lr=lr)
        losses = []
        n = len(seq)
        for __ in range(epochs):
            order = self.rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                epoch_losses.append(self.train_batch(seq[idx], acts[idx], optimizer))
            losses.append(float(np.mean(epoch_losses)))
        return losses

    @property
    def n_params(self) -> int:
        return (
            self.w_gates.size + self.b_gates.size + self.w_out.size + self.b_out.size
        )

    def weight_bytes(self, bits: int = 8) -> int:
        """Model size at the given precision."""
        return self.n_params * bits // 8


def indigo_lstm(input_size: int = 5, n_actions: int = 5, seed: int = 0) -> LSTM:
    """The paper's Indigo configuration: 32 LSTM units + softmax head."""
    return LSTM(input_size=input_size, hidden_size=32, n_actions=n_actions, seed=seed)
