"""Deep neural networks: the paper's primary per-packet model.

The running example is the Tang et al. anomaly-detection DNN — six KDD
features in, hidden layers of 12, 6, and 3 ReLU units, and a sigmoid output
(Section 5.1.2).  Table 3's IoT classifiers are small softmax DNNs
(e.g. 4x10x2).  Both are instances of :class:`DNN`.
"""

from __future__ import annotations

import numpy as np

from .activations import softmax
from .layers import Dense
from .training import (
    SGD,
    TrainLog,
    binary_cross_entropy,
    iterate_minibatches,
    softmax_cross_entropy,
)

__all__ = ["DNN", "anomaly_detection_dnn", "iot_classifier_dnn"]


class DNN:
    """A multilayer perceptron with manual backprop training.

    Parameters
    ----------
    layer_sizes:
        Unit counts including input and output, e.g. ``[6, 12, 6, 3, 1]``.
    output:
        ``"sigmoid"`` for binary heads, ``"softmax"`` for multiclass.
    hidden_activation:
        Activation for all hidden layers (default ``"relu"``).
    seed:
        Seed for weight initialization and batching.
    """

    def __init__(
        self,
        layer_sizes: list[int],
        output: str = "softmax",
        hidden_activation: str = "relu",
        seed: int = 0,
    ):
        if len(layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if output not in ("sigmoid", "softmax", "linear"):
            raise ValueError(f"unsupported output head: {output!r}")
        if output == "sigmoid" and layer_sizes[-1] != 1:
            raise ValueError("sigmoid head requires a single output unit")
        self.layer_sizes = list(layer_sizes)
        self.output = output
        self.rng = np.random.default_rng(seed)
        self.layers: list[Dense] = []
        for i in range(len(layer_sizes) - 1):
            last = i == len(layer_sizes) - 2
            act = output if last else hidden_activation
            # Softmax is applied by the loss; the layer emits raw logits.
            layer_act = "linear" if (last and output == "softmax") else act
            self.layers.append(
                Dense(layer_sizes[i], layer_sizes[i + 1], layer_act, rng=self.rng)
            )

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        """Probabilities (sigmoid/softmax head) or raw outputs (linear)."""
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out, train=train)
        if self.output == "softmax":
            return softmax(out)
        return out

    def forward_upto(self, x: np.ndarray, layer_index: int) -> np.ndarray:
        """Activations entering layer ``layer_index`` (quantization hook)."""
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers[:layer_index]:
            out = layer.forward(out)
        return out

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Pre-head outputs of the final layer."""
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def predict(self, x: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels: thresholded for sigmoid heads, argmax for softmax."""
        probs = self.forward(x)
        if self.output == "sigmoid":
            return (probs.reshape(-1) >= threshold).astype(np.int64)
        return probs.argmax(axis=-1)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_batch(
        self, x: np.ndarray, y: np.ndarray, optimizer: SGD, sample_weight: np.ndarray | None = None
    ) -> float:
        """One gradient step on a batch; returns the batch loss."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = x
        for layer in self.layers[:-1]:
            out = layer.forward(out, train=True)
        head = self.layers[-1]
        if self.output == "softmax":
            logits = head.forward(out, train=True)
            loss, grad_z = softmax_cross_entropy(logits, y)
        else:
            probs = head.forward(out, train=True)
            loss, grad_z = binary_cross_entropy(probs, y)
        if sample_weight is not None:
            weights = np.asarray(sample_weight, dtype=np.float64).reshape(-1, 1)
            grad_z = grad_z * weights * (len(weights) / max(weights.sum(), 1e-9))
        grad = grad_z
        for i in reversed(range(len(self.layers))):
            layer = self.layers[i]
            if i == len(self.layers) - 1:
                grad, grad_w, grad_b = layer.backward_from_logits(grad)
            else:
                grad, grad_w, grad_b = layer.backward(grad)
            optimizer.step(layer.weights, grad_w, key=2 * i)
            optimizer.step(layer.bias, grad_b, key=2 * i + 1)
        return loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 0.05,
        momentum: float = 0.9,
        class_weight: dict[int, float] | None = None,
        verbose: bool = False,
    ) -> TrainLog:
        """Minibatch SGD over the dataset; returns the training log."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y)
        optimizer = SGD(lr=lr, momentum=momentum)
        log = TrainLog()
        weights_lut = None
        if class_weight is not None:
            weights_lut = np.ones(int(y.max()) + 1)
            for cls, w in class_weight.items():
                weights_lut[cls] = w
        for epoch in range(epochs):
            epoch_losses = []
            for xb, yb in iterate_minibatches(x, y, batch_size, self.rng):
                sw = weights_lut[yb.astype(np.int64)] if weights_lut is not None else None
                epoch_losses.append(self.train_batch(xb, yb, optimizer, sw))
            log.record(float(np.mean(epoch_losses)))
            if verbose:  # pragma: no cover - debugging aid
                print(f"epoch {epoch}: loss={log.final_loss:.4f}")
        return log

    # ------------------------------------------------------------------
    # Weight transport (control plane -> data plane updates, Fig. 1)
    # ------------------------------------------------------------------
    def get_weights(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Copy out (weights, bias) per layer — the update payload."""
        return [(layer.weights.copy(), layer.bias.copy()) for layer in self.layers]

    def set_weights(self, weights: list[tuple[np.ndarray, np.ndarray]]) -> None:
        """Install weights (as the switch does on a control-plane push)."""
        if len(weights) != len(self.layers):
            raise ValueError("layer count mismatch")
        for layer, (w, b) in zip(self.layers, weights):
            if layer.weights.shape != w.shape or layer.bias.shape != b.shape:
                raise ValueError("weight shape mismatch")
            layer.weights = w.copy()
            layer.bias = b.copy()

    @property
    def n_params(self) -> int:
        return sum(layer.n_params for layer in self.layers)

    def weight_bytes(self, bits: int = 8) -> int:
        """Model size when shipped at the given precision."""
        return self.n_params * bits // 8


def anomaly_detection_dnn(seed: int = 0) -> DNN:
    """The paper's anomaly-detection DNN: 6 inputs, 12/6/3 hidden, sigmoid."""
    return DNN([6, 12, 6, 3, 1], output="sigmoid", seed=seed)


def iot_classifier_dnn(kernel: tuple[int, ...], seed: int = 0) -> DNN:
    """A Table 3 IoT classifier, e.g. kernel=(4, 10, 2) -> 4x10x2 softmax."""
    if len(kernel) < 2:
        raise ValueError("kernel needs at least input and output sizes")
    return DNN(list(kernel), output="softmax", seed=seed)
