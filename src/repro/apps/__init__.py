"""Applications: anomaly detection, IoT classification, congestion control,
sketching, and eRSS — the paper's benchmark suite plus Section 3.3.2's
broader MapReduce applications."""

from .anomaly import AnomalyDetector, train_anomaly_dnn, train_anomaly_svm
from .congestion import CongestionController, closed_loop_metrics
from .erss import ElasticRSS
from .iot_classify import IoTClassifier, cluster_purity
from .registry import APPLICATIONS, AppRequirement, ReactionTime, meets_requirement
from .sketch import CountMinSketch

__all__ = [
    "AnomalyDetector",
    "train_anomaly_dnn",
    "train_anomaly_svm",
    "CongestionController",
    "closed_loop_metrics",
    "ElasticRSS",
    "IoTClassifier",
    "cluster_purity",
    "APPLICATIONS",
    "AppRequirement",
    "ReactionTime",
    "meets_requirement",
    "CountMinSketch",
]
