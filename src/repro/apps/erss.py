"""Elastic RSS: consistent core scheduling on MapReduce (Section 3.3.2).

"Elastic RSS (eRSS) uses MapReduce for consistent hashing to schedule
packets and cores: map evaluates cores' suitability, and reduce selects the
closest core" (Rucker et al., APNet '19).  We implement the rendezvous
(highest-random-weight) variant: per packet, map computes a hash score per
core weighted by its capacity, and an argmax reduce picks the core —
consistent under core arrivals/departures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ElasticRSS"]


def _mix(a: int, b: int) -> int:
    # Full splitmix64 finalizer: strong avalanche matters here — weighted
    # rendezvous shares are only proportional if per-core hashes are
    # independent uniforms.
    x = (a * 0x9E3779B97F4A7C15 + b * 0xD1B54A32D192ED03) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x


@dataclass
class ElasticRSS:
    """Rendezvous-hash packet-to-core scheduler with per-core weights."""

    n_cores: int
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]
    assignments: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")
        if self.weights is None:
            self.weights = np.ones(self.n_cores)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if len(self.weights) != self.n_cores or np.any(self.weights < 0):
            raise ValueError("weights must be non-negative, one per core")

    def _flow_key(self, five_tuple: tuple) -> int:
        acc = 0
        for part in five_tuple:
            acc = _mix(acc, int(part))
        return acc

    def scores(self, five_tuple: tuple) -> np.ndarray:
        """The map step: one suitability score per active core."""
        key = self._flow_key(five_tuple)
        raw = np.array(
            [_mix(key, core) / 2**64 for core in range(self.n_cores)]
        )
        # Weighted rendezvous: score = -w / ln(h); disabled cores (w=0) lose.
        with np.errstate(divide="ignore"):
            scored = np.where(
                self.weights > 0,
                -self.weights / np.log(np.clip(raw, 1e-18, 1 - 1e-18)),
                -np.inf,
            )
        return scored

    def scores_batch(self, five_tuples: list[tuple]) -> np.ndarray:
        """Suitability scores for many packets as one ``(n, cores)`` map.

        The batched shape of :meth:`scores`: flow-key hashing stays
        per-packet (the data plane computes it per packet anyway), but
        the weighted-rendezvous transform runs as one vectorized
        element-wise pass over the whole batch.  Bit-identical to
        calling :meth:`scores` per packet — the identity the tests pin.
        """
        if not five_tuples:
            return np.zeros((0, self.n_cores))
        raw = np.array(
            [
                [_mix(self._flow_key(ft), core) / 2**64
                 for core in range(self.n_cores)]
                for ft in five_tuples
            ]
        )
        with np.errstate(divide="ignore"):
            return np.where(
                self.weights > 0,
                -self.weights / np.log(np.clip(raw, 1e-18, 1 - 1e-18)),
                -np.inf,
            )

    def select_core(self, five_tuple: tuple) -> int:
        """The reduce step: argmax over core scores."""
        core = int(np.argmax(self.scores(five_tuple)))
        self.assignments[self._flow_key(five_tuple)] = core
        return core

    def select_core_batch(self, five_tuples: list[tuple]) -> np.ndarray:
        """Batched reduce: one argmax row per packet, assignments kept."""
        if not five_tuples:
            return np.zeros(0, dtype=np.int64)
        cores = np.argmax(self.scores_batch(five_tuples), axis=1)
        cores = cores.astype(np.int64)
        for ft, core in zip(five_tuples, cores):
            self.assignments[self._flow_key(ft)] = int(core)
        return cores

    # ------------------------------------------------------------------
    # Elasticity
    # ------------------------------------------------------------------
    def set_weight(self, core: int, weight: float) -> None:
        """Scale a core up/down (0 removes it from rotation)."""
        if not 0 <= core < self.n_cores:
            raise IndexError("no such core")
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.weights[core] = weight

    def disruption_on_change(
        self, flows: list[tuple], core: int, new_weight: float
    ) -> float:
        """Fraction of flows remapped when a core's weight changes.

        Rendezvous hashing guarantees only flows moving to/from the changed
        core are disrupted — the consistency property the tests check.
        """
        if not flows:
            return 0.0
        before = self.select_core_batch(flows)
        old = self.weights[core]
        self.set_weight(core, new_weight)
        after = self.select_core_batch(flows)
        self.set_weight(core, old)
        return float(np.sum(before != after)) / len(flows)
