"""Online congestion control (the Indigo LSTM benchmark).

Indigo maps a window of path observations to a congestion-window action.
On a server it decides every ~10 ms; on Taurus every ~805 ns — "permitting
more accurate control decisions and faster reaction times" (Section 5.1.2).
This module trains the imitation LSTM, deploys it on the fabric, and runs a
closed-loop bottleneck simulation comparing decision intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import (
    ACTIONS,
    CongestionTraceConfig,
    generate_congestion_traces,
)
from ..hw.grid import MapReduceBlock
from ..mapreduce import lstm_graph
from ..ml import LSTM, indigo_lstm

__all__ = ["CongestionController", "closed_loop_metrics"]


@dataclass
class CongestionController:
    """A trained Indigo-style controller attached to the fabric."""

    lstm: LSTM
    block: MapReduceBlock
    config: CongestionTraceConfig

    @classmethod
    def train(
        cls,
        n_sequences: int = 1500,
        epochs: int = 12,
        seed: int = 0,
        config: CongestionTraceConfig | None = None,
    ) -> tuple["CongestionController", float]:
        """Imitation-train on oracle-labeled traces; returns (app, accuracy)."""
        config = config or CongestionTraceConfig()
        sequences, actions = generate_congestion_traces(n_sequences, config, seed=seed)
        cut = int(0.8 * len(sequences))
        model = indigo_lstm(input_size=sequences.shape[-1], n_actions=len(ACTIONS), seed=seed)
        model.fit(sequences[:cut], actions[:cut], epochs=epochs)
        accuracy = float(
            np.mean(model.predict(sequences[cut:]) == actions[cut:])
        )
        block = MapReduceBlock(
            lstm_graph(model, window_steps=config.window_steps, name="indigo_lstm")
        )
        return cls(lstm=model, block=block, config=config), accuracy

    def decide(self, window: np.ndarray) -> float:
        """Map an observation window (T, D) to a cwnd factor via the fabric."""
        flat = np.asarray(window, dtype=np.float64).reshape(-1)
        result = self.block.process(flat)
        return ACTIONS[int(np.atleast_1d(result.value)[0])]

    @property
    def decision_interval_ns(self) -> float:
        """Time between decisions on the fabric (latency-bound)."""
        return self.block.latency_ns


def closed_loop_metrics(
    controller: CongestionController,
    decision_interval_s: float,
    sim_time_s: float = 0.2,
    seed: int = 0,
) -> dict[str, float]:
    """Run the bottleneck loop under a given decision interval.

    Slower decisions (the server's ~10 ms) let queues grow between
    actions; faster ones (Taurus's ~805 ns, here capped at the observation
    step) hold the operating point.  Returns utilization and queueing stats.
    """
    cfg = controller.config
    rng = np.random.default_rng(seed)
    capacity_pps = cfg.bottleneck_gbps * 1e9 / 8.0 / 1500.0
    step_s = cfg.step_ms / 1e3
    decision_every = max(1, int(round(decision_interval_s / step_s)))

    cwnd = 16.0
    queue = 0.0
    rtt_s = cfg.base_rtt_ms / 1e3
    history: list[np.ndarray] = []
    utils, queues, losses = [], [], 0.0
    steps = int(sim_time_s / step_s)
    burst_until = -1
    for t in range(steps):
        # Cross traffic swings faster than a 10 ms control loop can track
        # (2 ms period) and adds microbursts — the regime where per-packet
        # decisions pay off (Section 2).
        if t > burst_until and rng.random() < 0.01:
            burst_until = t + int(rng.integers(10, 40))
        burst = 0.30 if t <= burst_until else 0.0
        cross = 0.35 + 0.25 * np.sin(2 * np.pi * t / 20.0) + burst + rng.normal(0, 0.02)
        cross = float(np.clip(cross, 0.0, 0.95))
        send_pps = cwnd / max(rtt_s, 1e-6)
        avail = capacity_pps * (1.0 - cross)
        queue += (send_pps - avail) * step_s
        loss = 0.0
        if queue > cfg.buffer_pkts:
            loss = 1.0
            losses += 1
            queue = float(cfg.buffer_pkts)
        queue = max(queue, 0.0)
        rtt_s = cfg.base_rtt_ms / 1e3 + queue / max(avail, 1e-9)
        delivery = min(send_pps, avail)
        utils.append(delivery / max(avail, 1e-9))
        queues.append(queue / cfg.buffer_pkts)
        history.append(
            np.array([
                (queue / max(avail, 1e-9)) * 1e3,
                delivery / capacity_pps,
                send_pps / capacity_pps,
                cwnd / 256.0,
                loss,
            ])
        )
        if len(history) >= cfg.window_steps and t % decision_every == 0:
            window = np.stack(history[-cfg.window_steps:])
            factor = controller.decide(window)
            # Actions are per-RTT multiplicative factors; more frequent
            # decisions take proportionally smaller steps (continuous
            # control in the limit — the benefit of per-packet inference).
            rtt_steps = max(1.0, rtt_s / step_s)
            exponent = min(1.0, decision_every / rtt_steps)
            cwnd = float(np.clip(cwnd * factor**exponent, 2.0, 1024.0))
        if loss:
            # Safety bound (Section 3.2): a postprocessing rule halves the
            # window on loss regardless of the model's decision.
            cwnd = max(2.0, cwnd * 0.5)
    return {
        "mean_utilization": float(np.mean(utils)),
        "mean_queue_fraction": float(np.mean(queues)),
        "p99_queue_fraction": float(np.quantile(queues, 0.99)),
        "loss_events": losses,
    }
