"""Count-Min Sketch on MapReduce (Section 3.3.2).

"MapReduce can also support sketching algorithms, including Count-Min-
Sketches (CMS) for flow-size estimation."  The sketch's update is a map
over rows (hash + increment, state in MUs); the query is a map (reads)
followed by a min-reduce — exactly the primitives the fabric offers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CountMinSketch"]


def _hash(seed: int, key: tuple) -> int:
    acc = 0x811C9DC5 ^ (seed * 0x9E3779B9 & 0xFFFFFFFF)
    for part in key:
        if isinstance(part, (int, np.integer)):
            data = int(part).to_bytes(8, "little", signed=True)
        else:
            data = str(part).encode("utf-8")
        for byte in data:
            acc ^= byte
            acc = (acc * 0x01000193) & 0xFFFFFFFF
    return acc


@dataclass
class CountMinSketch:
    """A depth x width CMS with conservative-update option.

    The estimate errors are one-sided (never undercounts); with width w and
    depth d, the overcount is bounded by ``2N/w`` with probability
    ``1 - 2^-d`` — properties the tests verify.
    """

    width: int = 1024
    depth: int = 4
    conservative: bool = False
    counters: np.ndarray = field(init=False, repr=False)
    total: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.depth <= 0:
            raise ValueError("width and depth must be positive")
        self.counters = np.zeros((self.depth, self.width), dtype=np.int64)

    def _indices(self, key: tuple) -> np.ndarray:
        return np.array(
            [_hash(row, key) % self.width for row in range(self.depth)]
        )

    def update(self, key: tuple, count: int = 1) -> None:
        """Per-packet update: map over rows, increment (MU writes)."""
        if count <= 0:
            raise ValueError("count must be positive")
        idx = self._indices(key)
        rows = np.arange(self.depth)
        if self.conservative:
            current = self.counters[rows, idx]
            floor = current.min() + count
            self.counters[rows, idx] = np.maximum(current, floor)
        else:
            self.counters[rows, idx] += count
        self.total += count

    def query(self, key: tuple) -> int:
        """Flow-size estimate: map of row reads, then a min-reduce."""
        idx = self._indices(key)
        return int(self.counters[np.arange(self.depth), idx].min())

    def query_batch(self, keys: list[tuple]) -> np.ndarray:
        """Flow-size estimates for many keys in one gather + min-reduce.

        The batched shape of :meth:`query`: hashing stays per-key (the
        data plane computes it per packet anyway), but the counter reads
        and the min-reduce run as one fancy-indexed gather over the
        whole batch.  Bit-identical to calling :meth:`query` per key —
        the identity the tests pin.
        """
        if not keys:
            return np.zeros(0, dtype=np.int64)
        idx = np.stack([self._indices(key) for key in keys])  # (n, depth)
        rows = np.arange(self.depth)
        return self.counters[rows[None, :], idx].min(axis=1)

    def heavy_hitters(self, keys: list[tuple], threshold_fraction: float) -> list[tuple]:
        """Keys whose estimate exceeds a fraction of total traffic."""
        if not 0.0 < threshold_fraction <= 1.0:
            raise ValueError("threshold_fraction must be in (0, 1]")
        cut = threshold_fraction * self.total
        estimates = self.query_batch(keys)
        return [key for key, est in zip(keys, estimates) if est >= cut]

    @property
    def memory_values(self) -> int:
        """Counter cells (for MU capacity accounting)."""
        return self.counters.size
