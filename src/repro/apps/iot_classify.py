"""IoT traffic classification (KMeans, 11 features, 5 categories).

The first Table 5 application: cluster IoT device traffic and classify each
packet's flow by nearest centroid at line rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import IOT_CLUSTER_FEATURES, iot_cluster_dataset
from ..hw.grid import MapReduceBlock
from ..mapreduce import kmeans_graph
from ..ml import KMeans

__all__ = ["IoTClassifier", "cluster_purity"]


def cluster_purity(assignments: np.ndarray, labels: np.ndarray) -> float:
    """Mean per-cluster majority fraction (the usual clustering score)."""
    assignments = np.asarray(assignments)
    labels = np.asarray(labels)
    if assignments.shape != labels.shape:
        raise ValueError("shape mismatch")
    total = 0
    for cluster in np.unique(assignments):
        members = labels[assignments == cluster]
        counts = np.bincount(members)
        total += counts.max()
    return total / len(labels)


@dataclass
class IoTClassifier:
    """KMeans device-category classifier deployed on the fabric."""

    kmeans: KMeans
    block: MapReduceBlock

    @classmethod
    def train(
        cls, n_samples: int = 4000, n_classes: int = 5, seed: int = 0
    ) -> tuple["IoTClassifier", np.ndarray, np.ndarray]:
        """Fit on synthetic IoT traffic; returns (app, features, labels)."""
        features, labels = iot_cluster_dataset(n_samples, n_classes=n_classes, seed=seed)
        model = KMeans(n_clusters=n_classes, seed=seed).fit(features)
        block = MapReduceBlock(kmeans_graph(model, name="iot_kmeans"))
        return cls(kmeans=model, block=block), features, labels

    def classify(self, features: np.ndarray) -> int:
        """One flow's category via the fabric (line-rate path)."""
        result = self.block.process(np.asarray(features, dtype=np.float64))
        return int(np.atleast_1d(result.value)[0])

    def classify_batch(self, features: np.ndarray) -> np.ndarray:
        return self.block.process_batch(features).reshape(-1).astype(np.int64)

    @property
    def n_features(self) -> int:
        return len(IOT_CLUSTER_FEATURES)

    @property
    def latency_ns(self) -> float:
        return self.block.latency_ns
