"""Application registry: reaction-time requirements (Table 1).

In-network applications demand reactions at packet, flowlet, flow, or
microburst timescales; this registry encodes Table 1 and lets callers ask
whether a given decision latency meets an application's requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReactionTime", "AppRequirement", "APPLICATIONS", "meets_requirement"]


class ReactionTime:
    PACKET = "pkt"
    FLOWLET = "flowlet"
    FLOW = "flow"
    MICROBURST = "uburst"

    ALL = (PACKET, FLOWLET, FLOW, MICROBURST)

    #: Representative decision deadlines (seconds) per timescale.
    DEADLINES_S = {
        PACKET: 1e-6,     # sub-microsecond: must decide in the pipeline
        MICROBURST: 1e-5, # tens of microseconds
        FLOWLET: 1e-3,    # flowlet gaps are ~ms
        FLOW: 1e-2,       # flow setup times
    }


@dataclass(frozen=True)
class AppRequirement:
    """One Table 1 row."""

    name: str
    category: str  # "security" | "performance"
    timescales: tuple[str, ...]

    @property
    def strictest_deadline_s(self) -> float:
        return min(ReactionTime.DEADLINES_S[t] for t in self.timescales)


APPLICATIONS: tuple[AppRequirement, ...] = (
    AppRequirement("heavy_hitters", "security", (ReactionTime.FLOW,)),
    AppRequirement("dos_syn_flood", "security",
                   (ReactionTime.PACKET, ReactionTime.FLOWLET, ReactionTime.FLOW)),
    AppRequirement("port_scan_probe", "security", (ReactionTime.FLOW,)),
    AppRequirement("u2r_detection", "security", (ReactionTime.PACKET,)),
    AppRequirement("r2l_detection", "security", (ReactionTime.PACKET,)),
    AppRequirement("congestion_control", "performance",
                   (ReactionTime.PACKET, ReactionTime.MICROBURST)),
    AppRequirement("active_queue_mgmt", "performance", (ReactionTime.PACKET,)),
    AppRequirement("traffic_classification", "performance",
                   (ReactionTime.FLOWLET, ReactionTime.FLOW)),
    AppRequirement("load_balancing", "performance",
                   (ReactionTime.PACKET, ReactionTime.FLOWLET)),
    AppRequirement("switching_routing", "performance",
                   (ReactionTime.PACKET, ReactionTime.FLOW)),
)


def meets_requirement(app: AppRequirement, decision_latency_s: float) -> bool:
    """Can a system with this decision latency serve the application?"""
    if decision_latency_s < 0:
        raise ValueError("latency must be non-negative")
    return decision_latency_s <= app.strictest_deadline_s
