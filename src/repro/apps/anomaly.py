"""Anomaly detection — the paper's running example (Sections 3, 5.2).

Bundles the full application: train the Tang-et-al. DNN (or the SVM
variant) on NSL-KDD-style connections, quantize it, lower it to the fabric,
and attach it to a Taurus pipeline whose postprocessing MAT drops or flags
anomalous packets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets import (
    ConnectionDataset,
    dnn_feature_matrix,
    generate_connections,
    svm_feature_matrix,
)
from ..fixpoint import QuantizedModel, quantize_model
from ..hw.grid import MapReduceBlock
from ..mapreduce import dnn_graph
from ..ml import RBFKernelSVM, anomaly_detection_dnn, f1_score, detection_rate
from ..ml.dnn import DNN
from ..pisa import TaurusPipeline, threshold_postprocess
from ..datasets.nslkdd import DNN_FEATURES

__all__ = ["AnomalyDetector", "train_anomaly_dnn", "train_anomaly_svm"]


def train_anomaly_dnn(
    dataset: ConnectionDataset,
    epochs: int = 25,
    batch_size: int = 64,
    lr: float = 0.05,
    seed: int = 0,
) -> DNN:
    """Train the 6-feature, 12/6/3-hidden anomaly DNN."""
    model = anomaly_detection_dnn(seed=seed)
    model.fit(
        dnn_feature_matrix(dataset), dataset.labels,
        epochs=epochs, batch_size=batch_size, lr=lr,
    )
    return model


def train_anomaly_svm(
    dataset: ConnectionDataset,
    budget: int = 16,
    epochs: int = 3,
    gamma: float = 0.5,
    seed: int = 0,
) -> RBFKernelSVM:
    """Train the 8-feature RBF SVM with a hardware-friendly SV budget."""
    model = RBFKernelSVM(gamma=gamma, budget=budget, epochs=epochs, seed=seed)
    model.fit(svm_feature_matrix(dataset), dataset.labels)
    return model


@dataclass
class AnomalyDetector:
    """The deployed application: model + fabric + pipeline.

    Build with :meth:`from_dataset` for the end-to-end flow, or assemble
    the pieces manually for custom experiments.
    """

    dnn: DNN
    quantized: QuantizedModel
    block: MapReduceBlock
    pipeline: TaurusPipeline
    threshold: float = 0.5

    @classmethod
    def from_dataset(
        cls,
        dataset: ConnectionDataset | None = None,
        n_connections: int = 8000,
        threshold: float = 0.5,
        epochs: int = 25,
        seed: int = 0,
    ) -> "AnomalyDetector":
        """Train, quantize, lower, and deploy in one step."""
        dataset = dataset or generate_connections(n_connections, seed=seed)
        dnn = train_anomaly_dnn(dataset, epochs=epochs, seed=seed)
        features = dnn_feature_matrix(dataset)
        quantized = quantize_model(dnn, features[: min(512, len(features))])
        block = MapReduceBlock(dnn_graph(quantized, name="anomaly_dnn"))
        # Matched scalar + vectorized hooks keep batched trace runs on the
        # fast path without risking decision drift between the two.
        scalar_post, batch_post = threshold_postprocess(threshold)
        pipeline = TaurusPipeline(
            block=block,
            feature_names=DNN_FEATURES,
            postprocess=scalar_post,
            postprocess_batch=batch_post,
        )
        return cls(
            dnn=dnn, quantized=quantized, block=block,
            pipeline=pipeline, threshold=threshold,
        )

    # ------------------------------------------------------------------
    # Offline scoring
    # ------------------------------------------------------------------
    def offline_scores(self, dataset: ConnectionDataset) -> dict[str, float]:
        """Model-in-isolation F1 and detection rate (float and fix8)."""
        features = dnn_feature_matrix(dataset)
        float_pred = self.dnn.predict(features, threshold=self.threshold)
        quant_pred = (
            self.quantized(features).reshape(-1) >= self.threshold
        ).astype(np.int64)
        return {
            "f1_float": f1_score(dataset.labels, float_pred),
            "f1_fix8": f1_score(dataset.labels, quant_pred),
            "detection_float": detection_rate(dataset.labels, float_pred),
            "detection_fix8": detection_rate(dataset.labels, quant_pred),
        }

    # ------------------------------------------------------------------
    # Weight updates (control plane -> data plane, Section 5.2.3)
    # ------------------------------------------------------------------
    def install_weights(self, dnn: DNN, calibration: np.ndarray) -> None:
        """Re-quantize a newly trained model and swap it into the fabric."""
        self.dnn = dnn
        self.quantized = quantize_model(dnn, calibration)
        self.block.reconfigure(dnn_graph(self.quantized, name="anomaly_dnn"))

    @property
    def added_latency_ns(self) -> float:
        return self.block.latency_ns
