"""Multi-app fabric: time-multiplex compiled programs over one grid.

Taurus positions the MapReduce block as a *shared* ML fabric inside the
switch: several compiled dataflow programs can serve traffic from one
grid, swapped between packets the way a CGRA swaps programs (not
bitstreams).  :class:`MultiAppFabric` is that deployment shape for trace
replay:

* each registered :class:`FabricApp` bundles a compiled program
  (:class:`~repro.mapreduce.ir.DataflowGraph`), its PHV feature layout,
  and its decision hooks;
* apps are scheduled in *chunks* over shared grid lanes with an
  issue-clock-accounted scheduler (:func:`schedule_chunks`: round-robin,
  weighted stride, or the serial baseline), so the modeled drain reflects
  both interleaving and the reconfiguration cost of each program swap
  (:meth:`~repro.hw.grid.MapReduceBlock.reconfigure` with
  ``account=True``);
* with ``shards > 1`` the fabric extends the sharded runtime's
  factory-per-worker shape to *heterogeneous* per-lane programs: lanes
  are assigned app affinities, each app's trace is partitioned
  flow-consistently across its affine lanes, and an app whose lanes are
  exclusively its own never pays a reconfiguration (the thrash-free
  configuration when ``shards >= len(apps)``).

**Why per-app results are bit/stat-identical to running each app alone.**
Every app owns its pipelines (parser, MATs, flow registers, queues) on
each of its lanes — only the grid is shared.  Chunks of one app execute
in arrival order per lane (every policy preserves per-app FIFO), the
graph interpreter carries no state between batches, and a packet's
latency is the design latency of *its* program (steering swaps the
program in before any ML work, and an un-stalled issue pays no wait).
Interleaving therefore changes only the shared issue clock — the modeled
drain — never an app's decisions, scores, latencies, or register state.
``tests/test_multi_app_fabric.py`` property-tests this at shards ∈
{1, 2, 4} under every policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..datasets.packets import PacketTrace, TraceColumns
from ..hw.grid import MapReduceBlock
from ..hw.params import CLOCK_GHZ
from ..mapreduce.ir import DataflowGraph
from ..pisa.pipeline import (
    DEFAULT_TRACE_CHUNK,
    TaurusPipeline,
    TracePipelineResult,
)
from ..pisa.registers import FlowFeatureAccumulator
from .executors import resolve_executor, run_tasks
from .pool import LaneWorker, ShardPool, pool_mode_for_executor
from .sharded import (
    as_trace_columns,
    concat_results,
    empty_trace_result,
    merge_pipeline_state,
    scatter_merge,
)

__all__ = [
    "FabricApp",
    "MultiAppFabric",
    "MultiAppResult",
    "SCHEDULING_POLICIES",
    "schedule_chunks",
]

#: Chunk-interleave policies: fair alternation, weight-proportional
#: stride scheduling, and the run-each-app-to-completion baseline.
SCHEDULING_POLICIES = ("round_robin", "weighted", "serial")


def schedule_chunks(
    counts: Sequence[int],
    weights: Sequence[float] | None = None,
    policy: str = "round_robin",
) -> list[int]:
    """Deterministic issue order of per-app chunks on one lane.

    ``counts[a]`` is how many chunks app ``a`` has queued; the returned
    list names the app issued at each slot (every app's chunks stay FIFO
    — only the interleave between apps changes).

    * ``round_robin`` — one chunk per app per pass, skipping finished apps;
    * ``weighted`` — stride scheduling: app ``a`` accumulates pass value
      ``1 / weights[a]`` per issued chunk and the lowest pass (ties to the
      lower app index) issues next, so issue frequency is proportional to
      weight;
    * ``serial`` — all of app 0, then all of app 1, ... (the baseline the
      multi-app benchmark compares against).
    """
    if policy not in SCHEDULING_POLICIES:
        raise ValueError(
            f"unknown policy {policy!r}; pick one of {SCHEDULING_POLICIES}"
        )
    counts = [int(c) for c in counts]
    if any(c < 0 for c in counts):
        raise ValueError("chunk counts must be non-negative")
    n = len(counts)
    order: list[int] = []
    if policy == "serial":
        for a in range(n):
            order.extend([a] * counts[a])
        return order
    if policy == "round_robin":
        remaining = list(counts)
        while any(remaining):
            for a in range(n):
                if remaining[a]:
                    order.append(a)
                    remaining[a] -= 1
        return order
    strides = [1.0] * n if weights is None else [float(w) for w in weights]
    if len(strides) != n:
        raise ValueError("weights must align with counts")
    if any(w <= 0 for w in strides):
        raise ValueError("weights must be positive")
    remaining = list(counts)
    passes = [1.0 / w for w in strides]
    while any(remaining):
        a = min(
            (i for i in range(n) if remaining[i]),
            key=lambda i: (passes[i], i),
        )
        order.append(a)
        remaining[a] -= 1
        passes[a] += 1.0 / strides[a]
    return order


@dataclass
class FabricApp:
    """One compiled application deployable on a shared grid.

    The program plus everything the switch needs to serve it: the PHV
    feature layout, decision hooks (scalar + vectorized twins, so both
    execution paths stay fast and identical), a scheduling ``weight`` for
    the weighted policy, and an optional flow-register file size.
    """

    name: str
    graph: DataflowGraph
    feature_names: tuple[str, ...]
    weight: float = 1.0
    slots: int | None = None
    bypass_predicate: Callable | None = None
    bypass_predicate_batch: Callable | None = None
    postprocess: Callable | None = None
    postprocess_batch: Callable | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("apps need a name")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def build_pipeline(self, block: MapReduceBlock) -> TaurusPipeline:
        """An independent pipeline for this app around a (shared) block.

        The pipeline pins :attr:`graph` as its
        :attr:`~repro.pisa.TaurusPipeline.program`, so chunks steer the
        block back to this app's program whenever another app ran last.
        """
        kwargs: dict = {}
        if self.bypass_predicate is not None:
            kwargs["bypass_predicate"] = self.bypass_predicate
        if self.postprocess is not None:
            kwargs["postprocess"] = self.postprocess
        pipe = TaurusPipeline(
            block=block,
            feature_names=self.feature_names,
            bypass_predicate_batch=self.bypass_predicate_batch,
            postprocess_batch=self.postprocess_batch,
            program=self.graph,
            **kwargs,
        )
        if self.slots is not None:
            pipe.accumulator = FlowFeatureAccumulator(slots=self.slots)
        return pipe

    # ------------------------------------------------------------------
    # Common app shapes
    # ------------------------------------------------------------------
    @classmethod
    def from_quantized_dnn(
        cls,
        quantized,
        name: str = "anomaly",
        feature_names: tuple[str, ...] | None = None,
        threshold: float = 0.5,
        weight: float = 1.0,
        slots: int | None = None,
    ) -> "FabricApp":
        """A score-thresholding DNN app (the anomaly-detection shape).

        Lowers with exact activations, so fabric execution is bit-exact
        with the quantized model — the same lowering
        :class:`~repro.testbed.TaurusDataPlane` deploys.
        """
        from ..datasets.nslkdd import DNN_FEATURES
        from ..mapreduce.frontend import dnn_graph
        from ..pisa.pipeline import threshold_postprocess

        scalar_post, batch_post = threshold_postprocess(threshold)
        return cls(
            name=name,
            graph=dnn_graph(
                quantized, name=f"{name}_dnn", exact_activations=True
            ),
            feature_names=(
                DNN_FEATURES if feature_names is None else feature_names
            ),
            weight=weight,
            slots=slots,
            postprocess=scalar_post,
            postprocess_batch=batch_post,
        )

    @classmethod
    def from_lstm(
        cls,
        lstm,
        window_steps: int = 8,
        name: str = "congestion",
        weight: float = 1.0,
        slots: int | None = None,
    ) -> "FabricApp":
        """A recurrent action-head app (the Indigo congestion shape).

        The packet's feature payload is the flattened ``(T, D)``
        observation window (time-major, matching
        :func:`~repro.mapreduce.frontend.lstm_graph`); the fabric's
        output is the argmax action index, which the postprocess hooks
        pass through as the decision code.
        """
        from ..mapreduce.frontend import lstm_graph
        from ..pisa.pipeline import action_postprocess

        action_scalar, action_batch = action_postprocess()

        return cls(
            name=name,
            graph=lstm_graph(lstm, window_steps=window_steps, name=f"{name}_lstm"),
            feature_names=tuple(
                f"w{t}_{d}"
                for t in range(window_steps)
                for d in range(lstm.input_size)
            ),
            weight=weight,
            slots=slots,
            postprocess=action_scalar,
            postprocess_batch=action_batch,
        )

    @classmethod
    def from_kmeans(
        cls,
        kmeans,
        feature_names: tuple[str, ...] | None = None,
        name: str = "iot",
        weight: float = 1.0,
        slots: int | None = None,
    ) -> "FabricApp":
        """A nearest-centroid classifier app (the IoT-classification shape).

        The fabric's output is the cluster index, passed through as the
        decision code by the shared
        :func:`~repro.pisa.pipeline.action_postprocess` pair — both
        execution paths stay vectorized, no per-row fallback.
        """
        from ..mapreduce.frontend import kmeans_graph
        from ..pisa.pipeline import action_postprocess

        if kmeans.centroids is None:
            raise ValueError("KMeans must be fitted before deployment")
        scalar_post, batch_post = action_postprocess()
        if feature_names is None:
            from ..datasets import IOT_CLUSTER_FEATURES

            feature_names = IOT_CLUSTER_FEATURES
        dim = kmeans.centroids.shape[1]
        if len(feature_names) != dim:
            raise ValueError(
                f"model consumes {dim} features, got {len(feature_names)} names"
            )
        return cls(
            name=name,
            graph=kmeans_graph(kmeans, name=f"{name}_kmeans"),
            feature_names=tuple(feature_names),
            weight=weight,
            slots=slots,
            postprocess=scalar_post,
            postprocess_batch=batch_post,
        )


@dataclass
class MultiAppResult:
    """Outcome of one multi-app fabric run."""

    results: dict[str, TracePipelineResult]
    drain_ns: float
    reconfigurations: int
    reconfig_ns: float
    n_packets: int
    policy: str
    shards: int
    per_app_packets: dict[str, int] = field(default_factory=dict)

    @property
    def model_pkt_per_s(self) -> float:
        """Aggregate modeled drain throughput across all apps."""
        if self.drain_ns <= 0:
            return 0.0
        return self.n_packets / (self.drain_ns * 1e-9)


@dataclass
class _Lane:
    """One grid lane: a shared block plus this lane's per-app pipelines."""

    block: MapReduceBlock
    pipelines: dict[int, TaurusPipeline]


class MultiAppFabric:
    """``N`` compiled apps time-multiplexed over shared grid lanes.

    Parameters
    ----------
    apps:
        Initial :class:`FabricApp` registrations (more via
        :meth:`register` until the first run builds the lanes).
    shards:
        Grid lanes.  ``1`` is the paper's single shared block; more lanes
        give apps affine homes (``shards >= len(apps)`` eliminates
        reconfiguration thrash entirely while keeping one fabric).
    executor / chunk_size:
        As in :class:`~repro.runtime.ShardedRuntime`.
    policy:
        Default scheduling policy for :meth:`run` (see
        :func:`schedule_chunks`).
    pool:
        Persistent-worker path, as in
        :class:`~repro.runtime.ShardedRuntime`: ``True`` (or a mode
        string) keeps one long-lived worker per lane across runs,
        dispatching the scheduled per-app chunks through the pipelined
        pipe protocol instead of one task per lane per run.  Close the
        fabric (context manager or :meth:`close`) when a pool is
        attached.
    pool_options:
        Extra keyword arguments for the lane
        :class:`~repro.runtime.pool.ShardPool` (fault-tolerance knobs:
        ``hang_timeout``, ``heartbeat_interval``, ``faults``, ...), as in
        :class:`~repro.runtime.ShardedRuntime`.
    """

    def __init__(
        self,
        apps: Sequence[FabricApp] = (),
        shards: int = 1,
        executor: str = "auto",
        chunk_size: int = DEFAULT_TRACE_CHUNK,
        policy: str = "round_robin",
        pool: bool | str = False,
        pool_options: dict | None = None,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; pick one of {SCHEDULING_POLICIES}"
            )
        self.shards = shards
        self.executor = executor
        self.chunk_size = chunk_size
        self.policy = policy
        self.apps: list[FabricApp] = []
        self._lanes: list[_Lane] | None = None
        self._app_turns: dict[int, int] = {}
        self._pool_request = pool
        self._pool_options = pool_options
        if pool_options and not pool:
            raise ValueError("pool_options requires pool=True")
        self.pool: ShardPool | None = None
        #: Modeled drain of the last run (slowest lane; reconfiguration
        #: and interleave costs included).
        self.last_drain_ns = 0.0
        for app in apps:
            self.register(app)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool_health(self):
        """The lane pool's :class:`~repro.runtime.health.PoolHealth`
        counters (``None`` without a pool, or before the first run builds
        the lanes)."""
        return None if self.pool is None else self.pool.health

    def close(self) -> None:
        """Shut the attached lane-worker pool down (no-op without one)."""
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "MultiAppFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def reset_state(self) -> None:
        """Rewind every lane pipeline (and pool worker) to the pristine
        post-build mark, so a reused fabric behaves like a fresh one
        (see :meth:`ShardPool.rewind`)."""
        if self._lanes is None:
            return
        if self.pool is None:
            raise RuntimeError("reset_state requires a pool-backed fabric")
        self.pool.rewind()
        self._app_turns.clear()

    # ------------------------------------------------------------------
    # Registration and lane topology
    # ------------------------------------------------------------------
    def register(self, app: FabricApp) -> None:
        """Add an app (before the first run compiles it onto the lanes)."""
        if self._lanes is not None:
            raise RuntimeError(
                "apps must be registered before the fabric's first run"
            )
        if any(existing.name == app.name for existing in self.apps):
            raise ValueError(f"duplicate app name {app.name!r}")
        self.apps.append(app)

    def lane_apps(self) -> list[list[int]]:
        """App indices served by each lane (the affinity map).

        With at least one lane per app, lane ``s`` is dedicated to app
        ``s % M`` — disjoint homes, zero reconfigurations.  With fewer
        lanes than apps, apps round-robin onto lanes (``a % N``) and each
        lane time-multiplexes its residents.
        """
        n_apps = len(self.apps)
        if n_apps == 0:
            return [[] for __ in range(self.shards)]
        if self.shards >= n_apps:
            return [[s % n_apps] for s in range(self.shards)]
        return [
            [a for a in range(n_apps) if a % self.shards == s]
            for s in range(self.shards)
        ]

    def app_lanes(self, app_index: int) -> list[int]:
        """The lanes app ``app_index`` is affine to."""
        return [
            s for s, ids in enumerate(self.lane_apps()) if app_index in ids
        ]

    def _ensure_lanes(self) -> list[_Lane]:
        if self._lanes is None:
            if not self.apps:
                raise ValueError("no apps registered")
            lanes = []
            for ids in self.lane_apps():
                block = MapReduceBlock(self.apps[ids[0]].graph)
                lanes.append(
                    _Lane(
                        block=block,
                        pipelines={
                            a: self.apps[a].build_pipeline(block) for a in ids
                        },
                    )
                )
            self._lanes = lanes
            if self._pool_request:
                mode = (
                    self._pool_request
                    if isinstance(self._pool_request, str)
                    else pool_mode_for_executor(self.executor)
                )
                contexts = [LaneWorker(lane.pipelines) for lane in lanes]
                # Mark the pristine post-build state before spawning so
                # workers (and crash replacements) inherit the rewind
                # point and reset_state() ships zero payload.
                for context in contexts:
                    context.handle("mark", None)
                self.pool = ShardPool(
                    contexts, mode=mode, **(self._pool_options or {})
                )
        return self._lanes

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        traces,
        policy: str | None = None,
        chunk_size: int | None = None,
    ) -> MultiAppResult:
        """Every app's trace through the shared fabric, per-app merged.

        ``traces`` maps app name to trace (a
        :class:`~repro.datasets.packets.PacketTrace`,
        :class:`~repro.datasets.packets.TraceColumns`, or packet list) or
        is a sequence aligned with the registration order.  Returns one
        arrival-ordered :class:`TracePipelineResult` per app,
        bit/stat-identical to running that app alone on its own trace.
        """
        policy = self.policy if policy is None else policy
        if policy not in SCHEDULING_POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; pick one of {SCHEDULING_POLICIES}"
            )
        chunk = self.chunk_size if chunk_size is None else chunk_size
        if chunk <= 0:
            raise ValueError("chunk_size must be positive")
        lanes = self._ensure_lanes()
        app_traces = self._resolve_traces(traces)

        # Per app: time-sorted columns, the caller-order mapping, and a
        # flow-consistent partition across the app's affine lanes.
        sorted_cols: list[TraceColumns] = []
        orders: list[np.ndarray] = []
        partitions: list[list[tuple[np.ndarray, TraceColumns]]] = []
        for a, trace in enumerate(app_traces):
            columns = as_trace_columns(trace)
            order = np.argsort(columns.times, kind="stable")
            if np.array_equal(order, np.arange(columns.n)):
                ordered = columns
            else:
                ordered = columns.take(order)
            sorted_cols.append(ordered)
            orders.append(order)
            partitions.append(self._partition(a, trace, ordered))

        # Per lane: FIFO chunk queues per resident app, interleaved by the
        # scheduling policy.
        schedules: list[list[tuple[int, TraceColumns]]] = []
        for s, lane in enumerate(lanes):
            per_app: dict[int, list[TraceColumns]] = {}
            for a in lane.pipelines:
                lane_pos = self.app_lanes(a).index(s)
                __, sub = partitions[a][lane_pos]
                per_app[a] = [
                    sub.slice(slice(start, min(start + chunk, sub.n)))
                    for start in range(0, sub.n, chunk)
                ]
            ids = sorted(per_app)
            issue_order = schedule_chunks(
                [len(per_app[a]) for a in ids],
                weights=[self.apps[a].weight for a in ids],
                policy=policy,
            )
            queues = {a: iter(per_app[a]) for a in ids}
            schedules.append(
                [(ids[i], next(queues[ids[i]])) for i in issue_order]
            )

        if self.pool is not None:
            payloads = self._run_lanes_pooled(lanes, schedules)
        else:
            transport = (
                resolve_executor(self.executor, len(lanes)) == "fork"
            )
            tasks = [
                self._lane_task(lane, schedule, transport)
                for lane, schedule in zip(lanes, schedules)
            ]
            payloads = run_tasks(tasks, self.executor)
            if transport:
                for lane, payload in zip(lanes, payloads):
                    for a, snapshot in payload["snapshots"].items():
                        lane.pipelines[a].restore_state(snapshot)

        # Modeled drain: lanes run concurrently; each lane completes its
        # last issued packet one tail latency after its final issue slot.
        drains = [0.0]
        for payload in payloads:
            busy = payload["busy_cycles"]
            if busy > 0:
                drains.append(
                    (payload["tail_latency_cycles"] + busy - payload["tail_ii"])
                    / CLOCK_GHZ
                )
        self.last_drain_ns = max(drains)
        reconfigurations = sum(p["reconfigurations"] for p in payloads)
        reconfig_cycles = sum(p["reconfig_cycles"] for p in payloads)

        results: dict[str, TracePipelineResult] = {}
        per_app_packets: dict[str, int] = {}
        for a, app in enumerate(self.apps):
            lane_results = [
                payloads[s]["results"][a] for s in self.app_lanes(a)
            ]
            results[app.name] = self._merge_app(
                a, sorted_cols[a], orders[a], partitions[a], lane_results
            )
            per_app_packets[app.name] = sorted_cols[a].n
        return MultiAppResult(
            results=results,
            drain_ns=self.last_drain_ns,
            reconfigurations=reconfigurations,
            reconfig_ns=reconfig_cycles / CLOCK_GHZ,
            n_packets=sum(per_app_packets.values()),
            policy=policy,
            shards=self.shards,
            per_app_packets=per_app_packets,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _resolve_traces(self, traces) -> list:
        if isinstance(traces, dict):
            missing = [app.name for app in self.apps if app.name not in traces]
            if missing:
                raise ValueError(f"missing traces for apps: {missing}")
            return [traces[app.name] for app in self.apps]
        traces = list(traces)
        if len(traces) != len(self.apps):
            raise ValueError(
                f"got {len(traces)} traces for {len(self.apps)} apps"
            )
        return traces

    def _app_slots(self, app_index: int) -> int:
        app = self.apps[app_index]
        if app.slots is not None:
            return app.slots
        lanes = self._ensure_lanes()
        pipe = lanes[self.app_lanes(app_index)[0]].pipelines[app_index]
        return pipe.accumulator.packet_count.size

    def _partition(
        self, app_index: int, trace, ordered: TraceColumns
    ) -> list[tuple[np.ndarray, TraceColumns]]:
        """Flow-consistent parts of one app's trace over its lanes.

        Part indices are positions into ``ordered`` (the time-sorted
        view), so the cached :meth:`PacketTrace.shard_columns` partition
        is only reusable when the trace's columns already are in arrival
        order — otherwise its indices would reference the unsorted
        layout and the scatter-merge would misplace rows.
        """
        n_lanes = len(self.app_lanes(app_index))
        slots = self._app_slots(app_index)
        if n_lanes == 1:
            return [(np.arange(ordered.n, dtype=np.int64), ordered)]
        if isinstance(trace, PacketTrace) and ordered is trace.columns():
            return trace.shard_columns(n_lanes, slots)
        assignments = ordered.shard_assignments(n_lanes, slots)
        return ordered.partition(assignments, n_lanes)

    def _run_lanes_pooled(self, lanes, schedules) -> list[dict]:
        """Every lane's schedule through the warm pool, chunk-pipelined.

        Each scheduled ``(app, chunk)`` slot becomes one pipe request, so
        the pool ships slot ``k+1`` while the lane scores ``k``; per-chunk
        deltas keep this process's lane pipelines (and their shared
        blocks) current, which is where the drain/reconfiguration
        accounting below reads from.  Payloads match :meth:`_lane_task`'s
        schema (minus ``snapshots`` — delta transport already happened).
        """
        want_delta = self.pool.transport
        before = [
            (
                lane.block._next_issue_cycle,
                lane.block.reconfigurations,
                lane.block.reconfig_cycles,
            )
            for lane in lanes
        ]
        streams = []
        for lane, schedule in zip(lanes, schedules):
            requests = (
                ("app_chunk", (a, chunk, want_delta)) for a, chunk in schedule
            )
            streams.append((requests, len(schedule)))

        def apply_delta(s: int, __ordinal: int, response) -> None:
            # Ack callback: land each slot's delta the moment it is
            # acked, keeping this process's lane pipelines at exactly
            # the workers' last acked slot — the state a crash
            # replacement re-forks from.
            a, __, delta = response
            if delta is not None:
                lanes[s].pipelines[a].apply_state_delta(delta)

        def degrade(s: int, kind: str, payload):
            # In-parent fallback when a lane's workers cannot be kept
            # alive; the parent lane pipeline continues from the last
            # acked slot.  delta=None — the state is already here.
            if kind != "app_chunk":
                raise RuntimeError(f"cannot degrade request kind {kind!r}")
            a, chunk, __ = payload
            result = lanes[s].pipelines[a].process_trace_batch(
                chunk, chunk_size=max(chunk.n, 1)
            )
            return (a, result, None)

        try:
            responses = self.pool.map_streams(
                streams, on_result=apply_delta, degrade=degrade
            )
        except RuntimeError:
            # Keep this process's lanes consistent with the workers after
            # a failed run (some chunks may have executed worker-side
            # whose deltas were never applied here).
            self._resync_from_pool(lanes)
            raise
        payloads: list[dict] = []
        for s, lane in enumerate(lanes):
            pieces: dict[int, list[TracePipelineResult]] = {
                a: [] for a in lane.pipelines
            }
            for a, result, __ in responses[s]:
                pieces[a].append(result)
            start_cycle, start_reconfigs, start_reconfig_cycles = before[s]
            payloads.append(
                {
                    "results": {
                        a: concat_results(parts) for a, parts in pieces.items()
                    },
                    "busy_cycles": lane.block._next_issue_cycle - start_cycle,
                    "tail_latency_cycles": lane.block.design.latency_cycles,
                    "tail_ii": lane.block.design.initiation_interval,
                    "reconfigurations": lane.block.reconfigurations
                    - start_reconfigs,
                    "reconfig_cycles": lane.block.reconfig_cycles
                    - start_reconfig_cycles,
                }
            )
        return payloads

    def _resync_from_pool(self, lanes) -> None:
        """Restore this process's lane pipelines from worker snapshots
        (best effort — after a failed run the workers are the truth)."""
        snapshots = self.pool.pull_snapshots()
        if snapshots is None:
            return
        for lane, per_app in zip(lanes, snapshots):
            for app_index, snapshot in per_app.items():
                lane.pipelines[app_index].restore_state(snapshot)

    def _lane_task(self, lane: _Lane, schedule, transport: bool):
        chunk_size = self.chunk_size

        def task() -> dict:
            block = lane.block
            start_cycle = block._next_issue_cycle
            start_reconfigs = block.reconfigurations
            start_reconfig_cycles = block.reconfig_cycles
            pieces: dict[int, list[TracePipelineResult]] = {
                a: [] for a in lane.pipelines
            }
            for a, chunk in schedule:
                pieces[a].append(
                    lane.pipelines[a].process_trace_batch(
                        chunk, chunk_size=max(chunk.n, chunk_size)
                    )
                )
            return {
                "results": {
                    a: concat_results(parts) for a, parts in pieces.items()
                },
                "busy_cycles": block._next_issue_cycle - start_cycle,
                "tail_latency_cycles": block.design.latency_cycles,
                "tail_ii": block.design.initiation_interval,
                "reconfigurations": block.reconfigurations - start_reconfigs,
                "reconfig_cycles": block.reconfig_cycles
                - start_reconfig_cycles,
                "snapshots": (
                    {
                        a: pipe.state_snapshot()
                        for a, pipe in lane.pipelines.items()
                    }
                    if transport
                    else None
                ),
            }

        return task

    def _merge_app(
        self,
        app_index: int,
        ordered: TraceColumns,
        order: np.ndarray,
        parts,
        lane_results: list[TracePipelineResult],
    ) -> TracePipelineResult:
        """One app's lane outputs as a single arrival-ordered result.

        ``scatter_merge`` gathers over the *time-sorted* columns (so its
        internal order is the identity); the returned result re-exposes
        the caller-order mapping, exactly like one pipeline over the
        original trace.
        """
        if ordered.n == 0:
            self._app_turns[app_index] = 0
            return empty_trace_result()
        merged = scatter_merge(ordered, parts, lane_results)
        # The globally-last packet fixes this app's merged arbiter turn.
        last = ordered.n - 1
        lanes = self.app_lanes(app_index)
        for lane_pos, (indices, __) in enumerate(parts):
            if len(indices) and indices[-1] == last:
                pipe = self._lanes[lanes[lane_pos]].pipelines[app_index]
                self._app_turns[app_index] = pipe.arbiter._turn
                break
        return TracePipelineResult(
            order=order,
            times=merged.times,
            decisions=merged.decisions,
            ml_scores=merged.ml_scores,
            latencies_ns=merged.latencies_ns,
            bypassed=merged.bypassed,
            aggregates=merged.aggregates,
        )

    # ------------------------------------------------------------------
    # Merged observable state (verification: no cross-app leakage)
    # ------------------------------------------------------------------
    def app_state(self, name: str) -> dict:
        """One app's pipeline state merged across its lanes.

        Stats, registers, MAT counters, parser totals, and queue state
        aggregate exactly as a single pipeline would report them — the
        property tests compare this against the app running alone to
        prove no register/recurrent state leaks between apps.  Block
        counters are omitted: a lane's block is time-shared, so its
        packet/issue totals are a *fabric* observable, not a per-app one.
        """
        index = next(
            (a for a, app in enumerate(self.apps) if app.name == name), None
        )
        if index is None:
            raise KeyError(name)
        lanes = self._ensure_lanes()
        pipelines = [
            lanes[s].pipelines[index] for s in self.app_lanes(index)
        ]
        state = merge_pipeline_state(
            pipelines, self._app_turns.get(index, 0)
        )
        state.pop("block_packets")
        state.pop("block_issue_cycles")
        return state
