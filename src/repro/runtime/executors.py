"""Worker-pool strategies for the sharded runtime.

Three interchangeable ways to evaluate a list of independent zero-argument
tasks (one per shard):

* ``serial``  — run in the calling thread (the 1-shard / 1-CPU fast path);
* ``thread``  — a thread pool; NumPy releases the GIL on large kernels, so
  vectorized shards overlap on multi-core hosts without any pickling;
* ``fork``    — one forked child per task (POSIX only).  Children inherit
  the parent's pipelines copy-on-write, so *inputs* are never pickled;
  only each task's return value travels back through a pipe.  This is the
  fully parallel path: no GIL, no shared mutable state.

``auto`` resolves to the best available strategy for the host: ``serial``
when there is nothing to parallelize (one task, or one usable CPU),
otherwise ``fork`` where :func:`os.fork` exists and ``thread`` elsewhere.
"""

from __future__ import annotations

import os
import pickle
import signal
import struct
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = [
    "EXECUTORS",
    "ERROR_REQUEST",
    "ForkWorker",
    "WorkerCrash",
    "WorkerDispatchError",
    "available_parallelism",
    "read_frame",
    "resolve_executor",
    "run_tasks",
    "write_frame",
]

#: Accepted values for the ``executor`` knob.
EXECUTORS = ("auto", "serial", "thread", "fork")


def available_parallelism() -> int:
    """CPUs this process may actually use (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_executor(mode: str, n_tasks: int) -> str:
    """Map an executor request to the concrete strategy for this host."""
    if mode not in EXECUTORS:
        raise ValueError(f"unknown executor {mode!r}; pick one of {EXECUTORS}")
    if n_tasks <= 1:
        return "serial"
    if mode == "fork" and not hasattr(os, "fork"):
        return "thread"
    if mode != "auto":
        return mode
    if available_parallelism() <= 1:
        return "serial"
    return "fork" if hasattr(os, "fork") else "thread"


def run_tasks(tasks: Sequence[Callable[[], object]], mode: str = "auto") -> list:
    """Evaluate every task, returning results in task order.

    Task return values must be picklable under ``fork`` (they cross a
    pipe); the other strategies place no constraint.  A failing task
    raises in the caller under every strategy.
    """
    strategy = resolve_executor(mode, len(tasks))
    if strategy == "serial":
        return [task() for task in tasks]
    if strategy == "thread":
        # Cap at the CPUs this process may actually use: a 64-shard run on
        # a 4-core host queues on 4 threads instead of oversubscribing.
        workers = min(len(tasks), available_parallelism())
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [future.result() for future in futures]
    return _fork_map(tasks)


def _fork_map(tasks: Sequence[Callable[[], object]]) -> list:
    """One forked child per task; results return pickled through pipes.

    The parent reads each pipe to EOF in task order.  Children whose pipe
    buffers fill simply block in ``write`` until the parent gets to them,
    so the computation still overlaps fully and no deadlock is possible.
    """
    children: list[tuple[int, int]] = []
    for task in tasks:
        read_fd, write_fd = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        try:
            pid = os.fork()
        except BaseException:
            # A mid-loop fork failure (e.g. EAGAIN) must not leak this
            # task's pipe or strand the children already spawned: close
            # both ends, unblock the survivors (closing our read end
            # EPIPEs any writer), and reap them before re-raising.
            os.close(read_fd)
            os.close(write_fd)
            for spawned_pid, spawned_read_fd in children:
                os.close(spawned_read_fd)
                os.waitpid(spawned_pid, 0)
            raise
        if pid == 0:  # child
            os.close(read_fd)
            status = 0
            try:
                payload = pickle.dumps(
                    (True, task()), protocol=pickle.HIGHEST_PROTOCOL
                )
            except BaseException as exc:  # report, never unwind into pytest
                payload = pickle.dumps(
                    (False, f"{type(exc).__name__}: {exc}"),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                status = 1
            try:
                with os.fdopen(write_fd, "wb") as sink:
                    sink.write(payload)
            finally:
                os._exit(status)  # skip atexit/pytest teardown in the child
        os.close(write_fd)
        children.append((pid, read_fd))

    results: list = []
    failures: list[str] = []
    for pid, read_fd in children:
        # Always drain and reap every child, even after an earlier one
        # failed — otherwise survivors block forever on their pipes.
        try:
            with os.fdopen(read_fd, "rb") as source:
                data = source.read()
        except OSError as exc:
            data = None
            failures.append(f"worker pid {pid}: pipe read failed ({exc})")
        __, wait_status = os.waitpid(pid, 0)
        exit_code = os.waitstatus_to_exitcode(wait_status)
        if data is None:
            continue
        if not data:
            failures.append(
                f"worker pid {pid} exited without a result "
                f"(exit status {exit_code})"
            )
            continue
        try:
            ok, payload = pickle.loads(data)
        except Exception as exc:  # truncated/corrupt payload (e.g. OOM kill)
            failures.append(
                f"worker pid {pid}: unreadable result ({exc}; "
                f"exit status {exit_code})"
            )
            continue
        if not ok:
            failures.append(payload)
        elif exit_code != 0:
            # A well-formed payload is not enough: a child that died
            # nonzero (e.g. killed during its os._exit bookkeeping) may
            # have shipped state from a half-torn-down pipeline, so its
            # result cannot be trusted.
            failures.append(
                f"worker pid {pid} returned a result but exited with "
                f"status {exit_code}"
            )
        else:
            results.append(payload)
    if failures:
        raise RuntimeError("sharded worker failed: " + "; ".join(failures))
    return results


# ----------------------------------------------------------------------
# Persistent worker protocol (the ShardPool substrate)
# ----------------------------------------------------------------------
#: Length-prefix framing for pickled messages over a pipe: 8-byte little-
#: endian payload size, then the payload.  Framing (rather than
#: read-to-EOF, as ``_fork_map`` uses) is what lets one long-lived worker
#: serve many requests over one pipe pair.
_FRAME_HEADER = struct.Struct("<Q")

#: Request kind that reports a parent-side dispatch failure; the worker
#: echoes it back as an abort response, so a collector blocked on the
#: response pipe wakes with the error instead of hanging forever.
ERROR_REQUEST = "__error__"


def write_frame(sink, payload: bytes) -> None:
    """Write one framed message to a binary file object and flush it."""
    sink.write(_FRAME_HEADER.pack(len(payload)))
    sink.write(payload)
    sink.flush()


def _read_exact(source, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    data = bytearray()
    while len(data) < n:
        piece = source.read(n - len(data))
        if not piece:
            return None if not data else bytes(data)
        data.extend(piece)
    return bytes(data)


def read_frame(source) -> bytes | None:
    """Read one framed message; None when the peer closed the pipe."""
    header = _read_exact(source, _FRAME_HEADER.size)
    if header is None or len(header) < _FRAME_HEADER.size:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    body = _read_exact(source, length)
    if body is None or len(body) < length:
        return None  # torn frame == dead peer, callers treat both as EOF
    return body


class WorkerDispatchError(RuntimeError):
    """The parent-side dispatch of a request stream failed mid-run.

    Raised by :meth:`ForkWorker.recv` when the worker echoes an
    :data:`ERROR_REQUEST` back — the stream's iterator raised, or a
    payload would not pickle.  The worker itself is healthy and the
    conversation is in sync (nothing was sent after the error), so no
    restart is needed, but the run cannot complete.
    """


class WorkerCrash(RuntimeError):
    """A persistent worker process died mid-conversation.

    Carries the worker's pid and its decoded exit status (negative values
    are ``-signum``, matching :func:`os.waitstatus_to_exitcode`), so pool
    owners can report *how* the worker died and replace it.
    """

    def __init__(self, pid: int, exit_status: int | None, detail: str = ""):
        self.pid = pid
        self.exit_status = exit_status
        status = "unknown" if exit_status is None else str(exit_status)
        if exit_status is not None and exit_status < 0:
            status += f" (killed by signal {-exit_status})"
        message = f"pool worker pid {pid} died (exit status {status})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


def _serve(context, request_fd: int, response_fd: int) -> None:
    """A forked worker's request loop: framed pickles in, framed out.

    Runs until the parent closes the request pipe (EOF is the shutdown
    signal).  Handler exceptions are reported in-band — ``(False, msg)``
    — so one bad chunk doesn't kill the worker.
    """
    with os.fdopen(request_fd, "rb") as rx, os.fdopen(response_fd, "wb") as tx:
        while True:
            frame = read_frame(rx)
            if frame is None:
                return
            kind, payload = pickle.loads(frame)
            if kind == ERROR_REQUEST:
                # Parent-side dispatch failure: echo it back so the
                # parent's collector unblocks with the error.
                response = ("abort", payload)
            else:
                try:
                    response = (True, context.handle(kind, payload))
                except BaseException as exc:  # report, never unwind the loop
                    response = (False, f"{type(exc).__name__}: {exc}")
            write_frame(
                tx, pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
            )


class ForkWorker:
    """One pre-forked child process serving requests over a pipe pair.

    The child inherits ``context`` copy-on-write at fork time and answers
    ``handle(kind, payload)`` requests until closed — the cross-process
    half of :class:`~repro.runtime.pool.ShardPool`.  Requests and
    responses are framed pickles; only per-chunk data crosses the pipes,
    never the context itself.

    ``extra_close_fds`` are parent-side pipe ends of *sibling* workers:
    the child must close its inherited copies, or a sibling would never
    see EOF when the parent closes its request pipe.
    """

    def __init__(self, context, extra_close_fds: Sequence[int] = ()):
        if not hasattr(os, "fork"):
            raise RuntimeError("ForkWorker requires os.fork (POSIX only)")
        request_read, request_write = os.pipe()
        response_read, response_write = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:  # child
            status = 0
            try:
                os.close(request_write)
                os.close(response_read)
                for fd in extra_close_fds:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                _serve(context, request_read, response_write)
            except BaseException:
                status = 1
            finally:
                os._exit(status)  # skip atexit/pytest teardown in the child
        os.close(request_read)
        os.close(response_write)
        self.pid = pid
        self._tx = os.fdopen(request_write, "wb")
        self._rx = os.fdopen(response_read, "rb")
        self._exit_status: int | None = None

    @property
    def parent_fds(self) -> tuple[int, int]:
        """Parent-side fds a later sibling's child must close."""
        return (self._tx.fileno(), self._rx.fileno())

    @property
    def alive(self) -> bool:
        if self._exit_status is not None:
            return False
        pid, status = os.waitpid(self.pid, os.WNOHANG)
        if pid:
            self._exit_status = os.waitstatus_to_exitcode(status)
            return False
        return True

    # ------------------------------------------------------------------
    # Conversation
    # ------------------------------------------------------------------
    def send(self, kind: str, payload) -> None:
        try:
            write_frame(
                self._tx,
                pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL),
            )
        except (BrokenPipeError, OSError, ValueError) as exc:
            # ValueError: the pipe was closed under us (pool shutdown).
            raise WorkerCrash(
                self.pid, self.reap(), f"request pipe broke ({exc})"
            ) from None

    def recv(self):
        """The next response, in request order.

        Raises :class:`WorkerCrash` if the child died (EOF / torn frame),
        :class:`WorkerDispatchError` if the parent-side dispatch failed
        (echoed :data:`ERROR_REQUEST`), or ``RuntimeError`` if the child
        survived but its handler raised.
        """
        try:
            frame = read_frame(self._rx)
        except (OSError, ValueError):  # pipe closed under us (pool shutdown)
            frame = None
        if frame is None:
            raise WorkerCrash(self.pid, self.reap(), "response pipe closed")
        status, payload = pickle.loads(frame)
        if status == "abort":
            raise WorkerDispatchError(
                f"dispatch to pool worker pid {self.pid} failed: {payload}"
            )
        if not status:
            raise RuntimeError(f"pool worker pid {self.pid} failed: {payload}")
        return payload

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def reap(self, timeout: float = 1.0) -> int:
        """Wait for the child (bounded), SIGKILL past the deadline."""
        if self._exit_status is not None:
            return self._exit_status
        deadline = time.monotonic() + timeout
        while True:
            try:
                pid, status = os.waitpid(self.pid, os.WNOHANG)
            except ChildProcessError:
                self._exit_status = 0  # already reaped elsewhere
                return self._exit_status
            if pid:
                break
            if time.monotonic() >= deadline:
                try:
                    os.kill(self.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                try:
                    __, status = os.waitpid(self.pid, 0)
                except ChildProcessError:
                    # A concurrent reap (collector vs close()) won the
                    # race; keep its status if it landed first.
                    if self._exit_status is None:
                        self._exit_status = 0
                    return self._exit_status
                break
            time.sleep(0.002)
        self._exit_status = os.waitstatus_to_exitcode(status)
        return self._exit_status

    def close(self, timeout: float = 5.0) -> int:
        """Deterministic shutdown: EOF the request pipe, then reap.

        Safe to call repeatedly and regardless of worker state; a child
        stuck mid-chunk is SIGKILLed once ``timeout`` expires.  Returns
        the child's exit status.
        """
        for stream in (self._tx, self._rx):
            try:
                stream.close()
            except OSError:
                pass
        return self.reap(timeout)
