"""Worker-pool strategies for the sharded runtime.

Three interchangeable ways to evaluate a list of independent zero-argument
tasks (one per shard):

* ``serial``  — run in the calling thread (the 1-shard / 1-CPU fast path);
* ``thread``  — a thread pool; NumPy releases the GIL on large kernels, so
  vectorized shards overlap on multi-core hosts without any pickling;
* ``fork``    — one forked child per task (POSIX only).  Children inherit
  the parent's pipelines copy-on-write, so *inputs* are never pickled;
  only each task's return value travels back through a pipe.  This is the
  fully parallel path: no GIL, no shared mutable state.

``auto`` resolves to the best available strategy for the host: ``serial``
when there is nothing to parallelize (one task, or one usable CPU),
otherwise ``fork`` where :func:`os.fork` exists and ``thread`` elsewhere.
"""

from __future__ import annotations

import os
import pickle
import select
import signal
import struct
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from .faults import FAULT_REQUEST

__all__ = [
    "EXECUTORS",
    "ERROR_REQUEST",
    "ForkWorker",
    "WorkerCrash",
    "WorkerDispatchError",
    "available_parallelism",
    "read_frame",
    "resolve_executor",
    "run_tasks",
    "write_frame",
]

#: Accepted values for the ``executor`` knob.
EXECUTORS = ("auto", "serial", "thread", "fork")


def available_parallelism() -> int:
    """CPUs this process may actually use (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_executor(mode: str, n_tasks: int) -> str:
    """Map an executor request to the concrete strategy for this host."""
    if mode not in EXECUTORS:
        raise ValueError(f"unknown executor {mode!r}; pick one of {EXECUTORS}")
    if n_tasks <= 1:
        return "serial"
    if mode == "fork" and not hasattr(os, "fork"):
        return "thread"
    if mode != "auto":
        return mode
    if available_parallelism() <= 1:
        return "serial"
    return "fork" if hasattr(os, "fork") else "thread"


def run_tasks(tasks: Sequence[Callable[[], object]], mode: str = "auto") -> list:
    """Evaluate every task, returning results in task order.

    Task return values must be picklable under ``fork`` (they cross a
    pipe); the other strategies place no constraint.  A failing task
    raises in the caller under every strategy.
    """
    strategy = resolve_executor(mode, len(tasks))
    if strategy == "serial":
        return [task() for task in tasks]
    if strategy == "thread":
        # Cap at the CPUs this process may actually use: a 64-shard run on
        # a 4-core host queues on 4 threads instead of oversubscribing.
        workers = min(len(tasks), available_parallelism())
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [future.result() for future in futures]
    return _fork_map(tasks)


def _fork_map(tasks: Sequence[Callable[[], object]]) -> list:
    """One forked child per task; results return pickled through pipes.

    The parent reads each pipe to EOF in task order.  Children whose pipe
    buffers fill simply block in ``write`` until the parent gets to them,
    so the computation still overlaps fully and no deadlock is possible.
    """
    children: list[tuple[int, int]] = []
    for task in tasks:
        read_fd, write_fd = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        try:
            pid = os.fork()
        except BaseException:
            # A mid-loop fork failure (e.g. EAGAIN) must not leak this
            # task's pipe or strand the children already spawned: close
            # both ends, unblock the survivors (closing our read end
            # EPIPEs any writer), and reap them before re-raising.
            os.close(read_fd)
            os.close(write_fd)
            for spawned_pid, spawned_read_fd in children:
                os.close(spawned_read_fd)
                os.waitpid(spawned_pid, 0)
            raise
        if pid == 0:  # child
            os.close(read_fd)
            status = 0
            try:
                payload = pickle.dumps(
                    (True, task()), protocol=pickle.HIGHEST_PROTOCOL
                )
            except BaseException as exc:  # report, never unwind into pytest
                payload = pickle.dumps(
                    (False, f"{type(exc).__name__}: {exc}"),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                status = 1
            try:
                with os.fdopen(write_fd, "wb") as sink:
                    sink.write(payload)
            finally:
                os._exit(status)  # skip atexit/pytest teardown in the child
        os.close(write_fd)
        children.append((pid, read_fd))

    results: list = []
    failures: list[str] = []
    for pid, read_fd in children:
        # Always drain and reap every child, even after an earlier one
        # failed — otherwise survivors block forever on their pipes.
        try:
            with os.fdopen(read_fd, "rb") as source:
                data = source.read()
        except OSError as exc:
            data = None
            failures.append(f"worker pid {pid}: pipe read failed ({exc})")
        __, wait_status = os.waitpid(pid, 0)
        exit_code = os.waitstatus_to_exitcode(wait_status)
        if data is None:
            continue
        if not data:
            failures.append(
                f"worker pid {pid} exited without a result "
                f"(exit status {exit_code})"
            )
            continue
        try:
            ok, payload = pickle.loads(data)
        except Exception as exc:  # truncated/corrupt payload (e.g. OOM kill)
            failures.append(
                f"worker pid {pid}: unreadable result ({exc}; "
                f"exit status {exit_code})"
            )
            continue
        if not ok:
            failures.append(payload)
        elif exit_code != 0:
            # A well-formed payload is not enough: a child that died
            # nonzero (e.g. killed during its os._exit bookkeeping) may
            # have shipped state from a half-torn-down pipeline, so its
            # result cannot be trusted.
            failures.append(
                f"worker pid {pid} returned a result but exited with "
                f"status {exit_code}"
            )
        else:
            results.append(payload)
    if failures:
        raise RuntimeError("sharded worker failed: " + "; ".join(failures))
    return results


# ----------------------------------------------------------------------
# Persistent worker protocol (the ShardPool substrate)
# ----------------------------------------------------------------------
#: Length-prefix framing for pickled messages over a pipe: 8-byte little-
#: endian payload size, then the payload.  Framing (rather than
#: read-to-EOF, as ``_fork_map`` uses) is what lets one long-lived worker
#: serve many requests over one pipe pair.
_FRAME_HEADER = struct.Struct("<Q")

#: Request kind that reports a parent-side dispatch failure; the worker
#: echoes it back as an abort response, so a collector blocked on the
#: response pipe wakes with the error instead of hanging forever.
ERROR_REQUEST = "__error__"


def write_frame(sink, payload: bytes) -> None:
    """Write one framed message to a binary file object and flush it."""
    sink.write(_FRAME_HEADER.pack(len(payload)))
    sink.write(payload)
    sink.flush()


def _read_exact(source, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    data = bytearray()
    while len(data) < n:
        piece = source.read(n - len(data))
        if not piece:
            return None if not data else bytes(data)
        data.extend(piece)
    return bytes(data)


def read_frame(source) -> bytes | None:
    """Read one framed message; None when the peer closed the pipe."""
    header = _read_exact(source, _FRAME_HEADER.size)
    if header is None or len(header) < _FRAME_HEADER.size:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    body = _read_exact(source, length)
    if body is None or len(body) < length:
        return None  # torn frame == dead peer, callers treat both as EOF
    return body


class WorkerDispatchError(RuntimeError):
    """The parent-side dispatch of a request stream failed mid-run.

    Raised by :meth:`ForkWorker.recv` when the worker echoes an
    :data:`ERROR_REQUEST` back — the stream's iterator raised, or a
    payload would not pickle.  The worker itself is healthy and the
    conversation is in sync (nothing was sent after the error), so no
    restart is needed, but the run cannot complete.
    """


class WorkerCrash(RuntimeError):
    """A persistent worker process died (or hung) mid-conversation.

    Structured so the recovery path can act on it rather than parse it:
    ``worker_index`` is the pool slot, ``exit_status`` follows
    :func:`os.waitstatus_to_exitcode` (negative values are ``-signum``),
    ``hung`` marks a watchdog SIGKILL of a stuck-but-live worker, and
    ``last_acked`` is the last chunk ordinal the worker answered before
    dying (``None`` when the owner doesn't track acks).
    """

    def __init__(
        self,
        pid: int,
        exit_status: int | None,
        detail: str = "",
        *,
        worker_index: int | None = None,
        hung: bool = False,
        last_acked: int | None = None,
    ):
        self.pid = pid
        self.exit_status = exit_status
        self.detail = detail
        self.worker_index = worker_index
        self.hung = hung
        self.last_acked = last_acked
        super().__init__()

    @property
    def signum(self) -> int | None:
        """The killing signal's number, or None for a plain exit."""
        if self.exit_status is not None and self.exit_status < 0:
            return -self.exit_status
        return None

    @property
    def signal_name(self) -> str | None:
        """The killing signal's name (``SIGKILL``), or None."""
        if self.signum is None:
            return None
        try:
            return signal.Signals(self.signum).name
        except ValueError:
            return f"signal {self.signum}"

    def __str__(self) -> str:
        if self.worker_index is not None:
            who = f"pool worker {self.worker_index} (pid {self.pid})"
        else:
            who = f"pool worker pid {self.pid}"
        if self.signum is not None:
            how = f"killed by {self.signal_name}"
        elif self.exit_status is None:
            how = "exit status unknown"
        else:
            how = f"exit status {self.exit_status}"
        verb = "hung past its deadline and was killed" if self.hung else "died"
        message = f"{who} {verb} ({how})"
        if self.last_acked is not None:
            message += f" after acking chunk {self.last_acked}"
        if self.detail:
            message += f": {self.detail}"
        return message


def _serve(
    context,
    request_fd: int,
    response_fd: int,
    heartbeat_interval: float | None = None,
) -> None:
    """A forked worker's request loop: framed pickles in, framed out.

    Runs until the parent closes the request pipe (EOF is the shutdown
    signal).  Handler exceptions are reported in-band — ``(False, msg)``
    — so one bad chunk doesn't kill the worker.

    With ``heartbeat_interval`` set, a daemon thread interleaves
    ``("beat", {"busy_s", "handled"})`` frames with responses (the
    response writer is serialized by a lock, so frames never tear).
    ``busy_s`` is how long the *current* request has been in flight —
    the parent-side watchdog uses it to tell a stuck worker from a slow
    chunk queue.

    ``FAULT_REQUEST`` frames carry an injected failure plus the real
    request; the failure is executed *here*, at the dispatch point, so
    tests can provoke every crash mode deterministically (see
    :mod:`repro.runtime.faults`).
    """
    state = {"busy_since": None, "handled": 0}
    tx_lock = threading.Lock()

    with os.fdopen(request_fd, "rb") as rx, os.fdopen(response_fd, "wb") as tx:

        def _send(response) -> None:
            blob = pickle.dumps(response, protocol=pickle.HIGHEST_PROTOCOL)
            with tx_lock:
                write_frame(tx, blob)

        def _handle(kind, payload):
            state["busy_since"] = time.monotonic()  # noqa: rt-racy-field - heartbeat telemetry tolerates staleness; dict item writes are atomic under the GIL
            try:
                try:
                    return (True, context.handle(kind, payload))
                except BaseException as exc:  # report, never unwind the loop
                    return (False, f"{type(exc).__name__}: {exc}")
            finally:
                state["busy_since"] = None
                state["handled"] += 1

        if heartbeat_interval:

            def _beat() -> None:
                while True:
                    time.sleep(heartbeat_interval)
                    since = state["busy_since"]
                    busy_s = 0.0 if since is None else time.monotonic() - since
                    try:
                        _send(("beat", {
                            "busy_s": busy_s,
                            "handled": state["handled"],
                        }))
                    except (OSError, ValueError):
                        return  # pipe gone: the worker is shutting down

            threading.Thread(target=_beat, daemon=True).start()

        while True:
            frame = read_frame(rx)
            if frame is None:
                return
            kind, payload = pickle.loads(frame)
            if kind == ERROR_REQUEST:
                # Parent-side dispatch failure: echo it back so the
                # parent's collector unblocks with the error.
                _send(("abort", payload))
                continue
            if kind == FAULT_REQUEST:
                (fault_kind, seconds), (kind, payload) = payload
                if fault_kind == "kill":
                    # A segfault between frames: die without a trace.
                    os.kill(os.getpid(), signal.SIGKILL)
                if fault_kind in ("hang", "delay"):
                    # Hold the chunk (busy, unresponsive).  A hang only
                    # ends when the watchdog SIGKILLs us; a delay is the
                    # benign twin that must NOT trip recovery.
                    state["busy_since"] = time.monotonic()
                    time.sleep(seconds)
                    state["busy_since"] = None
                if fault_kind == "torn_frame":
                    # Crash mid-write: promise a full frame, deliver half.
                    response = _handle(kind, payload)
                    blob = pickle.dumps(
                        response, protocol=pickle.HIGHEST_PROTOCOL
                    )
                    with tx_lock:
                        tx.write(_FRAME_HEADER.pack(len(blob)))
                        tx.write(blob[: max(1, len(blob) // 2)])
                        tx.flush()
                    os._exit(1)
            _send(_handle(kind, payload))


class ForkWorker:
    """One pre-forked child process serving requests over a pipe pair.

    The child inherits ``context`` copy-on-write at fork time and answers
    ``handle(kind, payload)`` requests until closed — the cross-process
    half of :class:`~repro.runtime.pool.ShardPool`.  Requests and
    responses are framed pickles; only per-chunk data crosses the pipes,
    never the context itself.

    ``extra_close_fds`` are parent-side pipe ends of *sibling* workers:
    the child must close its inherited copies, or a sibling would never
    see EOF when the parent closes its request pipe.
    """

    def __init__(
        self,
        context,
        extra_close_fds: Sequence[int] = (),
        *,
        heartbeat_interval: float | None = None,
        index: int | None = None,
    ):
        if not hasattr(os, "fork"):
            raise RuntimeError("ForkWorker requires os.fork (POSIX only)")
        request_read, request_write = os.pipe()
        response_read, response_write = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:  # child
            status = 0
            try:
                os.close(request_write)
                os.close(response_read)
                for fd in extra_close_fds:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                _serve(context, request_read, response_write, heartbeat_interval)
            except BaseException:
                status = 1
            finally:
                os._exit(status)  # skip atexit/pytest teardown in the child
        os.close(request_read)
        os.close(response_write)
        self.pid = pid
        self.index = index
        self.heartbeat_interval = heartbeat_interval
        self._tx = os.fdopen(request_write, "wb")
        # Unbuffered: recv() select()s on the raw fd, and a buffered file
        # object could hold a frame select cannot see.
        self._rx = os.fdopen(response_read, "rb", buffering=0)
        self._exit_status: int | None = None

    @property
    def parent_fds(self) -> tuple[int, int]:
        """Parent-side fds a later sibling's child must close."""
        return (self._tx.fileno(), self._rx.fileno())

    @property
    def alive(self) -> bool:
        if self._exit_status is not None:
            return False
        pid, status = os.waitpid(self.pid, os.WNOHANG)
        if pid:
            self._exit_status = os.waitstatus_to_exitcode(status)  # noqa: rt-racy-field - reap() serializes on waitpid; a racing observer tolerates the ChildProcessError tie
            return False
        return True

    # ------------------------------------------------------------------
    # Conversation
    # ------------------------------------------------------------------
    def send(self, kind: str, payload) -> None:
        try:
            write_frame(
                self._tx,
                pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL),
            )
        except (BrokenPipeError, OSError, ValueError) as exc:
            # ValueError: the pipe was closed under us (pool shutdown).
            raise WorkerCrash(
                self.pid,
                self.reap(),
                f"request pipe broke ({exc})",
                worker_index=self.index,
            ) from None

    def _next_frame(self, hang_timeout: float | None) -> bytes | None:
        """One frame off the response pipe, None on EOF/torn frame.

        With a ``hang_timeout``, waits on the raw fd via select and
        SIGKILLs the child if *nothing* (not even a heartbeat) arrives
        within the deadline — the watchdog's no-signs-of-life rule.
        """
        if hang_timeout is None:
            try:
                return read_frame(self._rx)
            except (OSError, ValueError):  # pipe closed (pool shutdown)
                return None
        deadline = time.monotonic() + hang_timeout
        while True:
            try:
                fd = self._rx.fileno()
            except ValueError:  # rx closed under us
                return None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.kill()
                raise WorkerCrash(
                    self.pid,
                    self.reap(),
                    f"no frames for {hang_timeout:.1f}s",
                    worker_index=self.index,
                    hung=True,
                )
            try:
                ready, __, __ = select.select([fd], [], [], min(remaining, 0.25))
            except (OSError, ValueError):
                return None
            if ready:
                try:
                    return read_frame(self._rx)
                except (OSError, ValueError):
                    return None

    def recv(self, hang_timeout: float | None = None):
        """The next response, in request order.

        Heartbeat frames are consumed transparently; each one restarts
        the ``hang_timeout`` clock, and a beat reporting a single request
        in flight for longer than ``hang_timeout`` gets the child
        SIGKILLed (the watchdog's stuck-worker rule).

        Raises :class:`WorkerCrash` if the child died (EOF / torn frame)
        or was killed by the watchdog, :class:`WorkerDispatchError` if
        the parent-side dispatch failed (echoed :data:`ERROR_REQUEST`),
        or ``RuntimeError`` if the child survived but its handler raised.
        """
        while True:
            frame = self._next_frame(hang_timeout)
            if frame is None:
                raise WorkerCrash(
                    self.pid,
                    self.reap(),
                    "response pipe closed",
                    worker_index=self.index,
                )
            status, payload = pickle.loads(frame)
            if status == "beat":
                busy_s = float(payload.get("busy_s", 0.0))
                if hang_timeout is not None and busy_s > hang_timeout:
                    self.kill()
                    raise WorkerCrash(
                        self.pid,
                        self.reap(),
                        f"request in flight for {busy_s:.1f}s "
                        f"(deadline {hang_timeout:.1f}s)",
                        worker_index=self.index,
                        hung=True,
                    )
                continue
            if status == "abort":
                raise WorkerDispatchError(
                    f"dispatch to pool worker pid {self.pid} failed: {payload}"
                )
            if not status:
                raise RuntimeError(
                    f"pool worker pid {self.pid} failed: {payload}"
                )
            return payload

    def kill(self) -> None:
        """SIGKILL the child (idempotent; reap() collects the status)."""
        try:
            os.kill(self.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def reap(self, timeout: float = 1.0) -> int:
        """Wait for the child (bounded), SIGKILL past the deadline."""
        if self._exit_status is not None:
            return self._exit_status
        deadline = time.monotonic() + timeout
        while True:
            try:
                pid, status = os.waitpid(self.pid, os.WNOHANG)
            except ChildProcessError:
                self._exit_status = 0  # already reaped elsewhere
                return self._exit_status
            if pid:
                break
            if time.monotonic() >= deadline:
                try:
                    os.kill(self.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                try:
                    __, status = os.waitpid(self.pid, 0)
                except ChildProcessError:
                    # A concurrent reap (collector vs close()) won the
                    # race; keep its status if it landed first.
                    if self._exit_status is None:
                        self._exit_status = 0
                    return self._exit_status
                break
            time.sleep(0.002)
        self._exit_status = os.waitstatus_to_exitcode(status)
        return self._exit_status

    def close(self, timeout: float = 5.0) -> int:
        """Deterministic shutdown: EOF the request pipe, then reap.

        Safe to call repeatedly and regardless of worker state; a child
        stuck mid-chunk is SIGKILLed once ``timeout`` expires.  Returns
        the child's exit status.
        """
        for stream in (self._tx, self._rx):
            try:
                stream.close()
            except OSError:
                pass
        return self.reap(timeout)
