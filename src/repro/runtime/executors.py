"""Worker-pool strategies for the sharded runtime.

Three interchangeable ways to evaluate a list of independent zero-argument
tasks (one per shard):

* ``serial``  — run in the calling thread (the 1-shard / 1-CPU fast path);
* ``thread``  — a thread pool; NumPy releases the GIL on large kernels, so
  vectorized shards overlap on multi-core hosts without any pickling;
* ``fork``    — one forked child per task (POSIX only).  Children inherit
  the parent's pipelines copy-on-write, so *inputs* are never pickled;
  only each task's return value travels back through a pipe.  This is the
  fully parallel path: no GIL, no shared mutable state.

``auto`` resolves to the best available strategy for the host: ``serial``
when there is nothing to parallelize (one task, or one usable CPU),
otherwise ``fork`` where :func:`os.fork` exists and ``thread`` elsewhere.
"""

from __future__ import annotations

import os
import pickle
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = ["EXECUTORS", "available_parallelism", "resolve_executor", "run_tasks"]

#: Accepted values for the ``executor`` knob.
EXECUTORS = ("auto", "serial", "thread", "fork")


def available_parallelism() -> int:
    """CPUs this process may actually use (affinity-aware where possible)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_executor(mode: str, n_tasks: int) -> str:
    """Map an executor request to the concrete strategy for this host."""
    if mode not in EXECUTORS:
        raise ValueError(f"unknown executor {mode!r}; pick one of {EXECUTORS}")
    if n_tasks <= 1:
        return "serial"
    if mode == "fork" and not hasattr(os, "fork"):
        return "thread"
    if mode != "auto":
        return mode
    if available_parallelism() <= 1:
        return "serial"
    return "fork" if hasattr(os, "fork") else "thread"


def run_tasks(tasks: Sequence[Callable[[], object]], mode: str = "auto") -> list:
    """Evaluate every task, returning results in task order.

    Task return values must be picklable under ``fork`` (they cross a
    pipe); the other strategies place no constraint.  A failing task
    raises in the caller under every strategy.
    """
    strategy = resolve_executor(mode, len(tasks))
    if strategy == "serial":
        return [task() for task in tasks]
    if strategy == "thread":
        with ThreadPoolExecutor(max_workers=len(tasks)) as pool:
            futures = [pool.submit(task) for task in tasks]
            return [future.result() for future in futures]
    return _fork_map(tasks)


def _fork_map(tasks: Sequence[Callable[[], object]]) -> list:
    """One forked child per task; results return pickled through pipes.

    The parent reads each pipe to EOF in task order.  Children whose pipe
    buffers fill simply block in ``write`` until the parent gets to them,
    so the computation still overlaps fully and no deadlock is possible.
    """
    children: list[tuple[int, int]] = []
    for task in tasks:
        read_fd, write_fd = os.pipe()
        sys.stdout.flush()
        sys.stderr.flush()
        pid = os.fork()
        if pid == 0:  # child
            os.close(read_fd)
            status = 0
            try:
                payload = pickle.dumps(
                    (True, task()), protocol=pickle.HIGHEST_PROTOCOL
                )
            except BaseException as exc:  # report, never unwind into pytest
                payload = pickle.dumps(
                    (False, f"{type(exc).__name__}: {exc}"),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                status = 1
            try:
                with os.fdopen(write_fd, "wb") as sink:
                    sink.write(payload)
            finally:
                os._exit(status)  # skip atexit/pytest teardown in the child
        os.close(write_fd)
        children.append((pid, read_fd))

    results: list = []
    failures: list[str] = []
    for pid, read_fd in children:
        # Always drain and reap every child, even after an earlier one
        # failed — otherwise survivors block forever on their pipes.
        try:
            with os.fdopen(read_fd, "rb") as source:
                data = source.read()
        except OSError as exc:
            data = None
            failures.append(f"worker pid {pid}: pipe read failed ({exc})")
        __, wait_status = os.waitpid(pid, 0)
        exit_code = os.waitstatus_to_exitcode(wait_status)
        if data is None:
            continue
        if not data:
            failures.append(
                f"worker pid {pid} exited without a result "
                f"(exit status {exit_code})"
            )
            continue
        try:
            ok, payload = pickle.loads(data)
        except Exception as exc:  # truncated/corrupt payload (e.g. OOM kill)
            failures.append(
                f"worker pid {pid}: unreadable result ({exc}; "
                f"exit status {exit_code})"
            )
            continue
        if not ok:
            failures.append(payload)
        elif exit_code != 0:
            # A well-formed payload is not enough: a child that died
            # nonzero (e.g. killed during its os._exit bookkeeping) may
            # have shipped state from a half-torn-down pipeline, so its
            # result cannot be trusted.
            failures.append(
                f"worker pid {pid} returned a result but exited with "
                f"status {exit_code}"
            )
        else:
            results.append(payload)
    if failures:
        raise RuntimeError("sharded worker failed: " + "; ".join(failures))
    return results
