"""Sharded, overlapped, multi-app streaming runtime for trace-scale runs.

The scale-out layer above the batched pipeline: flow-consistent sharding
across parallel pipeline workers (:class:`ShardedRuntime`), pluggable
executors (:func:`run_tasks`), double-buffered chunk staging
(:func:`prefetch`), and time-multiplexing of several compiled apps over
shared grid lanes (:class:`MultiAppFabric`).
"""

from .executors import (
    EXECUTORS,
    available_parallelism,
    resolve_executor,
    run_tasks,
)
from .fabric import (
    SCHEDULING_POLICIES,
    FabricApp,
    MultiAppFabric,
    MultiAppResult,
    schedule_chunks,
)
from .overlap import prefetch
from .sharded import (
    ShardedRuntime,
    as_trace_columns,
    empty_trace_result,
    merge_pipeline_state,
    scatter_merge,
)

__all__ = [
    "EXECUTORS",
    "available_parallelism",
    "resolve_executor",
    "run_tasks",
    "SCHEDULING_POLICIES",
    "FabricApp",
    "MultiAppFabric",
    "MultiAppResult",
    "schedule_chunks",
    "prefetch",
    "ShardedRuntime",
    "as_trace_columns",
    "empty_trace_result",
    "merge_pipeline_state",
    "scatter_merge",
]
