"""Sharded, overlapped streaming runtime for trace-scale execution.

The scale-out layer above the batched pipeline: flow-consistent sharding
across parallel pipeline workers (:class:`ShardedRuntime`), pluggable
executors (:func:`run_tasks`), and double-buffered chunk staging
(:func:`prefetch`).
"""

from .executors import (
    EXECUTORS,
    available_parallelism,
    resolve_executor,
    run_tasks,
)
from .overlap import prefetch
from .sharded import ShardedRuntime

__all__ = [
    "EXECUTORS",
    "available_parallelism",
    "resolve_executor",
    "run_tasks",
    "prefetch",
    "ShardedRuntime",
]
