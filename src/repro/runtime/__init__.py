"""Sharded, overlapped, multi-app streaming runtime for trace-scale runs.

The scale-out layer above the batched pipeline: flow-consistent sharding
across parallel pipeline workers (:class:`ShardedRuntime`), pluggable
executors (:func:`run_tasks`), double-buffered chunk staging
(:func:`prefetch`), time-multiplexing of several compiled apps over
shared grid lanes (:class:`MultiAppFabric`), and persistent pre-forked
worker pools with pipelined chunk dispatch (:class:`ShardPool`) that
amortize per-run setup across consecutive runs.  Pool runs are
crash-transparent: heartbeats and a watchdog detect dead or hung
workers, replacements replay unacknowledged chunks, and deterministic
fault injection (:class:`FaultPlan`) exercises those paths in tests.
:class:`InferenceService` turns the pool-backed runtimes into an
always-on serving loop with explicit admission control, per-client
bounded queues, token-bucket rate limiting, overload policies, and
per-request time-to-decision accounting.
"""

from .executors import (
    EXECUTORS,
    ForkWorker,
    WorkerCrash,
    available_parallelism,
    resolve_executor,
    run_tasks,
)
from .faults import FAULT_KINDS, FaultEvent, FaultPlan
from .health import PoisonChunk, PoolError, PoolHealth, WorkerHealth
from .fabric import (
    SCHEDULING_POLICIES,
    FabricApp,
    MultiAppFabric,
    MultiAppResult,
    schedule_chunks,
)
from .overlap import prefetch
from .pool import (
    POOL_MODES,
    LaneWorker,
    PipelineShardWorker,
    ShardPool,
    resolve_pool_mode,
)
from .service import (
    ACCEPTED,
    DEFERRED,
    OVERLOAD_POLICIES,
    SHED,
    Admission,
    ClientSpec,
    InferenceService,
    ServiceResult,
    ServiceStats,
    VirtualClock,
)
from .sharded import (
    ShardedRuntime,
    as_trace_columns,
    concat_results,
    empty_trace_result,
    merge_pipeline_state,
    scatter_merge,
)

__all__ = [
    "EXECUTORS",
    "ForkWorker",
    "WorkerCrash",
    "available_parallelism",
    "resolve_executor",
    "run_tasks",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "PoisonChunk",
    "PoolError",
    "PoolHealth",
    "WorkerHealth",
    "SCHEDULING_POLICIES",
    "FabricApp",
    "MultiAppFabric",
    "MultiAppResult",
    "schedule_chunks",
    "prefetch",
    "POOL_MODES",
    "LaneWorker",
    "PipelineShardWorker",
    "ShardPool",
    "resolve_pool_mode",
    "ACCEPTED",
    "DEFERRED",
    "SHED",
    "OVERLOAD_POLICIES",
    "Admission",
    "ClientSpec",
    "InferenceService",
    "ServiceResult",
    "ServiceStats",
    "VirtualClock",
    "ShardedRuntime",
    "as_trace_columns",
    "concat_results",
    "empty_trace_result",
    "merge_pipeline_state",
    "scatter_merge",
]
