"""Flow-consistent sharded execution of the batched PISA pipeline.

The Taurus switch runs many compute units side by side; this runtime
brings the same dimension of parallelism to trace replay by partitioning
a packet trace across ``N`` independent :class:`~repro.pisa.TaurusPipeline`
workers (each with its own parser, MATs, flow registers, and MapReduce
block) and deterministically merging their outputs.

**Why results stay bit-identical to one pipeline.**  Packets are sharded
by *register slot*: the flow key's FNV-1a hash modulo the accumulator's
slot count — exactly the index the flow registers use — then modulo the
shard count.  Every packet that would touch a given register slot
(including hash-collision neighbours) therefore lands on the same shard,
in arrival order, so each shard's register file evolves exactly as the
corresponding slots of a single shared register file would.  All other
per-packet state (parse, MAT actions, fabric scoring) is independent
across packets, and counters (stats, MAT hit/miss, parser totals) are
pure sums.  The merge scatters per-shard outputs back to global
arrival-time order and is asserted bit/stat-identical to the single-shard
oracle by ``tests/test_shard_runtime.py``.

Execution strategies (``executor=``) come from
:mod:`repro.runtime.executors`: ``serial``, ``thread``, ``fork`` (true
multi-core; per-shard pipeline state is snapshotted in the child and
restored into the parent's pipeline objects), or ``auto``.

Besides wall-clock throughput, the runtime models the *hardware* drain
rate of ``N`` parallel MapReduce blocks: each shard's block drains its
packets at the design's initiation-interval-limited rate concurrently,
so a trace completes in the slowest shard's drain time
(:attr:`ShardedRuntime.last_drain_ns`) — the scale-out twin of
:attr:`~repro.hw.grid.BatchInferenceResult.duration_ns`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..datasets.packets import PacketTrace, TraceColumns
from ..hw.params import CLOCK_GHZ
from ..pisa.pipeline import (
    DEFAULT_TRACE_CHUNK,
    TaurusPipeline,
    TracePipelineResult,
)
from .executors import resolve_executor, run_tasks
from .pool import PipelineShardWorker, ShardPool, pool_mode_for_executor

__all__ = [
    "ShardedRuntime",
    "as_trace_columns",
    "concat_results",
    "empty_trace_result",
    "scatter_merge",
    "merge_pipeline_state",
]


def as_trace_columns(trace) -> TraceColumns:
    """Coerce any accepted trace form to :class:`TraceColumns`.

    Shared by :class:`ShardedRuntime` and the multi-app fabric: a
    ``TraceColumns`` passes through, anything with a cached ``columns()``
    view (:class:`~repro.datasets.packets.PacketTrace`) uses it, and a
    plain packet list is columnarized on the fly.
    """
    if isinstance(trace, TraceColumns):
        return trace
    if hasattr(trace, "columns"):
        return trace.columns()
    return TraceColumns.from_packets(list(trace))


def empty_trace_result() -> TracePipelineResult:
    """A zero-packet :class:`TracePipelineResult` (the no-op run)."""
    return TracePipelineResult(
        order=np.zeros(0, dtype=np.int64),
        times=np.zeros(0, dtype=np.float64),
        decisions=np.zeros(0, dtype=np.int64),
        ml_scores=np.zeros(0, dtype=np.float64),
        latencies_ns=np.zeros(0, dtype=np.float64),
        bypassed=np.zeros(0, dtype=bool),
        aggregates={},
    )


def scatter_merge(
    columns: TraceColumns,
    parts,
    results: list[TracePipelineResult],
) -> TracePipelineResult:
    """Scatter per-part outputs to global positions, gather in time order.

    Each part is ``(global_indices, sub_columns)`` over ``columns`` and
    ``results[p]`` is that part's pipeline outcome: result row ``r``
    describes the packet at global input position
    ``indices[result.order[r]]``.  The merged result lists packets in
    global arrival order — exactly what one pipeline over the whole trace
    produces (stable sort makes equal timestamps deterministic, and
    same-slot packets keep their relative order because they share a
    part).  Shared by :class:`ShardedRuntime` (parts = shards of one
    trace) and the multi-app fabric (parts = one app's lanes).
    """
    n = columns.n
    order = np.argsort(columns.times, kind="stable")
    decisions = np.zeros(n, dtype=np.int64)
    scores = np.full(n, np.nan)
    latencies = np.zeros(n, dtype=np.float64)
    bypassed = np.zeros(n, dtype=bool)
    aggregates: dict[str, np.ndarray] = {}
    for (indices, __), result in zip(parts, results):
        if len(result) == 0:
            continue
        pos = indices[result.order]
        decisions[pos] = result.decisions
        scores[pos] = result.ml_scores
        latencies[pos] = result.latencies_ns
        bypassed[pos] = result.bypassed
        for key, values in result.aggregates.items():
            aggregates.setdefault(key, np.zeros(n, dtype=values.dtype))[
                pos
            ] = values
    return TracePipelineResult(
        order=order,
        times=columns.times[order],
        decisions=decisions[order],
        ml_scores=scores[order],
        latencies_ns=latencies[order],
        bypassed=bypassed[order],
        aggregates={key: values[order] for key, values in aggregates.items()},
    )


def concat_results(chunks: list[TracePipelineResult]) -> TracePipelineResult:
    """Consecutive chunk results of one time-sorted part, as one result.

    Chunks arrive time-sorted (each is a slice of the part's sorted
    columns), so every chunk's internal order is the identity and plain
    concatenation reproduces what one ``process_trace_batch`` call over
    the whole part returns.  Shared by the multi-app fabric's per-lane
    scheduler and the shard pool's chunked dispatch.
    """
    if not chunks:
        return empty_trace_result()
    n = sum(len(c) for c in chunks)
    return TracePipelineResult(
        order=np.arange(n, dtype=np.int64),
        times=np.concatenate([c.times for c in chunks]),
        decisions=np.concatenate([c.decisions for c in chunks]),
        ml_scores=np.concatenate([c.ml_scores for c in chunks]),
        latencies_ns=np.concatenate([c.latencies_ns for c in chunks]),
        bypassed=np.concatenate([c.bypassed for c in chunks]),
        aggregates={
            key: np.concatenate([c.aggregates[key] for c in chunks])
            for key in chunks[0].aggregates
        },
    )


def merge_pipeline_state(pipelines, arbiter_turn: int) -> dict:
    """Aggregate per-worker pipeline state as one pipeline would report it.

    Counters sum, register files sum (workers own disjoint slot sets),
    queue watermarks take the max, and the arbiter turn is supplied by the
    caller (the worker that processed the globally-last packet).
    """
    stats: dict[str, int] = {}
    for pipe in pipelines:
        for key, value in pipe.stats.items():
            stats[key] = stats.get(key, 0) + value
    registers = {
        name: sum(getattr(pipe.accumulator, name).values for pipe in pipelines)
        for name in TaurusPipeline._REGISTER_NAMES
    }
    tables = []
    n_tables = len(pipelines[0].preprocess_tables) + len(
        pipelines[0].postprocess_tables
    )
    for t in range(n_tables):
        shard_tables = [
            (pipe.preprocess_tables + pipe.postprocess_tables)[t]
            for pipe in pipelines
        ]
        tables.append(
            {
                "name": shard_tables[0].name,
                "lookups": sum(tab.lookups for tab in shard_tables),
                "misses": sum(tab.misses for tab in shard_tables),
                "hits": [
                    sum(hits)
                    for hits in zip(
                        *([e.hits for e in tab.entries] for tab in shard_tables)
                    )
                ],
            }
        )
    return {
        "stats": stats,
        "registers": registers,
        "tables": tables,
        "parser_packets": sum(p.parser.packets_parsed for p in pipelines),
        "block_packets": sum(
            0 if p.block is None else p.block.packets_processed
            for p in pipelines
        ),
        "block_issue_cycles": sum(
            0 if p.block is None else p.block._next_issue_cycle
            for p in pipelines
        ),
        "queues": {
            "ml": {
                "drops": sum(p.ml_queue.drops for p in pipelines),
                "high_watermark": max(
                    p.ml_queue.high_watermark for p in pipelines
                ),
            },
            "bypass": {
                "drops": sum(p.bypass_queue.drops for p in pipelines),
                "high_watermark": max(
                    p.bypass_queue.high_watermark for p in pipelines
                ),
            },
        },
        "arbiter_turn": arbiter_turn,
    }


class ShardedRuntime:
    """``N`` parallel pipeline workers behind one ``process_trace`` call.

    Parameters
    ----------
    pipeline_factory:
        ``factory(shard_index) -> TaurusPipeline``; called once per shard
        at construction.  Each call must build an *independent* pipeline
        (own tables, accumulator, and MapReduce block) with identical
        configuration, and every accumulator must share one slot count
        (the partition key).
    shards:
        Number of workers.  ``1`` degenerates to the plain batched
        pipeline with zero partition/merge overhead.
    executor:
        ``auto`` | ``serial`` | ``thread`` | ``fork`` (see
        :mod:`repro.runtime.executors`).
    chunk_size:
        Default packets-per-chunk for each shard's vectorized loop.
    pool:
        Persistent-worker path.  ``False`` (default) keeps the
        task-per-run executors; ``True`` builds a
        :class:`~repro.runtime.pool.ShardPool` whose mode follows
        ``executor`` (``fork`` stays cross-process, ``thread``/``serial``
        stay in-process); a mode string (``"auto"``/``"fork"``/
        ``"thread"``) picks explicitly.  Pool runs dispatch pipelined
        chunks to long-lived workers instead of forking per call — same
        merged results, no per-run setup.  Close the runtime (context
        manager or :meth:`close`) when a pool is attached.
    pool_options:
        Extra keyword arguments for the
        :class:`~repro.runtime.pool.ShardPool` (``window``,
        ``hang_timeout``, ``heartbeat_interval``, ``max_worker_crashes``,
        ``faults``, ...) — the fault-tolerance knobs, and the seam the
        failure-injection tests use.
    """

    def __init__(
        self,
        pipeline_factory: Callable[[int], TaurusPipeline],
        shards: int = 2,
        executor: str = "auto",
        chunk_size: int = DEFAULT_TRACE_CHUNK,
        pool: bool | str = False,
        pool_options: dict | None = None,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.shards = shards
        self.executor = executor
        self.chunk_size = chunk_size
        self.pipelines = [pipeline_factory(i) for i in range(shards)]
        slot_counts = {
            pipe.accumulator.packet_count.size for pipe in self.pipelines
        }
        if len(slot_counts) != 1:
            raise ValueError(
                "shard pipelines must share one register slot count, got "
                f"{sorted(slot_counts)}"
            )
        self.slots = slot_counts.pop()
        #: Modeled parallel-fabric drain time of the last run (max over
        #: shards of latency + (B_s - 1) * II on that shard's block).
        self.last_drain_ns = 0.0
        self._last_turn = 0
        self.pool: ShardPool | None = None
        if pool:
            mode = (
                pool
                if isinstance(pool, str)
                else pool_mode_for_executor(self.executor)
            )
            contexts = [PipelineShardWorker(pipe) for pipe in self.pipelines]
            # Mark the pristine post-build state *before* spawning, so
            # every worker (and every crash replacement) inherits the
            # rewind point and per-run resets ship zero payload.
            for context in contexts:
                context.handle("mark", None)
            self.pool = ShardPool(contexts, mode=mode, **(pool_options or {}))
        elif pool_options:
            raise ValueError("pool_options requires pool=True")

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def pool_health(self):
        """The pool's :class:`~repro.runtime.health.PoolHealth` counters
        (crashes, hangs, restarts, replayed/degraded chunks) — the only
        place a transparently recovered worker failure is visible.
        ``None`` without a pool."""
        return None if self.pool is None else self.pool.health

    def close(self) -> None:
        """Shut the attached worker pool down (no-op without one)."""
        if self.pool is not None:
            self.pool.close()

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def reset_state(self, snapshots: list[dict]) -> None:
        """Restore every shard pipeline (and its pool worker) to
        ``snapshots`` — one :meth:`TaurusPipeline.state_snapshot` per
        shard.  This is how a pool owner gets fresh-run semantics from
        warm workers: snapshot once, restore before each run."""
        if len(snapshots) != self.shards:
            raise ValueError(
                f"got {len(snapshots)} snapshots for {self.shards} shards"
            )
        for pipe, snapshot in zip(self.pipelines, snapshots):
            pipe.restore_state(snapshot)
        if self.pool is not None and self.pool.transport:
            self.pool.broadcast("restore", snapshots)
        self._last_turn = self.pipelines[0].arbiter._turn

    def rewind_state(self) -> None:
        """Rewind every shard (parent and pool workers) to the pristine
        post-build mark — the zero-payload twin of :meth:`reset_state`
        (see :meth:`ShardPool.rewind`)."""
        if self.pool is None:
            raise RuntimeError("rewind_state requires a pool")
        self.pool.rewind()
        self._last_turn = self.pipelines[0].arbiter._turn

    # ------------------------------------------------------------------
    # Trace execution
    # ------------------------------------------------------------------
    def process_trace(
        self, trace, chunk_size: int | None = None
    ) -> TracePipelineResult:
        """The whole trace through all shards; merged, arrival-ordered.

        ``trace`` is a :class:`~repro.datasets.packets.PacketTrace`
        (partitions are cached on the trace), a
        :class:`~repro.datasets.packets.TraceColumns`, or a list of
        pipeline packets (converted; unlike the single-pipeline path, flow
        aggregates are *not* written back into packet ``metadata`` — fork
        workers mutate copies).
        """
        chunk = self.chunk_size if chunk_size is None else chunk_size
        if chunk <= 0:
            raise ValueError("chunk_size must be positive")
        columns = as_trace_columns(trace)
        if columns.n == 0:
            self.last_drain_ns = 0.0
            return empty_trace_result()
        if self.pool is not None:
            return self._process_trace_pooled(trace, columns, chunk)
        if self.shards == 1:
            # Zero-overhead degenerate case: no partition, no merge.
            pipe = self.pipelines[0]
            before = self._busy_cycles()
            result = pipe.process_trace_batch(columns, chunk_size=chunk)
            self.last_drain_ns = self._drain_ns(before)
            self._last_turn = pipe.arbiter._turn
            return result

        parts = self._partition(trace, columns)
        before = self._busy_cycles()
        # Only fork workers need to ship pipeline state back — serial and
        # thread strategies mutate this process's pipelines in place.
        transport = resolve_executor(self.executor, len(parts)) == "fork"

        def make_task(shard: int, sub: TraceColumns):
            pipe = self.pipelines[shard]

            def task():
                result = pipe.process_trace_batch(sub, chunk_size=chunk)
                return result, pipe.state_snapshot() if transport else None

            return task

        tasks = [make_task(shard, sub) for shard, (__, sub) in enumerate(parts)]
        outcomes = run_tasks(tasks, self.executor)
        if transport:
            for pipe, (__, snapshot) in zip(self.pipelines, outcomes):
                pipe.restore_state(snapshot)
        self.last_drain_ns = self._drain_ns(before)
        return self._merge(columns, parts, [result for result, __ in outcomes])

    # ------------------------------------------------------------------
    # Pooled execution (persistent workers, pipelined chunks)
    # ------------------------------------------------------------------
    def _process_trace_pooled(
        self, trace, columns: TraceColumns, chunk: int
    ) -> TracePipelineResult:
        """The trace through the warm worker pool, chunk-pipelined.

        Each shard's part is pre-sorted by arrival time (exactly the sort
        ``process_trace_batch`` would apply) and sliced into chunks; the
        pool stages and ships chunk ``k+1`` while the worker scores ``k``.
        Per-chunk responses carry incremental state deltas in fork mode,
        applied here **as each chunk is acked** — so this process's
        pipelines track the workers chunk by chunk, which is both what
        keeps merged state bit/stat-identical to the task-per-run path
        and what lets the pool recover a crashed worker transparently
        (a replacement re-forks from these pipelines, held at exactly
        the last acked chunk; see :meth:`ShardPool.map_streams`).  If a
        shard's workers cannot be kept alive at all, ``degrade`` scores
        its remaining chunks on the parent pipeline directly — same
        results, no parallelism, counted on :attr:`pool_health`.
        """
        if self.shards == 1:
            # No partition/merge, but still chunk-pipelined to the worker.
            parts = [(np.arange(columns.n, dtype=np.int64), columns)]
        else:
            parts = self._partition(trace, columns)
        before = self._busy_cycles()
        want_delta = self.pool.transport

        sorted_parts: list[tuple[np.ndarray, TraceColumns]] = []
        streams = []
        for indices, sub in parts:
            order = np.argsort(sub.times, kind="stable")
            if not np.array_equal(order, np.arange(sub.n)):
                indices, sub = indices[order], sub.take(order)
            sorted_parts.append((indices, sub))
            n_chunks = -(-sub.n // chunk) if sub.n else 0
            streams.append((self._chunk_requests(sub, chunk, want_delta), n_chunks))

        def apply_delta(shard: int, __ordinal: int, response) -> None:
            # Ack callback: land each chunk's incremental delta the
            # moment it is acked (one supervisor thread per shard; each
            # touches only its own pipeline, so no lock is needed).
            __, delta = response
            if delta is not None:
                self.pipelines[shard].apply_state_delta(delta)

        def degrade(shard: int, kind: str, payload):
            # In-parent fallback: the parent pipeline already sits at the
            # last acked chunk, so scoring continues on it directly.
            # delta=None — the state change happened in this process.
            if kind != "chunk":
                raise RuntimeError(f"cannot degrade request kind {kind!r}")
            chunk_columns, __ = payload
            result = self.pipelines[shard].process_trace_batch(
                chunk_columns, chunk_size=max(chunk_columns.n, 1)
            )
            return (result, None)

        try:
            responses = self.pool.map_streams(
                streams, on_result=apply_delta, degrade=degrade
            )
        except RuntimeError:
            # A failed run may have applied some worker chunks but not
            # their deltas here; pull full snapshots so this process's
            # pipelines stay consistent with the (surviving/replaced)
            # workers instead of silently drifting on the next run.
            self._resync_from_pool()
            raise
        results: list[TracePipelineResult] = [
            concat_results([result for result, __ in shard_responses])
            for shard_responses in responses
        ]
        self.last_drain_ns = self._drain_ns(before)
        if self.shards == 1:
            self._last_turn = self.pipelines[0].arbiter._turn
            result = results[0]
            # Re-expose the caller-order mapping, exactly as one
            # ``process_trace_batch`` call over the unsorted trace does.
            return TracePipelineResult(
                order=sorted_parts[0][0],
                times=result.times,
                decisions=result.decisions,
                ml_scores=result.ml_scores,
                latencies_ns=result.latencies_ns,
                bypassed=result.bypassed,
                aggregates=result.aggregates,
            )
        return self._merge(columns, sorted_parts, results)

    @staticmethod
    def _chunk_requests(sub: TraceColumns, chunk: int, want_delta: bool):
        """Lazy chunk slicing — consumed by the pool's prefetch stage."""
        for start in range(0, sub.n, chunk):
            sliced = sub.slice(slice(start, min(start + chunk, sub.n)))
            yield ("chunk", (sliced, want_delta))

    def _resync_from_pool(self) -> None:
        """Restore this process's pipelines from the workers' snapshots
        (best effort — after a failed run the workers are the truth)."""
        snapshots = self.pool.pull_snapshots()
        if snapshots is None:
            return
        for pipe, snapshot in zip(self.pipelines, snapshots):
            pipe.restore_state(snapshot)

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _partition(self, trace, columns: TraceColumns):
        """Slot-consistent parts as ``[(global_indices, sub_columns)]``."""
        if isinstance(trace, PacketTrace):
            return trace.shard_columns(self.shards, self.slots)
        assignments = columns.shard_assignments(self.shards, self.slots)
        return columns.partition(assignments, self.shards)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _merge(
        self,
        columns: TraceColumns,
        parts,
        results: list[TracePipelineResult],
    ) -> TracePipelineResult:
        """Merge shard outputs via :func:`scatter_merge`; fix the arbiter."""
        merged = scatter_merge(columns, parts, results)
        # The globally-last packet fixes the merged arbiter turn.
        last_shard = self._shard_of(parts, merged.order[-1])
        self._last_turn = self.pipelines[last_shard].arbiter._turn
        return merged

    @staticmethod
    def _shard_of(parts, global_index: int) -> int:
        for shard, (indices, __) in enumerate(parts):
            if len(indices) and np.any(indices == global_index):
                return shard
        return 0

    # ------------------------------------------------------------------
    # Modeled hardware drain
    # ------------------------------------------------------------------
    def _busy_cycles(self) -> list[int]:
        return [
            0 if pipe.block is None else pipe.block._next_issue_cycle
            for pipe in self.pipelines
        ]

    def _drain_ns(self, before: list[int]) -> float:
        """Slowest shard's modeled block drain for the cycles just issued.

        Mirrors :attr:`BatchInferenceResult.duration_ns`: a shard that
        issued ``B`` packets drains in ``latency + (B - 1) * II`` cycles;
        shards run concurrently, so the trace drains with the slowest.
        """
        drains = [0.0]
        for pipe, start in zip(self.pipelines, before):
            if pipe.block is None:
                continue
            busy = pipe.block._next_issue_cycle - start
            if busy <= 0:
                continue
            design = pipe.block.design
            cycles = design.latency_cycles + busy - design.initiation_interval
            drains.append(cycles / CLOCK_GHZ)
        return max(drains)

    # ------------------------------------------------------------------
    # Merged observable state (for verification and reporting)
    # ------------------------------------------------------------------
    def merged_state(self) -> dict:
        """Aggregate per-shard state as one pipeline would report it.

        Counters sum, register files sum (shards own disjoint slot sets),
        queue watermarks take the max, and the arbiter turn follows the
        shard that processed the globally-last packet (see
        :func:`merge_pipeline_state`).
        """
        return merge_pipeline_state(self.pipelines, self._last_turn)
