"""Flow-consistent sharded execution of the batched PISA pipeline.

The Taurus switch runs many compute units side by side; this runtime
brings the same dimension of parallelism to trace replay by partitioning
a packet trace across ``N`` independent :class:`~repro.pisa.TaurusPipeline`
workers (each with its own parser, MATs, flow registers, and MapReduce
block) and deterministically merging their outputs.

**Why results stay bit-identical to one pipeline.**  Packets are sharded
by *register slot*: the flow key's FNV-1a hash modulo the accumulator's
slot count — exactly the index the flow registers use — then modulo the
shard count.  Every packet that would touch a given register slot
(including hash-collision neighbours) therefore lands on the same shard,
in arrival order, so each shard's register file evolves exactly as the
corresponding slots of a single shared register file would.  All other
per-packet state (parse, MAT actions, fabric scoring) is independent
across packets, and counters (stats, MAT hit/miss, parser totals) are
pure sums.  The merge scatters per-shard outputs back to global
arrival-time order and is asserted bit/stat-identical to the single-shard
oracle by ``tests/test_shard_runtime.py``.

Execution strategies (``executor=``) come from
:mod:`repro.runtime.executors`: ``serial``, ``thread``, ``fork`` (true
multi-core; per-shard pipeline state is snapshotted in the child and
restored into the parent's pipeline objects), or ``auto``.

Besides wall-clock throughput, the runtime models the *hardware* drain
rate of ``N`` parallel MapReduce blocks: each shard's block drains its
packets at the design's initiation-interval-limited rate concurrently,
so a trace completes in the slowest shard's drain time
(:attr:`ShardedRuntime.last_drain_ns`) — the scale-out twin of
:attr:`~repro.hw.grid.BatchInferenceResult.duration_ns`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..datasets.packets import PacketTrace, TraceColumns
from ..hw.params import CLOCK_GHZ
from ..pisa.pipeline import (
    DEFAULT_TRACE_CHUNK,
    TaurusPipeline,
    TracePipelineResult,
)
from .executors import resolve_executor, run_tasks

__all__ = [
    "ShardedRuntime",
    "as_trace_columns",
    "empty_trace_result",
    "scatter_merge",
    "merge_pipeline_state",
]


def as_trace_columns(trace) -> TraceColumns:
    """Coerce any accepted trace form to :class:`TraceColumns`.

    Shared by :class:`ShardedRuntime` and the multi-app fabric: a
    ``TraceColumns`` passes through, anything with a cached ``columns()``
    view (:class:`~repro.datasets.packets.PacketTrace`) uses it, and a
    plain packet list is columnarized on the fly.
    """
    if isinstance(trace, TraceColumns):
        return trace
    if hasattr(trace, "columns"):
        return trace.columns()
    return TraceColumns.from_packets(list(trace))


def empty_trace_result() -> TracePipelineResult:
    """A zero-packet :class:`TracePipelineResult` (the no-op run)."""
    return TracePipelineResult(
        order=np.zeros(0, dtype=np.int64),
        times=np.zeros(0, dtype=np.float64),
        decisions=np.zeros(0, dtype=np.int64),
        ml_scores=np.zeros(0, dtype=np.float64),
        latencies_ns=np.zeros(0, dtype=np.float64),
        bypassed=np.zeros(0, dtype=bool),
        aggregates={},
    )


def scatter_merge(
    columns: TraceColumns,
    parts,
    results: list[TracePipelineResult],
) -> TracePipelineResult:
    """Scatter per-part outputs to global positions, gather in time order.

    Each part is ``(global_indices, sub_columns)`` over ``columns`` and
    ``results[p]`` is that part's pipeline outcome: result row ``r``
    describes the packet at global input position
    ``indices[result.order[r]]``.  The merged result lists packets in
    global arrival order — exactly what one pipeline over the whole trace
    produces (stable sort makes equal timestamps deterministic, and
    same-slot packets keep their relative order because they share a
    part).  Shared by :class:`ShardedRuntime` (parts = shards of one
    trace) and the multi-app fabric (parts = one app's lanes).
    """
    n = columns.n
    order = np.argsort(columns.times, kind="stable")
    decisions = np.zeros(n, dtype=np.int64)
    scores = np.full(n, np.nan)
    latencies = np.zeros(n, dtype=np.float64)
    bypassed = np.zeros(n, dtype=bool)
    aggregates: dict[str, np.ndarray] = {}
    for (indices, __), result in zip(parts, results):
        if len(result) == 0:
            continue
        pos = indices[result.order]
        decisions[pos] = result.decisions
        scores[pos] = result.ml_scores
        latencies[pos] = result.latencies_ns
        bypassed[pos] = result.bypassed
        for key, values in result.aggregates.items():
            aggregates.setdefault(key, np.zeros(n, dtype=values.dtype))[
                pos
            ] = values
    return TracePipelineResult(
        order=order,
        times=columns.times[order],
        decisions=decisions[order],
        ml_scores=scores[order],
        latencies_ns=latencies[order],
        bypassed=bypassed[order],
        aggregates={key: values[order] for key, values in aggregates.items()},
    )


def merge_pipeline_state(pipelines, arbiter_turn: int) -> dict:
    """Aggregate per-worker pipeline state as one pipeline would report it.

    Counters sum, register files sum (workers own disjoint slot sets),
    queue watermarks take the max, and the arbiter turn is supplied by the
    caller (the worker that processed the globally-last packet).
    """
    stats: dict[str, int] = {}
    for pipe in pipelines:
        for key, value in pipe.stats.items():
            stats[key] = stats.get(key, 0) + value
    registers = {
        name: sum(getattr(pipe.accumulator, name).values for pipe in pipelines)
        for name in TaurusPipeline._REGISTER_NAMES
    }
    tables = []
    n_tables = len(pipelines[0].preprocess_tables) + len(
        pipelines[0].postprocess_tables
    )
    for t in range(n_tables):
        shard_tables = [
            (pipe.preprocess_tables + pipe.postprocess_tables)[t]
            for pipe in pipelines
        ]
        tables.append(
            {
                "name": shard_tables[0].name,
                "lookups": sum(tab.lookups for tab in shard_tables),
                "misses": sum(tab.misses for tab in shard_tables),
                "hits": [
                    sum(hits)
                    for hits in zip(
                        *([e.hits for e in tab.entries] for tab in shard_tables)
                    )
                ],
            }
        )
    return {
        "stats": stats,
        "registers": registers,
        "tables": tables,
        "parser_packets": sum(p.parser.packets_parsed for p in pipelines),
        "block_packets": sum(
            0 if p.block is None else p.block.packets_processed
            for p in pipelines
        ),
        "block_issue_cycles": sum(
            0 if p.block is None else p.block._next_issue_cycle
            for p in pipelines
        ),
        "queues": {
            "ml": {
                "drops": sum(p.ml_queue.drops for p in pipelines),
                "high_watermark": max(
                    p.ml_queue.high_watermark for p in pipelines
                ),
            },
            "bypass": {
                "drops": sum(p.bypass_queue.drops for p in pipelines),
                "high_watermark": max(
                    p.bypass_queue.high_watermark for p in pipelines
                ),
            },
        },
        "arbiter_turn": arbiter_turn,
    }


class ShardedRuntime:
    """``N`` parallel pipeline workers behind one ``process_trace`` call.

    Parameters
    ----------
    pipeline_factory:
        ``factory(shard_index) -> TaurusPipeline``; called once per shard
        at construction.  Each call must build an *independent* pipeline
        (own tables, accumulator, and MapReduce block) with identical
        configuration, and every accumulator must share one slot count
        (the partition key).
    shards:
        Number of workers.  ``1`` degenerates to the plain batched
        pipeline with zero partition/merge overhead.
    executor:
        ``auto`` | ``serial`` | ``thread`` | ``fork`` (see
        :mod:`repro.runtime.executors`).
    chunk_size:
        Default packets-per-chunk for each shard's vectorized loop.
    """

    def __init__(
        self,
        pipeline_factory: Callable[[int], TaurusPipeline],
        shards: int = 2,
        executor: str = "auto",
        chunk_size: int = DEFAULT_TRACE_CHUNK,
    ):
        if shards <= 0:
            raise ValueError("shards must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.shards = shards
        self.executor = executor
        self.chunk_size = chunk_size
        self.pipelines = [pipeline_factory(i) for i in range(shards)]
        slot_counts = {
            pipe.accumulator.packet_count.size for pipe in self.pipelines
        }
        if len(slot_counts) != 1:
            raise ValueError(
                "shard pipelines must share one register slot count, got "
                f"{sorted(slot_counts)}"
            )
        self.slots = slot_counts.pop()
        #: Modeled parallel-fabric drain time of the last run (max over
        #: shards of latency + (B_s - 1) * II on that shard's block).
        self.last_drain_ns = 0.0
        self._last_turn = 0

    # ------------------------------------------------------------------
    # Trace execution
    # ------------------------------------------------------------------
    def process_trace(
        self, trace, chunk_size: int | None = None
    ) -> TracePipelineResult:
        """The whole trace through all shards; merged, arrival-ordered.

        ``trace`` is a :class:`~repro.datasets.packets.PacketTrace`
        (partitions are cached on the trace), a
        :class:`~repro.datasets.packets.TraceColumns`, or a list of
        pipeline packets (converted; unlike the single-pipeline path, flow
        aggregates are *not* written back into packet ``metadata`` — fork
        workers mutate copies).
        """
        chunk = self.chunk_size if chunk_size is None else chunk_size
        if chunk <= 0:
            raise ValueError("chunk_size must be positive")
        columns = as_trace_columns(trace)
        if columns.n == 0:
            self.last_drain_ns = 0.0
            return empty_trace_result()
        if self.shards == 1:
            # Zero-overhead degenerate case: no partition, no merge.
            pipe = self.pipelines[0]
            before = self._busy_cycles()
            result = pipe.process_trace_batch(columns, chunk_size=chunk)
            self.last_drain_ns = self._drain_ns(before)
            self._last_turn = pipe.arbiter._turn
            return result

        parts = self._partition(trace, columns)
        before = self._busy_cycles()
        # Only fork workers need to ship pipeline state back — serial and
        # thread strategies mutate this process's pipelines in place.
        transport = resolve_executor(self.executor, len(parts)) == "fork"

        def make_task(shard: int, sub: TraceColumns):
            pipe = self.pipelines[shard]

            def task():
                result = pipe.process_trace_batch(sub, chunk_size=chunk)
                return result, pipe.state_snapshot() if transport else None

            return task

        tasks = [make_task(shard, sub) for shard, (__, sub) in enumerate(parts)]
        outcomes = run_tasks(tasks, self.executor)
        if transport:
            for pipe, (__, snapshot) in zip(self.pipelines, outcomes):
                pipe.restore_state(snapshot)
        self.last_drain_ns = self._drain_ns(before)
        return self._merge(columns, parts, [result for result, __ in outcomes])

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def _partition(self, trace, columns: TraceColumns):
        """Slot-consistent parts as ``[(global_indices, sub_columns)]``."""
        if isinstance(trace, PacketTrace):
            return trace.shard_columns(self.shards, self.slots)
        assignments = columns.shard_assignments(self.shards, self.slots)
        return columns.partition(assignments, self.shards)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _merge(
        self,
        columns: TraceColumns,
        parts,
        results: list[TracePipelineResult],
    ) -> TracePipelineResult:
        """Merge shard outputs via :func:`scatter_merge`; fix the arbiter."""
        merged = scatter_merge(columns, parts, results)
        # The globally-last packet fixes the merged arbiter turn.
        last_shard = self._shard_of(parts, merged.order[-1])
        self._last_turn = self.pipelines[last_shard].arbiter._turn
        return merged

    @staticmethod
    def _shard_of(parts, global_index: int) -> int:
        for shard, (indices, __) in enumerate(parts):
            if len(indices) and np.any(indices == global_index):
                return shard
        return 0

    # ------------------------------------------------------------------
    # Modeled hardware drain
    # ------------------------------------------------------------------
    def _busy_cycles(self) -> list[int]:
        return [
            0 if pipe.block is None else pipe.block._next_issue_cycle
            for pipe in self.pipelines
        ]

    def _drain_ns(self, before: list[int]) -> float:
        """Slowest shard's modeled block drain for the cycles just issued.

        Mirrors :attr:`BatchInferenceResult.duration_ns`: a shard that
        issued ``B`` packets drains in ``latency + (B - 1) * II`` cycles;
        shards run concurrently, so the trace drains with the slowest.
        """
        drains = [0.0]
        for pipe, start in zip(self.pipelines, before):
            if pipe.block is None:
                continue
            busy = pipe.block._next_issue_cycle - start
            if busy <= 0:
                continue
            design = pipe.block.design
            cycles = design.latency_cycles + busy - design.initiation_interval
            drains.append(cycles / CLOCK_GHZ)
        return max(drains)

    # ------------------------------------------------------------------
    # Merged observable state (for verification and reporting)
    # ------------------------------------------------------------------
    def merged_state(self) -> dict:
        """Aggregate per-shard state as one pipeline would report it.

        Counters sum, register files sum (shards own disjoint slot sets),
        queue watermarks take the max, and the arbiter turn follows the
        shard that processed the globally-last packet (see
        :func:`merge_pipeline_state`).
        """
        return merge_pipeline_state(self.pipelines, self._last_turn)
