"""Deterministic fault injection for the persistent shard pool.

Crash recovery that is only exercised by real crashes is recovery that is
never exercised.  This module gives the pool a seeded, reproducible fault
schedule: a :class:`FaultPlan` maps ``(worker index, chunk ordinal)`` to a
:class:`FaultEvent`, and the pool's dispatch path consults the plan as it
sends each chunk.  A matching event travels to the worker wrapped in a
``FAULT_REQUEST`` frame, and the worker executes the failure *at the
dispatch point* — before, during, or instead of handling the chunk — so
every failure mode the recovery path claims to handle can be provoked
bit-reproducibly in tests.

Supported fault kinds:

``kill``
    The worker SIGKILLs itself before touching the chunk.  Models a
    segfault / OOM-kill between frames: the parent sees EOF on the
    response pipe.
``hang``
    The worker sleeps (default: effectively forever) while *holding* the
    chunk, never responding.  Models a livelock or stuck syscall; only the
    parent-side watchdog can clear it (SIGKILL past the hang deadline).
``torn_frame``
    The worker processes the chunk, then writes a *partial* response frame
    (a length header promising more bytes than follow) and exits.  Models
    a crash mid-write: the parent must treat the torn frame exactly like
    EOF and must not trust the partial payload.
``delay``
    The worker sleeps briefly and then handles the chunk normally.  A
    benign fault used to shake out timeout tuning: recovery must *not*
    trigger.

Events are consumed when taken (each fires ``times`` times, default once),
so a replayed chunk after recovery runs clean — this is what makes a
faulted run converge to the unfaulted result.  Set ``times`` higher to
model a poison chunk that kills every worker that touches it.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

__all__ = ["FAULT_KINDS", "FAULT_REQUEST", "FaultEvent", "FaultPlan"]

# Request kind reserved by the framed pipe protocol for fault delivery.
# Like ERROR_REQUEST, the double-underscore name cannot collide with a
# real handler kind.
FAULT_REQUEST = "__fault__"

FAULT_KINDS = ("kill", "hang", "torn_frame", "delay")

# A "hang" sleeps this long unless the event says otherwise -- far past
# any sane watchdog deadline, but bounded so an unwatched test process
# still terminates eventually.
_DEFAULT_HANG_S = 3600.0


@dataclass
class FaultEvent:
    """One scheduled failure: what goes wrong, and for how long.

    ``seconds`` is the sleep for ``hang``/``delay`` kinds (ignored for the
    others).  ``times`` is how many takes the event survives: 1 means the
    replayed chunk runs clean, a large value models a poison chunk.
    """

    kind: str
    seconds: float = 0.0
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError("fault event must fire at least once")
        if self.kind == "hang" and self.seconds <= 0.0:
            self.seconds = _DEFAULT_HANG_S

    def wire(self) -> tuple:
        """Picklable form shipped to the worker inside a FAULT_REQUEST."""
        return (self.kind, float(self.seconds))


class FaultPlan:
    """A seeded schedule of faults keyed by ``(worker, chunk ordinal)``.

    Thread-safe: the pool consults the plan from one supervisor thread per
    worker.  ``take`` is consuming — after an event has fired ``times``
    times it stops matching, so recovery's replay of the same ordinal runs
    clean.
    """

    def __init__(self) -> None:
        self._events: dict[tuple[int, int], FaultEvent] = {}
        self._fired: list[tuple[int, int, str]] = []
        self._lock = threading.Lock()

    def add(
        self,
        worker: int,
        ordinal: int,
        kind: str,
        *,
        seconds: float = 0.0,
        times: int = 1,
    ) -> "FaultPlan":
        """Schedule ``kind`` when ``worker`` dispatches chunk ``ordinal``."""
        event = FaultEvent(kind, seconds=seconds, times=times)
        with self._lock:
            self._events[(int(worker), int(ordinal))] = event
        return self

    def take(self, worker: int, ordinal: int) -> FaultEvent | None:
        """Consume and return the event for this dispatch, if any."""
        key = (int(worker), int(ordinal))
        with self._lock:
            event = self._events.get(key)
            if event is None:
                return None
            event.times -= 1
            if event.times <= 0:
                del self._events[key]
            self._fired.append((key[0], key[1], event.kind))
            return event

    @property
    def fired(self) -> list[tuple[int, int, str]]:
        """``(worker, ordinal, kind)`` for every event that has fired."""
        with self._lock:
            return list(self._fired)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __bool__(self) -> bool:  # a drained plan is still a plan
        return True

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        workers: int,
        chunks: int,
        kinds: tuple[str, ...] = ("kill", "hang", "torn_frame"),
        events: int = 1,
        hang_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """A reproducible plan with ``events`` faults drawn from ``kinds``.

        Targets are drawn without replacement from the ``workers x chunks``
        grid, so two events never collide on the same dispatch.
        """
        if workers < 1 or chunks < 1:
            raise ValueError("need at least one worker and one chunk")
        rng = random.Random(seed)
        grid = [(w, c) for w in range(workers) for c in range(chunks)]
        events = min(events, len(grid))
        plan = cls()
        for worker, ordinal in rng.sample(grid, events):
            kind = rng.choice(list(kinds))
            seconds = hang_seconds if kind == "hang" else 0.0  # noqa: rt-frame-unconsumed - fault kinds arrive dynamically via FaultEvent.wire() payloads, not constant frames
            plan.add(worker, ordinal, kind, seconds=seconds)
        return plan
